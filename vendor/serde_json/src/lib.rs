//! Offline vendored shim: the subset of the `serde_json` API this
//! workspace uses — [`to_string`], [`to_string_pretty`], [`from_str`] and
//! [`Value`] — over the value-based vendored `serde`.
//!
//! Numbers are stored as `f64`. Rust's float `Display` already produces
//! the shortest representation that round-trips, which is what the
//! upstream `float_roundtrip` feature guarantees for parsing.

pub use serde::Value;

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// JSON error: a message plus (for parse errors) a byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    msg: String,
    offset: Option<usize>,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.offset {
            Some(o) => write!(f, "{} at byte {}", self.msg, o),
            None => f.write_str(&self.msg),
        }
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error {
            msg: e.0,
            offset: None,
        }
    }
}

impl serde::de::Error for Error {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        Error {
            msg: msg.to_string(),
            offset: None,
        }
    }
}

/// Serialize a value to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let v = serde::to_value(value)?;
    let mut out = String::new();
    write_value(&mut out, &v, None, 0);
    Ok(out)
}

/// Serialize a value to human-readable, 2-space-indented JSON text.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let v = serde::to_value(value)?;
    let mut out = String::new();
    write_value(&mut out, &v, Some(2), 0);
    Ok(out)
}

/// Convert a serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(serde::to_value(value)?)
}

/// Deserialize a value from JSON text.
pub fn from_str<'de, T: Deserialize<'de>>(s: &str) -> Result<T, Error> {
    let v = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    }
    .parse_document()?;
    T::deserialize(serde::ValueDeserializer(v)).map_err(|e| Error {
        msg: e.0,
        offset: None,
    })
}

/// Build a deserializable type from a [`Value`] tree.
pub fn from_value<T: for<'de> Deserialize<'de>>(v: Value) -> Result<T, Error> {
    Ok(serde::from_value(v)?)
}

// ---------------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: f64) {
    if n.is_finite() {
        if n.fract() == 0.0 && n.abs() < 1e15 {
            // Integral values print without the trailing `.0` Rust's
            // Display would omit anyway; force integer form for clarity.
            let _ = write!(out, "{}", n as i64);
        } else {
            let _ = write!(out, "{n}");
        }
    } else {
        // JSON has no NaN/Inf; upstream serde_json errors here. Emitting
        // null matches what this workspace needs (diagnostic dumps only).
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> Error {
        Error {
            msg: msg.into(),
            offset: Some(self.pos),
        }
    }

    fn parse_document(mut self) -> Result<Value, Error> {
        let v = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.err("trailing characters after JSON value"));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| self.err("unexpected end of input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'{' => self.parse_object(),
            b'[' => self.parse_array(),
            b'"' => Ok(Value::String(self.parse_string()?)),
            b't' => self.parse_keyword("true", Value::Bool(true)),
            b'f' => self.parse_keyword("false", Value::Bool(false)),
            b'n' => self.parse_keyword("null", Value::Null),
            _ => self.parse_number(),
        }
    }

    fn parse_keyword(&mut self, kw: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(self.err(format!("invalid literal, expected `{kw}`")))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid utf-8 in number"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err(format!("invalid number `{text}`")))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(self.err("unterminated string"));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by this
                            // workspace's own output; map lone surrogates
                            // to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(self.err(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8 in string"))?;
                    let c = rest.chars().next().expect("non-empty checked");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&3u64).unwrap(), "3");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<String>("\"hi\\nthere\"").unwrap(), "hi\nthere");
    }

    #[test]
    fn round_trip_float_precision() {
        for x in [0.1, 1.0 / 3.0, 1e-9, 123456.789, f64::MIN_POSITIVE] {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back, x, "{s}");
        }
    }

    #[test]
    fn nested_containers() {
        let v: Vec<(u64, String)> = vec![(1, "a".into()), (2, "b\"c".into())];
        let s = to_string(&v).unwrap();
        let back: Vec<(u64, String)> = from_str(&s).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn parses_whitespace_and_pretty() {
        let v = from_str::<Value>(" { \"a\" : [ 1 , 2 ] , \"b\" : null } ").unwrap();
        assert_eq!(v["a"][1], 2u64);
        assert!(v["b"].is_null());
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{\"a\":}").is_err());
        assert!(from_str::<Value>("[1,,2]").is_err());
        assert!(from_str::<Value>("[1] trailing").is_err());
        assert!(from_str::<Value>("nul").is_err());
    }

    #[test]
    fn value_comparisons() {
        let v = from_str::<Value>("{\"name\":\"dgemm\",\"tid\":0}").unwrap();
        assert_eq!(v["name"], "dgemm");
        assert_eq!(v["tid"], 0);
    }
}
