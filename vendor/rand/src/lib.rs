//! Offline vendored shim: the subset of the `rand` 0.9 API this workspace
//! uses, with `StdRng` backed by xoshiro256++ seeded through SplitMix64.
//!
//! The workspace only relies on run-to-run determinism of `StdRng` for a
//! fixed seed (the simulator's reproducibility contract), never on matching
//! the upstream `rand` byte stream, so a self-contained generator is a
//! faithful substitute.

/// Low-level entropy source: everything is derived from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Sampling conveniences layered over [`RngCore`] (blanket-implemented,
/// mirroring rand 0.9's `Rng`).
pub trait Rng: RngCore {
    /// Sample a value of a type with a standard uniform distribution
    /// (`f64`/`f32` in `[0, 1)`, integers over their full range).
    fn random<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Sample uniformly from a range.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Sample `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable from the standard distribution.
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for i64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable into a `T` (rand 0.9's `SampleRange`).
pub trait SampleRange<T> {
    /// Draw a uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                // Multiply-shift rejection-free mapping; the tiny modulo
                // bias (span << 2^64) is irrelevant for test workloads.
                let hi = ((rng.next_u64() as u128 * span) >> 64) as $t;
                self.start + hi
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "cannot sample empty range");
                let span = (e as u128) - (s as u128) + 1;
                let hi = ((rng.next_u64() as u128 * span) >> 64) as $t;
                s + hi
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize);

macro_rules! signed_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let hi = (rng.next_u64() as u128 * span) >> 64;
                (self.start as i128 + hi as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "cannot sample empty range");
                let span = (e as i128 - s as i128 + 1) as u128;
                let hi = (rng.next_u64() as u128 * span) >> 64;
                (s as i128 + hi as i128) as $t
            }
        }
    )*};
}

signed_int_range!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u: f64 = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Seedable generators (rand's `SeedableRng`, reduced to the one
/// constructor the workspace calls).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++,
    /// state initialized by SplitMix64 expansion of the seed.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(x: &mut u64) -> u64 {
        *x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *x;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut x = seed;
            StdRng {
                s: [
                    splitmix64(&mut x),
                    splitmix64(&mut x),
                    splitmix64(&mut x),
                    splitmix64(&mut x),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_sampling_in_bounds() {
        let mut r = StdRng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let i = r.random_range(0usize..5);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit");
        for _ in 0..1000 {
            let x = r.random_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn unsized_rng_usable_via_reference() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.random()
        }
        let mut r = StdRng::seed_from_u64(1);
        let x = draw(&mut r);
        assert!((0.0..1.0).contains(&x));
    }

    #[test]
    fn mean_of_uniform_near_half() {
        let mut r = StdRng::seed_from_u64(11);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.random::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
