//! Offline vendored shim: the subset of the `parking_lot` 0.12 API this
//! workspace uses, implemented over `std::sync` primitives.
//!
//! The container this repository builds in has no network access and no
//! crates.io cache, so the real `parking_lot` cannot be fetched. This shim
//! preserves the API (guards returned without `Result`, `Condvar::wait`
//! taking `&mut MutexGuard`) so the rest of the workspace compiles
//! unchanged. Lock poisoning is translated into a panic, which matches
//! parking_lot's no-poisoning semantics closely enough for this codebase:
//! a panicked task body is caught by the runtime before it can unwind
//! through a held engine lock.

use std::sync;

/// Mutual exclusion primitive (non-poisoning facade over [`sync::Mutex`]).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
///
/// Holds the std guard in an `Option` so [`Condvar::wait`] can temporarily
/// take ownership (std's wait consumes and returns the guard).
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        MutexGuard { inner: Some(guard) }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner
            .as_deref()
            .expect("guard taken during condvar wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_deref_mut()
            .expect("guard taken during condvar wait")
    }
}

/// Condition variable compatible with [`Mutex`]/[`MutexGuard`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Atomically release the guard's lock and wait for a notification,
    /// re-acquiring the lock before returning (parking_lot signature:
    /// the guard is borrowed, not consumed).
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard already taken");
        let std_guard = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(std_guard);
    }

    /// Wait with a timeout; returns true if the wait timed out.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.inner.take().expect("guard already taken");
        let (std_guard, res) = self
            .inner
            .wait_timeout(std_guard, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(std_guard);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    /// Wake one waiting thread.
    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    /// Wake all waiting threads.
    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

/// Result of a timed condvar wait.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Reader-writer lock (non-poisoning facade over [`sync::RwLock`]).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn condvar_wait_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        h.join().unwrap();
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(5);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 10);
        }
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
