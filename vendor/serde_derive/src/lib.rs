//! Offline vendored shim: `#[derive(Serialize)]` / `#[derive(Deserialize)]`
//! for the workspace's value-based serde, written against `proc_macro`
//! directly (no `syn`/`quote` — they cannot be fetched in this container).
//!
//! Supported shapes (everything the workspace derives on):
//! * structs with named fields, including `#[serde(with = "module")]`
//!   and `#[serde(default)]` field attributes;
//! * newtype tuple structs (serialized transparently as the inner value);
//! * enums with unit, newtype and struct variants, externally tagged by
//!   default or internally tagged via `#[serde(tag = "...")]`, with
//!   optional `#[serde(rename_all = "snake_case")]`.
//!
//! Unknown object keys are ignored on deserialization; missing keys fall
//! back to `Value::Null` (so `Option` fields read as `None`, while other
//! types produce a type-mismatch error naming the field).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive the workspace `serde::Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let c = parse_container(input);
    gen_serialize(&c)
        .parse()
        .expect("generated Serialize impl must parse")
}

/// Derive the workspace `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let c = parse_container(input);
    gen_deserialize(&c)
        .parse()
        .expect("generated Deserialize impl must parse")
}

// ---------------------------------------------------------------------------
// Parsed model
// ---------------------------------------------------------------------------

struct Container {
    name: String,
    kind: Kind,
    /// `#[serde(tag = "...")]`: internally-tagged enum representation.
    tag: Option<String>,
    /// `#[serde(rename_all = "snake_case")]` (the only casing used here).
    snake_case: bool,
}

enum Kind {
    NamedStruct(Vec<Field>),
    NewtypeStruct,
    Enum(Vec<Variant>),
}

struct Field {
    name: String,
    with: Option<String>,
    /// `#[serde(default)]`: a missing key deserializes to `Default::default()`.
    default: bool,
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Newtype,
    Struct(Vec<Field>),
}

// ---------------------------------------------------------------------------
// Token parsing
// ---------------------------------------------------------------------------

/// Serde-relevant facts extracted from one `#[...]` attribute group.
#[derive(Default)]
struct AttrFacts {
    with: Option<String>,
    tag: Option<String>,
    snake_case: bool,
    default: bool,
}

/// Consume leading attributes from `toks` starting at `*i`, merging any
/// `#[serde(...)]` facts.
fn skip_attrs(toks: &[TokenTree], i: &mut usize) -> AttrFacts {
    let mut facts = AttrFacts::default();
    while *i < toks.len() {
        match &toks[*i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                *i += 1;
                let TokenTree::Group(g) = &toks[*i] else {
                    panic!("expected [...] after #");
                };
                parse_serde_attr(g.stream(), &mut facts);
                *i += 1;
            }
            _ => break,
        }
    }
    facts
}

/// If the attribute body is `serde(k = "v", ...)`, record the pairs.
fn parse_serde_attr(body: TokenStream, facts: &mut AttrFacts) {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    match toks.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return,
    }
    let Some(TokenTree::Group(args)) = toks.get(1) else {
        return;
    };
    let args: Vec<TokenTree> = args.stream().into_iter().collect();
    let mut j = 0;
    while j < args.len() {
        let TokenTree::Ident(key) = &args[j] else {
            j += 1;
            continue;
        };
        let key = key.to_string();
        // Bare `default` takes no value.
        if key == "default"
            && !matches!(args.get(j + 1), Some(TokenTree::Punct(p)) if p.as_char() == '=')
        {
            facts.default = true;
            j += 1;
            if let Some(TokenTree::Punct(c)) = args.get(j) {
                if c.as_char() == ',' {
                    j += 1;
                }
            }
            continue;
        }
        // Expect `= "literal"` after the key (all other attrs have it).
        if let (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit))) =
            (args.get(j + 1), args.get(j + 2))
        {
            if eq.as_char() == '=' {
                let text = lit.to_string();
                let text = text.trim_matches('"').to_string();
                match key.as_str() {
                    "with" => facts.with = Some(text),
                    "tag" => facts.tag = Some(text),
                    "rename_all" => {
                        assert_eq!(
                            text, "snake_case",
                            "only rename_all = \"snake_case\" is supported"
                        );
                        facts.snake_case = true;
                    }
                    other => panic!("unsupported serde attribute `{other}`"),
                }
                j += 3;
                if let Some(TokenTree::Punct(c)) = args.get(j) {
                    if c.as_char() == ',' {
                        j += 1;
                    }
                }
                continue;
            }
        }
        panic!("unsupported serde attribute form at `{key}`");
    }
}

fn parse_container(input: TokenStream) -> Container {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let container_facts = skip_attrs(&toks, &mut i);

    // Visibility.
    if matches!(&toks[i], TokenTree::Ident(id) if id.to_string() == "pub") {
        i += 1;
        if matches!(&toks[i], TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis) {
            i += 1;
        }
    }

    let TokenTree::Ident(kw) = &toks[i] else {
        panic!("expected struct/enum")
    };
    let kw = kw.to_string();
    i += 1;
    let TokenTree::Ident(name) = &toks[i] else {
        panic!("expected type name")
    };
    let name = name.to_string();
    i += 1;
    if matches!(&toks[i], TokenTree::Punct(p) if p.as_char() == '<') {
        panic!("generic types are not supported by the vendored serde derive");
    }

    let kind = match (kw.as_str(), &toks[i]) {
        ("struct", TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            Kind::NamedStruct(parse_fields(g.stream()))
        }
        ("struct", TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            let commas = top_level_commas(&inner);
            assert_eq!(
                commas, 0,
                "only single-field newtype tuple structs are supported"
            );
            Kind::NewtypeStruct
        }
        ("enum", TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            Kind::Enum(parse_variants(g.stream()))
        }
        _ => panic!("unsupported item shape for serde derive"),
    };

    Container {
        name,
        kind,
        tag: container_facts.tag,
        snake_case: container_facts.snake_case,
    }
}

/// Count commas outside angle brackets (groups are atomic tokens already).
fn top_level_commas(toks: &[TokenTree]) -> usize {
    let mut depth = 0i32;
    let mut commas = 0;
    for t in toks {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => commas += 1,
                _ => {}
            }
        }
    }
    commas
}

/// Parse `attrs vis name : Type ,` named-field lists.
fn parse_fields(body: TokenStream) -> Vec<Field> {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let facts = skip_attrs(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        if matches!(&toks[i], TokenTree::Ident(id) if id.to_string() == "pub") {
            i += 1;
            if matches!(&toks[i], TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis) {
                i += 1;
            }
        }
        let TokenTree::Ident(fname) = &toks[i] else {
            panic!("expected field name")
        };
        let fname = fname.to_string();
        i += 1;
        assert!(
            matches!(&toks[i], TokenTree::Punct(p) if p.as_char() == ':'),
            "expected `:` after field `{fname}`"
        );
        i += 1;
        // Skip the type: everything until a comma outside angle brackets.
        let mut depth = 0i32;
        while i < toks.len() {
            match &toks[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
            i += 1;
        }
        i += 1; // past the comma (or end)
        fields.push(Field {
            name: fname,
            with: facts.with,
            default: facts.default,
        });
    }
    fields
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attrs(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let TokenTree::Ident(vname) = &toks[i] else {
            panic!("expected variant name")
        };
        let vname = vname.to_string();
        i += 1;
        let kind = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                assert_eq!(
                    top_level_commas(&inner),
                    0,
                    "only newtype (single-field) tuple variants are supported"
                );
                i += 1;
                VariantKind::Newtype
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_fields(g.stream());
                i += 1;
                VariantKind::Struct(fields)
            }
            _ => VariantKind::Unit,
        };
        if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name: vname, kind });
    }
    variants
}

/// `LogNormal` -> `log_normal`.
fn snake(name: &str) -> String {
    let mut out = String::new();
    for (k, ch) in name.chars().enumerate() {
        if ch.is_ascii_uppercase() {
            if k > 0 {
                out.push('_');
            }
            out.push(ch.to_ascii_lowercase());
        } else {
            out.push(ch);
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn field_to_value(access: &str, f: &Field) -> String {
    match &f.with {
        Some(path) => format!("{path}::serialize(&{access}, ::serde::ValueSerializer)?"),
        None => format!("::serde::to_value(&{access})?"),
    }
}

fn gen_serialize(c: &Container) -> String {
    let name = &c.name;
    let body = match &c.kind {
        Kind::NamedStruct(fields) => {
            let mut s =
                String::from("let mut __obj: Vec<(String, ::serde::Value)> = Vec::new();\n");
            for f in fields {
                s.push_str(&format!(
                    "__obj.push((\"{n}\".to_string(), {v}));\n",
                    n = f.name,
                    v = field_to_value(&format!("self.{}", f.name), f)
                ));
            }
            s.push_str("__serializer.serialize_value(::serde::Value::Object(__obj))");
            s
        }
        Kind::NewtypeStruct => "let __v = ::serde::to_value(&self.0)?;\n\
             __serializer.serialize_value(__v)"
            .to_string(),
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                let key = if c.snake_case { snake(vn) } else { vn.clone() };
                let arm = match (&v.kind, &c.tag) {
                    (VariantKind::Unit, None) => format!(
                        "{name}::{vn} => __serializer.serialize_value(\
                         ::serde::Value::String(\"{key}\".to_string())),\n"
                    ),
                    (VariantKind::Unit, Some(tag)) => format!(
                        "{name}::{vn} => __serializer.serialize_value(\
                         ::serde::Value::Object(vec![(\"{tag}\".to_string(), \
                         ::serde::Value::String(\"{key}\".to_string()))])),\n"
                    ),
                    (VariantKind::Newtype, None) => format!(
                        "{name}::{vn}(__x) => {{\n\
                         let __inner = ::serde::to_value(__x)?;\n\
                         __serializer.serialize_value(::serde::Value::Object(vec![\
                         (\"{key}\".to_string(), __inner)]))\n}}\n"
                    ),
                    (VariantKind::Newtype, Some(tag)) => format!(
                        "{name}::{vn}(__x) => {{\n\
                         let __inner = ::serde::to_value(__x)?;\n\
                         let mut __obj = match __inner {{\n\
                             ::serde::Value::Object(m) => m,\n\
                             _ => return Err(::serde::Error::msg(\
                                 \"internally tagged newtype variant `{vn}` must \
                                  serialize to an object\").into()),\n\
                         }};\n\
                         __obj.insert(0, (\"{tag}\".to_string(), \
                             ::serde::Value::String(\"{key}\".to_string())));\n\
                         __serializer.serialize_value(::serde::Value::Object(__obj))\n}}\n"
                    ),
                    (VariantKind::Struct(fields), tag) => {
                        let pats: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let mut inner = String::from(
                            "let mut __f: Vec<(String, ::serde::Value)> = Vec::new();\n",
                        );
                        if let Some(tag) = tag {
                            inner.push_str(&format!(
                                "__f.push((\"{tag}\".to_string(), \
                                 ::serde::Value::String(\"{key}\".to_string())));\n"
                            ));
                        }
                        for f in fields {
                            inner.push_str(&format!(
                                "__f.push((\"{n}\".to_string(), {v}));\n",
                                n = f.name,
                                v = field_to_value(f.name.as_str(), f)
                            ));
                        }
                        let payload = if tag.is_some() {
                            "__serializer.serialize_value(::serde::Value::Object(__f))".to_string()
                        } else {
                            format!(
                                "__serializer.serialize_value(::serde::Value::Object(\
                                 vec![(\"{key}\".to_string(), \
                                 ::serde::Value::Object(__f))]))"
                            )
                        };
                        format!(
                            "{name}::{vn} {{ {pat} }} => {{\n{inner}{payload}\n}}\n",
                            pat = pats.join(", ")
                        )
                    }
                };
                arms.push_str(&arm);
            }
            format!("match self {{\n{arms}}}\n")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize<__S: ::serde::Serializer>(&self, __serializer: __S) \
         -> Result<__S::Ok, __S::Error> {{\n{body}\n}}\n}}\n"
    )
}

/// Shared deserialization helpers emitted in front of field extraction:
/// `__obj` (the entries) and `__take` (lookup by key, Null when missing).
const OBJ_PRELUDE: &str = "\
let __obj = match __v {\n\
    ::serde::Value::Object(m) => m,\n\
    other => return Err(<__D::Error as ::serde::de::Error>::custom(\n\
        format!(\"expected object, got {:?}\", other))),\n\
};\n\
let __take = |__k: &str| -> ::serde::Value {\n\
    __obj.iter().find(|(k, _)| k == __k).map(|(_, v)| v.clone())\n\
        .unwrap_or(::serde::Value::Null)\n\
};\n";

fn field_from_value(f: &Field, ctx: &str) -> String {
    let n = &f.name;
    if f.default {
        assert!(
            f.with.is_none(),
            "combining serde(default) with serde(with) is not supported"
        );
        return format!(
            "{n}: match __take(\"{n}\") {{\n\
                 ::serde::Value::Null => ::core::default::Default::default(),\n\
                 __val => ::serde::from_value(__val)\n\
                     .map_err(|e| <__D::Error as ::serde::de::Error>::custom(\n\
                         format!(\"{ctx}.{n}: {{}}\", e)))?,\n\
             }},\n"
        );
    }
    match &f.with {
        Some(path) => format!(
            "{n}: {path}::deserialize(::serde::ValueDeserializer(__take(\"{n}\")))\n\
             .map_err(|e| <__D::Error as ::serde::de::Error>::custom(\n\
                 format!(\"{ctx}.{n}: {{}}\", e)))?,\n"
        ),
        None => format!(
            "{n}: ::serde::from_value(__take(\"{n}\"))\n\
             .map_err(|e| <__D::Error as ::serde::de::Error>::custom(\n\
                 format!(\"{ctx}.{n}: {{}}\", e)))?,\n"
        ),
    }
}

fn gen_deserialize(c: &Container) -> String {
    let name = &c.name;
    let body = match &c.kind {
        Kind::NamedStruct(fields) => {
            let mut s = String::from(OBJ_PRELUDE);
            s.push_str(&format!("Ok({name} {{\n"));
            for f in fields {
                s.push_str(&field_from_value(f, name));
            }
            s.push_str("})");
            s
        }
        Kind::NewtypeStruct => format!(
            "Ok({name}(::serde::from_value(__v)\n\
             .map_err(|e| <__D::Error as ::serde::de::Error>::custom(e))?))"
        ),
        Kind::Enum(variants) => {
            if let Some(tag) = &c.tag {
                // Internally tagged: read the tag key, hand the same object
                // to the variant's inner type (extra keys are ignored).
                let mut arms = String::new();
                for v in variants {
                    let vn = &v.name;
                    let key = if c.snake_case { snake(vn) } else { vn.clone() };
                    match &v.kind {
                        VariantKind::Unit => {
                            arms.push_str(&format!("\"{key}\" => Ok({name}::{vn}),\n"))
                        }
                        VariantKind::Newtype => arms.push_str(&format!(
                            "\"{key}\" => Ok({name}::{vn}(\
                             ::serde::from_value(::serde::Value::Object(__obj.clone()))\n\
                             .map_err(|e| <__D::Error as ::serde::de::Error>::custom(\n\
                                 format!(\"{name}::{vn}: {{}}\", e)))?)),\n"
                        )),
                        VariantKind::Struct(fields) => {
                            let mut inner = format!("Ok({name}::{vn} {{\n");
                            for f in fields {
                                inner.push_str(&field_from_value(f, &format!("{name}::{vn}")));
                            }
                            inner.push_str("})");
                            arms.push_str(&format!("\"{key}\" => {{ {inner} }}\n"));
                        }
                    }
                }
                format!(
                    "{OBJ_PRELUDE}\
                     let __tag = match __take(\"{tag}\") {{\n\
                         ::serde::Value::String(s) => s,\n\
                         other => return Err(<__D::Error as ::serde::de::Error>::custom(\n\
                             format!(\"missing/invalid `{tag}` tag on {name}: {{:?}}\", \
                             other))),\n\
                     }};\n\
                     match __tag.as_str() {{\n{arms}\
                     other => Err(<__D::Error as ::serde::de::Error>::custom(\n\
                         format!(\"unknown {name} tag `{{}}`\", other))),\n}}\n"
                )
            } else {
                // Externally tagged: a bare string for unit variants, a
                // single-entry object otherwise.
                let mut unit_arms = String::new();
                let mut payload_arms = String::new();
                for v in variants {
                    let vn = &v.name;
                    let key = if c.snake_case { snake(vn) } else { vn.clone() };
                    match &v.kind {
                        VariantKind::Unit => {
                            unit_arms.push_str(&format!("\"{key}\" => Ok({name}::{vn}),\n"));
                            payload_arms.push_str(&format!("\"{key}\" => Ok({name}::{vn}),\n"));
                        }
                        VariantKind::Newtype => payload_arms.push_str(&format!(
                            "\"{key}\" => Ok({name}::{vn}(\
                             ::serde::from_value(__payload)\n\
                             .map_err(|e| <__D::Error as ::serde::de::Error>::custom(\n\
                                 format!(\"{name}::{vn}: {{}}\", e)))?)),\n"
                        )),
                        VariantKind::Struct(fields) => {
                            let mut inner = String::from("let __v = __payload;\n");
                            inner.push_str(OBJ_PRELUDE);
                            inner.push_str(&format!("Ok({name}::{vn} {{\n"));
                            for f in fields {
                                inner.push_str(&field_from_value(f, &format!("{name}::{vn}")));
                            }
                            inner.push_str("})");
                            payload_arms.push_str(&format!("\"{key}\" => {{ {inner} }}\n"));
                        }
                    }
                }
                format!(
                    "match __v {{\n\
                     ::serde::Value::String(__s) => match __s.as_str() {{\n{unit_arms}\
                         other => Err(<__D::Error as ::serde::de::Error>::custom(\n\
                             format!(\"unknown {name} variant `{{}}`\", other))),\n\
                     }},\n\
                     ::serde::Value::Object(__m) if __m.len() == 1 => {{\n\
                         let (__k, __payload) = __m.into_iter().next().expect(\"len 1\");\n\
                         match __k.as_str() {{\n{payload_arms}\
                         other => Err(<__D::Error as ::serde::de::Error>::custom(\n\
                             format!(\"unknown {name} variant `{{}}`\", other))),\n\
                         }}\n\
                     }}\n\
                     other => Err(<__D::Error as ::serde::de::Error>::custom(\n\
                         format!(\"cannot deserialize {name} from {{:?}}\", other))),\n\
                     }}\n"
                )
            }
        }
    };
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
         fn deserialize<__D: ::serde::Deserializer<'de>>(__deserializer: __D) \
         -> Result<Self, __D::Error> {{\n\
         #[allow(unused_variables)]\n\
         let __v = __deserializer.take_value()?;\n{body}\n}}\n}}\n"
    )
}
