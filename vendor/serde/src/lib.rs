//! Offline vendored shim: the subset of the `serde` API this workspace
//! uses, implemented over an explicit JSON-like [`Value`] data model.
//!
//! Upstream serde's visitor architecture is far more general than this
//! workspace needs; every (de)serialization here ultimately targets JSON
//! via `serde_json`, so both traits funnel through [`Value`]:
//!
//! * [`Serialize`] hands a [`Value`] to a [`Serializer`];
//! * [`Deserialize`] pulls a [`Value`] out of a [`Deserializer`].
//!
//! Generic signatures (`S: Serializer`, `D: Deserializer<'de>`, associated
//! `Ok`/`Error` types, `de::Error::custom`) are preserved so hand-written
//! impls (e.g. `#[serde(with = "...")]` modules) compile unchanged. The
//! derive macros live in the companion `serde_derive` proc-macro crate and
//! are re-exported here.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// The JSON-like data model every (de)serialization funnels through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number (f64 is sufficient for this workspace's data: virtual
    /// times, counts, and small integer ids).
    Number(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object, insertion-ordered.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on objects (`None` on other variants or missing key).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Element lookup on arrays.
    pub fn get_index(&self, i: usize) -> Option<&Value> {
        match self {
            Value::Array(a) => a.get(i),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number as f64, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as u64, if this is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The number as i64, if integral.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) if n.fract() == 0.0 => Some(*n as i64),
            _ => None,
        }
    }

    /// The boolean, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        static NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        static NULL: Value = Value::Null;
        self.get_index(i).unwrap_or(&NULL)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

macro_rules! value_eq_num {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                self.as_f64() == Some(*other as f64)
            }
        }
    )*};
}
value_eq_num!(i32, i64, u32, u64, usize, f64);

/// Serialization/deserialization error: a plain message.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl Error {
    /// Build an error from any displayable message.
    pub fn msg(m: impl fmt::Display) -> Self {
        Error(m.to_string())
    }
}

/// Deserialization-side error support (upstream `serde::de`).
pub mod de {
    use std::fmt::Display;

    /// Errors constructible from a message (`serde::de::Error`).
    pub trait Error: Sized {
        /// Build an error carrying `msg`.
        fn custom<T: Display>(msg: T) -> Self;
    }

    impl Error for super::Error {
        fn custom<T: Display>(msg: T) -> Self {
            super::Error(msg.to_string())
        }
    }
}

/// Serialization-side error support (upstream `serde::ser`).
pub mod ser {
    use std::fmt::Display;

    /// Errors constructible from a message (`serde::ser::Error`).
    pub trait Error: Sized {
        /// Build an error carrying `msg`.
        fn custom<T: Display>(msg: T) -> Self;
    }

    impl Error for super::Error {
        fn custom<T: Display>(msg: T) -> Self {
            super::Error(msg.to_string())
        }
    }
}

/// A sink for one [`Value`] (upstream `serde::Serializer`, value-based).
pub trait Serializer: Sized {
    /// Successful output of the serializer.
    type Ok;
    /// Error type (must absorb shim-internal errors).
    type Error: From<Error>;

    /// Consume the serializer with the fully-built value.
    fn serialize_value(self, v: Value) -> Result<Self::Ok, Self::Error>;
}

/// A source of one [`Value`] (upstream `serde::Deserializer`).
pub trait Deserializer<'de>: Sized {
    /// Error type, constructible from a message.
    type Error: de::Error;

    /// Consume the deserializer, yielding its value.
    fn take_value(self) -> Result<Value, Self::Error>;
}

/// Serializer whose output is the [`Value`] itself (used internally and by
/// derive-generated code for `#[serde(with = "...")]` fields).
pub struct ValueSerializer;

impl Serializer for ValueSerializer {
    type Ok = Value;
    type Error = Error;
    fn serialize_value(self, v: Value) -> Result<Value, Error> {
        Ok(v)
    }
}

/// Deserializer over an owned [`Value`].
pub struct ValueDeserializer(pub Value);

impl<'de> Deserializer<'de> for ValueDeserializer {
    type Error = Error;
    fn take_value(self) -> Result<Value, Error> {
        Ok(self.0)
    }
}

/// Types serializable into the data model (upstream `serde::Serialize`).
pub trait Serialize {
    /// Serialize `self` into `serializer`.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// Types deserializable from the data model (upstream `serde::Deserialize`).
pub trait Deserialize<'de>: Sized {
    /// Deserialize a value out of `deserializer`.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// Convert any serializable value to a [`Value`].
pub fn to_value<T: Serialize + ?Sized>(v: &T) -> Result<Value, Error> {
    v.serialize(ValueSerializer)
}

/// Build any deserializable type from a [`Value`].
pub fn from_value<T: for<'de> Deserialize<'de>>(v: Value) -> Result<T, Error> {
    T::deserialize(ValueDeserializer(v))
}

// ---------------------------------------------------------------------------
// Serialize / Deserialize impls for the std types the workspace persists.
// ---------------------------------------------------------------------------

macro_rules! impl_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_value(Value::Number(*self as f64))
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                match d.take_value()? {
                    Value::Number(n) => Ok(n as $t),
                    other => Err(de::Error::custom(format!(
                        concat!("expected number for ", stringify!($t), ", got {:?}"),
                        other
                    ))),
                }
            }
        }
    )*};
}

impl_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::Bool(*self))
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Bool(b) => Ok(b),
            other => Err(de::Error::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::String(self.clone()))
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::String(self.to_string()))
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::String(s) => Ok(s),
            other => Err(de::Error::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        match self {
            None => s.serialize_value(Value::Null),
            Some(v) => {
                let inner = to_value(v)?;
                s.serialize_value(inner)
            }
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Null => Ok(None),
            v => T::deserialize(ValueDeserializer(v))
                .map(Some)
                .map_err(de::Error::custom),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(s)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let mut items = Vec::with_capacity(self.len());
        for v in self {
            items.push(to_value(v)?);
        }
        s.serialize_value(Value::Array(items))
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Array(items) => items
                .into_iter()
                .map(|v| T::deserialize(ValueDeserializer(v)).map_err(de::Error::custom))
                .collect(),
            other => Err(de::Error::custom(format!("expected array, got {other:?}"))),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let mut entries = Vec::with_capacity(self.len());
        for (k, v) in self {
            entries.push((k.clone(), to_value(v)?));
        }
        s.serialize_value(Value::Object(entries))
    }
}

impl<'de, V: Deserialize<'de>> Deserialize<'de> for BTreeMap<String, V> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Object(entries) => entries
                .into_iter()
                .map(|(k, v)| {
                    V::deserialize(ValueDeserializer(v))
                        .map(|v| (k, v))
                        .map_err(de::Error::custom)
                })
                .collect(),
            other => Err(de::Error::custom(format!("expected object, got {other:?}"))),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        // Deterministic output: sort keys.
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        let mut entries = Vec::with_capacity(self.len());
        for k in keys {
            entries.push((k.clone(), to_value(&self[k])?));
        }
        s.serialize_value(Value::Object(entries))
    }
}

impl<'de, V: Deserialize<'de>> Deserialize<'de> for HashMap<String, V> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Object(entries) => entries
                .into_iter()
                .map(|(k, v)| {
                    V::deserialize(ValueDeserializer(v))
                        .map(|v| (k, v))
                        .map_err(de::Error::custom)
                })
                .collect(),
            other => Err(de::Error::custom(format!("expected object, got {other:?}"))),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                let items = vec![$(to_value(&self.$n)?),+];
                s.serialize_value(Value::Array(items))
            }
        }
        impl<'de, $($t: Deserialize<'de>),+> Deserialize<'de> for ($($t,)+) {
            fn deserialize<__D: Deserializer<'de>>(d: __D) -> Result<Self, __D::Error> {
                match d.take_value()? {
                    Value::Array(items) => {
                        let n = [$($n),+].len();
                        if items.len() != n {
                            return Err(de::Error::custom(format!(
                                "expected {}-tuple, got {} items", n, items.len())));
                        }
                        let mut it = items.into_iter();
                        Ok(($(
                            $t::deserialize(ValueDeserializer(
                                it.next().expect("length checked")
                            )).map_err(de::Error::custom)?,
                        )+))
                    }
                    other => Err(de::Error::custom(format!(
                        "expected array for tuple, got {other:?}"))),
                }
            }
        }
    )*};
}

impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

impl Serialize for Value {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(self.clone())
    }
}

impl<'de> Deserialize<'de> for Value {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        d.take_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(from_value::<u64>(to_value(&7u64).unwrap()).unwrap(), 7);
        assert_eq!(from_value::<f64>(to_value(&1.5f64).unwrap()).unwrap(), 1.5);
        assert!(from_value::<bool>(to_value(&true).unwrap()).unwrap());
        assert_eq!(
            from_value::<String>(to_value("hi").unwrap()).unwrap(),
            "hi".to_string()
        );
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1usize, 2usize, 3u32), (4, 5, 6)];
        let back: Vec<(usize, usize, u32)> = from_value(to_value(&v).unwrap()).unwrap();
        assert_eq!(v, back);

        let mut m = BTreeMap::new();
        m.insert("a".to_string(), vec![1.0f64, 2.0]);
        let back: BTreeMap<String, Vec<f64>> = from_value(to_value(&m).unwrap()).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn option_null_round_trip() {
        let some: Option<u32> = Some(3);
        let none: Option<u32> = None;
        assert_eq!(
            from_value::<Option<u32>>(to_value(&some).unwrap()).unwrap(),
            some
        );
        assert_eq!(
            from_value::<Option<u32>>(to_value(&none).unwrap()).unwrap(),
            none
        );
    }

    #[test]
    fn value_indexing() {
        let v = Value::Object(vec![(
            "xs".into(),
            Value::Array(vec![Value::Number(1.0), Value::String("two".into())]),
        )]);
        assert_eq!(v["xs"][0], 1u64);
        assert_eq!(v["xs"][1], "two");
        assert!(v["missing"].is_null());
    }

    #[test]
    fn type_mismatch_errors() {
        assert!(from_value::<u64>(Value::String("x".into())).is_err());
        assert!(from_value::<Vec<u64>>(Value::Bool(true)).is_err());
    }
}
