//! Offline vendored shim: the subset of `proptest` this workspace uses.
//!
//! Differences from upstream, by design:
//! - cases are generated from a deterministic per-test seed (derived from
//!   the test name), so failures reproduce without a regressions file;
//! - no shrinking — a failing case reports its inputs via the panic from
//!   `prop_assert!`, which is enough at the input sizes used here;
//! - `prop_assume!` skips the current case rather than resampling.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// RNG handed to strategies; deterministic per (test name, case index).
pub type TestRng = StdRng;

/// Execution configuration; only the case count is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Build the RNG for one test case (used by the `proptest!` expansion so
/// user crates don't need `rand` in scope).
pub fn rng_for(seed: u64) -> TestRng {
    StdRng::seed_from_u64(seed)
}

/// FNV-1a, used to derive a stable seed from the test path.
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

pub mod strategy {
    use super::TestRng;
    use rand::Rng;

    /// A recipe for producing random values of one type.
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Object-safe view of [`Strategy`], for [`BoxedStrategy`] / unions.
    trait DynStrategy {
        type Value;
        fn sample_dyn(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy> DynStrategy for S {
        type Value = S::Value;
        fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.sample(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn DynStrategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.0.sample_dyn(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `s.prop_map(f)`.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

    impl<T> Union<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union(arms)
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.random_range(0..self.0.len());
            self.0[i].sample(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            rng.random_range(self.clone())
        }
    }

    impl Strategy for std::ops::Range<f32> {
        type Value = f32;
        fn sample(&self, rng: &mut TestRng) -> f32 {
            let unit: f64 = rng.random_range(0.0..1.0);
            self.start + (self.end - self.start) * unit as f32
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }

    /// Types with a canonical full-domain strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.random()
        }
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.random::<u64>() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.random()
        }
    }

    /// Full-domain strategy for `T`.
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod prop {
    pub mod collection {
        use crate::strategy::Strategy;
        use crate::TestRng;
        use rand::Rng;

        /// Length specification for [`vec()`]: a range or an exact size
        /// (upstream's `Into<SizeRange>`).
        pub trait IntoSizeRange {
            fn into_size_range(self) -> std::ops::Range<usize>;
        }

        impl IntoSizeRange for std::ops::Range<usize> {
            fn into_size_range(self) -> std::ops::Range<usize> {
                self
            }
        }

        impl IntoSizeRange for std::ops::RangeInclusive<usize> {
            fn into_size_range(self) -> std::ops::Range<usize> {
                *self.start()..self.end().saturating_add(1)
            }
        }

        impl IntoSizeRange for usize {
            fn into_size_range(self) -> std::ops::Range<usize> {
                self..self + 1
            }
        }

        /// `prop::collection::vec(element, len)`.
        pub struct VecStrategy<S> {
            element: S,
            len: std::ops::Range<usize>,
        }

        pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, len: L) -> VecStrategy<S> {
            VecStrategy {
                element,
                len: len.into_size_range(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = rng.random_range(self.len.clone());
                (0..n).map(|_| self.element.sample(rng)).collect()
            }
        }
    }
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Any, BoxedStrategy, Just, Strategy, Union};
    pub use crate::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Skip the current case when an assumption fails. (Upstream resamples;
/// the shim simply moves on to the next case.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// The test-defining macro. Each inner `fn name(arg in strategy, ...)`
/// becomes a `#[test]` that samples `cases` inputs deterministically.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs ($cfg); $($rest)*);
    };
    (@funcs ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let __seed = $crate::seed_for(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases as u64 {
                let mut __rng =
                    $crate::rng_for(__seed ^ __case.wrapping_mul(0x9e37_79b9_7f4a_7c15));
                $(
                    let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);
                )+
                let __one_case = move || $body;
                __one_case();
            }
        }
        $crate::proptest!(@funcs ($cfg); $($rest)*);
    };
    (@funcs ($cfg:expr);) => {};
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (u64, f64)> {
        (0u64..10, 0.0f64..1.0)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges respect their bounds.
        #[test]
        fn ranges_in_bounds(x in 3u64..9, y in -2.0f64..2.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn oneof_and_vec(v in prop::collection::vec(prop_oneof![Just(1u8), Just(2)], 0..5)) {
            prop_assert!(v.len() < 5);
            for x in v {
                prop_assert!(x == 1 || x == 2);
            }
        }

        #[test]
        fn map_and_tuple(p in pair().prop_map(|(a, b)| a as f64 + b), flip in any::<bool>()) {
            prop_assert!((0.0..11.0).contains(&p));
            prop_assume!(flip);
            prop_assert!(flip);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a: crate::TestRng = rand::SeedableRng::seed_from_u64(crate::seed_for("x"));
        let mut b: crate::TestRng = rand::SeedableRng::seed_from_u64(crate::seed_for("x"));
        let s = (0u64..1000, 0.0f64..1.0);
        for _ in 0..50 {
            assert_eq!(
                crate::strategy::Strategy::sample(&s, &mut a),
                crate::strategy::Strategy::sample(&s, &mut b)
            );
        }
    }
}
