//! Offline vendored shim: the subset of the `criterion` API this
//! workspace's benches use, backed by a plain wall-clock timing loop.
//!
//! No statistics beyond mean/min/max, no HTML reports, no comparison to
//! saved baselines — each benchmark warms up briefly, then runs
//! `sample_size` timed samples and prints mean time per iteration plus
//! derived throughput when one was declared.

use std::fmt::Write as _;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value sink, same contract as criterion's.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Declared work per iteration, used to derive throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Two-part benchmark identifier (`function_id/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new<S: Into<String>, P: std::fmt::Display>(function_id: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }

    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Times a closure over a fixed number of samples.
pub struct Bencher<'a> {
    samples: usize,
    /// Captured per-sample durations, one per sample.
    times: &'a mut Vec<Duration>,
}

impl Bencher<'_> {
    /// Run the routine once per sample (plus one warm-up call), timing
    /// each call individually.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(routine());
            self.times.push(t0.elapsed());
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<S, F>(&mut self, id: S, mut f: F) -> &mut Self
    where
        S: Into<String>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id, |b| f(b));
        self
    }

    pub fn bench_with_input<S, I, F>(&mut self, id: S, input: &I, mut f: F) -> &mut Self
    where
        S: IntoBenchmarkId,
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into_benchmark_id().id;
        self.run(&id, |b| f(b, input));
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let full = format!("{}/{}", self.name, id);
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        let mut times = Vec::with_capacity(self.sample_size);
        let mut b = Bencher {
            samples: self.sample_size,
            times: &mut times,
        };
        f(&mut b);
        self.criterion.report(&full, &times, self.throughput);
    }

    pub fn finish(&mut self) {}
}

/// Accepts both `&str`/`String` and [`BenchmarkId`] where criterion does.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            id: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

/// The top-level harness handle.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Honour `cargo bench -- <filter>`; ignore criterion's own flags.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "--bench" && a != "--test");
        Criterion { filter }
    }
}

impl Criterion {
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: 100,
        }
    }

    pub fn bench_function<S, F>(&mut self, id: S, f: F) -> &mut Self
    where
        S: Into<String>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut g = self.benchmark_group(id.clone());
        g.bench_function(id, f);
        self
    }

    fn report(&mut self, id: &str, times: &[Duration], throughput: Option<Throughput>) {
        if times.is_empty() {
            println!("{id:<48} (no samples)");
            return;
        }
        let total: Duration = times.iter().sum();
        let mean = total / times.len() as u32;
        let min = times.iter().min().copied().unwrap_or_default();
        let max = times.iter().max().copied().unwrap_or_default();
        let mut line = format!(
            "{id:<48} time: [{} {} {}]",
            fmt_duration(min),
            fmt_duration(mean),
            fmt_duration(max)
        );
        if let Some(tp) = throughput {
            let secs = mean.as_secs_f64().max(1e-12);
            match tp {
                Throughput::Elements(n) => {
                    let _ = write!(line, "  thrpt: {} elem/s", fmt_rate(n as f64 / secs));
                }
                Throughput::Bytes(n) => {
                    let _ = write!(line, "  thrpt: {}B/s", fmt_rate(n as f64 / secs));
                }
            }
        }
        println!("{line}");
    }

    pub fn final_summary(&mut self) {}
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos() as f64;
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn fmt_rate(r: f64) -> String {
    if r >= 1e9 {
        format!("{:.3} G", r / 1e9)
    } else if r >= 1e6 {
        format!("{:.3} M", r / 1e6)
    } else if r >= 1e3 {
        format!("{:.3} K", r / 1e3)
    } else {
        format!("{r:.1} ")
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $($group(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spin(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(5);
        group.throughput(Throughput::Elements(10));
        group.bench_function("sum", |b| b.iter(|| (0..10u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("scaled", 3), &3u64, |b, &k| {
            b.iter(|| (0..k).product::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, spin);

    #[test]
    fn harness_runs() {
        let mut c = Criterion { filter: None };
        benches(&mut c);
    }

    #[test]
    fn id_formatting() {
        assert_eq!(BenchmarkId::new("cholesky", 24).id, "cholesky/24");
        assert_eq!(BenchmarkId::from_parameter(7).id, "7");
    }
}
