//! `supersim` — command-line front end for the superscalar scheduling
//! simulator.
//!
//! ```text
//! supersim real    --alg cholesky --n 720 --nb 90 [--scheduler quark]
//!                  [--workers 1] [--seed 42] [--trace-out t.txt]
//!                  [--calibration-out cal.json]
//! supersim sim     --alg cholesky --n 2000 --nb 100 --calibration cal.json
//!                  [--workers 8] [--svg out.svg] [--chrome out.json]
//!                  [--overhead auto|SECONDS]
//! supersim predict --alg qr --n 1000 --nb 100     (real + calibrate + sim)
//! supersim cluster --alg cholesky --n 960 --nb 96 --nodes 4 [--workers 4]
//!                  [--interconnect zero|hockney|sharedlink] [--latency S]
//!                  [--bandwidth B/s] [--nic-lanes L]
//!                  [--placement square|row|col|PxQ] [--seed 42]
//!                  [--backend threaded|des]
//!                  [--trace-out t.txt] [--chrome t.json] [--svg t.svg]
//! supersim faults  [--alg cholesky|lu] [--n 512] [--nb 64] [--workers 8] [--seed 42]
//!                  [--straggler W:FROM:UNTIL:FACTOR[,..]]
//!                  [--straggler-node N:FROM:UNTIL:FACTOR[,..]]
//!                  [--kill-worker W:AT | --kill-node N:AT]
//!                  [--transient PERIOD:FAILURES:FRAC] [--transient-label dgemm]
//!                  [--degrade-link N:FROM:UNTIL:FACTOR[,..]]
//!                  [--backoff-base S] [--backoff-cap S] [--restart-delay S]
//!                  [--checkpoint INTERVAL:SNAPSHOT:RESTORE]
//!                  [--nodes N  + the cluster flags above for distributed runs]
//!                  [--backend threaded|des]
//!                  [--trace-out faulted.txt] [--clean-trace-out clean.txt]
//!                  [--svg t.svg] [--chrome t.json]
//! supersim sweep   [--alg cholesky,lu] [--n 512,1024 | --tiles 4,8] [--nb 32,64]
//!                  [--schedulers quark,starpu,ompss] [--workers 4,8]
//!                  [--nodes 0,4] [--interconnects zero,hockney,sharedlink]
//!                  [--latency S] [--bandwidth B/s] [--nic-lanes L]
//!                  [--plans clean,straggler,transient,kill] [--seeds 1,2,3]
//!                  [--backend auto|des|threaded] [--jobs J] [--overhead S]
//!                  [--calibration cal.json] [--autotune nb|scheduler|workers|nodes|interconnect]
//!                  [--out report.json] [--csv report.csv] [--counts-out counts.txt]
//!                  [--metrics-out m.json]
//! supersim serve   [--addr 127.0.0.1:8077] [--serve-workers W] [--queue Q]
//!                  [--timeout-ms MS] [--retry-after S]
//! supersim dag     --alg qr --nt 4 [--dot out.dot]
//! supersim metrics --workload cholesky [--n 512] [--nb 64] [--workers 8]
//!                  [--seed 42] [--mode both|targeted|broadcast]
//!                  [--backend threaded|des]
//!                  [--out m.json] [--chrome t.json] [--trace-out t.txt]
//!                  [--trace-stream spans.ndjson] [--stream-epoch 1.0]
//! supersim stream-bench [--tasks 10000] [--workers 64] [--window 1024]
//!                  [--mode streaming|buffered] [--epoch 0.05] [--seed 42]
//!                  [--out spans.ndjson|canonical.txt]
//! supersim trace-convert --in spans.ndjson [--out canonical.txt]
//! supersim info
//! ```
//!
//! `metrics` runs a synthetic simulated workload (lognormal kernel models,
//! no calibration file needed) once per requested TEQ wakeup mode and dumps
//! the merged [`supersim::metrics::MetricsSnapshot`] as JSON: TEQ traffic
//! and wait-latency histograms, engine counters, trace-shard occupancy.
//! `--chrome` adds counter tracks next to the task timeline;
//! `--trace-out` writes the (virtual-time, deterministic) text trace of
//! the last run, which CI diffs bit-for-bit across repeated runs.
//!
//! `--trace-stream` (on `metrics` and `cluster`) attaches a streaming
//! ndjson sink to the run's trace recorder: finalized spans are written
//! out at each virtual-time epoch boundary instead of buffering in
//! memory, so trace output stays bounded no matter how long the run is.
//! `trace-convert` rebuilds the canonical text projection from such a
//! file — byte-identical to `--trace-out` on the deterministic profiles,
//! which CI verifies. `stream-bench` replays a synthetic N-task stream on
//! the DES backend in either trace mode and reports peak RSS — the
//! datapoint behind the `trace_stream_rss` perf gate.
//!
//! `--backend des` (on `metrics`, `cluster` and `faults`) replays the same
//! scenario on the single-threaded pure-DES engine instead of the threaded
//! runtime: identical canonical traces for the Quark/cluster profiles, but
//! no host thread per simulated worker — this is how thousand-node
//! topologies stay simulable on one core.
//!
//! `sweep` expands the cartesian product of the comma-separated axis lists
//! into scenario cells and executes them across host threads over one
//! shared model database (DES backend wherever it replays deterministically,
//! unless `--backend` forces one engine). The merged report — per-cell
//! makespan / retries / transfer volume / degradation, Pareto frontier over
//! (makespan, slowdown, transfer bytes), optional `--autotune` argmin — is
//! deterministically ordered: byte-for-byte identical across runs and
//! across `--jobs` values (a CI gate). JSON goes to `--out` or stdout, the
//! human summary to stderr.
//!
//! `faults` runs the same scenario twice — clean and under the fault plan
//! assembled from the fault flags — and prints the
//! [`supersim::faults::DegradationReport`] as JSON (clean vs faulted
//! makespan, critical-path shift, per-fault attribution). Without
//! `--nodes` it mirrors the single-node `metrics` recipe; with `--nodes`
//! it mirrors the `cluster` recipe, so an *empty* plan reproduces those
//! commands' canonical traces bit-for-bit (a CI gate).

use std::collections::HashMap;
use std::process::exit;
use supersim::calibrate::{calibrate, estimate_overhead, CalibrationDb, FitOptions};
use supersim::core::{SimConfig, SimSession};
use supersim::prelude::*;
use supersim::trace::{chrome, svg, text};
use supersim::workloads::SharedTiles;

fn main() {
    // Invalid arguments exit 2 with a one-line stderr message — every
    // flag parser here follows that convention, but values that pass
    // parsing can still trip `assert!`s deep in the builder crates
    // (e.g. `--n 0`, inconsistent fault windows), which would otherwise
    // abort with a multi-line panic dump and exit 101. Route those
    // through the same convention: print the panic payload as a single
    // `error:` line and exit 2.
    std::panic::set_hook(Box::new(|info| {
        let msg = if let Some(s) = info.payload().downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = info.payload().downcast_ref::<String>() {
            s.clone()
        } else {
            "internal error".to_string()
        };
        eprintln!("error: {}", msg.lines().next().unwrap_or("internal error"));
    }));
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage_and_exit();
    }
    let cmd = args.remove(0);
    let opts = parse_flags(&args);
    let outcome = std::panic::catch_unwind(|| match cmd.as_str() {
        "real" => cmd_real(&opts),
        "sim" => cmd_sim(&opts),
        "predict" => cmd_predict(&opts),
        "cluster" => cmd_cluster(&opts),
        "faults" => cmd_faults(&opts),
        "sweep" => cmd_sweep(&opts),
        "serve" => cmd_serve(&opts),
        "dag" => cmd_dag(&opts),
        "metrics" => cmd_metrics(&opts),
        "stream-bench" => cmd_stream_bench(&opts),
        "trace-convert" => cmd_trace_convert(&opts),
        "info" => cmd_info(),
        "help" | "--help" | "-h" => usage_and_exit(),
        other => {
            eprintln!("unknown command: {other}");
            usage_and_exit();
        }
    });
    if outcome.is_err() {
        exit(2);
    }
}

fn usage_and_exit() -> ! {
    eprintln!(
        "supersim — parallel simulation of superscalar scheduling\n\
         \n\
         commands:\n\
         \x20 real     run an algorithm for real; verify, time, optionally calibrate\n\
         \x20 sim      simulate from a stored calibration\n\
         \x20 predict  real run + calibration + simulation, with comparison\n\
         \x20 cluster  simulate a distributed run over N nodes with an interconnect model\n\
         \x20 faults   clean-vs-faulted comparison under a deterministic fault plan\n\
         \x20 sweep    run a scenario matrix across host cores, merge one report\n\
         \x20 serve    resident HTTP daemon: /run, /sweep, /healthz, /metrics\n\
         \x20 dag      emit the task DAG of an algorithm\n\
         \x20 metrics  run a simulated workload and dump instrumentation as JSON\n\
         \x20 stream-bench  replay a synthetic task stream, report peak RSS per trace mode\n\
         \x20 trace-convert rebuild a canonical trace from streamed ndjson spans\n\
         \x20 info     list algorithms and scheduler profiles\n\
         \n\
         common flags: --alg cholesky|qr|lu  --scheduler quark|starpu|ompss\n\
         \x20             --n N  --nb NB  --workers W  --seed S\n\
         see the module docs for per-command flags"
    );
    exit(2)
}

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut map = HashMap::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if let Some(key) = a.strip_prefix("--") {
            let value = it.next().cloned().unwrap_or_else(|| {
                eprintln!("flag --{key} needs a value");
                exit(2)
            });
            map.insert(key.to_string(), value);
        } else {
            eprintln!("unexpected argument {a}");
            exit(2);
        }
    }
    map
}

fn get<T: std::str::FromStr>(opts: &HashMap<String, String>, key: &str, default: T) -> T {
    match opts.get(key) {
        None => default,
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("bad value for --{key}: {v}");
            exit(2)
        }),
    }
}

fn algorithm(opts: &HashMap<String, String>) -> Algorithm {
    match opts.get("alg").map(String::as_str) {
        Some("cholesky") | None => Algorithm::Cholesky,
        Some("qr") => Algorithm::Qr,
        Some("lu") => Algorithm::Lu,
        Some(other) => {
            eprintln!("unknown algorithm {other} (cholesky|qr|lu)");
            exit(2)
        }
    }
}

fn backend(opts: &HashMap<String, String>) -> supersim::workloads::Backend {
    match opts.get("backend") {
        None => supersim::workloads::Backend::Threaded,
        Some(v) => supersim::workloads::Backend::parse(v).unwrap_or_else(|| {
            eprintln!("unknown backend {v} (threaded|des)");
            exit(2)
        }),
    }
}

fn scheduler(opts: &HashMap<String, String>) -> SchedulerKind {
    match opts.get("scheduler").map(String::as_str) {
        Some("quark") | None => SchedulerKind::Quark,
        Some("starpu") => SchedulerKind::StarPu,
        Some("ompss") => SchedulerKind::OmpSs,
        Some(other) => {
            eprintln!("unknown scheduler {other} (quark|starpu|ompss)");
            exit(2)
        }
    }
}

/// `--trace-stream PATH [--stream-epoch S]`: attach a streaming ndjson
/// sink to the session's recorder, draining finalized spans at
/// virtual-time epoch boundaries instead of buffering the whole run.
fn attach_stream_sink(session: &SimSession, opts: &HashMap<String, String>) {
    if let Some(path) = opts.get("trace-stream") {
        let epoch = get(opts, "stream-epoch", 1.0f64);
        if !epoch.is_finite() || epoch <= 0.0 {
            eprintln!("--stream-epoch must be a positive number of virtual seconds");
            exit(2);
        }
        let sink = supersim::trace::sink::NdjsonSink::create(path).unwrap_or_else(|e| {
            eprintln!("cannot create {path}: {e}");
            exit(2)
        });
        session.trace_recorder().attach_sink(Box::new(sink), epoch);
        eprintln!("streaming spans to {path} (epoch {epoch}s)");
    }
}

/// `supersim trace-convert --in spans.ndjson [--out canonical.txt]`:
/// rebuild the canonical text projection from a streamed ndjson span
/// file — the bridge CI uses to byte-compare streamed and buffered runs.
fn cmd_trace_convert(opts: &HashMap<String, String>) {
    let input = opts.get("in").unwrap_or_else(|| {
        eprintln!("trace-convert needs --in spans.ndjson");
        exit(2)
    });
    let data = std::fs::read_to_string(input).unwrap_or_else(|e| {
        eprintln!("cannot read {input}: {e}");
        exit(2)
    });
    let mut trace = supersim::trace::sink::parse_ndjson(&data).unwrap_or_else(|e| {
        eprintln!("bad ndjson in {input}: {e}");
        exit(2)
    });
    trace.normalize();
    let canonical = trace.canonical();
    match opts.get("out") {
        Some(path) => {
            std::fs::write(path, &canonical).expect("write canonical trace");
            eprintln!("canonical trace ({} spans) written to {path}", trace.len());
        }
        None => print!("{canonical}"),
    }
}

/// A lazily generated synthetic task stream: a handful of fixed-duration
/// kernel classes, writes rolling over a bounded data window (so the
/// hazard tracker stays bounded too) and reads reaching 256 tasks back
/// (real RAW chains inside the scheduling window, parallelism width 256).
/// A pure function of the index — no per-task state survives generation.
fn synthetic_stream(tasks: u64) -> impl Iterator<Item = supersim::des::ReplayTask> {
    use supersim::des::{ReplayBody, ReplayTask};
    const CELLS: u64 = 4096;
    (0..tasks).map(|i| ReplayTask {
        label: format!("k{}", i % 7),
        accesses: vec![
            Access::write(DataId(i % CELLS)),
            Access::read(DataId((i + CELLS - 256) % CELLS)),
        ],
        priority: 0,
        pin: None,
        body: ReplayBody::Fixed {
            duration: 1e-4 * ((i % 9) + 1) as f64,
        },
    })
}

/// Peak resident set size (VmHWM) of this process, in KiB. Linux-only;
/// 0 where /proc is unavailable.
fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|status| {
            status
                .lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(0)
}

/// `supersim stream-bench`: replay a synthetic N-task stream on the DES
/// backend and report peak RSS as one JSON line — the memory story behind
/// the streaming trace pipeline. In `streaming` mode the recorder drains
/// to an ndjson sink (`--out`) at each epoch boundary; in `buffered` mode
/// it accumulates the whole trace and `--out` receives the canonical
/// projection. The span set is identical either way, which is what the CI
/// trace-streaming job verifies via `trace-convert` + `cmp`.
fn cmd_stream_bench(opts: &HashMap<String, String>) {
    use supersim::des::ReplayEngine;
    use supersim::trace::sink::{NdjsonSink, NullSink};
    use supersim::trace::TraceSink;

    let tasks = get(opts, "tasks", 10_000u64);
    let workers = get(opts, "workers", 64usize);
    let window = get(opts, "window", 1_024usize);
    let epoch = get(opts, "epoch", 0.05f64);
    let seed = get(opts, "seed", 42u64);
    let streaming = match opts.get("mode").map(String::as_str) {
        None | Some("streaming") => true,
        Some("buffered") => false,
        Some(other) => {
            eprintln!("unknown --mode {other} (streaming|buffered)");
            exit(2)
        }
    };
    if !epoch.is_finite() || epoch <= 0.0 {
        eprintln!("--epoch must be a positive number of virtual seconds");
        exit(2);
    }
    let session = SimSession::new(
        ModelRegistry::new(),
        SimConfig {
            seed,
            ..SimConfig::default()
        },
    );
    if streaming {
        let sink: Box<dyn TraceSink> = match opts.get("out") {
            Some(path) => Box::new(NdjsonSink::create(path).unwrap_or_else(|e| {
                eprintln!("cannot create {path}: {e}");
                exit(2)
            })),
            None => Box::new(NullSink),
        };
        session.trace_recorder().attach_sink(sink, epoch);
    }
    let mut cfg = RuntimeConfig::simple(workers);
    cfg.window = window;
    let engine = ReplayEngine::new(&cfg, session.clone()).expect("simple profile replays");
    let out = engine.run(synthetic_stream(tasks));
    if let Some(err) = session.trace_recorder().sink_error() {
        eprintln!("trace sink error: {err}");
        exit(2);
    }
    let trace = session.finish_trace(workers);
    if !streaming {
        if let Some(path) = opts.get("out") {
            std::fs::write(path, trace.canonical()).expect("write canonical trace");
        }
    }
    println!(
        "{{\"tasks\":{tasks},\"mode\":\"{}\",\"workers\":{workers},\"window\":{window},\"makespan\":{:?},\"completed\":{},\"resident_spans\":{},\"streamed_spans\":{},\"peak_rss_kb\":{}}}",
        if streaming { "streaming" } else { "buffered" },
        out.makespan,
        out.completed,
        trace.len(),
        session.trace_recorder().drained(),
        peak_rss_kb(),
    );
}

fn cmd_real(opts: &HashMap<String, String>) {
    let alg = algorithm(opts);
    let kind = scheduler(opts);
    let n = get(opts, "n", 720usize);
    let nb = get(opts, "nb", 90usize);
    let workers = get(opts, "workers", 1usize);
    let seed = get(opts, "seed", 42u64);

    println!(
        "real {} n={n} nb={nb} workers={workers} scheduler={}",
        alg.name(),
        kind.name()
    );
    let run = Scenario::new(alg)
        .scheduler(kind)
        .workers(workers)
        .n(n)
        .tile_size(nb)
        .seed(seed)
        .run_real();
    println!(
        "elapsed {:.4}s   {:.2} GFLOP/s   residual {:.2e}",
        run.seconds, run.gflops, run.residual
    );
    let stats = TraceStats::of(&run.trace);
    println!("{}", stats.report());

    if let Some(path) = opts.get("trace-out") {
        std::fs::write(path, text::write(&run.trace)).expect("write trace");
        println!("trace written to {path}");
    }
    if let Some(path) = opts.get("calibration-out") {
        let cal = calibrate(&run.trace, FitOptions::default());
        let db = CalibrationDb::new(
            format!("{} n={n} nb={nb} workers={workers}", alg.name()),
            n,
            nb,
            workers,
            cal,
        );
        db.save(std::path::Path::new(path))
            .expect("write calibration");
        println!("calibration written to {path}");
    }
}

fn cmd_sim(opts: &HashMap<String, String>) {
    let alg = algorithm(opts);
    let kind = scheduler(opts);
    let n = get(opts, "n", 2000usize);
    let nb = get(opts, "nb", 100usize);
    let workers = get(opts, "workers", 8usize);
    let seed = get(opts, "seed", 42u64);

    let Some(cal_path) = opts.get("calibration") else {
        eprintln!("sim requires --calibration FILE (produce one with `supersim real --calibration-out ...`)");
        exit(2)
    };
    let db = CalibrationDb::load(std::path::Path::new(cal_path)).unwrap_or_else(|e| {
        eprintln!("cannot load calibration: {e}");
        exit(2)
    });

    let overhead = match opts.get("overhead").map(String::as_str) {
        None => 0.0,
        Some("auto") => {
            eprintln!("--overhead auto requires a trace; use `predict` instead");
            exit(2)
        }
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("bad --overhead value {v}");
            exit(2)
        }),
    };

    let config = SimConfig {
        seed,
        overhead_per_task: overhead,
        ..SimConfig::default()
    };
    println!(
        "sim {} n={n} nb={nb} workers={workers} scheduler={} (calibration: {})",
        alg.name(),
        kind.name(),
        db.description
    );
    let run = Scenario::new(alg)
        .scheduler(kind)
        .workers(workers)
        .n(n)
        .tile_size(nb)
        .models(db.calibration.registry)
        .config(config)
        .run_sim();
    println!(
        "predicted {:.4}s   {:.2} GFLOP/s   (simulation wall time {:.4}s, {} tasks)",
        run.predicted_seconds,
        run.gflops,
        run.wall_seconds,
        run.trace.len()
    );

    if let Some(path) = opts.get("svg") {
        std::fs::write(path, svg::render_default(&run.trace)).expect("write svg");
        println!("trace SVG written to {path}");
    }
    if let Some(path) = opts.get("chrome") {
        std::fs::write(path, chrome::to_chrome_json(&run.trace)).expect("write chrome trace");
        println!("chrome trace written to {path}");
    }
}

fn cmd_predict(opts: &HashMap<String, String>) {
    let alg = algorithm(opts);
    let kind = scheduler(opts);
    let n = get(opts, "n", 720usize);
    let nb = get(opts, "nb", 90usize);
    let workers = get(opts, "workers", 1usize);
    let seed = get(opts, "seed", 42u64);
    let model_overhead = opts.get("overhead").map(String::as_str) == Some("auto");

    println!(
        "predict {} n={n} nb={nb} workers={workers} scheduler={}",
        alg.name(),
        kind.name()
    );
    let real = Scenario::new(alg)
        .scheduler(kind)
        .workers(workers)
        .n(n)
        .tile_size(nb)
        .seed(seed)
        .run_real();
    println!(
        "real:      {:.4}s  {:.2} GFLOP/s  residual {:.2e}",
        real.seconds, real.gflops, real.residual
    );
    let cal = calibrate(&real.trace, FitOptions::default());
    let overhead = if model_overhead {
        let est = estimate_overhead(&real.trace, 0.01)
            .map(|e| e.median_gap)
            .unwrap_or(0.0);
        println!(
            "overhead:  modeling {:.2} µs/task from trace gaps",
            est * 1e6
        );
        est
    } else {
        0.0
    };
    let sim = Scenario::new(alg)
        .scheduler(kind)
        .workers(workers)
        .n(n)
        .tile_size(nb)
        .models(cal.registry)
        .config(SimConfig {
            seed,
            overhead_per_task: overhead,
            ..SimConfig::default()
        })
        .run_sim();
    println!(
        "simulated: {:.4}s  {:.2} GFLOP/s  (sim wall {:.4}s)",
        sim.predicted_seconds, sim.gflops, sim.wall_seconds
    );
    let err = (sim.predicted_seconds - real.seconds) / real.seconds * 100.0;
    println!("error:     {err:+.2}%");
    let cmp = TraceComparison::compare(&real.trace, &sim.trace);
    println!("traces:    {}", cmp.summary());
}

/// Canonical virtual-time trace text: one line per task, sorted by task
/// id, no worker lanes. Worker placement is scheduler-race dependent, but
/// virtual times are seed-deterministic, so this format diffs bit-for-bit
/// across repeated runs (the CI determinism gates rely on that).
fn canonical_trace(trace: &supersim::trace::Trace) -> String {
    trace.canonical()
}

/// Simulate a distributed run: N nodes of W workers, owner-computes
/// block-cyclic placement, automatic transfer tasks costed by the chosen
/// interconnect model. Prints a JSON report to stdout; the human summary
/// goes to stderr.
fn cmd_cluster(opts: &HashMap<String, String>) {
    use std::sync::Arc;
    use supersim::cluster::{ClusterSpec, Hockney, Interconnect, SharedLink, ZeroCost};
    use supersim::trace::chrome::LaneGroup;

    let alg = match opts.get("alg").map(String::as_str) {
        Some("cholesky") | None => Algorithm::Cholesky,
        Some("lu") => Algorithm::Lu,
        Some(other) => {
            eprintln!("unknown cluster algorithm {other} (cholesky|lu; distributed QR is not implemented)");
            exit(2)
        }
    };
    let n = get(opts, "n", 960usize);
    let nb = get(opts, "nb", 96usize);
    let nodes = get(opts, "nodes", 4usize);
    let workers = get(opts, "workers", 4usize);
    let seed = get(opts, "seed", 42u64);
    let latency = get(opts, "latency", 1e-5f64);
    let bandwidth = get(opts, "bandwidth", 1e10f64);
    let interconnect: Arc<dyn Interconnect> = match opts.get("interconnect").map(String::as_str) {
        Some("zero") => Arc::new(ZeroCost),
        Some("hockney") | None => Arc::new(Hockney::new(latency, bandwidth)),
        Some("sharedlink") => Arc::new(SharedLink::new(latency, bandwidth)),
        Some(other) => {
            eprintln!("unknown interconnect {other} (zero|hockney|sharedlink)");
            exit(2)
        }
    };
    let nic_lanes = get(opts, "nic-lanes", interconnect.default_nic_lanes());
    let placement = match opts.get("placement").map(String::as_str) {
        None | Some("square") => BlockCyclic::square(nodes),
        Some("row") => BlockCyclic::row(nodes),
        Some("col") => BlockCyclic::col(nodes),
        Some(grid) => {
            let parts: Vec<usize> = grid
                .split('x')
                .map(|p| {
                    p.parse().unwrap_or_else(|_| {
                        eprintln!("bad --placement {grid} (square|row|col|PxQ)");
                        exit(2)
                    })
                })
                .collect();
            if parts.len() != 2 || parts[0] * parts[1] != nodes {
                eprintln!("--placement {grid} must be PxQ with P*Q = {nodes} nodes");
                exit(2);
            }
            BlockCyclic::new(parts[0], parts[1])
        }
    };

    // Built-in lognormal kernel models with a warm-up factor — no
    // calibration file needed, and deterministic for the given seed (the
    // plan-based protocol keys durations by submission rank, not worker).
    let mut models = ModelRegistry::new();
    for l in alg.labels() {
        models.insert(
            *l,
            KernelModel::with_warmup(Dist::log_normal(-6.0, 0.3).unwrap(), 1.5),
        );
    }
    let session = SimSession::new(
        models,
        SimConfig {
            seed,
            ..SimConfig::default()
        },
    );
    let backend = backend(opts);
    let spec = ClusterSpec::new(nodes, workers).with_nic_lanes(nic_lanes);
    eprintln!(
        "cluster {} n={n} nb={nb} nodes={nodes} workers={workers}/node nic-lanes={nic_lanes} \
         interconnect={} placement={} backend={}",
        alg.name(),
        interconnect.name(),
        placement.name(),
        backend.name()
    );
    attach_stream_sink(&session, opts);
    let run = Scenario::new(alg)
        .n(n)
        .tile_size(nb)
        .session(session)
        .cluster(spec.clone())
        .interconnect(interconnect)
        .placement(Arc::new(placement))
        .backend(backend)
        .run_cluster();
    eprintln!(
        "predicted {:.4}s   {:.2} GFLOP/s   {} compute tasks, {} transfers ({} bytes)   (wall {:.4}s)",
        run.predicted_seconds,
        run.gflops,
        run.compute_tasks,
        run.transfers,
        run.transfer_bytes,
        run.wall_seconds
    );

    // The vendored serde derive does not support generic (lifetime-
    // parameterised) structs, so the report owns its data.
    #[derive(serde::Serialize)]
    struct ClusterReport {
        algorithm: String,
        n: usize,
        nb: usize,
        nodes: usize,
        workers_per_node: usize,
        nic_lanes_per_node: usize,
        interconnect: String,
        placement: String,
        seed: u64,
        backend: String,
        compute_tasks: u64,
        transfers: u64,
        transfer_bytes: u64,
        node_transfers: Vec<u64>,
        node_bytes: Vec<u64>,
        nic_busy_seconds: Vec<f64>,
        node_owned_bytes: Vec<u64>,
        predicted_seconds: f64,
        gflops: f64,
        wall_seconds: f64,
    }
    let report = ClusterReport {
        algorithm: alg.name().to_string(),
        n,
        nb,
        nodes,
        workers_per_node: workers,
        nic_lanes_per_node: nic_lanes,
        interconnect: run.interconnect.to_string(),
        placement: run.placement.clone(),
        seed,
        backend: backend.name().to_string(),
        compute_tasks: run.compute_tasks,
        transfers: run.transfers,
        transfer_bytes: run.transfer_bytes,
        node_transfers: run.node_transfers.clone(),
        node_bytes: run.node_bytes.clone(),
        nic_busy_seconds: run.nic_busy_seconds.clone(),
        node_owned_bytes: run.node_owned_bytes.clone(),
        predicted_seconds: run.predicted_seconds,
        gflops: run.gflops,
        wall_seconds: run.wall_seconds,
    };
    println!(
        "{}",
        serde_json::to_string_pretty(&report).expect("serialize report")
    );

    if let Some(path) = opts.get("trace-out") {
        std::fs::write(path, canonical_trace(&run.trace)).expect("write trace");
        eprintln!("canonical trace written to {path}");
    }
    if let Some(path) = opts.get("chrome") {
        let names = spec.lane_names();
        let lanes: Vec<LaneGroup> = (0..spec.total_workers())
            .map(|w| {
                let node = match spec.lane_of(w) {
                    supersim::cluster::Lane::Compute { node, .. } => node,
                    supersim::cluster::Lane::Nic { node, .. } => node,
                };
                LaneGroup {
                    pid: node,
                    process_name: format!("node {node}"),
                    thread_name: names[w].clone(),
                }
            })
            .collect();
        std::fs::write(path, chrome::to_chrome_json_grouped(&run.trace, &lanes))
            .expect("write chrome trace");
        eprintln!("chrome trace written to {path}");
    }
    if let Some(path) = opts.get("svg") {
        let svg_opts = svg::SvgOptions {
            title: format!(
                "{} n={n} nb={nb}: {} nodes x {} workers over {}",
                alg.name(),
                nodes,
                workers,
                run.interconnect
            ),
            lane_names: spec.lane_names(),
            ..Default::default()
        };
        std::fs::write(path, svg::render(&run.trace, &svg_opts)).expect("write svg");
        eprintln!("trace SVG written to {path}");
    }
}

/// Parse a fault flag holding a comma-separated list of `:`-separated
/// numeric tuples, e.g. `--straggler 0:0.0:0.5:2.0,3:0.1:0.2:4.0`.
fn fault_tuples(opts: &HashMap<String, String>, key: &str, arity: usize) -> Vec<Vec<f64>> {
    let Some(v) = opts.get(key) else {
        return Vec::new();
    };
    v.split(',')
        .map(|item| {
            let parts: Vec<f64> = item
                .split(':')
                .map(|p| {
                    p.parse().unwrap_or_else(|_| {
                        eprintln!(
                            "bad --{key} entry {item:?} (need {arity} ':'-separated numbers)"
                        );
                        exit(2)
                    })
                })
                .collect();
            if parts.len() != arity {
                eprintln!("bad --{key} entry {item:?} (need {arity} ':'-separated numbers)");
                exit(2);
            }
            parts
        })
        .collect()
}

/// Assemble a [`FaultPlan`] from the `faults` command's flags.
fn fault_plan(opts: &HashMap<String, String>) -> FaultPlan {
    let mut plan = FaultPlan::new();
    for t in fault_tuples(opts, "straggler", 4) {
        plan = plan.straggler_worker(t[0] as usize, t[1], t[2], t[3]);
    }
    for t in fault_tuples(opts, "straggler-node", 4) {
        plan = plan.straggler_node(t[0] as usize, t[1], t[2], t[3]);
    }
    for t in fault_tuples(opts, "degrade-link", 4) {
        plan = plan.degrade_link(t[0] as usize, t[1], t[2], t[3]);
    }
    for t in fault_tuples(opts, "transient", 3) {
        let (period, failures, frac) = (t[0] as u64, t[1] as u32, t[2]);
        plan = match opts.get("transient-label") {
            Some(label) => plan.transient_for(label.clone(), period, failures, frac),
            None => plan.transient(period, failures, frac),
        };
    }
    let kills_w = fault_tuples(opts, "kill-worker", 2);
    let kills_n = fault_tuples(opts, "kill-node", 2);
    if kills_w.len() + kills_n.len() > 1 {
        eprintln!("at most one permanent failure (--kill-worker or --kill-node) per plan");
        exit(2);
    }
    for t in kills_w {
        plan = plan.kill_worker(t[0] as usize, t[1]);
    }
    for t in kills_n {
        plan = plan.kill_node(t[0] as usize, t[1]);
    }

    let mut recovery = RecoveryPolicy::default();
    recovery.backoff_base = get(opts, "backoff-base", recovery.backoff_base);
    recovery.backoff_cap = get(opts, "backoff-cap", recovery.backoff_cap);
    recovery.restart_delay = get(opts, "restart-delay", recovery.restart_delay);
    if let Some(cp) = opts.get("checkpoint") {
        let parts: Vec<f64> = cp
            .split(':')
            .map(|p| {
                p.parse().unwrap_or_else(|_| {
                    eprintln!("bad --checkpoint {cp:?} (need INTERVAL:SNAPSHOT:RESTORE)");
                    exit(2)
                })
            })
            .collect();
        if parts.len() != 3 {
            eprintln!("bad --checkpoint {cp:?} (need INTERVAL:SNAPSHOT:RESTORE)");
            exit(2);
        }
        recovery.checkpoint = Some(CheckpointPolicy {
            interval: parts[0],
            snapshot_cost: parts[1],
            restore_cost: parts[2],
        });
    }
    plan.with_recovery(recovery)
}

/// Clean-vs-faulted comparison under a deterministic fault plan. Without
/// `--nodes` the scenario mirrors the single-node `metrics` recipe
/// (synthetic lognormal models, n=512 nb=64 workers=8); with `--nodes` it
/// mirrors the `cluster` recipe (warm-up models, interconnect flags), so
/// an empty plan reproduces those commands' canonical traces bit-for-bit.
/// The [`supersim::faults::DegradationReport`] goes to stdout as JSON,
/// the human summary to stderr.
fn cmd_faults(opts: &HashMap<String, String>) {
    use std::sync::Arc;
    use supersim::cluster::{ClusterSpec, Hockney, Interconnect, SharedLink, ZeroCost};

    let cluster_mode = opts.contains_key("nodes");
    let alg = match opts.get("alg").map(String::as_str) {
        Some("cholesky") | None => Algorithm::Cholesky,
        Some("qr") if !cluster_mode => Algorithm::Qr,
        Some("lu") => Algorithm::Lu,
        Some(other) => {
            eprintln!(
                "unknown faults algorithm {other} ({})",
                if cluster_mode {
                    "cholesky|lu with --nodes"
                } else {
                    "cholesky|qr|lu"
                }
            );
            exit(2)
        }
    };
    let plan = fault_plan(opts);
    let seed = get(opts, "seed", 42u64);
    let backend = backend(opts);

    let (out, label) = if cluster_mode {
        let n = get(opts, "n", 960usize);
        let nb = get(opts, "nb", 96usize);
        let nodes = get(opts, "nodes", 4usize);
        let workers = get(opts, "workers", 4usize);
        let latency = get(opts, "latency", 1e-5f64);
        let bandwidth = get(opts, "bandwidth", 1e10f64);
        let interconnect: Arc<dyn Interconnect> = match opts.get("interconnect").map(String::as_str)
        {
            Some("zero") => Arc::new(ZeroCost),
            Some("hockney") | None => Arc::new(Hockney::new(latency, bandwidth)),
            Some("sharedlink") => Arc::new(SharedLink::new(latency, bandwidth)),
            Some(other) => {
                eprintln!("unknown interconnect {other} (zero|hockney|sharedlink)");
                exit(2)
            }
        };
        let nic_lanes = get(opts, "nic-lanes", interconnect.default_nic_lanes());
        let mut models = ModelRegistry::new();
        for l in alg.labels() {
            models.insert(
                *l,
                KernelModel::with_warmup(Dist::log_normal(-6.0, 0.3).unwrap(), 1.5),
            );
        }
        let spec = ClusterSpec::new(nodes, workers).with_nic_lanes(nic_lanes);
        let label = format!(
            "faults {} n={n} nb={nb} nodes={nodes} workers={workers}/node interconnect={} backend={}",
            alg.name(),
            interconnect.name(),
            backend.name()
        );
        let out = Scenario::new(alg)
            .n(n)
            .tile_size(nb)
            .models(models)
            .config(SimConfig {
                seed,
                ..SimConfig::default()
            })
            .cluster(spec)
            .interconnect(interconnect)
            .placement(Arc::new(BlockCyclic::square(nodes)))
            .backend(backend)
            .faults(plan)
            .run_faults();
        (out, label)
    } else {
        let kind = scheduler(opts);
        if let Err(e) = backend.supports(kind) {
            eprintln!("{e}");
            exit(2)
        }
        let n = get(opts, "n", 512usize);
        let nb = get(opts, "nb", 64usize);
        let workers = get(opts, "workers", 8usize);
        let mut models = ModelRegistry::new();
        for l in alg.labels() {
            models.insert(*l, KernelModel::new(Dist::log_normal(-6.0, 0.3).unwrap()));
        }
        let label = format!(
            "faults {} n={n} nb={nb} workers={workers} scheduler={} backend={}",
            alg.name(),
            kind.name(),
            backend.name()
        );
        let out = Scenario::new(alg)
            .scheduler(kind)
            .workers(workers)
            .n(n)
            .tile_size(nb)
            .models(models)
            .config(SimConfig {
                seed,
                ..SimConfig::default()
            })
            .backend(backend)
            .faults(plan)
            .run_faults();
        (out, label)
    };

    let r = &out.report;
    eprintln!("{label}");
    eprintln!(
        "clean {:.4}s -> faulted {:.4}s  (x{:.3} slowdown)",
        r.clean_makespan, r.faulted_makespan, r.slowdown
    );
    eprintln!(
        "retries {}  restarted tasks {}  aborted {:.4}s  lost {:.4}s  checkpoint overhead {:.4}s",
        r.retries,
        r.restarted_tasks,
        r.aborted_virtual_seconds,
        r.lost_virtual_seconds,
        r.checkpoint_overhead
    );
    if r.critical_lane_clean != r.critical_lane_faulted {
        eprintln!(
            "critical path moved: lane {} -> lane {}",
            r.critical_lane_clean, r.critical_lane_faulted
        );
    }
    for f in &r.per_fault {
        eprintln!(
            "  {:<40} makespan {:.4}s  (x{:.3})",
            f.fault, f.makespan, f.slowdown
        );
    }
    println!(
        "{}",
        serde_json::to_string_pretty(r).expect("serialize report")
    );

    if let Some(path) = opts.get("trace-out") {
        std::fs::write(path, canonical_trace(&out.trace)).expect("write trace");
        eprintln!("faulted canonical trace written to {path}");
    }
    if let Some(path) = opts.get("clean-trace-out") {
        std::fs::write(path, canonical_trace(&out.clean_trace)).expect("write trace");
        eprintln!("clean canonical trace written to {path}");
    }
    if let Some(path) = opts.get("svg") {
        std::fs::write(path, svg::render_default(&out.trace)).expect("write svg");
        eprintln!("faulted trace SVG written to {path}");
    }
    if let Some(path) = opts.get("chrome") {
        std::fs::write(path, chrome::to_chrome_json(&out.trace)).expect("write chrome trace");
        eprintln!("faulted chrome trace written to {path}");
    }
    #[cfg(feature = "metrics")]
    if let Some(path) = opts.get("metrics-out") {
        let mut snap = supersim::metrics::MetricsSnapshot::default();
        r.publish_metrics(&mut snap);
        std::fs::write(path, snap.to_json()).expect("write metrics");
        eprintln!("fault metrics written to {path}");
    }
}

/// Parse a comma-separated list flag; `None` when the flag is absent.
fn parse_list<T: std::str::FromStr>(opts: &HashMap<String, String>, key: &str) -> Option<Vec<T>> {
    opts.get(key).map(|v| {
        v.split(',')
            .map(|p| {
                p.trim().parse().unwrap_or_else(|_| {
                    eprintln!("bad value in --{key}: {p}");
                    exit(2)
                })
            })
            .collect()
    })
}

/// Expand and execute a scenario matrix; see the module docs for flags.
fn cmd_sweep(opts: &HashMap<String, String>) {
    use supersim::workloads::sweep::{
        FaultPlanSpec, InterconnectSpec, SweepBackend, SweepModels, SweepSpec,
    };

    let defaults = SweepSpec::default();
    let algorithms = opts.get("alg").map_or(defaults.algorithms.clone(), |v| {
        v.split(',')
            .map(|name| match name.trim() {
                "cholesky" => Algorithm::Cholesky,
                "qr" => Algorithm::Qr,
                "lu" => Algorithm::Lu,
                other => {
                    eprintln!("unknown algorithm {other} (cholesky|qr|lu)");
                    exit(2)
                }
            })
            .collect()
    });
    let schedulers = opts
        .get("schedulers")
        .map_or(defaults.schedulers.clone(), |v| {
            v.split(',')
                .map(|name| match name.trim() {
                    "quark" => SchedulerKind::Quark,
                    "starpu" => SchedulerKind::StarPu,
                    "ompss" => SchedulerKind::OmpSs,
                    other => {
                        eprintln!("unknown scheduler {other} (quark|starpu|ompss)");
                        exit(2)
                    }
                })
                .collect()
        });
    let latency = get(opts, "latency", 1e-5f64);
    let bandwidth = get(opts, "bandwidth", 1e10f64);
    let interconnects = opts
        .get("interconnects")
        .map_or(defaults.interconnects.clone(), |v| {
            v.split(',')
                .map(|name| {
                    InterconnectSpec::parse(name.trim(), latency, bandwidth).unwrap_or_else(|| {
                        eprintln!("unknown interconnect {name} (zero|hockney|sharedlink)");
                        exit(2)
                    })
                })
                .collect()
        });
    let plans = opts.get("plans").map_or(defaults.plans.clone(), |v| {
        v.split(',')
            .map(|name| {
                FaultPlanSpec::preset(name.trim()).unwrap_or_else(|| {
                    eprintln!("unknown fault plan {name} (clean|straggler|transient|kill)");
                    exit(2)
                })
            })
            .collect()
    });
    let backend = opts.get("backend").map_or(defaults.backend, |v| {
        SweepBackend::parse(v).unwrap_or_else(|| {
            eprintln!("unknown sweep backend {v} (auto|des|threaded)");
            exit(2)
        })
    });
    // One shared read-only model database for every cell: either loaded
    // from a calibration file or the synthetic default.
    let models = match opts.get("calibration") {
        None => defaults.models.clone(),
        Some(path) => {
            let db = CalibrationDb::load(std::path::Path::new(path)).unwrap_or_else(|e| {
                eprintln!("cannot load calibration: {e}");
                exit(2)
            });
            eprintln!("sweep models: {}", db.description);
            SweepModels::Shared(db.shared_models())
        }
    };

    let spec = SweepSpec {
        algorithms,
        orders: parse_list(opts, "n").unwrap_or_default(),
        tile_counts: parse_list(opts, "tiles").unwrap_or(defaults.tile_counts.clone()),
        tile_sizes: parse_list(opts, "nb").unwrap_or(defaults.tile_sizes.clone()),
        schedulers,
        worker_counts: parse_list(opts, "workers").unwrap_or(defaults.worker_counts.clone()),
        node_counts: parse_list(opts, "nodes").unwrap_or(defaults.node_counts.clone()),
        interconnects,
        plans,
        seeds: parse_list(opts, "seeds").unwrap_or(defaults.seeds.clone()),
        backend,
        models,
        overhead_per_task: get(opts, "overhead", 0.0f64),
        nic_lanes: parse_list(opts, "nic-lanes").map(|v: Vec<usize>| v[0]),
        autotune: opts.get("autotune").cloned(),
    };

    let cells = spec.cells().len();
    let jobs = get(opts, "jobs", 0usize);
    eprintln!(
        "sweep: {cells} cells, jobs={}",
        if jobs == 0 {
            "auto".to_string()
        } else {
            jobs.to_string()
        }
    );
    let outcome = spec.run(jobs);
    eprintln!(
        "swept {} cells on {} threads in {:.3}s ({:.1} cells/s); Pareto frontier: {} cells",
        outcome.report.cells_total,
        outcome.jobs,
        outcome.wall_seconds,
        outcome.cells_per_sec(),
        outcome.report.pareto.frontier.len()
    );
    if let Some(tune) = &outcome.report.autotune {
        eprintln!("autotune: best {} = {}", tune.axis, tune.best);
    }

    let json = outcome.report.to_json();
    match opts.get("out") {
        Some(path) => {
            std::fs::write(path, &json).expect("write report");
            eprintln!("merged report written to {path}");
        }
        None => println!("{json}"),
    }
    if let Some(path) = opts.get("csv") {
        std::fs::write(path, outcome.report.to_csv()).expect("write csv");
        eprintln!("csv report written to {path}");
    }
    if let Some(path) = opts.get("counts-out") {
        std::fs::write(path, outcome.report.counts()).expect("write counts");
        eprintln!("rank-keyed counts written to {path}");
    }
    #[cfg(feature = "metrics")]
    if let Some(path) = opts.get("metrics-out") {
        std::fs::write(path, outcome.metrics.to_json()).expect("write metrics");
        eprintln!("merged metrics written to {path}");
    }
}

/// Start the resident simulation service (see DESIGN.md §11). Blocks
/// until `POST /shutdown`.
fn cmd_serve(opts: &HashMap<String, String>) {
    let config = supersim::serve::ServeConfig {
        addr: opts
            .get("addr")
            .cloned()
            .unwrap_or_else(|| "127.0.0.1:8077".to_string()),
        workers: get(opts, "serve-workers", 0usize),
        queue: get(opts, "queue", 4usize),
        default_timeout_ms: get(opts, "timeout-ms", 30_000u64),
        retry_after_secs: get(opts, "retry-after", 1u64),
    };
    let addr = config.addr.clone();
    let server = supersim::serve::Server::bind(config).unwrap_or_else(|e| {
        eprintln!("cannot bind {addr}: {e}");
        exit(2)
    });
    eprintln!(
        "serving on http://{}  (POST /run, POST /sweep, GET /healthz, GET /metrics, POST /shutdown)",
        server.local_addr()
    );
    server.run();
}

fn cmd_dag(opts: &HashMap<String, String>) {
    let alg = algorithm(opts);
    let nt = get(opts, "nt", 4usize);
    let a = SharedTiles::layout_only(nt * 8, nt * 8, 8, 0);
    let t = SharedTiles::layout_only(nt * 8, nt * 8, 8, a.id_range().1);
    let mut builder = supersim::dag::DagBuilder::new();
    match alg {
        Algorithm::Cholesky => {
            for task in supersim::tile::cholesky::task_stream(nt) {
                builder.submit(
                    task.label(),
                    1.0,
                    &supersim::workloads::cholesky::accesses(&a, task),
                );
            }
        }
        Algorithm::Qr => {
            for task in supersim::tile::qr::task_stream(nt) {
                builder.submit(
                    task.label(),
                    1.0,
                    &supersim::workloads::qr::accesses(&a, &t, task),
                );
            }
        }
        Algorithm::Lu => {
            for task in supersim::tile::lu::task_stream(nt) {
                builder.submit(
                    task.label(),
                    1.0,
                    &supersim::workloads::lu::accesses(&a, task),
                );
            }
        }
    }
    let g = builder.finish();
    let profile = supersim::dag::analysis::profile(&g);
    println!(
        "{} DAG ({nt}x{nt} tiles): {} tasks, {} edges ({} dependences), depth {}, max width {}, avg parallelism {:.2}",
        alg.name(),
        profile.tasks,
        profile.edges,
        profile.dependences,
        profile.depth,
        profile.max_width,
        profile.avg_parallelism
    );
    if let Some(path) = opts.get("dot") {
        std::fs::write(path, supersim::dag::dot::to_dot_default(&g)).expect("write dot");
        println!("DOT written to {path}");
    }
}

/// Run a synthetic simulated workload once per requested TEQ wakeup mode,
/// publish every instrumented component into one snapshot, and dump it.
#[cfg(feature = "metrics")]
fn cmd_metrics(opts: &HashMap<String, String>) {
    use supersim::core::WakeupMode;
    use supersim::metrics::MetricsSnapshot;

    let alg = match opts
        .get("workload")
        .or_else(|| opts.get("alg"))
        .map(String::as_str)
    {
        Some("cholesky") | None => Algorithm::Cholesky,
        Some("qr") => Algorithm::Qr,
        Some("lu") => Algorithm::Lu,
        Some("cluster-cholesky") => {
            cmd_metrics_cluster(opts, Algorithm::Cholesky);
            return;
        }
        Some("cluster-lu") => {
            cmd_metrics_cluster(opts, Algorithm::Lu);
            return;
        }
        Some(other) => {
            eprintln!("unknown workload {other} (cholesky|qr|lu|cluster-cholesky|cluster-lu)");
            exit(2)
        }
    };
    let kind = scheduler(opts);
    let n = get(opts, "n", 512usize);
    let nb = get(opts, "nb", 64usize);
    let workers = get(opts, "workers", 8usize);
    let seed = get(opts, "seed", 42u64);
    let modes: &[WakeupMode] = match opts.get("mode").map(String::as_str) {
        None | Some("both") => &[WakeupMode::Targeted, WakeupMode::Broadcast],
        Some("targeted") => &[WakeupMode::Targeted],
        Some("broadcast") => &[WakeupMode::Broadcast],
        Some(other) => {
            eprintln!("unknown --mode {other} (both|targeted|broadcast)");
            exit(2)
        }
    };

    let backend = backend(opts);
    if let Err(e) = backend.supports(kind) {
        eprintln!("{e}");
        exit(2)
    }
    let mut snap = MetricsSnapshot::default();
    let mut last_trace = None;
    for &mode in modes {
        let mut models = ModelRegistry::new();
        for l in alg.labels() {
            models.insert(*l, KernelModel::new(Dist::log_normal(-6.0, 0.3).unwrap()));
        }
        let session = SimSession::new(
            models,
            SimConfig {
                seed,
                wakeup_mode: mode,
                ..SimConfig::default()
            },
        );
        attach_stream_sink(&session, opts);
        let run = Scenario::new(alg)
            .scheduler(kind)
            .workers(workers)
            .n(n)
            .tile_size(nb)
            .session(session.clone())
            .backend(backend)
            .run_sim();
        session.publish_metrics(&mut snap);
        run.stats.publish_metrics(&mut snap);
        // In streaming mode the finished trace is empty by design — the
        // spans went to the sink — so count resident + drained.
        eprintln!(
            "{mode:?} wakeups: {} tasks, predicted {:.4}s (wall {:.4}s)",
            run.trace.len() as u64 + session.trace_recorder().drained(),
            run.predicted_seconds,
            run.wall_seconds
        );
        last_trace = Some(run.trace);
    }
    // All engine counters (sim.*, des.*, trace.*) are per-session and
    // arrive via session.publish_metrics above — nothing process-global
    // remains to fold in.
    let json = snap.to_json();
    println!("{json}");
    if let Some(path) = opts.get("out") {
        std::fs::write(path, &json).expect("write metrics");
        eprintln!("metrics written to {path}");
    }
    let trace = last_trace.expect("at least one mode ran");
    if let Some(path) = opts.get("chrome") {
        std::fs::write(path, chrome::to_chrome_json_with_metrics(&trace, &snap))
            .expect("write chrome trace");
        eprintln!("chrome trace written to {path}");
    }
    if let Some(path) = opts.get("trace-out") {
        std::fs::write(path, canonical_trace(&trace)).expect("write trace");
        eprintln!("canonical trace written to {path}");
    }
}

/// `supersim metrics --workload cluster-cholesky|cluster-lu`: run a
/// distributed simulated workload and dump cluster instrumentation
/// (transfer counts/bytes, per-node NIC busy time) alongside the session
/// and engine metrics.
#[cfg(feature = "metrics")]
fn cmd_metrics_cluster(opts: &HashMap<String, String>, alg: Algorithm) {
    use std::sync::Arc;
    use supersim::cluster::{ClusterSpec, Hockney};
    use supersim::metrics::MetricsSnapshot;

    let n = get(opts, "n", 480usize);
    let nb = get(opts, "nb", 60usize);
    let nodes = get(opts, "nodes", 4usize);
    let workers = get(opts, "workers", 2usize);
    let seed = get(opts, "seed", 42u64);

    let mut models = ModelRegistry::new();
    for l in alg.labels() {
        models.insert(
            *l,
            KernelModel::with_warmup(Dist::log_normal(-6.0, 0.3).unwrap(), 1.5),
        );
    }
    let session = SimSession::new(
        models,
        SimConfig {
            seed,
            ..SimConfig::default()
        },
    );
    attach_stream_sink(&session, opts);
    let run = Scenario::new(alg)
        .n(n)
        .tile_size(nb)
        .session(session.clone())
        .cluster(ClusterSpec::new(nodes, workers))
        .interconnect(Arc::new(Hockney::new(1e-5, 1e10)))
        .placement(Arc::new(BlockCyclic::square(nodes)))
        .backend(backend(opts))
        .run_cluster();

    let mut snap = MetricsSnapshot::default();
    session.publish_metrics(&mut snap);
    run.stats.publish_metrics(&mut snap);
    snap.push_counter("cluster.transfers", run.transfers);
    snap.push_counter("cluster.transfer.bytes", run.transfer_bytes);
    snap.push_gauge("cluster.nodes", nodes as i64);
    for node in 0..nodes {
        snap.push_counter(
            &format!("cluster.node.{node:02}.transfers"),
            run.node_transfers[node],
        );
        snap.push_counter(
            &format!("cluster.node.{node:02}.transfer.bytes"),
            run.node_bytes[node],
        );
        snap.push_gauge(
            &format!("cluster.node.{node:02}.nic.busy_us"),
            (run.nic_busy_seconds[node] * 1e6).round() as i64,
        );
    }
    eprintln!(
        "cluster-{} metrics: {} compute tasks, {} transfers, predicted {:.4}s",
        alg.name(),
        run.compute_tasks,
        run.transfers,
        run.predicted_seconds
    );
    let json = snap.to_json();
    println!("{json}");
    if let Some(path) = opts.get("out") {
        std::fs::write(path, &json).expect("write metrics");
        eprintln!("metrics written to {path}");
    }
    if let Some(path) = opts.get("chrome") {
        std::fs::write(path, chrome::to_chrome_json_with_metrics(&run.trace, &snap))
            .expect("write chrome trace");
        eprintln!("chrome trace written to {path}");
    }
    if let Some(path) = opts.get("trace-out") {
        std::fs::write(path, canonical_trace(&run.trace)).expect("write trace");
        eprintln!("canonical trace written to {path}");
    }
}

/// Without the `metrics` feature the instrumentation is compiled out, so
/// there is nothing to dump.
#[cfg(not(feature = "metrics"))]
fn cmd_metrics(_opts: &HashMap<String, String>) {
    eprintln!("this binary was built without the `metrics` feature; rebuild with default features");
    exit(2)
}

fn cmd_info() {
    println!("supersim {}", env!("CARGO_PKG_VERSION"));
    println!("algorithms: cholesky (Algorithm 1), qr (Algorithm 2), lu (extension)");
    println!("schedulers:");
    for kind in [
        SchedulerKind::Quark,
        SchedulerKind::StarPu,
        SchedulerKind::OmpSs,
    ] {
        let c = kind.config(1);
        println!(
            "  {:<8} policy={:?} window={}",
            kind.name(),
            c.policy,
            if c.window == usize::MAX {
                "unbounded".to_string()
            } else {
                c.window.to_string()
            }
        );
    }
    println!("race mitigations: quiesce (exact), sleep_yield (portable), none (demo)");
}
