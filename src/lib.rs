//! # supersim
//!
//! A from-scratch Rust reproduction of **"Parallel Simulation of
//! Superscalar Scheduling"** (Haugen, Luszczek, Kurzak, YarKhan, Dongarra —
//! ICPP 2014): a parallel discrete-event simulator that predicts the
//! execution time *and trace* of algorithms running under dynamic
//! superscalar (task-dataflow) schedulers, by keeping a real scheduler in
//! the loop while replacing every computational kernel with a virtual-time
//! protocol.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`core`] | `supersim-core` | virtual clock, Task Execution Queue, simulated-kernel protocol, race mitigations |
//! | [`runtime`] | `supersim-runtime` | the superscalar runtime with QUARK/StarPU/OmpSs profiles |
//! | [`cluster`] | `supersim-cluster` | multi-node simulation: interconnect models, placement, transfer tasks |
//! | [`workloads`] | `supersim-workloads` | tile Cholesky/QR/LU + synthetic DAGs in real & simulated modes |
//! | [`tile`] | `supersim-tile` | dense tile linear algebra kernels and drivers |
//! | [`calibrate`] | `supersim-calibrate` | kernel-model fitting from real traces |
//! | [`dist`] | `supersim-dist` | distributions, fitting, goodness-of-fit |
//! | [`dag`] | `supersim-dag` | hazard analysis, DAG export/analysis |
//! | [`trace`] | `supersim-trace` | trace model, SVG/ASCII rendering, comparison metrics |
//! | [`des`] | `supersim-des` | offline DES baseline (list scheduling) |
//! | [`metrics`] | `supersim-metrics` | lock-free metrics registry, snapshots, JSON export (feature `metrics`, on by default) |
//!
//! ## Quickstart
//!
//! Calibrate from a real run, then simulate (the full loop the paper
//! evaluates in Figs. 8–10):
//!
//! ```
//! use supersim::prelude::*;
//!
//! // 1. A real run of the tile Cholesky under the QUARK profile.
//! let real = run_real(Algorithm::Cholesky, SchedulerKind::Quark, 2, 64, 16, 42);
//! assert!(real.residual < 1e-12, "the real run must compute correctly");
//!
//! // 2. Fit kernel duration models from its trace.
//! let cal = calibrate(&real.trace, FitOptions::default());
//!
//! // 3. Simulate the same algorithm; compare predicted vs measured time.
//! let session = session_with(cal.registry, 7);
//! let sim = run_sim(Algorithm::Cholesky, SchedulerKind::Quark, 2, 64, 16, session);
//! let err = (sim.predicted_seconds - real.seconds).abs() / real.seconds;
//! assert!(err < 0.9, "prediction within an order of magnitude: {err}");
//! ```

pub use supersim_calibrate as calibrate;
pub use supersim_cluster as cluster;
pub use supersim_core as core;
pub use supersim_dag as dag;
pub use supersim_des as des;
pub use supersim_dist as dist;
#[cfg(feature = "metrics")]
pub use supersim_metrics as metrics;
pub use supersim_runtime as runtime;
pub use supersim_tile as tile;
pub use supersim_trace as trace;
pub use supersim_workloads as workloads;

/// The most common imports for driving the simulator.
pub mod prelude {
    pub use supersim_calibrate::{calibrate, CalibrationDb, CollectOptions, FitOptions};
    pub use supersim_cluster::{
        BlockCyclic, ClusterEngine, ClusterSpec, Hockney, Interconnect, Placement, SharedLink,
        ZeroCost,
    };
    pub use supersim_core::{KernelModel, ModelRegistry, RaceMitigation, SimConfig, SimSession};
    pub use supersim_dag::{Access, AccessMode, DataId};
    pub use supersim_des::{simulate as des_simulate, DesPolicy};
    pub use supersim_dist::{Dist, Distribution};
    pub use supersim_runtime::{
        PolicyKind, Runtime, RuntimeConfig, SchedulerKind, TaskContext, TaskDesc,
    };
    pub use supersim_trace::{Trace, TraceComparison, TraceRecorder, TraceStats};
    pub use supersim_workloads::driver::{
        run_real, run_sim, session_with, Algorithm, RealRun, SimRun,
    };
    pub use supersim_workloads::{run_cluster, ClusterRun, ExecMode, SharedTiles};
}
