//! # supersim
//!
//! A from-scratch Rust reproduction of **"Parallel Simulation of
//! Superscalar Scheduling"** (Haugen, Luszczek, Kurzak, YarKhan, Dongarra —
//! ICPP 2014): a parallel discrete-event simulator that predicts the
//! execution time *and trace* of algorithms running under dynamic
//! superscalar (task-dataflow) schedulers, by keeping a real scheduler in
//! the loop while replacing every computational kernel with a virtual-time
//! protocol.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`core`] | `supersim-core` | virtual clock, Task Execution Queue, simulated-kernel protocol, race mitigations |
//! | [`runtime`] | `supersim-runtime` | the superscalar runtime with QUARK/StarPU/OmpSs profiles |
//! | [`cluster`] | `supersim-cluster` | multi-node simulation: interconnect models, placement, transfer tasks |
//! | [`faults`] | `supersim-faults` | deterministic fault injection: fault plans, recovery policies, degradation reports |
//! | [`workloads`] | `supersim-workloads` | tile Cholesky/QR/LU + synthetic DAGs in real & simulated modes |
//! | [`tile`] | `supersim-tile` | dense tile linear algebra kernels and drivers |
//! | [`calibrate`] | `supersim-calibrate` | kernel-model fitting from real traces |
//! | [`dist`] | `supersim-dist` | distributions, fitting, goodness-of-fit |
//! | [`dag`] | `supersim-dag` | hazard analysis, DAG export/analysis |
//! | [`trace`] | `supersim-trace` | trace model, SVG/ASCII rendering, comparison metrics |
//! | [`des`] | `supersim-des` | offline DES baseline (list scheduling) |
//! | [`metrics`] | `supersim-metrics` | lock-free metrics registry, snapshots, JSON export (feature `metrics`, on by default) |
//!
//! ## Quickstart
//!
//! Every run goes through the [`workloads::Scenario`] builder: describe
//! *what* to run, *on what*, and *under what adversity*, then call a
//! terminal. Calibrate from a real run, then simulate (the full loop the
//! paper evaluates in Figs. 8–10):
//!
//! ```
//! use supersim::prelude::*;
//!
//! // 1. A real run of the tile Cholesky under the QUARK profile.
//! let real = Scenario::new(Algorithm::Cholesky)
//!     .n(192)
//!     .tile_size(48)
//!     .workers(2)
//!     .scheduler(SchedulerKind::Quark)
//!     .seed(42)
//!     .run_real();
//! assert!(real.residual < 1e-12, "the real run must compute correctly");
//!
//! // 2. Fit kernel duration models from its trace.
//! let cal = calibrate(&real.trace, FitOptions::default());
//!
//! // 3. Simulate the same algorithm; compare predicted vs measured time.
//! let sim = Scenario::new(Algorithm::Cholesky)
//!     .n(192)
//!     .tile_size(48)
//!     .workers(2)
//!     .scheduler(SchedulerKind::Quark)
//!     .seed(7)
//!     .models(cal.registry)
//!     .run_sim();
//! let err = (sim.predicted_seconds - real.seconds).abs() / real.seconds;
//! assert!(err < 0.5, "calibrated prediction tracks the real run: {err}");
//! ```
//!
//! Fault injection composes onto any simulated scenario — attach a
//! [`faults::FaultPlan`] and use [`workloads::Scenario::run_faults`] for a
//! clean-vs-faulted comparison (see the `supersim faults` CLI command).

pub use supersim_calibrate as calibrate;
pub use supersim_cluster as cluster;
pub use supersim_core as core;
pub use supersim_dag as dag;
pub use supersim_des as des;
pub use supersim_dist as dist;
pub use supersim_faults as faults;
#[cfg(feature = "metrics")]
pub use supersim_metrics as metrics;
pub use supersim_runtime as runtime;
pub use supersim_serve as serve;
pub use supersim_tile as tile;
pub use supersim_trace as trace;
pub use supersim_workloads as workloads;

/// The most common imports for driving the simulator.
pub mod prelude {
    pub use supersim_calibrate::{calibrate, CalibrationDb, CollectOptions, FitOptions};
    pub use supersim_cluster::{
        BlockCyclic, ClusterEngine, ClusterSpec, Hockney, Interconnect, Placement, SharedLink,
        ZeroCost,
    };
    pub use supersim_core::{KernelModel, ModelRegistry, RaceMitigation, SimConfig, SimSession};
    pub use supersim_dag::{Access, AccessMode, DataId};
    pub use supersim_des::{simulate as des_simulate, DesPolicy};
    pub use supersim_dist::{Dist, Distribution};
    pub use supersim_faults::{
        CheckpointPolicy, DegradationReport, FaultEvent, FaultPlan, FaultScope, RecoveryPolicy,
    };
    pub use supersim_runtime::{
        PolicyKind, Runtime, RuntimeConfig, SchedulerKind, TaskContext, TaskDesc,
    };
    pub use supersim_trace::{Trace, TraceComparison, TraceRecorder, TraceStats};
    #[allow(deprecated)]
    pub use supersim_workloads::{run_cluster, run_real, run_sim, session_with};
    pub use supersim_workloads::{
        Algorithm, Backend, ClusterRun, ExecMode, FaultOutcome, RealRun, Scenario, SharedTiles,
        SimRun,
    };
}
