//! Thread-local sampling for hot paths that cannot afford to time every
//! operation.
//!
//! Two `Instant::now()` calls cost tens of nanoseconds — more than a
//! whole uncontended TEQ insert. Sampling 1-in-N amortizes that to well
//! under a nanosecond per operation while still filling the latency
//! histograms. The sampler is thread-local (a plain `Cell` bump, no
//! atomics, no cache traffic) and its **first tick on every thread always
//! samples**, so even a short run records at least one latency sample
//! per participating thread.

use std::cell::Cell;
use std::time::Instant;

thread_local! {
    static TICKS: Cell<u64> = const { Cell::new(0) };
    /// Independent stream for wait sampling, so a thread's insert/retire
    /// traffic cannot starve its wait samples (and vice versa): the first
    /// *wait* on a thread always samples no matter how many other ops
    /// preceded it.
    static WAIT_TICKS: Cell<u64> = const { Cell::new(0) };
}

#[inline]
fn tick_in(key: &'static std::thread::LocalKey<Cell<u64>>, mask: u64) -> bool {
    key.with(|t| {
        let v = t.get();
        t.set(v.wrapping_add(1));
        v & mask == 0
    })
}

/// Advance this thread's sample clock; true every `mask + 1`-th call
/// (mask must be `2^k - 1`). The first call on each thread returns true.
#[inline]
pub fn tick(mask: u64) -> bool {
    tick_in(&TICKS, mask)
}

/// A start timestamp taken only when this thread's sampler fires:
/// `stamp(63)` times roughly 1 in 64 operations.
#[inline]
pub fn stamp(mask: u64) -> Option<Instant> {
    if tick(mask) {
        Some(Instant::now())
    } else {
        None
    }
}

/// Like [`stamp`], but on the dedicated wait-sampling stream.
#[inline]
pub fn wait_stamp(mask: u64) -> Option<Instant> {
    if tick_in(&WAIT_TICKS, mask) {
        Some(Instant::now())
    } else {
        None
    }
}

/// Elapsed nanoseconds since a sampled stamp (`None` if not sampled).
/// Saturates at `u64::MAX` ns (~584 years) rather than wrapping.
#[inline]
pub fn elapsed_ns(stamp: Option<Instant>) -> Option<u64> {
    stamp.map(|t0| {
        let d = t0.elapsed();
        u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_tick_always_samples() {
        std::thread::spawn(|| {
            assert!(tick(63), "first tick on a fresh thread must sample");
            let hits: usize = (0..639).filter(|_| tick(63)).count();
            // Exactly one in each following 64-window: ticks 64, 128, ...
            assert_eq!(hits, 9);
        })
        .join()
        .unwrap();
    }

    #[test]
    fn wait_stream_is_independent() {
        std::thread::spawn(|| {
            // Burn the main stream well past one window.
            for _ in 0..100 {
                tick(63);
            }
            // The wait stream still samples on its first use.
            assert!(wait_stamp(63).is_some());
            assert!(wait_stamp(63).is_none());
        })
        .join()
        .unwrap();
    }

    #[test]
    fn mask_zero_always_samples() {
        std::thread::spawn(|| {
            assert!((0..100).all(|_| tick(0)));
        })
        .join()
        .unwrap();
    }

    #[test]
    fn stamp_elapsed_roundtrip() {
        std::thread::spawn(|| {
            let s = stamp(0);
            assert!(s.is_some());
            std::thread::sleep(std::time::Duration::from_millis(1));
            let ns = elapsed_ns(s).unwrap();
            assert!(ns >= 1_000_000, "slept 1ms but measured {ns}ns");
            assert_eq!(elapsed_ns(None), None);
        })
        .join()
        .unwrap();
    }
}
