//! Point-in-time, serializable view of a set of instruments.
//!
//! A [`MetricsSnapshot`] is assembled from the global registry
//! ([`crate::Registry::snapshot`]) and then extended with
//! component-local tallies (the TEQ's in-lock counters, the runtime's
//! per-run statistics, trace-shard occupancy) via the `push_*` methods —
//! pushing a name that already exists **accumulates** counters and
//! merges histograms, so two simulation sessions publishing under the
//! same names sum naturally.

use crate::instruments::{bucket_upper_ns, LocalHistogram};
use serde::Serialize;

/// One named counter value.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CounterSample {
    /// Metric name (dot-separated, see DESIGN.md §5e for the catalog).
    pub name: String,
    /// Monotone total at snapshot time.
    pub value: u64,
}

/// One named gauge value.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct GaugeSample {
    /// Metric name.
    pub name: String,
    /// Last-set value at snapshot time.
    pub value: i64,
}

/// One occupied histogram bucket.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct BucketSample {
    /// Exclusive upper bound of the bucket in nanoseconds.
    pub le_ns: u64,
    /// Samples that landed in this bucket.
    pub count: u64,
}

/// One named histogram, with empty buckets elided.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct HistogramSample {
    /// Metric name.
    pub name: String,
    /// Total recorded samples (derived from the buckets — cannot exceed
    /// the true total even when snapshotted mid-run).
    pub count: u64,
    /// Sum of all samples in nanoseconds.
    pub sum_ns: u64,
    /// Mean sample in nanoseconds.
    pub mean_ns: f64,
    /// Approximate median (upper edge of the bucket holding it).
    pub p50_ns: u64,
    /// Approximate 99th percentile.
    pub p99_ns: u64,
    /// Occupied buckets only, ascending by bound.
    pub buckets: Vec<BucketSample>,
}

/// A complete snapshot: counters, gauges, histograms.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct MetricsSnapshot {
    /// All counters, in push order (registry snapshots push sorted).
    pub counters: Vec<CounterSample>,
    /// All gauges.
    pub gauges: Vec<GaugeSample>,
    /// All histograms.
    pub histograms: Vec<HistogramSample>,
}

impl MetricsSnapshot {
    /// Add `value` to the counter `name`, creating it if absent.
    pub fn push_counter(&mut self, name: &str, value: u64) {
        if let Some(c) = self.counters.iter_mut().find(|c| c.name == name) {
            c.value += value;
        } else {
            self.counters.push(CounterSample {
                name: name.to_string(),
                value,
            });
        }
    }

    /// Set the gauge `name` (last push wins), creating it if absent.
    pub fn push_gauge(&mut self, name: &str, value: i64) {
        if let Some(g) = self.gauges.iter_mut().find(|g| g.name == name) {
            g.value = value;
        } else {
            self.gauges.push(GaugeSample {
                name: name.to_string(),
                value,
            });
        }
    }

    /// Merge a histogram into `name`, creating it if absent.
    pub fn push_histogram(&mut self, name: &str, hist: &LocalHistogram) {
        if let Some(h) = self.histograms.iter_mut().find(|h| h.name == name) {
            let mut merged = unflatten(h);
            merged.merge(hist);
            *h = flatten(name, &merged);
        } else {
            self.histograms.push(flatten(name, hist));
        }
    }

    /// Fold another snapshot into this one: counters accumulate, gauges
    /// take `other`'s value, histograms merge bucket-wise.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for c in &other.counters {
            self.push_counter(&c.name, c.value);
        }
        for g in &other.gauges {
            self.push_gauge(&g.name, g.value);
        }
        for h in &other.histograms {
            self.push_histogram(&h.name, &unflatten(h));
        }
    }

    /// Value of the counter `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Value of the gauge `name`, if present.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// The histogram sample `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSample> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Pretty-printed JSON document.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("metrics snapshot serializes")
    }
}

fn flatten(name: &str, hist: &LocalHistogram) -> HistogramSample {
    HistogramSample {
        name: name.to_string(),
        count: hist.count(),
        sum_ns: hist.sum_ns,
        mean_ns: hist.mean_ns(),
        p50_ns: hist.quantile_ns(0.5),
        p99_ns: hist.quantile_ns(0.99),
        buckets: hist
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| BucketSample {
                le_ns: bucket_upper_ns(i),
                count: c,
            })
            .collect(),
    }
}

fn unflatten(sample: &HistogramSample) -> LocalHistogram {
    let mut h = LocalHistogram::new();
    for b in &sample.buckets {
        let i = if b.le_ns == u64::MAX {
            h.buckets.len() - 1
        } else {
            b.le_ns.trailing_zeros() as usize
        };
        h.buckets[i] += b.count;
    }
    h.sum_ns = sample.sum_ns;
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_on_same_name() {
        let mut s = MetricsSnapshot::default();
        s.push_counter("a", 2);
        s.push_counter("a", 3);
        s.push_counter("b", 1);
        assert_eq!(s.counter("a"), Some(5));
        assert_eq!(s.counter("b"), Some(1));
        assert_eq!(s.counter("missing"), None);
    }

    #[test]
    fn gauges_last_push_wins() {
        let mut s = MetricsSnapshot::default();
        s.push_gauge("g", 5);
        s.push_gauge("g", -1);
        assert_eq!(s.gauge("g"), Some(-1));
    }

    #[test]
    fn histograms_merge_on_same_name() {
        let mut a = LocalHistogram::new();
        a.record(10);
        a.record(1000);
        let mut b = LocalHistogram::new();
        b.record(10);
        let mut s = MetricsSnapshot::default();
        s.push_histogram("h", &a);
        s.push_histogram("h", &b);
        let h = s.histogram("h").unwrap();
        assert_eq!(h.count, 3);
        assert_eq!(h.sum_ns, 1020);
        // The 10ns bucket ([8,16), le 16) holds two samples after merge.
        let small = h.buckets.iter().find(|b| b.le_ns == 16).unwrap();
        assert_eq!(small.count, 2);
    }

    #[test]
    fn json_roundtrips_through_serde_json() {
        let mut s = MetricsSnapshot::default();
        s.push_counter("teq.insert.count", 42);
        s.push_gauge("teq.depth", 3);
        let mut h = LocalHistogram::new();
        h.record(0);
        h.record(123_456);
        s.push_histogram("teq.wait.parked.ns", &h);
        let json = s.to_json();
        let v: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        assert_eq!(v["counters"][0]["name"].as_str(), Some("teq.insert.count"));
        assert_eq!(v["counters"][0]["value"].as_u64(), Some(42));
        assert_eq!(v["histograms"][0]["count"].as_u64(), Some(2));
        assert!(v["histograms"][0]["buckets"].as_array().unwrap().len() == 2);
    }

    #[test]
    fn merge_folds_whole_snapshots() {
        let mut a = MetricsSnapshot::default();
        a.push_counter("c", 2);
        a.push_gauge("g", 1);
        let mut h = LocalHistogram::new();
        h.record(100);
        a.push_histogram("h", &h);
        let mut b = MetricsSnapshot::default();
        b.push_counter("c", 3);
        b.push_counter("only_b", 7);
        b.push_gauge("g", 9);
        b.push_histogram("h", &h);
        a.merge(&b);
        assert_eq!(a.counter("c"), Some(5));
        assert_eq!(a.counter("only_b"), Some(7));
        assert_eq!(a.gauge("g"), Some(9));
        let merged = a.histogram("h").unwrap();
        assert_eq!(merged.count, 2);
        assert_eq!(merged.sum_ns, 200);
    }

    #[test]
    fn overflow_bucket_survives_merge() {
        let mut a = LocalHistogram::new();
        a.record(u64::MAX);
        let mut s = MetricsSnapshot::default();
        s.push_histogram("h", &a);
        s.push_histogram("h", &a);
        let h = s.histogram("h").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.buckets[0].le_ns, u64::MAX);
    }
}
