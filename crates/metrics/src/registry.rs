//! The process-global named-instrument registry.
//!
//! Registration (first lookup of a name) takes a mutex and leaks the
//! instrument to get a `&'static` handle; every later update on that
//! handle is a lock-free atomic. Call sites are expected to cache the
//! handle in a `OnceLock` so even the registration lock is paid once per
//! process, not per operation.
//!
//! The engine no longer writes here: its counters (`sim.*`, `des.*`,
//! `trace.*`) are per-session and reach a snapshot via
//! `SimSession::publish_metrics`, so N concurrent sessions — e.g. the
//! cells of one sweep — stay attributable. [`global`] remains for ad-hoc
//! instrumentation and benchmarks that genuinely want process scope.

use crate::instruments::{Counter, Gauge, Histogram};
use crate::snapshot::MetricsSnapshot;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::OnceLock;

/// A named-instrument registry. Most users want the process-global
/// [`global`] instance; separate registries exist for tests.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<Families>,
}

#[derive(Default)]
struct Families {
    counters: BTreeMap<String, &'static Counter>,
    gauges: BTreeMap<String, &'static Gauge>,
    histograms: BTreeMap<String, &'static Histogram>,
}

impl Registry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter registered under `name`, creating it on first use.
    /// The returned handle is `'static`: cache it, then update lock-free.
    pub fn counter(&self, name: &str) -> &'static Counter {
        let mut f = self.inner.lock();
        if let Some(c) = f.counters.get(name) {
            return c;
        }
        let c: &'static Counter = Box::leak(Box::new(Counter::new()));
        f.counters.insert(name.to_string(), c);
        c
    }

    /// The gauge registered under `name`, creating it on first use.
    pub fn gauge(&self, name: &str) -> &'static Gauge {
        let mut f = self.inner.lock();
        if let Some(g) = f.gauges.get(name) {
            return g;
        }
        let g: &'static Gauge = Box::leak(Box::new(Gauge::new()));
        f.gauges.insert(name.to_string(), g);
        g
    }

    /// The histogram registered under `name`, creating it on first use.
    pub fn histogram(&self, name: &str) -> &'static Histogram {
        let mut f = self.inner.lock();
        if let Some(h) = f.histograms.get(name) {
            return h;
        }
        let h: &'static Histogram = Box::leak(Box::new(Histogram::new()));
        f.histograms.insert(name.to_string(), h);
        h
    }

    /// Point-in-time snapshot of every registered instrument. Concurrent
    /// updates during the walk are observed at-most-once each: every
    /// instrument is read with a single atomic load (histogram buckets
    /// individually), so no value can tear or double-count.
    pub fn snapshot(&self) -> MetricsSnapshot {
        // Clone the name -> handle maps under the registration lock, then
        // read the atomics outside it: a snapshot must not serialize
        // against concurrent registrations longer than necessary.
        let (counters, gauges, histograms) = {
            let f = self.inner.lock();
            (f.counters.clone(), f.gauges.clone(), f.histograms.clone())
        };
        let mut snap = MetricsSnapshot::default();
        for (name, c) in counters {
            snap.push_counter(&name, c.get());
        }
        for (name, g) in gauges {
            snap.push_gauge(&name, g.get());
        }
        for (name, h) in histograms {
            snap.push_histogram(&name, &h.snapshot());
        }
        snap
    }
}

/// The process-global registry.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_same_instrument() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        assert!(std::ptr::eq(a, b));
        a.inc();
        assert_eq!(b.get(), 1);
    }

    #[test]
    fn distinct_names_distinct_instruments() {
        let r = Registry::new();
        let a = r.counter("a");
        let b = r.counter("b");
        assert!(!std::ptr::eq(a, b));
    }

    #[test]
    fn snapshot_contains_all_kinds() {
        let r = Registry::new();
        r.counter("c").add(7);
        r.gauge("g").set(-3);
        r.histogram("h").record(1000);
        let s = r.snapshot();
        assert_eq!(s.counter("c"), Some(7));
        assert_eq!(s.gauge("g"), Some(-3));
        assert_eq!(s.histogram("h").unwrap().count, 1);
    }

    #[test]
    fn global_is_a_singleton() {
        let a = global().counter("registry.test.singleton");
        let b = global().counter("registry.test.singleton");
        assert!(std::ptr::eq(a, b));
    }

    /// The mid-run tear test (ISSUE satellite): snapshots taken while
    /// writers hammer a counter and a histogram must observe sums that
    /// never exceed the final totals and never decrease between
    /// consecutive snapshots — no double count, no torn read, no panic.
    #[test]
    fn snapshot_mid_run_does_not_tear() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;

        let r = Arc::new(Registry::new());
        let stop = Arc::new(AtomicBool::new(false));
        const WRITERS: usize = 4;
        const PER_WRITER: u64 = 200_000;

        let writers: Vec<_> = (0..WRITERS)
            .map(|w| {
                let r = r.clone();
                std::thread::spawn(move || {
                    let c = r.counter("tear.count");
                    let h = r.histogram("tear.ns");
                    for i in 0..PER_WRITER {
                        c.inc();
                        h.record((w as u64) * 1000 + (i % 7));
                    }
                })
            })
            .collect();

        let reader = {
            let r = r.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let total = WRITERS as u64 * PER_WRITER;
                let mut last_count = 0u64;
                let mut last_hist = 0u64;
                let mut snaps = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let s = r.snapshot();
                    let c = s.counter("tear.count").unwrap_or(0);
                    let h = s.histogram("tear.ns").map_or(0, |h| h.count);
                    assert!(c <= total, "counter over-read: {c} > {total}");
                    assert!(h <= total, "histogram over-read: {h} > {total}");
                    assert!(c >= last_count, "counter went backwards");
                    assert!(h >= last_hist, "histogram went backwards");
                    last_count = c;
                    last_hist = h;
                    snaps += 1;
                }
                snaps
            })
        };

        for w in writers {
            w.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        let snaps = reader.join().unwrap();
        assert!(snaps > 0, "reader must have snapshotted mid-run");

        let s = r.snapshot();
        let total = WRITERS as u64 * PER_WRITER;
        assert_eq!(s.counter("tear.count"), Some(total));
        assert_eq!(s.histogram("tear.ns").unwrap().count, total);
    }
}
