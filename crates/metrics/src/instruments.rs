//! Primitive instruments: counters, gauges, and log-scale histograms.
//!
//! Every atomic instrument is updated with `Ordering::Relaxed`: metrics
//! are monotone tallies, not synchronization edges, and a relaxed
//! `fetch_add` can neither lose an increment nor double one — a snapshot
//! racing an increment simply lands before or after it.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// Number of histogram buckets. Bucket 0 holds zero-duration samples;
/// bucket `i` (for `i >= 1`) holds samples in `[2^(i-1), 2^i)` ns. The
/// last bucket absorbs everything at or above `2^(BUCKETS-2)` ns
/// (~4.6 minutes), far beyond any simulator operation.
pub const BUCKETS: usize = 40;

/// Bucket index for a nanosecond sample.
#[inline]
pub fn bucket_of(ns: u64) -> usize {
    if ns == 0 {
        0
    } else {
        (64 - ns.leading_zeros() as usize).min(BUCKETS - 1)
    }
}

/// Inclusive-exclusive upper bound of bucket `i` in nanoseconds
/// (`u64::MAX` for the overflow bucket).
#[inline]
pub fn bucket_upper_ns(i: usize) -> u64 {
    if i >= BUCKETS - 1 {
        u64::MAX
    } else {
        1u64 << i
    }
}

/// A monotone counter, padded to a cache line so unrelated counters
/// registered next to each other never false-share.
#[repr(align(128))]
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A fresh counter at zero.
    pub const fn new() -> Self {
        Counter {
            value: AtomicU64::new(0),
        }
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if n > 0 {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-value gauge (signed, so it can track deltas like idle-worker
/// counts that go up and down).
#[repr(align(128))]
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A fresh gauge at zero.
    pub const fn new() -> Self {
        Gauge {
            value: AtomicI64::new(0),
        }
    }

    /// Set the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Add a (possibly negative) delta.
    #[inline]
    pub fn add(&self, d: i64) {
        self.value.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A wall-time histogram with fixed log₂-scale nanosecond buckets,
/// updated lock-free. The sample count is *derived* from the buckets at
/// read time — there is no separate count atomic that could disagree
/// with the buckets mid-snapshot.
#[repr(align(128))]
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    sum_ns: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_ns: AtomicU64::new(0),
        }
    }

    /// Record one nanosecond sample.
    #[inline]
    pub fn record(&self, ns: u64) {
        self.buckets[bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Point-in-time copy. Buckets are read independently; each observed
    /// value is at most its final total, so the derived count can never
    /// exceed the true number of recorded samples.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut s = HistogramSnapshot::default();
        for (i, b) in self.buckets.iter().enumerate() {
            s.buckets[i] = b.load(Ordering::Relaxed);
        }
        s.sum_ns = self.sum_ns.load(Ordering::Relaxed);
        s
    }

    /// Total samples recorded (derived from the buckets).
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }
}

/// The plain, non-atomic twin of [`Histogram`]: used both as the
/// snapshot representation and as the in-place tally for components
/// whose update path already holds a lock (e.g. the TEQ state mutex),
/// where an atomic would buy nothing and cost a cache transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocalHistogram {
    /// Per-bucket sample counts (log₂ ns scale, see [`bucket_of`]).
    pub buckets: [u64; BUCKETS],
    /// Sum of all recorded samples in nanoseconds.
    pub sum_ns: u64,
}

/// Alias making call sites read naturally: a [`Histogram::snapshot`] and
/// a component-local tally are the same plain data.
pub type HistogramSnapshot = LocalHistogram;

impl Default for LocalHistogram {
    fn default() -> Self {
        LocalHistogram {
            buckets: [0; BUCKETS],
            sum_ns: 0,
        }
    }
}

impl LocalHistogram {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one nanosecond sample (no atomics — caller synchronizes).
    #[inline]
    pub fn record(&mut self, ns: u64) {
        self.buckets[bucket_of(ns)] += 1;
        self.sum_ns = self.sum_ns.saturating_add(ns);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Mean sample in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum_ns as f64 / n as f64
        }
    }

    /// Approximate quantile (`q` in [0, 1]) from the bucket boundaries:
    /// returns the upper edge of the bucket containing the q-th sample.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper_ns(i);
            }
        }
        bucket_upper_ns(BUCKETS - 1)
    }

    /// Merge another histogram into this one. Sums saturate: a metrics
    /// total pinned at `u64::MAX` beats a wrap or a panic mid-report.
    pub fn merge(&mut self, other: &LocalHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_upper_ns(1), 2);
        assert_eq!(bucket_upper_ns(BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        c.add(0);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn gauge_tracks_deltas() {
        let g = Gauge::new();
        g.set(3);
        g.add(-5);
        assert_eq!(g.get(), -2);
    }

    #[test]
    fn histogram_records_and_snapshots() {
        let h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(1000);
        h.record(1_000_000);
        let s = h.snapshot();
        assert_eq!(s.count(), 4);
        assert_eq!(s.sum_ns, 1_001_001);
        assert_eq!(h.count(), 4);
        assert!(s.quantile_ns(0.5) <= s.quantile_ns(0.99));
    }

    #[test]
    fn local_histogram_merge_and_stats() {
        let mut a = LocalHistogram::new();
        let mut b = LocalHistogram::new();
        a.record(10);
        b.record(100);
        b.record(1000);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum_ns, 1110);
        assert!((a.mean_ns() - 370.0).abs() < 1e-9);
        assert!(!a.is_empty());
    }

    #[test]
    fn quantile_on_empty_is_zero() {
        assert_eq!(LocalHistogram::new().quantile_ns(0.5), 0);
    }

    #[test]
    fn concurrent_counter_increments_all_land() {
        let c = Arc::new(Counter::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 80_000);
    }
}
