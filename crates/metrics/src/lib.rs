//! # supersim-metrics
//!
//! Observability for the simulator's own internals. The paper's central
//! claim is that the simulated *trace* is faithful and cheap to produce;
//! this crate makes "cheap" continuously measurable instead of asserted
//! once: where does wall time go inside the Task Execution Queue, how
//! often do quiescence checks spin, how hard is the engine lock hit.
//!
//! Three layers:
//!
//! * [`instruments`] — the primitive instruments: [`Counter`] (a
//!   cache-padded atomic, safe to hammer from any thread), [`Gauge`]
//!   (last-value atomic), and [`Histogram`] (atomic fixed log₂-scale
//!   nanosecond buckets). There is also [`LocalHistogram`], the plain
//!   non-atomic twin used by components that already hold a lock on their
//!   update path (the TEQ records its tallies *under the state mutex it
//!   already owns*, which costs nothing extra; see DESIGN.md §5e).
//! * [`registry`] — a process-global named-instrument registry. Lookup
//!   takes a registration lock **once** per call site (call sites cache
//!   the returned `&'static` instrument); updates are lock-free atomics.
//! * [`snapshot`] — [`MetricsSnapshot`], a point-in-time, serializable
//!   view assembled from the global registry plus any component-local
//!   tallies merged in, with JSON output via the vendored serde shims.
//!
//! Reading a snapshot mid-run is safe and tear-free in the sense that a
//! concurrently incremented counter is observed at some value **at most**
//! its final total and **at least** its value when the snapshot began —
//! never doubled, never torn (each instrument is a single atomic, and
//! histogram totals are derived from the buckets rather than kept as a
//! separate racing counter).
//!
//! Hot paths that cannot afford two `Instant::now` calls per operation
//! use [`sample::tick`]: a thread-local 1-in-N sampler whose first tick
//! on every thread always samples, so short runs still populate their
//! latency histograms.

pub mod instruments;
pub mod registry;
pub mod sample;
pub mod snapshot;

pub use instruments::{Counter, Gauge, Histogram, HistogramSnapshot, LocalHistogram, BUCKETS};
pub use registry::{global, Registry};
pub use snapshot::{BucketSample, CounterSample, GaugeSample, HistogramSample, MetricsSnapshot};
