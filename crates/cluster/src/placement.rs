//! Owner-computes data placement over a 2-D tile grid.

/// Maps tile coordinates to an owning node. Under owner-computes, the
/// task that writes a tile runs on that tile's owner; reads of remote
/// tiles trigger transfers.
pub trait Placement: Send + Sync {
    /// Placement name (for CLI selection and JSON output).
    fn name(&self) -> String;
    /// Owning node of tile `(i, j)`.
    fn owner(&self, i: usize, j: usize) -> usize;
}

/// 2-D block-cyclic placement over a `p` x `q` process grid:
/// tile `(i, j)` lives on node `(i % p) * q + (j % q)`. The standard
/// ScaLAPACK-style distribution for dense factorizations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockCyclic {
    /// Process-grid rows.
    pub p: usize,
    /// Process-grid columns.
    pub q: usize,
}

impl BlockCyclic {
    /// A `p` x `q` process grid.
    pub fn new(p: usize, q: usize) -> Self {
        assert!(p > 0 && q > 0, "process grid must be non-empty");
        BlockCyclic { p, q }
    }

    /// The squarest grid for `nodes`: largest `p <= sqrt(nodes)` dividing
    /// `nodes`, with `q = nodes / p`.
    pub fn square(nodes: usize) -> Self {
        assert!(nodes > 0, "process grid must be non-empty");
        let mut p = (nodes as f64).sqrt() as usize;
        while p > 1 && !nodes.is_multiple_of(p) {
            p -= 1;
        }
        BlockCyclic::new(p.max(1), nodes / p.max(1))
    }

    /// Row distribution: `nodes` x 1 grid (tile row cyclic over nodes).
    pub fn row(nodes: usize) -> Self {
        BlockCyclic::new(nodes, 1)
    }

    /// Column distribution: 1 x `nodes` grid.
    pub fn col(nodes: usize) -> Self {
        BlockCyclic::new(1, nodes)
    }
}

impl Placement for BlockCyclic {
    fn name(&self) -> String {
        format!("block-cyclic-{}x{}", self.p, self.q)
    }

    fn owner(&self, i: usize, j: usize) -> usize {
        (i % self.p) * self.q + (j % self.q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_cyclic_wraps_both_dims() {
        let pl = BlockCyclic::new(2, 2);
        assert_eq!(pl.owner(0, 0), 0);
        assert_eq!(pl.owner(0, 1), 1);
        assert_eq!(pl.owner(1, 0), 2);
        assert_eq!(pl.owner(1, 1), 3);
        assert_eq!(pl.owner(2, 2), 0);
        assert_eq!(pl.owner(3, 1), 3);
    }

    #[test]
    fn square_picks_divisor_grid() {
        assert_eq!(BlockCyclic::square(4), BlockCyclic::new(2, 2));
        assert_eq!(BlockCyclic::square(6), BlockCyclic::new(2, 3));
        assert_eq!(BlockCyclic::square(7), BlockCyclic::new(1, 7));
        assert_eq!(BlockCyclic::square(1), BlockCyclic::new(1, 1));
    }

    #[test]
    fn row_and_col_are_one_dimensional() {
        let r = BlockCyclic::row(3);
        assert_eq!(r.owner(4, 9), 1);
        assert_eq!(r.owner(5, 0), 2);
        let c = BlockCyclic::col(3);
        assert_eq!(c.owner(9, 4), 1);
        assert_eq!(c.name(), "block-cyclic-1x3");
    }

    #[test]
    fn owners_cover_all_nodes() {
        let pl = BlockCyclic::square(4);
        let mut seen = [false; 4];
        for i in 0..4 {
            for j in 0..4 {
                seen[pl.owner(i, j)] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }
}
