//! Interconnect cost models.
//!
//! A model maps a message size to a virtual transfer duration. Whether
//! concurrent transfers share the wire is *not* part of the model — it is
//! decided by how many NIC lanes the model asks for: a single-lane NIC
//! admits one in-flight transfer per node at a time, so queueing (and
//! thus contention) emerges from lane occupancy in the TEQ, exactly the
//! way compute contention emerges from worker occupancy in the paper.

/// An interconnect cost model.
pub trait Interconnect: Send + Sync {
    /// Model name (for CLI selection and JSON output).
    fn name(&self) -> &'static str;
    /// Virtual seconds to move `bytes` across the interconnect.
    fn transfer_seconds(&self, bytes: u64) -> f64;
    /// NIC lanes per node this model wants by default: 1 means transfers
    /// to a node serialize, more means that many messages fly
    /// concurrently at full per-message cost.
    fn default_nic_lanes(&self) -> usize {
        1
    }
    /// A stable textual identity covering the model's parameters, used by
    /// content-addressed scenario hashing. Two interconnects with equal
    /// fingerprints must cost every transfer identically. Parameterless
    /// models can rely on the default (the model name).
    fn fingerprint(&self) -> String {
        self.name().to_string()
    }
}

/// Free interconnect: every transfer takes zero virtual time. The
/// distributed run must then reproduce the equivalent single-node
/// schedule exactly — the cluster layer's correctness baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct ZeroCost;

impl Interconnect for ZeroCost {
    fn name(&self) -> &'static str {
        "zero"
    }

    fn transfer_seconds(&self, _bytes: u64) -> f64 {
        0.0
    }
}

/// Hockney model: `latency + bytes / bandwidth` per message, messages
/// independent (multiple NIC lanes — per-message cost, no link sharing).
#[derive(Debug, Clone, Copy)]
pub struct Hockney {
    /// Per-message latency (alpha) in seconds.
    pub latency: f64,
    /// Link bandwidth (1/beta) in bytes per second.
    pub bandwidth: f64,
}

impl Hockney {
    /// A Hockney model with the given alpha (seconds) and bandwidth (B/s).
    pub fn new(latency: f64, bandwidth: f64) -> Self {
        assert!(latency >= 0.0, "latency must be non-negative");
        assert!(bandwidth > 0.0, "bandwidth must be positive");
        Hockney { latency, bandwidth }
    }
}

impl Interconnect for Hockney {
    fn name(&self) -> &'static str {
        "hockney"
    }

    fn transfer_seconds(&self, bytes: u64) -> f64 {
        self.latency + bytes as f64 / self.bandwidth
    }

    fn default_nic_lanes(&self) -> usize {
        4
    }

    fn fingerprint(&self) -> String {
        format!("hockney:{:e}:{:e}", self.latency, self.bandwidth)
    }
}

/// Contention-aware shared link: same per-message cost as [`Hockney`],
/// but a single NIC lane per node, so concurrent transfers to one node
/// serialize in virtual time (each waits for the lane, then pays the
/// full message cost).
#[derive(Debug, Clone, Copy)]
pub struct SharedLink {
    /// Per-message latency in seconds.
    pub latency: f64,
    /// Link bandwidth in bytes per second.
    pub bandwidth: f64,
}

impl SharedLink {
    /// A shared-link model with the given latency (seconds) and bandwidth
    /// (B/s).
    pub fn new(latency: f64, bandwidth: f64) -> Self {
        assert!(latency >= 0.0, "latency must be non-negative");
        assert!(bandwidth > 0.0, "bandwidth must be positive");
        SharedLink { latency, bandwidth }
    }
}

impl Interconnect for SharedLink {
    fn name(&self) -> &'static str {
        "sharedlink"
    }

    fn transfer_seconds(&self, bytes: u64) -> f64 {
        self.latency + bytes as f64 / self.bandwidth
    }

    fn fingerprint(&self) -> String {
        format!("sharedlink:{:e}:{:e}", self.latency, self.bandwidth)
    }
}

/// Completion times of transfers `(ready, duration)` on one serializing
/// lane: processed in ready order, each starting at
/// `max(its ready time, previous completion)` — the reference discipline a
/// single-lane NIC realizes through the TEQ.
pub fn serialized_completions(transfers: &[(f64, f64)]) -> Vec<f64> {
    let mut order: Vec<usize> = (0..transfers.len()).collect();
    order.sort_by(|&a, &b| transfers[a].0.total_cmp(&transfers[b].0));
    let mut done = vec![0.0; transfers.len()];
    let mut lane_free = f64::NEG_INFINITY;
    for &i in &order {
        let (ready, dur) = transfers[i];
        let start = ready.max(lane_free);
        lane_free = start + dur;
        done[i] = lane_free;
    }
    done
}

/// Completion times of the same offered load with no contention: every
/// transfer runs the moment it is ready.
pub fn contention_free_completions(transfers: &[(f64, f64)]) -> Vec<f64> {
    transfers.iter().map(|&(r, d)| r + d).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hockney_formula() {
        let h = Hockney::new(1e-6, 1e9);
        assert_eq!(h.transfer_seconds(0), 1e-6);
        let t = h.transfer_seconds(1_000_000_000);
        assert!((t - 1.000001).abs() < 1e-12);
        assert_eq!(h.name(), "hockney");
        assert_eq!(h.default_nic_lanes(), 4);
    }

    #[test]
    fn fingerprints_carry_parameters() {
        assert_eq!(ZeroCost.fingerprint(), "zero");
        let a = Hockney::new(1e-6, 1e9).fingerprint();
        let b = Hockney::new(2e-6, 1e9).fingerprint();
        assert_ne!(a, b, "latency must show up in the fingerprint");
        assert_ne!(
            SharedLink::new(1e-6, 1e9).fingerprint(),
            a,
            "same parameters, different model"
        );
    }

    #[test]
    fn zero_cost_is_free() {
        assert_eq!(ZeroCost.transfer_seconds(u64::MAX), 0.0);
        assert_eq!(ZeroCost.default_nic_lanes(), 1);
    }

    #[test]
    fn shared_link_serializes_by_lane_count() {
        let s = SharedLink::new(0.0, 1e6);
        assert_eq!(s.default_nic_lanes(), 1);
        assert_eq!(s.transfer_seconds(2_000_000), 2.0);
    }

    #[test]
    fn serialized_never_beats_contention_free() {
        let load = [(0.0, 1.0), (0.5, 2.0), (0.5, 0.25), (3.0, 1.0)];
        let ser = serialized_completions(&load);
        let free = contention_free_completions(&load);
        for (s, f) in ser.iter().zip(free.iter()) {
            assert!(s >= f, "serialized {s} earlier than contention-free {f}");
        }
        // Back-to-back transfers stack up.
        assert_eq!(ser[0], 1.0);
        assert_eq!(ser[1], 3.0);
        assert_eq!(ser[2], 3.25);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Hockney duration is monotone (non-decreasing) in message size.
        #[test]
        fn hockney_monotone_in_bytes(
            latency in 0.0f64..1e-2,
            bandwidth in 1e3f64..1e12,
            a in 0u64..1u64 << 40,
            b in 0u64..1u64 << 40,
        ) {
            let h = Hockney::new(latency, bandwidth);
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(h.transfer_seconds(lo) <= h.transfer_seconds(hi));
            // And strictly more bytes on a finite-bandwidth link costs
            // strictly more time.
            if lo < hi {
                prop_assert!(h.transfer_seconds(lo) < h.transfer_seconds(hi));
            }
        }

        /// A serializing link never completes any transfer earlier than
        /// the contention-free model for the same offered load.
        #[test]
        fn contention_never_early(
            load in prop::collection::vec((0.0f64..100.0, 0.0f64..10.0), 1..40),
        ) {
            let ser = serialized_completions(&load);
            let free = contention_free_completions(&load);
            for (s, f) in ser.iter().zip(free.iter()) {
                prop_assert!(s >= f);
            }
        }
    }
}
