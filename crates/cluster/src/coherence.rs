//! The coherence layer: which nodes hold valid copies of which tiles, and
//! which transfers a compute task's remote reads require.
//!
//! Extracted from [`ClusterEngine`](crate::ClusterEngine) so the threaded
//! engine and the DES replay backend derive transfer tasks — and therefore
//! task ids, dependences, and NIC-lane occupancy — from the *same* code.
//! The decision procedure is purely a function of the serial submission
//! stream: a remote read fetches once per (tile, node) and reuses the copy
//! until the tile is rewritten, at which point every copy is invalidated.

use crate::interconnect::Interconnect;
use std::collections::HashMap;
use supersim_dag::{Access, DataId};

/// A transfer the coherence layer requires *before* its consumer task:
/// read the home tile, write a fresh ghost id on the consuming node, pay
/// the interconnect's cost on that node's NIC lanes.
#[derive(Debug, Clone, PartialEq)]
pub struct TransferPlan {
    /// Accesses of the transfer task: `[read home, write ghost]`, both
    /// carrying the tile's byte size.
    pub accesses: Vec<Access>,
    /// Virtual duration from the interconnect model.
    pub duration: f64,
    /// Consuming node (pin the task to this node's NIC lanes).
    pub node: usize,
    /// Bytes moved.
    pub bytes: u64,
}

/// Per-tile copy tracking plus transfer accounting.
pub struct Coherence {
    /// For each tile: which nodes hold a valid copy, and under which
    /// DataId (the home node maps to the tile's own id, consumers to
    /// ghost ids). Cleared on write.
    valid: HashMap<DataId, HashMap<usize, DataId>>,
    next_ghost: u64,
    transfers: u64,
    transfer_bytes: u64,
    node_transfers: Vec<u64>,
    node_bytes: Vec<u64>,
}

impl Coherence {
    /// Fresh state for `nodes` nodes; ghost tiles are allocated upward
    /// from `ghost_base`, which must be above every DataId the driver
    /// will submit.
    pub fn new(nodes: usize, ghost_base: u64) -> Self {
        Coherence {
            valid: HashMap::new(),
            next_ghost: ghost_base,
            transfers: 0,
            transfer_bytes: 0,
            node_transfers: vec![0; nodes],
            node_bytes: vec![0; nodes],
        }
    }

    /// Resolve one compute task's owner-annotated accesses on `node`:
    /// returns the final access list (remote reads gain a ghost read) and
    /// the transfers to submit *before* the compute task, in access order.
    /// Writes must be local (owner-computes) and invalidate every remote
    /// copy of their tile.
    pub fn plan_compute(
        &mut self,
        node: usize,
        accesses: &[(Access, usize)],
        interconnect: &dyn Interconnect,
    ) -> (Vec<Access>, Vec<TransferPlan>) {
        let mut acc = Vec::with_capacity(accesses.len());
        let mut xfers = Vec::new();
        for (a, home) in accesses {
            if a.mode.writes() {
                assert_eq!(
                    *home, node,
                    "owner-computes violated: write to a tile of node {home} \
                     submitted on node {node}"
                );
                acc.push(*a);
            } else if *home == node {
                acc.push(*a);
            } else {
                let ghost = self.ensure_copy(a, *home, node, interconnect, &mut xfers);
                // Keep the home-tile read (WaR edge against the next
                // writer) and add the ghost read (RaW edge after the
                // transfer).
                acc.push(*a);
                acc.push(Access::read(ghost).with_bytes(a.bytes));
            }
        }
        // A write supersedes every remote copy: later readers must fetch
        // the new version.
        for (a, home) in accesses {
            if a.mode.writes() {
                let m = self.valid.entry(a.data).or_default();
                m.clear();
                m.insert(*home, a.data);
            }
        }
        (acc, xfers)
    }

    /// Get `node` a valid copy of the tile behind `a`, planning a transfer
    /// if it does not have one. Returns the DataId the consumer should
    /// read (a ghost id for fetched copies).
    fn ensure_copy(
        &mut self,
        a: &Access,
        home: usize,
        node: usize,
        interconnect: &dyn Interconnect,
        xfers: &mut Vec<TransferPlan>,
    ) -> DataId {
        {
            let m = self.valid.entry(a.data).or_default();
            if m.is_empty() {
                // First sighting: the initial version lives at home.
                m.insert(home, a.data);
            }
            if let Some(&copy) = m.get(&node) {
                return copy;
            }
        }
        let ghost = DataId(self.next_ghost);
        self.next_ghost += 1;
        xfers.push(TransferPlan {
            accesses: vec![
                Access::read(a.data).with_bytes(a.bytes),
                Access::write(ghost).with_bytes(a.bytes),
            ],
            duration: interconnect.transfer_seconds(a.bytes),
            node,
            bytes: a.bytes,
        });
        self.transfers += 1;
        self.transfer_bytes += a.bytes;
        self.node_transfers[node] += 1;
        self.node_bytes[node] += a.bytes;
        self.valid
            .get_mut(&a.data)
            .expect("entry created above")
            .insert(node, ghost);
        ghost
    }

    /// Drop every copy held by `node` (permanent node failure): a later
    /// reader re-fetches from home.
    pub fn drop_node(&mut self, node: usize) {
        for copies in self.valid.values_mut() {
            copies.remove(&node);
        }
    }

    /// Transfers planned so far.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Total bytes moved by planned transfers.
    pub fn transfer_bytes(&self) -> u64 {
        self.transfer_bytes
    }

    /// Per-node inbound transfer counts.
    pub fn node_transfers(&self) -> &[u64] {
        &self.node_transfers
    }

    /// Per-node inbound transfer bytes.
    pub fn node_bytes(&self) -> &[u64] {
        &self.node_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interconnect::{Hockney, ZeroCost};

    #[test]
    fn remote_read_plans_one_transfer_and_reuses_copies() {
        let mut c = Coherence::new(2, 100);
        let d0 = DataId(0);
        // Producer writes on node 0.
        let (acc, x) = c.plan_compute(0, &[(Access::read_write(d0), 0)], &ZeroCost);
        assert_eq!(acc.len(), 1);
        assert!(x.is_empty());
        // First consumer on node 1 fetches.
        let (acc, x) = c.plan_compute(
            1,
            &[(Access::read(d0), 0), (Access::read_write(DataId(1)), 1)],
            &ZeroCost,
        );
        assert_eq!(x.len(), 1);
        assert_eq!(x[0].node, 1);
        assert_eq!(acc.len(), 3, "home read + ghost read + local write");
        // Second consumer on node 1 reuses the copy.
        let (_, x) = c.plan_compute(
            1,
            &[(Access::read(d0), 0), (Access::read_write(DataId(2)), 1)],
            &ZeroCost,
        );
        assert!(x.is_empty());
        assert_eq!(c.transfers(), 1);
        // A rewrite at home invalidates: next read refetches.
        c.plan_compute(0, &[(Access::read_write(d0), 0)], &ZeroCost);
        let (_, x) = c.plan_compute(
            1,
            &[(Access::read(d0), 0), (Access::read_write(DataId(1)), 1)],
            &ZeroCost,
        );
        assert_eq!(x.len(), 1);
        assert_eq!(c.transfers(), 2);
    }

    #[test]
    fn bytes_and_durations_come_from_the_interconnect() {
        let mut c = Coherence::new(2, 100);
        let d0 = DataId(0);
        c.plan_compute(
            0,
            &[(Access::read_write(d0).with_bytes(1_000_000), 0)],
            &ZeroCost,
        );
        let (_, x) = c.plan_compute(
            1,
            &[
                (Access::read(d0).with_bytes(1_000_000), 0),
                (Access::read_write(DataId(1)), 1),
            ],
            &Hockney::new(0.5, 1e6),
        );
        assert_eq!(x.len(), 1);
        assert_eq!(x[0].bytes, 1_000_000);
        assert!((x[0].duration - 1.5).abs() < 1e-12);
        assert_eq!(c.node_bytes(), &[0, 1_000_000]);
    }

    #[test]
    #[should_panic(expected = "owner-computes violated")]
    fn remote_write_is_rejected() {
        let mut c = Coherence::new(2, 10);
        c.plan_compute(1, &[(Access::write(DataId(0)), 0)], &ZeroCost);
    }

    #[test]
    fn drop_node_forces_refetch() {
        let mut c = Coherence::new(2, 100);
        let d0 = DataId(0);
        c.plan_compute(0, &[(Access::read_write(d0), 0)], &ZeroCost);
        c.plan_compute(
            1,
            &[(Access::read(d0), 0), (Access::read_write(DataId(1)), 1)],
            &ZeroCost,
        );
        assert_eq!(c.transfers(), 1);
        c.drop_node(1);
        let (_, x) = c.plan_compute(
            1,
            &[(Access::read(d0), 0), (Access::read_write(DataId(2)), 1)],
            &ZeroCost,
        );
        assert_eq!(x.len(), 1, "dropped copy must refetch");
    }
}
