//! Cluster shape: nodes, per-node workers, per-node NIC lanes, memory.

/// Description of the simulated machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterSpec {
    /// Number of nodes.
    pub nodes: usize,
    /// Compute workers per node.
    pub workers_per_node: usize,
    /// Communication lanes per node: how many transfers a node's NIC can
    /// have in flight concurrently in virtual time. 1 serializes (shared
    /// link), larger values cost each message independently.
    pub nic_lanes_per_node: usize,
    /// Memory per node in bytes (0 = unlimited). Advisory: drivers report
    /// per-node data footprints against it.
    pub mem_bytes_per_node: u64,
}

/// What a global worker index means inside a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lane {
    /// Compute worker `slot` of `node`.
    Compute { node: usize, slot: usize },
    /// NIC lane `slot` of `node`.
    Nic { node: usize, slot: usize },
}

impl ClusterSpec {
    /// A cluster of `nodes` x `workers_per_node`, one NIC lane per node,
    /// unlimited memory.
    pub fn new(nodes: usize, workers_per_node: usize) -> Self {
        assert!(nodes > 0, "cluster needs at least one node");
        assert!(workers_per_node > 0, "nodes need at least one worker");
        ClusterSpec {
            nodes,
            workers_per_node,
            nic_lanes_per_node: 1,
            mem_bytes_per_node: 0,
        }
    }

    /// Set the per-node NIC lane count.
    pub fn with_nic_lanes(mut self, lanes: usize) -> Self {
        assert!(lanes > 0, "nodes need at least one NIC lane");
        self.nic_lanes_per_node = lanes;
        self
    }

    /// Set the per-node memory budget in bytes.
    pub fn with_mem_bytes(mut self, bytes: u64) -> Self {
        self.mem_bytes_per_node = bytes;
        self
    }

    /// Total compute workers across all nodes.
    pub fn total_compute_workers(&self) -> usize {
        self.nodes * self.workers_per_node
    }

    /// Total runtime workers: every compute worker, then every NIC lane.
    /// Compute workers occupy global indices `[0, nodes*W)`; NIC lanes
    /// follow at `nodes*W + node*L + slot`.
    pub fn total_workers(&self) -> usize {
        self.nodes * (self.workers_per_node + self.nic_lanes_per_node)
    }

    /// Half-open global worker range of `node`'s compute workers.
    pub fn compute_range(&self, node: usize) -> (usize, usize) {
        assert!(node < self.nodes, "node {node} out of range");
        let lo = node * self.workers_per_node;
        (lo, lo + self.workers_per_node)
    }

    /// Half-open global worker range of `node`'s NIC lanes.
    pub fn nic_range(&self, node: usize) -> (usize, usize) {
        assert!(node < self.nodes, "node {node} out of range");
        let lo = self.nodes * self.workers_per_node + node * self.nic_lanes_per_node;
        (lo, lo + self.nic_lanes_per_node)
    }

    /// Classify a global worker index.
    pub fn lane_of(&self, worker: usize) -> Lane {
        let compute = self.nodes * self.workers_per_node;
        if worker < compute {
            Lane::Compute {
                node: worker / self.workers_per_node,
                slot: worker % self.workers_per_node,
            }
        } else {
            let k = worker - compute;
            assert!(
                k < self.nodes * self.nic_lanes_per_node,
                "worker {worker} out of range"
            );
            Lane::Nic {
                node: k / self.nic_lanes_per_node,
                slot: k % self.nic_lanes_per_node,
            }
        }
    }

    /// Human-readable lane label per global worker index
    /// (`n0.w3`, `n1.nic0`, ...), for trace rendering.
    pub fn lane_names(&self) -> Vec<String> {
        (0..self.total_workers())
            .map(|w| match self.lane_of(w) {
                Lane::Compute { node, slot } => format!("n{node}.w{slot}"),
                Lane::Nic { node, slot } => format!("n{node}.nic{slot}"),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_layout_is_compute_then_nic() {
        let s = ClusterSpec::new(2, 3).with_nic_lanes(2);
        assert_eq!(s.total_compute_workers(), 6);
        assert_eq!(s.total_workers(), 10);
        assert_eq!(s.compute_range(0), (0, 3));
        assert_eq!(s.compute_range(1), (3, 6));
        assert_eq!(s.nic_range(0), (6, 8));
        assert_eq!(s.nic_range(1), (8, 10));
    }

    #[test]
    fn lane_of_roundtrips() {
        let s = ClusterSpec::new(2, 3).with_nic_lanes(2);
        assert_eq!(s.lane_of(0), Lane::Compute { node: 0, slot: 0 });
        assert_eq!(s.lane_of(4), Lane::Compute { node: 1, slot: 1 });
        assert_eq!(s.lane_of(6), Lane::Nic { node: 0, slot: 0 });
        assert_eq!(s.lane_of(9), Lane::Nic { node: 1, slot: 1 });
    }

    #[test]
    fn lane_names_cover_all_workers() {
        let s = ClusterSpec::new(2, 2).with_nic_lanes(1);
        let names = s.lane_names();
        assert_eq!(
            names,
            vec!["n0.w0", "n0.w1", "n1.w0", "n1.w1", "n0.nic0", "n1.nic0"]
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn node_bounds_checked() {
        ClusterSpec::new(2, 2).compute_range(2);
    }
}
