//! Multi-node cluster simulation on top of the paper's single-node
//! protocol.
//!
//! The paper simulates superscalar scheduling on one shared-memory node;
//! this crate extends the same virtual-time machinery to a distributed-
//! memory machine. A [`ClusterSpec`] describes N nodes of W workers each,
//! plus per-node NIC lanes. All lanes — compute workers and NICs of every
//! node — are workers of **one** runtime sharing **one** Task Execution
//! Queue, so the completion-order invariant (tasks retire in virtual
//! completion order, clock advances monotonically) holds across nodes
//! without any cross-clock synchronization protocol.
//!
//! Data lives where an owner-computes [`Placement`] puts it. When a task
//! on node `n` reads a tile owned elsewhere, the [`ClusterEngine`] inserts
//! a *communication task*: a simulated task whose duration comes from the
//! [`Interconnect`] model and which is pinned to node `n`'s NIC lanes.
//! The consumer reads both the original tile and the received copy, so
//! the transfer orders correctly against producers (RaW), later writers
//! (WaR), and other consumers on the same node (copy reuse).
//!
//! Contention is emergent, not modeled analytically: a single-lane NIC
//! ([`SharedLink`]) can host only one in-flight transfer at a time in
//! virtual time, so concurrent arrivals serialize exactly as they would
//! on a real link; a multi-lane NIC ([`Hockney`]) costs each message
//! independently.

mod coherence;
mod engine;
mod interconnect;
mod placement;
mod spec;

pub use coherence::{Coherence, TransferPlan};
pub use engine::ClusterEngine;
pub use interconnect::{
    contention_free_completions, serialized_completions, Hockney, Interconnect, SharedLink,
    ZeroCost,
};
pub use placement::{BlockCyclic, Placement};
pub use spec::{ClusterSpec, Lane};

/// Kernel label used for the inserted communication tasks.
pub const TRANSFER_LABEL: &str = "xfer";
