//! The cluster engine: one runtime, one virtual clock, N nodes.

use crate::coherence::Coherence;
use crate::interconnect::Interconnect;
use crate::spec::{ClusterSpec, Lane};
use crate::TRANSFER_LABEL;
use std::sync::Arc;
use supersim_core::SimSession;
use supersim_dag::Access;
use supersim_runtime::{PolicyKind, Runtime, RuntimeConfig, RuntimeStats, TaskDesc};
use supersim_trace::Trace;

/// Simulates a distributed-memory machine on the paper's single-node
/// protocol.
///
/// Every lane of the cluster — each node's compute workers and NIC lanes —
/// is a worker of **one** runtime under the `Pinned` policy, and every
/// task (compute or transfer) goes through **one** shared Task Execution
/// Queue. Virtual time is therefore globally consistent by construction:
/// the TEQ's completion-order invariant is exactly the clock-sharing
/// invariant a distributed simulation needs, with no cross-node clock
/// protocol.
///
/// Drivers submit *compute* tasks with owner-computes accesses
/// ([`ClusterEngine::submit_compute`]); the engine inserts *transfer*
/// tasks automatically whenever a read crosses the placement. A transfer
/// reads the home tile, writes a fresh ghost tile on the consuming node,
/// takes [`Interconnect::transfer_seconds`] of virtual time, and is pinned
/// to the consuming node's NIC lanes — so link contention emerges from
/// NIC-lane occupancy, the same way the paper's compute contention emerges
/// from worker occupancy. The consuming task reads *both* the home tile
/// and the ghost: the ghost read orders it after the transfer, the home
/// read keeps the WaR edge against the tile's next writer, preserving the
/// single-node schedule under a zero-cost interconnect.
pub struct ClusterEngine {
    spec: ClusterSpec,
    interconnect: Arc<dyn Interconnect>,
    session: Arc<SimSession>,
    rt: Runtime,
    /// Copy tracking and transfer planning, shared with the DES replay
    /// backend (see [`Coherence`]).
    coherence: Coherence,
}

impl ClusterEngine {
    /// Build an engine over `spec`. `ghost_base` must be above every
    /// DataId the driver will submit (ghost tiles are allocated upward
    /// from it). The session's warm-up budget is set to one slot per
    /// compute worker, matching the first-call-per-worker effect of a
    /// single-node run of the same width.
    pub fn new(
        spec: ClusterSpec,
        interconnect: Arc<dyn Interconnect>,
        session: Arc<SimSession>,
        ghost_base: u64,
    ) -> Self {
        let rt = Runtime::new(RuntimeConfig {
            workers: spec.total_workers(),
            policy: PolicyKind::Pinned,
            window: usize::MAX,
            name: "cluster",
        });
        session.attach_quiesce(rt.probe());
        session.set_warmup_slots(spec.total_compute_workers());
        let nodes = spec.nodes;
        ClusterEngine {
            spec,
            interconnect,
            session,
            rt,
            coherence: Coherence::new(nodes, ghost_base),
        }
    }

    /// Submit one compute task to `node`. Each access comes with the
    /// owning node of its tile; writes must be local (owner-computes).
    /// Remote reads insert transfer tasks as needed (one per
    /// tile-per-node until the tile is rewritten — copies are reused).
    /// Returns the compute task's id.
    pub fn submit_compute(
        &mut self,
        node: usize,
        label: &str,
        accesses: &[(Access, usize)],
        priority: i64,
    ) -> u64 {
        assert!(node < self.spec.nodes, "node {node} out of range");
        let (acc, xfers) = self
            .coherence
            .plan_compute(node, accesses, &*self.interconnect);
        for x in xfers {
            let (lo, hi) = self.spec.nic_range(x.node);
            let session = self.session.clone();
            let duration = x.duration;
            let desc = TaskDesc::new(TRANSFER_LABEL, x.accesses, move |ctx| {
                session.run_fixed(ctx, TRANSFER_LABEL, duration)
            })
            .with_pin(lo, hi);
            self.rt.submit(desc);
        }
        let (lo, hi) = self.spec.compute_range(node);
        let body = self.session.planned_body(label);
        self.rt.submit(
            TaskDesc::new(label, acc, body)
                .with_priority(priority)
                .with_pin(lo, hi),
        )
    }

    /// Decommission a single global lane (see [`Runtime::decommission`]):
    /// a permanent single-worker failure on a node that keeps its other
    /// lanes. Do this before submitting work that must avoid the lane.
    pub fn decommission_lane(&self, worker: usize) {
        self.rt.decommission(worker);
    }

    /// Decommission every lane of `node` — compute workers and NIC lanes —
    /// modelling a permanent node failure. Do this *before* submitting
    /// work that must avoid the node: tasks pinned exclusively to its
    /// lanes can never run (see [`Runtime::decommission`]). Coherence
    /// copies held by the node are dropped from the valid map, so a
    /// (hypothetical) later reader would re-fetch from home.
    pub fn decommission_node(&mut self, node: usize) {
        assert!(node < self.spec.nodes, "node {node} out of range");
        let (lo, hi) = self.spec.compute_range(node);
        for w in lo..hi {
            self.rt.decommission(w);
        }
        let (lo, hi) = self.spec.nic_range(node);
        for w in lo..hi {
            self.rt.decommission(w);
        }
        self.coherence.drop_node(node);
    }

    /// Seal the runtime (no more submissions) and wait for everything to
    /// finish.
    pub fn seal_and_wait(&self) -> Result<(), Vec<String>> {
        self.rt.seal();
        self.rt.wait_all()
    }

    /// Predicted makespan so far (virtual seconds).
    pub fn virtual_now(&self) -> f64 {
        self.session.virtual_now()
    }

    /// Consume the virtual-time trace: one lane per cluster worker, NIC
    /// lanes after the compute lanes (see [`ClusterSpec::lane_names`]).
    pub fn finish_trace(&self) -> Trace {
        self.session.finish_trace(self.spec.total_workers())
    }

    /// Engine execution statistics of the underlying runtime.
    pub fn stats(&self) -> RuntimeStats {
        self.rt.stats()
    }

    /// The cluster shape.
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// The session driving the virtual clock.
    pub fn session(&self) -> &Arc<SimSession> {
        &self.session
    }

    /// The interconnect model in use.
    pub fn interconnect(&self) -> &Arc<dyn Interconnect> {
        &self.interconnect
    }

    /// Transfer tasks inserted so far.
    pub fn transfers(&self) -> u64 {
        self.coherence.transfers()
    }

    /// Total bytes moved by inserted transfers.
    pub fn transfer_bytes(&self) -> u64 {
        self.coherence.transfer_bytes()
    }

    /// Per-node inbound transfer counts.
    pub fn node_transfers(&self) -> &[u64] {
        self.coherence.node_transfers()
    }

    /// Per-node inbound transfer bytes.
    pub fn node_bytes(&self) -> &[u64] {
        self.coherence.node_bytes()
    }

    /// Total busy seconds of `node`'s NIC lanes in `trace`.
    pub fn nic_busy_seconds(&self, trace: &Trace, node: usize) -> f64 {
        let (lo, hi) = self.spec.nic_range(node);
        (lo..hi)
            .flat_map(|w| trace.lane(w))
            .map(|e| e.duration())
            .sum()
    }

    /// Publish the cluster's observability data into `snap`: session/TEQ
    /// instruments plus transfer counters (total and per node). NIC busy
    /// time needs the trace; pass it when available.
    #[cfg(feature = "metrics")]
    pub fn publish_metrics(
        &self,
        snap: &mut supersim_metrics::MetricsSnapshot,
        trace: Option<&Trace>,
    ) {
        self.session.publish_metrics(snap);
        snap.push_counter("cluster.transfers", self.coherence.transfers());
        snap.push_counter("cluster.transfer.bytes", self.coherence.transfer_bytes());
        snap.push_gauge("cluster.nodes", self.spec.nodes as i64);
        snap.push_gauge(
            "cluster.workers.per_node",
            self.spec.workers_per_node as i64,
        );
        for node in 0..self.spec.nodes {
            snap.push_counter(
                &format!("cluster.node.{node:02}.transfers"),
                self.coherence.node_transfers()[node],
            );
            snap.push_counter(
                &format!("cluster.node.{node:02}.transfer.bytes"),
                self.coherence.node_bytes()[node],
            );
            if let Some(t) = trace {
                let busy_us = (self.nic_busy_seconds(t, node) * 1e6).round() as i64;
                snap.push_gauge(&format!("cluster.node.{node:02}.nic.busy_us"), busy_us);
            }
        }
    }

    /// Classify a trace lane (delegates to the spec; handy for renderers).
    pub fn lane_of(&self, worker: usize) -> Lane {
        self.spec.lane_of(worker)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interconnect::{Hockney, ZeroCost};
    use supersim_core::{KernelModel, ModelRegistry, SimConfig};
    use supersim_dag::DataId;

    fn session(seed: u64) -> Arc<SimSession> {
        let mut models = ModelRegistry::new();
        models.insert("k", KernelModel::constant(1.0));
        SimSession::new(
            models,
            SimConfig {
                seed,
                ..SimConfig::default()
            },
        )
    }

    fn engine(ic: Arc<dyn Interconnect>) -> ClusterEngine {
        let lanes = ic.default_nic_lanes();
        ClusterEngine::new(
            ClusterSpec::new(2, 1).with_nic_lanes(lanes),
            ic,
            session(7),
            100,
        )
    }

    #[test]
    fn remote_read_inserts_one_transfer() {
        let mut e = engine(Arc::new(ZeroCost));
        let d0 = DataId(0);
        let d1 = DataId(1);
        // Producer on node 0, consumer on node 1.
        e.submit_compute(0, "k", &[(Access::read_write(d0), 0)], 0);
        e.submit_compute(
            1,
            "k",
            &[(Access::read(d0), 0), (Access::read_write(d1), 1)],
            0,
        );
        e.seal_and_wait().unwrap();
        assert_eq!(e.transfers(), 1);
        assert_eq!(e.node_transfers(), &[0, 1]);
        // Zero-cost transfer: chain of two 1s kernels.
        assert_eq!(e.virtual_now(), 2.0);
        let trace = e.finish_trace();
        // The transfer landed on node 1's NIC lane.
        assert_eq!(trace.lane(e.spec().nic_range(1).0).count(), 1);
        assert!(trace.validate(1e-9).is_ok());
    }

    #[test]
    fn copies_are_reused_until_invalidated_by_write() {
        let mut e = engine(Arc::new(ZeroCost));
        let d0 = DataId(0);
        let (d1, d2) = (DataId(1), DataId(2));
        e.submit_compute(0, "k", &[(Access::read_write(d0), 0)], 0);
        // Two consumers on node 1: one fetch, second reuses the copy.
        e.submit_compute(
            1,
            "k",
            &[(Access::read(d0), 0), (Access::read_write(d1), 1)],
            0,
        );
        e.submit_compute(
            1,
            "k",
            &[(Access::read(d0), 0), (Access::read_write(d2), 1)],
            0,
        );
        assert_eq!(e.transfers(), 1);
        // A rewrite at home invalidates node 1's copy: next read refetches.
        e.submit_compute(0, "k", &[(Access::read_write(d0), 0)], 0);
        e.submit_compute(
            1,
            "k",
            &[(Access::read(d0), 0), (Access::read_write(d1), 1)],
            0,
        );
        assert_eq!(e.transfers(), 2);
        e.seal_and_wait().unwrap();
        assert!(e.finish_trace().validate(1e-9).is_ok());
    }

    #[test]
    fn decommissioned_node_lanes_stay_idle() {
        let mut e = engine(Arc::new(ZeroCost));
        e.decommission_node(1);
        let d0 = DataId(0);
        // A 2-task chain on the surviving node runs to completion.
        e.submit_compute(0, "k", &[(Access::read_write(d0), 0)], 0);
        e.submit_compute(0, "k", &[(Access::read_write(d0), 0)], 0);
        e.seal_and_wait().unwrap();
        assert_eq!(e.virtual_now(), 2.0);
        let trace = e.finish_trace();
        let (lo, hi) = e.spec().compute_range(1);
        for w in lo..hi {
            assert_eq!(trace.lane(w).count(), 0, "dead lane {w} executed work");
        }
        let (lo, hi) = e.spec().nic_range(1);
        for w in lo..hi {
            assert_eq!(trace.lane(w).count(), 0, "dead NIC lane {w} executed work");
        }
    }

    #[test]
    fn hockney_latency_shows_up_in_makespan() {
        let mut e = engine(Arc::new(Hockney::new(0.5, 1e9)));
        let d0 = DataId(0);
        let d1 = DataId(1);
        e.submit_compute(0, "k", &[(Access::read_write(d0), 0)], 0);
        e.submit_compute(
            1,
            "k",
            &[(Access::read(d0), 0), (Access::read_write(d1), 1)],
            0,
        );
        e.seal_and_wait().unwrap();
        // 1s produce + 0.5s transfer (0 bytes) + 1s consume.
        assert!((e.virtual_now() - 2.5).abs() < 1e-12);
        assert_eq!(e.transfer_bytes(), 0);
    }

    #[test]
    #[should_panic(expected = "owner-computes violated")]
    fn remote_write_is_rejected() {
        let mut e = engine(Arc::new(ZeroCost));
        e.submit_compute(1, "k", &[(Access::write(DataId(0)), 0)], 0);
    }

    #[test]
    fn transfer_bytes_are_counted() {
        let mut e = engine(Arc::new(Hockney::new(0.0, 1e6)));
        let d0 = DataId(0);
        let d1 = DataId(1);
        e.submit_compute(
            0,
            "k",
            &[(Access::read_write(d0).with_bytes(2_000_000), 0)],
            0,
        );
        e.submit_compute(
            1,
            "k",
            &[
                (Access::read(d0).with_bytes(2_000_000), 0),
                (Access::read_write(d1), 1),
            ],
            0,
        );
        e.seal_and_wait().unwrap();
        assert_eq!(e.transfer_bytes(), 2_000_000);
        // 1s + 2s transfer + 1s.
        assert!((e.virtual_now() - 4.0).abs() < 1e-12);
        let trace = e.finish_trace();
        assert!((e.nic_busy_seconds(&trace, 1) - 2.0).abs() < 1e-12);
        assert_eq!(e.nic_busy_seconds(&trace, 0), 0.0);
    }
}
