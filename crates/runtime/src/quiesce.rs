//! The scheduler-quiescence query.
//!
//! Paper §V-E: QUARK gained "a function ... that allows the developer to
//! determine if the scheduler has completed all bookkeeping related to
//! scheduling", used by the simulator to close the race between a task
//! retiring from the Task Execution Queue and a just-released successor
//! inserting itself. This trait is the runtime-agnostic form of that query;
//! `supersim-core` consumes it through an `Arc<dyn Quiesce>`.

/// Query/wait interface for scheduler bookkeeping quiescence.
pub trait Quiesce: Send + Sync {
    /// True when no task is in its dispatch window (popped from the ready
    /// queue but not yet registered) **and** no ready task is waiting while
    /// a worker sits idle. When this holds, every task that could have
    /// started before the caller's completion time has already made itself
    /// visible to the simulation.
    fn quiescent(&self) -> bool;

    /// Block until [`Quiesce::quiescent`] holds.
    fn wait_quiescent(&self);

    /// Number of tasks whose completion has been fully propagated
    /// (successors released) by the scheduler.
    fn completed(&self) -> u64;

    /// Block until at least `min_completed` completions have propagated
    /// **and** [`Quiesce::quiescent`] holds.
    ///
    /// The simulation layer calls this with the number of tasks already
    /// retired from the Task Execution Queue: a task that has retired but
    /// whose completion the scheduler has not yet propagated may still
    /// release a successor with an earlier virtual completion, so the
    /// caller must not retire until those propagations settle.
    fn wait_settled(&self, min_completed: u64);
}

/// A trivially quiescent implementation (for tests and for the offline DES
/// baseline, which has no concurrent scheduler to wait for).
#[derive(Debug, Default, Clone, Copy)]
pub struct AlwaysQuiescent;

impl Quiesce for AlwaysQuiescent {
    fn quiescent(&self) -> bool {
        true
    }

    fn wait_quiescent(&self) {}

    fn completed(&self) -> u64 {
        u64::MAX
    }

    fn wait_settled(&self, _min_completed: u64) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_quiescent_never_blocks() {
        let q = AlwaysQuiescent;
        assert!(q.quiescent());
        q.wait_quiescent(); // must return immediately
    }

    #[test]
    fn trait_object_usable() {
        let q: std::sync::Arc<dyn Quiesce> = std::sync::Arc::new(AlwaysQuiescent);
        assert!(q.quiescent());
    }
}
