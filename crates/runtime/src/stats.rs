//! Runtime execution statistics.

use serde::{Deserialize, Serialize};

/// Aggregate counters collected by the engine during a run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RuntimeStats {
    /// Tasks executed per worker.
    pub per_worker_tasks: Vec<u64>,
    /// Wall-clock busy seconds per worker (time inside task bodies).
    pub per_worker_busy: Vec<f64>,
    /// Total tasks completed.
    pub completed: u64,
    /// Tasks whose body panicked (caught and recorded).
    pub failed: u64,
    /// Tasks cancelled before execution via [`abort_pending`].
    ///
    /// [`abort_pending`]: crate::engine::Runtime::abort_pending
    pub cancelled: u64,
    /// Times a worker went to sleep on the work queue (busy -> parked).
    /// High values relative to `completed` mean workers are starved.
    pub idle_transitions: u64,
    /// Times a worker picked up a task (parked/scanning -> executing).
    pub busy_transitions: u64,
    /// Hot-path engine-lock acquisitions: task submission, worker task
    /// acquire, dispatch registration, and completion propagation. Cold
    /// paths (stats reads, seal, quiescence probes) are not counted.
    pub lock_acquisitions: u64,
}

impl RuntimeStats {
    /// New zeroed stats for `workers` lanes.
    pub fn new(workers: usize) -> Self {
        RuntimeStats {
            per_worker_tasks: vec![0; workers],
            per_worker_busy: vec![0.0; workers],
            completed: 0,
            failed: 0,
            cancelled: 0,
            idle_transitions: 0,
            busy_transitions: 0,
            lock_acquisitions: 0,
        }
    }

    /// Publish these statistics as `engine.*` metrics. Counter pushes
    /// accumulate, so stats from several runtimes sum into one snapshot.
    #[cfg(feature = "metrics")]
    pub fn publish_metrics(&self, snap: &mut supersim_metrics::MetricsSnapshot) {
        snap.push_counter("engine.tasks.completed", self.completed);
        snap.push_counter("engine.tasks.failed", self.failed);
        snap.push_counter("engine.tasks.cancelled", self.cancelled);
        snap.push_counter("engine.worker.idle_transitions", self.idle_transitions);
        snap.push_counter("engine.worker.busy_transitions", self.busy_transitions);
        snap.push_counter("engine.lock.acquisitions", self.lock_acquisitions);
        snap.push_gauge("engine.workers", self.per_worker_tasks.len() as i64);
    }

    /// Imbalance ratio: max per-worker task count over mean (1.0 = perfectly
    /// balanced; 0 when nothing ran).
    pub fn imbalance(&self) -> f64 {
        let total: u64 = self.per_worker_tasks.iter().sum();
        if total == 0 || self.per_worker_tasks.is_empty() {
            return 0.0;
        }
        let mean = total as f64 / self.per_worker_tasks.len() as f64;
        let max = *self.per_worker_tasks.iter().max().unwrap() as f64;
        max / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_zeroed() {
        let s = RuntimeStats::new(3);
        assert_eq!(s.per_worker_tasks, vec![0, 0, 0]);
        assert_eq!(s.completed, 0);
        assert_eq!(s.imbalance(), 0.0);
    }

    #[test]
    fn imbalance_perfectly_balanced() {
        let mut s = RuntimeStats::new(2);
        s.per_worker_tasks = vec![5, 5];
        assert!((s.imbalance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn imbalance_skewed() {
        let mut s = RuntimeStats::new(2);
        s.per_worker_tasks = vec![10, 0];
        assert!((s.imbalance() - 2.0).abs() < 1e-12);
    }

    #[cfg(feature = "metrics")]
    #[test]
    fn publish_metrics_emits_engine_family() {
        let mut s = RuntimeStats::new(3);
        s.completed = 7;
        s.idle_transitions = 2;
        s.busy_transitions = 9;
        s.lock_acquisitions = 20;
        let mut snap = supersim_metrics::MetricsSnapshot::default();
        s.publish_metrics(&mut snap);
        assert_eq!(snap.counter("engine.tasks.completed"), Some(7));
        assert_eq!(snap.counter("engine.worker.idle_transitions"), Some(2));
        assert_eq!(snap.counter("engine.worker.busy_transitions"), Some(9));
        assert_eq!(snap.counter("engine.lock.acquisitions"), Some(20));
        assert_eq!(snap.gauge("engine.workers"), Some(3));
        // A second runtime's stats accumulate into the same snapshot.
        s.publish_metrics(&mut snap);
        assert_eq!(snap.counter("engine.tasks.completed"), Some(14));
    }
}
