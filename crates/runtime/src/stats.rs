//! Runtime execution statistics.

use serde::{Deserialize, Serialize};

/// Aggregate counters collected by the engine during a run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RuntimeStats {
    /// Tasks executed per worker.
    pub per_worker_tasks: Vec<u64>,
    /// Wall-clock busy seconds per worker (time inside task bodies).
    pub per_worker_busy: Vec<f64>,
    /// Total tasks completed.
    pub completed: u64,
    /// Tasks whose body panicked (caught and recorded).
    pub failed: u64,
    /// Tasks cancelled before execution via [`abort_pending`].
    ///
    /// [`abort_pending`]: crate::engine::Runtime::abort_pending
    pub cancelled: u64,
}

impl RuntimeStats {
    /// New zeroed stats for `workers` lanes.
    pub fn new(workers: usize) -> Self {
        RuntimeStats {
            per_worker_tasks: vec![0; workers],
            per_worker_busy: vec![0.0; workers],
            completed: 0,
            failed: 0,
            cancelled: 0,
        }
    }

    /// Imbalance ratio: max per-worker task count over mean (1.0 = perfectly
    /// balanced; 0 when nothing ran).
    pub fn imbalance(&self) -> f64 {
        let total: u64 = self.per_worker_tasks.iter().sum();
        if total == 0 || self.per_worker_tasks.is_empty() {
            return 0.0;
        }
        let mean = total as f64 / self.per_worker_tasks.len() as f64;
        let max = *self.per_worker_tasks.iter().max().unwrap() as f64;
        max / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_zeroed() {
        let s = RuntimeStats::new(3);
        assert_eq!(s.per_worker_tasks, vec![0, 0, 0]);
        assert_eq!(s.completed, 0);
        assert_eq!(s.imbalance(), 0.0);
    }

    #[test]
    fn imbalance_perfectly_balanced() {
        let mut s = RuntimeStats::new(2);
        s.per_worker_tasks = vec![5, 5];
        assert!((s.imbalance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn imbalance_skewed() {
        let mut s = RuntimeStats::new(2);
        s.per_worker_tasks = vec![10, 0];
        assert!((s.imbalance() - 2.0).abs() < 1e-12);
    }
}
