//! Task descriptors and the execution context handed to task bodies.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use supersim_dag::Access;

/// The function a task runs. Receives the [`TaskContext`] so the body can
/// learn its identity/placement and (for simulated kernels) signal
/// registration to the quiescence machinery.
pub type TaskBody = Box<dyn FnOnce(&TaskContext) + Send + 'static>;

/// A task submitted to the runtime.
pub struct TaskDesc {
    /// Kernel-class label (used for traces and duration models).
    pub label: String,
    /// Data accesses; hazards against earlier submissions become
    /// dependences.
    pub accesses: Vec<Access>,
    /// Scheduling priority (higher runs first under the `Priority` policy;
    /// ignored by FIFO policies).
    pub priority: i64,
    /// Restrict execution to the half-open worker range `[start, end)`.
    /// `None` means any worker. Only the `Pinned` policy honors pins;
    /// other policies ignore them.
    pub pin: Option<(usize, usize)>,
    /// The task body.
    pub body: TaskBody,
}

impl TaskDesc {
    /// Convenience constructor.
    pub fn new(
        label: impl Into<String>,
        accesses: Vec<Access>,
        body: impl FnOnce(&TaskContext) + Send + 'static,
    ) -> Self {
        TaskDesc {
            label: label.into(),
            accesses,
            priority: 0,
            pin: None,
            body: Box::new(body),
        }
    }

    /// Set the scheduling priority.
    pub fn with_priority(mut self, priority: i64) -> Self {
        self.priority = priority;
        self
    }

    /// Pin the task to the half-open worker range `[start, end)`.
    pub fn with_pin(mut self, start: usize, end: usize) -> Self {
        assert!(start < end, "empty pin range [{start}, {end})");
        self.pin = Some((start, end));
        self
    }
}

impl std::fmt::Debug for TaskDesc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskDesc")
            .field("label", &self.label)
            .field("accesses", &self.accesses)
            .field("priority", &self.priority)
            .finish_non_exhaustive()
    }
}

/// Shared token that tracks whether an executing task has completed its
/// "dispatch registration" — for simulated kernels, the moment the task has
/// inserted itself into the Task Execution Queue. The runtime counts tasks
/// whose token is still unregistered ("in dispatch") for the quiescence
/// query; see paper §V-E.
#[derive(Debug)]
pub struct DispatchToken {
    registered: AtomicBool,
}

impl DispatchToken {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(DispatchToken {
            registered: AtomicBool::new(false),
        })
    }

    /// Mark registered; returns true on the first call only.
    pub(crate) fn set(&self) -> bool {
        !self.registered.swap(true, Ordering::AcqRel)
    }

    /// Whether registration happened.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn is_set(&self) -> bool {
        self.registered.load(Ordering::Acquire)
    }
}

/// Per-execution context passed to the task body.
pub struct TaskContext {
    /// Worker index executing this task.
    pub worker: usize,
    /// The task's stable id (submission order).
    pub task_id: u64,
    /// Kernel-class label.
    pub label: String,
    pub(crate) token: Arc<DispatchToken>,
    pub(crate) on_register: Arc<dyn Fn() + Send + Sync>,
}

impl TaskContext {
    /// Signal that the task has finished its scheduling-visible setup (for
    /// a simulated kernel: inserted itself into the Task Execution Queue).
    ///
    /// Until this is called — or the body returns, whichever happens first
    /// — the runtime reports the task as "in dispatch" and the quiescence
    /// query returns false. Idempotent.
    pub fn mark_registered(&self) {
        if self.token.set() {
            (self.on_register)();
        }
    }

    pub(crate) fn finish_registration(&self) {
        self.mark_registered();
    }
}

impl std::fmt::Debug for TaskContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskContext")
            .field("worker", &self.worker)
            .field("task_id", &self.task_id)
            .field("label", &self.label)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn desc_builder() {
        let d = TaskDesc::new("gemm", vec![], |_| {}).with_priority(7);
        assert_eq!(d.label, "gemm");
        assert_eq!(d.priority, 7);
        assert_eq!(d.pin, None);
        assert!(format!("{d:?}").contains("gemm"));
        let p = TaskDesc::new("xfer", vec![], |_| {}).with_pin(4, 8);
        assert_eq!(p.pin, Some((4, 8)));
    }

    #[test]
    fn dispatch_token_set_once() {
        let t = DispatchToken::new();
        assert!(!t.is_set());
        assert!(t.set());
        assert!(t.is_set());
        assert!(!t.set(), "second set must report already-registered");
    }

    #[test]
    fn context_register_fires_callback_once() {
        use std::sync::atomic::AtomicUsize;
        let count = Arc::new(AtomicUsize::new(0));
        let c2 = count.clone();
        let ctx = TaskContext {
            worker: 0,
            task_id: 1,
            label: "x".into(),
            token: DispatchToken::new(),
            on_register: Arc::new(move || {
                c2.fetch_add(1, Ordering::SeqCst);
            }),
        };
        ctx.mark_registered();
        ctx.mark_registered();
        ctx.finish_registration();
        assert_eq!(count.load(Ordering::SeqCst), 1);
    }
}
