//! Ready-queue scheduling policies.
//!
//! All policies run under the engine's central lock; what differs is the
//! *order* in which ready tasks are handed to workers — the property that
//! distinguishes the three schedulers' traces in the paper's figures.

use crate::config::PolicyKind;
use std::collections::{BinaryHeap, VecDeque};

/// Metadata the policy may use to place a task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReadyMeta {
    /// Task priority (higher first under `Priority`).
    pub priority: i64,
    /// Worker that released the task (completed its last dependence), or
    /// `None` if it was ready at submission.
    pub releaser: Option<usize>,
    /// Affinity key (e.g. the task's first written data region id).
    pub affinity: Option<u64>,
    /// Half-open worker range the task is pinned to (`None` = any).
    pub pin: Option<(usize, usize)>,
}

/// A ready-queue policy. Implementations are driven under the engine lock,
/// so they need no internal synchronization.
pub trait Policy: Send {
    /// Enqueue a task that became ready.
    fn push(&mut self, task: u64, meta: ReadyMeta);
    /// Dequeue a task for `worker` (may steal from other queues).
    fn pop(&mut self, worker: usize) -> Option<u64>;
    /// Total queued tasks.
    fn len(&self) -> usize;
    /// Whether no tasks are queued.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Whether the queue can make no progress given per-worker busy flags
    /// (`busy[w]` is true while worker `w` executes a task). Used by the
    /// engine's quiescence query: the system has settled when every queued
    /// task is stalled behind busy workers. The default covers policies
    /// where any idle worker can take any task.
    fn stalled(&self, busy: &[bool]) -> bool {
        self.is_empty() || busy.iter().all(|&b| b)
    }
    /// Whether ready-task wakeups must be broadcast to all workers.
    /// Policies where only specific workers are eligible for a given task
    /// return true so a targeted `notify_one` cannot land on an ineligible
    /// worker and get lost.
    fn broadcast_wakeups(&self) -> bool {
        false
    }
}

/// Instantiate the policy for a configuration.
pub fn make_policy(kind: PolicyKind, workers: usize) -> Box<dyn Policy> {
    match kind {
        PolicyKind::CentralFifo => Box::new(CentralFifo::default()),
        PolicyKind::CentralLifo => Box::new(CentralLifo::default()),
        PolicyKind::Priority => Box::new(PriorityQueue::default()),
        PolicyKind::WorkStealing => Box::new(WorkStealing::new(workers)),
        PolicyKind::LocalityAware => Box::new(LocalityAware::new(workers)),
        PolicyKind::Pinned => Box::new(PinnedQueue::default()),
    }
}

/// Global FIFO (QUARK-style dispatch order).
#[derive(Debug, Default)]
pub struct CentralFifo {
    queue: VecDeque<u64>,
}

impl Policy for CentralFifo {
    fn push(&mut self, task: u64, _meta: ReadyMeta) {
        self.queue.push_back(task);
    }

    fn pop(&mut self, _worker: usize) -> Option<u64> {
        self.queue.pop_front()
    }

    fn len(&self) -> usize {
        self.queue.len()
    }
}

/// Global LIFO (depth-first).
#[derive(Debug, Default)]
pub struct CentralLifo {
    stack: Vec<u64>,
}

impl Policy for CentralLifo {
    fn push(&mut self, task: u64, _meta: ReadyMeta) {
        self.stack.push(task);
    }

    fn pop(&mut self, _worker: usize) -> Option<u64> {
        self.stack.pop()
    }

    fn len(&self) -> usize {
        self.stack.len()
    }
}

/// Priority queue: higher `priority` first, FIFO among equals.
#[derive(Debug, Default)]
pub struct PriorityQueue {
    heap: BinaryHeap<PrioEntry>,
    seq: u64,
}

#[derive(Debug, PartialEq, Eq)]
struct PrioEntry {
    priority: i64,
    // Negated submission sequence so earlier submissions win ties.
    neg_seq: i64,
    task: u64,
}

impl Ord for PrioEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.priority, self.neg_seq).cmp(&(other.priority, other.neg_seq))
    }
}

impl PartialOrd for PrioEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Policy for PriorityQueue {
    fn push(&mut self, task: u64, meta: ReadyMeta) {
        self.seq += 1;
        self.heap.push(PrioEntry {
            priority: meta.priority,
            neg_seq: -(self.seq as i64),
            task,
        });
    }

    fn pop(&mut self, _worker: usize) -> Option<u64> {
        self.heap.pop().map(|e| e.task)
    }

    fn len(&self) -> usize {
        self.heap.len()
    }
}

/// Per-worker deques with stealing (StarPU `ws`).
///
/// A ready task goes to its releaser's deque (locality); tasks ready at
/// submission go round-robin. Owners pop LIFO (their hottest data), thieves
/// steal FIFO (the victim's coldest), the classic Chase–Lev discipline.
#[derive(Debug)]
pub struct WorkStealing {
    deques: Vec<VecDeque<u64>>,
    rr: usize,
    /// Steals per worker (exposed for stats/tests).
    pub steals: Vec<u64>,
}

impl WorkStealing {
    /// Create with one deque per worker.
    pub fn new(workers: usize) -> Self {
        WorkStealing {
            deques: (0..workers.max(1)).map(|_| VecDeque::new()).collect(),
            rr: 0,
            steals: vec![0; workers.max(1)],
        }
    }
}

impl Policy for WorkStealing {
    fn push(&mut self, task: u64, meta: ReadyMeta) {
        let w = match meta.releaser {
            Some(w) if w < self.deques.len() => w,
            _ => {
                self.rr = (self.rr + 1) % self.deques.len();
                self.rr
            }
        };
        self.deques[w].push_back(task);
    }

    fn pop(&mut self, worker: usize) -> Option<u64> {
        let w = worker % self.deques.len();
        // Own deque: LIFO.
        if let Some(t) = self.deques[w].pop_back() {
            return Some(t);
        }
        // Steal: FIFO from the longest victim queue.
        let victim = (0..self.deques.len())
            .filter(|&v| v != w && !self.deques[v].is_empty())
            .max_by_key(|&v| self.deques[v].len())?;
        self.steals[w] += 1;
        self.deques[victim].pop_front()
    }

    fn len(&self) -> usize {
        self.deques.iter().map(|d| d.len()).sum()
    }
}

/// Locality-aware per-worker queues (OmpSs-style): tasks are binned by an
/// affinity key (owner-computes); stealing allowed on empty queues.
#[derive(Debug)]
pub struct LocalityAware {
    queues: Vec<VecDeque<u64>>,
    rr: usize,
}

impl LocalityAware {
    /// Create with one queue per worker.
    pub fn new(workers: usize) -> Self {
        LocalityAware {
            queues: (0..workers.max(1)).map(|_| VecDeque::new()).collect(),
            rr: 0,
        }
    }
}

impl Policy for LocalityAware {
    fn push(&mut self, task: u64, meta: ReadyMeta) {
        let w = match meta.affinity {
            Some(key) => (key % self.queues.len() as u64) as usize,
            None => {
                self.rr = (self.rr + 1) % self.queues.len();
                self.rr
            }
        };
        self.queues[w].push_back(task);
    }

    fn pop(&mut self, worker: usize) -> Option<u64> {
        let w = worker % self.queues.len();
        if let Some(t) = self.queues[w].pop_front() {
            return Some(t);
        }
        (0..self.queues.len())
            .filter(|&v| v != w)
            .find_map(|v| self.queues[v].pop_front())
    }

    fn len(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }
}

/// FIFO with worker-range pins (cluster node/NIC lanes).
///
/// Tasks carrying a `pin` range may only be popped by workers inside it;
/// unpinned tasks go to anyone. `pop` scans for the first eligible entry,
/// preserving FIFO order within each pin class. O(queue) per pop, which is
/// fine at cluster scale (ready queues stay short in virtual time).
#[derive(Debug, Default)]
pub struct PinnedQueue {
    queue: VecDeque<(u64, Option<(usize, usize)>)>,
}

fn pin_admits(pin: Option<(usize, usize)>, worker: usize) -> bool {
    match pin {
        None => true,
        Some((start, end)) => worker >= start && worker < end,
    }
}

impl Policy for PinnedQueue {
    fn push(&mut self, task: u64, meta: ReadyMeta) {
        self.queue.push_back((task, meta.pin));
    }

    fn pop(&mut self, worker: usize) -> Option<u64> {
        let idx = self
            .queue
            .iter()
            .position(|&(_, pin)| pin_admits(pin, worker))?;
        self.queue.remove(idx).map(|(t, _)| t)
    }

    fn len(&self) -> usize {
        self.queue.len()
    }

    fn stalled(&self, busy: &[bool]) -> bool {
        self.queue
            .iter()
            .all(|&(_, pin)| (0..busy.len()).all(|w| !pin_admits(pin, w) || busy[w]))
    }

    fn broadcast_wakeups(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> ReadyMeta {
        ReadyMeta {
            priority: 0,
            releaser: None,
            affinity: None,
            pin: None,
        }
    }

    #[test]
    fn fifo_order() {
        let mut p = CentralFifo::default();
        for t in 0..5 {
            p.push(t, meta());
        }
        assert_eq!(p.len(), 5);
        for t in 0..5 {
            assert_eq!(p.pop(0), Some(t));
        }
        assert_eq!(p.pop(0), None);
        assert!(p.is_empty());
    }

    #[test]
    fn lifo_order() {
        let mut p = CentralLifo::default();
        for t in 0..3 {
            p.push(t, meta());
        }
        assert_eq!(p.pop(0), Some(2));
        assert_eq!(p.pop(0), Some(1));
        assert_eq!(p.pop(0), Some(0));
    }

    #[test]
    fn priority_order_with_fifo_ties() {
        let mut p = PriorityQueue::default();
        p.push(
            10,
            ReadyMeta {
                priority: 1,
                ..meta()
            },
        );
        p.push(
            11,
            ReadyMeta {
                priority: 5,
                ..meta()
            },
        );
        p.push(
            12,
            ReadyMeta {
                priority: 5,
                ..meta()
            },
        );
        p.push(
            13,
            ReadyMeta {
                priority: 0,
                ..meta()
            },
        );
        assert_eq!(p.pop(0), Some(11)); // highest priority, earliest
        assert_eq!(p.pop(0), Some(12));
        assert_eq!(p.pop(0), Some(10));
        assert_eq!(p.pop(0), Some(13));
    }

    #[test]
    fn work_stealing_prefers_own_then_steals() {
        let mut p = WorkStealing::new(2);
        p.push(
            1,
            ReadyMeta {
                releaser: Some(0),
                ..meta()
            },
        );
        p.push(
            2,
            ReadyMeta {
                releaser: Some(0),
                ..meta()
            },
        );
        p.push(
            3,
            ReadyMeta {
                releaser: Some(1),
                ..meta()
            },
        );
        // Worker 0 pops own deque LIFO: 2 first.
        assert_eq!(p.pop(0), Some(2));
        assert_eq!(p.pop(0), Some(1));
        // Now worker 0 must steal from worker 1 (FIFO side).
        assert_eq!(p.pop(0), Some(3));
        assert_eq!(p.steals[0], 1);
        assert_eq!(p.pop(0), None);
    }

    #[test]
    fn work_stealing_round_robins_unattributed() {
        // Three unattributed pushes land on three different deques, so
        // each worker can pop one from its own deque without stealing.
        let mut p = WorkStealing::new(3);
        for t in 0..3 {
            p.push(t, meta()); // releaser None -> round robin
        }
        let mut got = Vec::new();
        for w in 0..3 {
            got.push(p.pop(w).expect("each worker should find a local task"));
        }
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2]);
        assert_eq!(p.steals, vec![0, 0, 0], "no stealing should be needed");
    }

    #[test]
    fn locality_bins_by_affinity() {
        let mut p = LocalityAware::new(4);
        p.push(
            1,
            ReadyMeta {
                affinity: Some(2),
                ..meta()
            },
        );
        p.push(
            2,
            ReadyMeta {
                affinity: Some(2),
                ..meta()
            },
        );
        p.push(
            3,
            ReadyMeta {
                affinity: Some(6),
                ..meta()
            },
        ); // 6 % 4 == 2
           // Worker 2 gets them FIFO.
        assert_eq!(p.pop(2), Some(1));
        assert_eq!(p.pop(2), Some(2));
        assert_eq!(p.pop(2), Some(3));
    }

    #[test]
    fn locality_allows_stealing() {
        let mut p = LocalityAware::new(2);
        p.push(
            9,
            ReadyMeta {
                affinity: Some(1),
                ..meta()
            },
        );
        assert_eq!(
            p.pop(0),
            Some(9),
            "worker 0 must steal from worker 1's queue"
        );
    }

    #[test]
    fn make_policy_constructs_each_kind() {
        for kind in [
            PolicyKind::CentralFifo,
            PolicyKind::CentralLifo,
            PolicyKind::Priority,
            PolicyKind::WorkStealing,
            PolicyKind::LocalityAware,
            PolicyKind::Pinned,
        ] {
            let mut p = make_policy(kind, 2);
            p.push(1, meta());
            assert_eq!(p.len(), 1);
            assert_eq!(p.pop(0), Some(1));
        }
    }

    #[test]
    fn pinned_respects_worker_ranges() {
        let mut p = PinnedQueue::default();
        p.push(
            1,
            ReadyMeta {
                pin: Some((2, 4)),
                ..meta()
            },
        );
        p.push(2, meta()); // unpinned
                           // Worker 0 is outside [2, 4): skips task 1, takes the unpinned one.
        assert_eq!(p.pop(0), Some(2));
        assert_eq!(p.pop(0), None);
        assert_eq!(p.pop(3), Some(1));
    }

    #[test]
    fn pinned_keeps_fifo_within_range() {
        let mut p = PinnedQueue::default();
        for t in 0..3 {
            p.push(
                t,
                ReadyMeta {
                    pin: Some((0, 1)),
                    ..meta()
                },
            );
        }
        assert_eq!(p.pop(0), Some(0));
        assert_eq!(p.pop(0), Some(1));
        assert_eq!(p.pop(0), Some(2));
    }

    #[test]
    fn pinned_stalled_looks_past_busy_lanes() {
        let mut p = PinnedQueue::default();
        p.push(
            7,
            ReadyMeta {
                pin: Some((1, 2)),
                ..meta()
            },
        );
        // Only worker 1 is eligible: stalled iff worker 1 is busy, no
        // matter how many other workers idle.
        assert!(p.stalled(&[false, true, false]));
        assert!(!p.stalled(&[true, false, true]));
        assert!(p.broadcast_wakeups());
        // Default policies keep the old predicate.
        let f = CentralFifo::default();
        assert!(f.stalled(&[true, false])); // empty queue
        assert!(!f.broadcast_wakeups());
    }

    #[test]
    fn default_stalled_matches_legacy_predicate() {
        let mut p = CentralFifo::default();
        p.push(1, meta());
        assert!(!p.stalled(&[false, true]), "an idle worker can take it");
        assert!(p.stalled(&[true, true]), "all busy -> settled");
    }
}
