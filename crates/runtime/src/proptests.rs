//! Property-based tests of the runtime engine: random access streams must
//! execute completely, exactly once, in hazard order, under every policy.

#![cfg(test)]

use crate::config::{PolicyKind, RuntimeConfig};
use crate::engine::Runtime;
use crate::task::TaskDesc;
use parking_lot::Mutex;
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use supersim_dag::{Access, AccessMode, DataId};

fn access_strategy() -> impl Strategy<Value = Access> {
    (0u64..6, 0u8..3).prop_map(|(d, m)| Access {
        data: DataId(d),
        mode: match m {
            0 => AccessMode::Read,
            1 => AccessMode::Write,
            _ => AccessMode::ReadWrite,
        },
        bytes: 0,
    })
}

fn policy_strategy() -> impl Strategy<Value = PolicyKind> {
    prop_oneof![
        Just(PolicyKind::CentralFifo),
        Just(PolicyKind::CentralLifo),
        Just(PolicyKind::Priority),
        Just(PolicyKind::WorkStealing),
        Just(PolicyKind::LocalityAware),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every submitted task runs exactly once, and for each data region the
    /// observed sequence of (writer-epoch, mode) respects hazard order.
    #[test]
    fn random_streams_execute_in_hazard_order(
        stream in prop::collection::vec(prop::collection::vec(access_strategy(), 1..3), 1..30),
        workers in 1usize..5,
        policy in policy_strategy(),
        window in prop_oneof![Just(2usize), Just(8), Just(usize::MAX)],
    ) {
        let cfg = RuntimeConfig { workers, policy, window, name: "prop" };
        let rt = Runtime::new(cfg);
        let executed = Arc::new(AtomicU64::new(0));
        // Per-data write counters: readers snapshot, writers bump. If the
        // runtime respects hazards, a reader never observes a counter
        // change mid-flight and writers are serialized.
        let counters: Arc<Vec<AtomicU64>> =
            Arc::new((0..6).map(|_| AtomicU64::new(0)).collect());
        let violations = Arc::new(Mutex::new(Vec::<String>::new()));

        for (i, accesses) in stream.iter().enumerate() {
            let accesses = supersim_dag::normalize_accesses(accesses);
            let executed = executed.clone();
            let counters = counters.clone();
            let violations = violations.clone();
            let acc2 = accesses.clone();
            rt.submit(TaskDesc::new(format!("t{i}"), accesses, move |_ctx| {
                // Snapshot all read regions, do "work", verify unchanged.
                let before: Vec<(usize, u64)> = acc2
                    .iter()
                    .filter(|a| a.mode == AccessMode::Read)
                    .map(|a| (a.data.0 as usize, counters[a.data.0 as usize].load(Ordering::SeqCst)))
                    .collect();
                for a in &acc2 {
                    if a.mode.writes() {
                        counters[a.data.0 as usize].fetch_add(1, Ordering::SeqCst);
                    }
                }
                std::thread::yield_now();
                for (d, v) in before {
                    let now = counters[d].load(Ordering::SeqCst);
                    if now != v {
                        violations.lock().push(format!(
                            "task {i}: read region {d} changed {v} -> {now} mid-task"
                        ));
                    }
                }
                executed.fetch_add(1, Ordering::SeqCst);
            }));
        }
        rt.seal();
        rt.wait_all().unwrap();
        prop_assert_eq!(executed.load(Ordering::SeqCst), stream.len() as u64);
        let v = violations.lock();
        prop_assert!(v.is_empty(), "hazard violations: {:?}", *v);
        prop_assert_eq!(rt.stats().completed, stream.len() as u64);
    }

    /// The wall-clock trace recorded by the engine is always a valid
    /// schedule (no same-lane overlap), for any policy and worker count.
    #[test]
    fn recorded_traces_are_valid(
        tasks in 1usize..40,
        workers in 1usize..5,
        policy in policy_strategy(),
    ) {
        let recorder = supersim_trace::TraceRecorder::new();
        let cfg = RuntimeConfig { workers, policy, window: usize::MAX, name: "prop" };
        let rt = Runtime::with_trace(cfg, Some(recorder.clone()));
        for i in 0..tasks {
            rt.submit(TaskDesc::new("t", vec![Access::write(DataId(i as u64 % 7))], |_| {}));
        }
        rt.seal();
        rt.wait_all().unwrap();
        let trace = recorder.finish(workers);
        prop_assert_eq!(trace.len(), tasks);
        prop_assert!(trace.validate(1e-7).is_ok());
    }
}
