//! The runtime engine: submission-side hazard tracking, worker threads,
//! dispatch, completion propagation, and the quiescence machinery.

use crate::config::RuntimeConfig;
use crate::hazards::HazardTracker;
use crate::policy::{make_policy, Policy, ReadyMeta};
use crate::quiesce::Quiesce;
use crate::stats::RuntimeStats;
use crate::task::{DispatchToken, TaskBody, TaskContext, TaskDesc};
use parking_lot::{Condvar, Mutex};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;
use supersim_trace::TraceRecorder;

/// Per-task bookkeeping entry.
struct Entry {
    label: Arc<str>,
    deps: usize,
    succs: Vec<u64>,
    body: Option<TaskBody>,
    priority: i64,
    affinity: Option<u64>,
    pin: Option<(usize, usize)>,
    done: bool,
    cancelled: bool,
}

struct Inner {
    entries: Vec<Entry>,
    hazards: HazardTracker,
    policy: Box<dyn Policy>,
    in_flight: usize,
    idle_workers: usize,
    in_dispatch: usize,
    /// Per-worker busy flags (`busy[w]` while worker `w` executes a task).
    /// The quiescence query hands these to [`Policy::stalled`], which for
    /// pinned policies must know *which* workers are busy, not just how
    /// many.
    busy: Vec<bool>,
    /// Per-worker decommission flags (fault injection: a decommissioned
    /// worker's thread exits at its next dispatch and its lane is marked
    /// permanently busy, so pinned-policy quiescence treats it as unable
    /// to absorb work).
    decommissioned: Vec<bool>,
    shutdown: bool,
    sealed: bool,
    submitter_waiting: usize,
    errors: Vec<String>,
    stats: RuntimeStats,
}

/// Per-worker statistics slot, updated lock-free by its owning worker.
///
/// Only the owning worker ever writes its slot, so plain relaxed
/// load/store pairs are race-free; `Runtime::stats()` readers observe an
/// atomic snapshot of each field without touching the `Inner` lock.
/// Padded to a cache line so neighbouring workers' counters do not
/// false-share.
#[repr(align(128))]
#[derive(Default)]
struct WorkerSlot {
    /// Tasks executed by this worker.
    tasks: AtomicU64,
    /// Wall-clock busy seconds, stored as `f64::to_bits`.
    busy_bits: AtomicU64,
}

impl WorkerSlot {
    fn add_task(&self, busy: f64) {
        self.tasks.fetch_add(1, Ordering::Relaxed);
        // Owner-only writer: a load/store pair cannot lose updates.
        let prev = f64::from_bits(self.busy_bits.load(Ordering::Relaxed));
        self.busy_bits
            .store((prev + busy).to_bits(), Ordering::Relaxed);
    }
}

struct Shared {
    inner: Mutex<Inner>,
    work_cv: Condvar,
    window_cv: Condvar,
    done_cv: Condvar,
    quiesce_cv: Condvar,
    window: usize,
    epoch: Instant,
    trace: Option<TraceRecorder>,
    /// Per-worker counters live outside the big `Inner` lock; the hot
    /// completion path touches them without serializing on other workers.
    worker_slots: Vec<WorkerSlot>,
}

/// The superscalar runtime.
///
/// ```
/// use supersim_runtime::{Runtime, RuntimeConfig, TaskDesc};
/// use supersim_dag::{Access, DataId};
/// use std::sync::{Arc, atomic::{AtomicU64, Ordering}};
///
/// let rt = Runtime::new(RuntimeConfig::simple(2));
/// let x = DataId(0);
/// let hits = Arc::new(AtomicU64::new(0));
/// for _ in 0..10 {
///     let hits = hits.clone();
///     rt.submit(TaskDesc::new("inc", vec![Access::read_write(x)], move |_ctx| {
///         hits.fetch_add(1, Ordering::SeqCst);
///     }));
/// }
/// rt.wait_all().unwrap();
/// assert_eq!(hits.load(Ordering::SeqCst), 10);
/// ```
pub struct Runtime {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
    config: RuntimeConfig,
}

impl Runtime {
    /// Start a runtime with the given configuration (no trace recording).
    pub fn new(config: RuntimeConfig) -> Self {
        Self::with_trace(config, None)
    }

    /// Start a runtime that records a wall-clock trace of every executed
    /// task into `recorder` (used for "real" runs; simulated runs record
    /// their own virtual-time trace instead).
    pub fn with_trace(config: RuntimeConfig, recorder: Option<TraceRecorder>) -> Self {
        let policy = make_policy(config.policy, config.workers);
        Self::with_policy_and_trace(config, policy, recorder)
    }

    /// Start a runtime with an explicit policy object instead of the one
    /// `config.policy` names. Every dispatch decision of the engine routes
    /// through this object — tests use a counting wrapper here to assert
    /// there is no second copy of the scheduling logic in the engine.
    pub fn with_policy_and_trace(
        config: RuntimeConfig,
        policy: Box<dyn Policy>,
        recorder: Option<TraceRecorder>,
    ) -> Self {
        assert!(config.workers > 0, "runtime needs at least one worker");
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                entries: Vec::new(),
                hazards: HazardTracker::new(),
                policy,
                in_flight: 0,
                idle_workers: 0,
                in_dispatch: 0,
                busy: vec![false; config.workers],
                decommissioned: vec![false; config.workers],
                shutdown: false,
                sealed: false,
                submitter_waiting: 0,
                errors: Vec::new(),
                stats: RuntimeStats::new(config.workers),
            }),
            work_cv: Condvar::new(),
            window_cv: Condvar::new(),
            done_cv: Condvar::new(),
            quiesce_cv: Condvar::new(),
            window: config.window,
            epoch: Instant::now(),
            trace: recorder,
            worker_slots: (0..config.workers).map(|_| WorkerSlot::default()).collect(),
        });
        let workers = (0..config.workers)
            .map(|w| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("{}-w{}", config.name, w))
                    .spawn(move || worker_loop(shared, w))
                    .expect("failed to spawn worker thread")
            })
            .collect();
        Runtime {
            shared,
            workers,
            config,
        }
    }

    /// The configuration this runtime was built with.
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// Submit one task. Blocks while the task window is full (QUARK-style
    /// backpressure). Returns the task id (submission order).
    pub fn submit(&self, desc: TaskDesc) -> u64 {
        let mut inner = self.shared.inner.lock();
        inner.stats.lock_acquisitions += 1;
        assert!(
            !inner.sealed,
            "submit() after seal(); call unseal() for a new phase"
        );
        while inner.in_flight >= self.shared.window {
            inner.submitter_waiting += 1;
            self.shared.quiesce_cv.notify_all();
            self.shared.window_cv.wait(&mut inner);
            inner.submitter_waiting -= 1;
        }
        let id = inner.entries.len() as u64;

        // Hazard analysis against the live data state (shared with the
        // DES replay backend).
        let (preds, affinity) = inner.hazards.analyze(id, &desc.accesses);

        let mut deps = 0;
        for &p in &preds {
            let e = &mut inner.entries[p as usize];
            if !e.done {
                e.succs.push(id);
                deps += 1;
            }
        }

        inner.entries.push(Entry {
            label: desc.label.into(),
            deps,
            succs: Vec::new(),
            body: Some(desc.body),
            priority: desc.priority,
            affinity,
            pin: desc.pin,
            done: false,
            cancelled: false,
        });
        inner.in_flight += 1;

        if deps == 0 {
            let meta = ReadyMeta {
                priority: desc.priority,
                releaser: None,
                affinity,
                pin: desc.pin,
            };
            inner.policy.push(id, meta);
            if inner.policy.broadcast_wakeups() {
                // A targeted notify could land on a worker outside the
                // task's pin range; broadcast so an eligible one wakes.
                self.shared.work_cv.notify_all();
            } else {
                self.shared.work_cv.notify_one();
            }
            self.shared.quiesce_cv.notify_all();
        }
        id
    }

    /// Declare the serial submission stream complete. Required before the
    /// quiescence query can report quiescent while workers are idle: a
    /// simulated run must not let virtual time advance past tasks the
    /// master thread has not submitted yet (they would otherwise read an
    /// already-advanced clock, the submission-side variant of the paper's
    /// SS V-E race). Call after the last `submit` of a phase.
    pub fn seal(&self) {
        let mut inner = self.shared.inner.lock();
        inner.sealed = true;
        self.shared.quiesce_cv.notify_all();
    }

    /// Reopen submission for another phase after [`Runtime::seal`].
    pub fn unseal(&self) {
        let mut inner = self.shared.inner.lock();
        inner.sealed = false;
    }

    /// Wait until every submitted task has completed. Returns the list of
    /// panic messages from failed tasks (empty on full success) as `Err`.
    pub fn wait_all(&self) -> Result<(), Vec<String>> {
        let mut inner = self.shared.inner.lock();
        while inner.in_flight > 0 {
            self.shared.done_cv.wait(&mut inner);
        }
        if inner.errors.is_empty() {
            Ok(())
        } else {
            Err(std::mem::take(&mut inner.errors))
        }
    }

    /// Snapshot of the execution statistics. Aggregate counters come from
    /// the engine lock; per-worker counters are read from the lock-free
    /// worker slots.
    pub fn stats(&self) -> RuntimeStats {
        let mut stats = self.shared.inner.lock().stats.clone();
        for (w, slot) in self.shared.worker_slots.iter().enumerate() {
            stats.per_worker_tasks[w] = slot.tasks.load(Ordering::Relaxed);
            stats.per_worker_busy[w] = f64::from_bits(slot.busy_bits.load(Ordering::Relaxed));
        }
        stats
    }

    /// Number of tasks submitted so far.
    pub fn submitted(&self) -> u64 {
        self.shared.inner.lock().entries.len() as u64
    }

    /// Cancel every task that has not started executing yet (QUARK-style
    /// task cancellation, used for error recovery: "error handling
    /// extensions and task cancellation capabilities", paper §IV-A3).
    ///
    /// Tasks already running are left to finish; pending tasks — whether
    /// waiting on dependences or sitting in the ready queue — are dropped
    /// without executing their bodies. Returns the number cancelled.
    pub fn abort_pending(&self) -> u64 {
        let mut inner = self.shared.inner.lock();
        let mut cancelled = 0u64;
        for e in inner.entries.iter_mut() {
            if !e.done && e.body.is_some() {
                e.body = None;
                e.done = true;
                e.cancelled = true;
                cancelled += 1;
            }
        }
        inner.in_flight -= cancelled as usize;
        inner.stats.cancelled += cancelled;
        // Queued ids of cancelled tasks remain in the policy; workers skip
        // them at pop (their bodies are gone). Wake all workers so idle
        // ones drain those stale queue entries — otherwise a quiescence
        // waiter could block forever on `policy.len() > 0` with every
        // remaining worker asleep.
        self.shared.work_cv.notify_all();
        self.shared.done_cv.notify_all();
        self.shared.window_cv.notify_all();
        self.shared.quiesce_cv.notify_all();
        cancelled
    }

    /// Permanently remove `worker` from service (fault injection: a died
    /// worker or node lane). The worker finishes any task it is currently
    /// executing, then its thread exits instead of dispatching again; its
    /// lane stays marked busy forever, so pinned-policy quiescence and the
    /// stalled-lane predicate treat it as unable to absorb work.
    ///
    /// Tasks pinned *exclusively* to decommissioned lanes can never run —
    /// `wait_all` would block forever. Callers (the fault-replay layer)
    /// must re-place such tasks onto surviving lanes before submission.
    pub fn decommission(&self, worker: usize) {
        let mut inner = self.shared.inner.lock();
        assert!(worker < inner.busy.len(), "no such worker: {worker}");
        inner.decommissioned[worker] = true;
        // A dead lane can absorb no work: permanently busy.
        inner.busy[worker] = true;
        // Wake everyone: the target (if parked) must observe the flag and
        // exit, and quiescence waiters must re-evaluate the predicate.
        self.shared.work_cv.notify_all();
        self.shared.quiesce_cv.notify_all();
    }

    /// Whether `worker` has been decommissioned.
    pub fn is_decommissioned(&self, worker: usize) -> bool {
        self.shared.inner.lock().decommissioned[worker]
    }

    /// A [`Quiesce`] handle for the simulation layer.
    pub fn probe(&self) -> Arc<dyn Quiesce> {
        Arc::new(RuntimeProbe {
            shared: self.shared.clone(),
        })
    }

    /// Seconds since this runtime started (the wall-clock trace origin).
    pub fn now(&self) -> f64 {
        self.shared.epoch.elapsed().as_secs_f64()
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        {
            let mut inner = self.shared.inner.lock();
            inner.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// Quiescence probe backed by the live engine counters.
struct RuntimeProbe {
    shared: Arc<Shared>,
}

impl Quiesce for RuntimeProbe {
    fn quiescent(&self) -> bool {
        let inner = self.shared.inner.lock();
        quiescent_locked(&inner, self.shared.window)
    }

    fn wait_quiescent(&self) {
        let mut inner = self.shared.inner.lock();
        while !quiescent_locked(&inner, self.shared.window) {
            self.shared.quiesce_cv.wait(&mut inner);
        }
    }

    fn completed(&self) -> u64 {
        self.shared.inner.lock().stats.completed
    }

    fn wait_settled(&self, min_completed: u64) {
        let mut inner = self.shared.inner.lock();
        while inner.stats.completed < min_completed || !quiescent_locked(&inner, self.shared.window)
        {
            self.shared.quiesce_cv.wait(&mut inner);
        }
    }
}

fn quiescent_locked(inner: &Inner, window: usize) -> bool {
    // The submission stream must be finished (sealed) or stalled on a
    // genuinely *full* task window; otherwise tasks not yet submitted
    // could still have earlier virtual start times than the caller's
    // completion. The fullness check matters: when a completion frees the
    // window, the blocked submitter counts as waiting until it reacquires
    // the lock, and treating that in-between state as quiescent would race
    // the clock advance against the submitter's wakeup — the next task
    // would start at either the freed time or the following completion,
    // depending on host scheduling. Beyond that: no task may sit in its
    // dispatch window (popped but not yet registered), and every queued
    // ready task must be stalled behind busy workers — the policy decides,
    // since under a pinned policy a task can be stalled while other
    // workers idle. A worker that has not reached its scheduling loop yet
    // (thread start-up) counts as able to absorb work, which is why the
    // flags mark busy workers rather than non-idle ones.
    (inner.sealed || (inner.submitter_waiting > 0 && inner.in_flight >= window))
        && inner.in_dispatch == 0
        && inner.policy.stalled(&inner.busy)
}

fn worker_loop(shared: Arc<Shared>, worker: usize) {
    loop {
        // Acquire a task (or exit on shutdown).
        let (task_id, body, label) = {
            let mut inner = shared.inner.lock();
            inner.stats.lock_acquisitions += 1;
            let task = loop {
                if inner.decommissioned[worker] {
                    // This worker may have absorbed a targeted wakeup meant
                    // to pair with a ready task; hand it to a live worker
                    // before exiting so the task is not stranded.
                    shared.work_cv.notify_one();
                    break None;
                }
                if let Some(t) = inner.policy.pop(worker) {
                    // Cancelled tasks may still sit in the ready queue;
                    // their bodies are gone — skip them. Draining one
                    // shrinks the queue, which can flip the quiescence
                    // condition, so waiters must be re-woken.
                    if inner.entries[t as usize].cancelled {
                        shared.quiesce_cv.notify_all();
                        continue;
                    }
                    break Some(t);
                }
                if inner.shutdown {
                    break None;
                }
                inner.idle_workers += 1;
                inner.stats.idle_transitions += 1;
                shared.work_cv.wait(&mut inner);
                inner.idle_workers -= 1;
            };
            let Some(t) = task else { return };
            if debug_enabled() {
                eprintln!("[dbg] pop {t} by w{worker}");
            }
            inner.in_dispatch += 1;
            inner.busy[worker] = true;
            inner.stats.busy_transitions += 1;
            let e = &mut inner.entries[t as usize];
            let body = e.body.take().expect("task body already taken");
            (t, body, e.label.clone())
        };

        // Execute outside the lock.
        let token = DispatchToken::new();
        let reg_shared = shared.clone();
        let ctx = TaskContext {
            worker,
            task_id,
            label: label.to_string(),
            token,
            on_register: Arc::new(move || {
                let mut inner = reg_shared.inner.lock();
                inner.stats.lock_acquisitions += 1;
                inner.in_dispatch -= 1;
                reg_shared.quiesce_cv.notify_all();
            }),
        };
        let t_start = shared.epoch.elapsed().as_secs_f64();
        let result = catch_unwind(AssertUnwindSafe(|| (body)(&ctx)));
        // Guarantee the in-dispatch counter returns to zero even if the
        // body never called mark_registered (real kernels, panics).
        ctx.finish_registration();
        let t_end = shared.epoch.elapsed().as_secs_f64();

        // Both the trace record and the per-worker counter bump happen
        // outside the engine lock: the trace recorder shards internally and
        // the counter slot is owned by this worker alone.
        if let Some(trace) = &shared.trace {
            trace.record(worker, &label, task_id, t_start, t_end);
        }
        shared.worker_slots[worker].add_task(t_end - t_start);

        // Completion: propagate to successors.
        {
            let mut inner = shared.inner.lock();
            inner.stats.lock_acquisitions += 1;
            inner.entries[task_id as usize].done = true;
            let succs = std::mem::take(&mut inner.entries[task_id as usize].succs);
            let mut released = 0;
            for s in succs {
                let e = &mut inner.entries[s as usize];
                e.deps -= 1;
                if e.deps == 0 && !e.done {
                    let meta = ReadyMeta {
                        priority: e.priority,
                        releaser: Some(worker),
                        affinity: e.affinity,
                        pin: e.pin,
                    };
                    if debug_enabled() {
                        eprintln!("[dbg] push_ready {s} (released by {task_id})");
                    }
                    inner.policy.push(s, meta);
                    released += 1;
                }
            }
            if released > 0 && inner.policy.broadcast_wakeups() {
                // Pinned tasks: only specific workers are eligible, and a
                // targeted notify cannot aim — broadcast instead.
                shared.work_cv.notify_all();
            } else {
                // Wake exactly as many workers as can absorb the released
                // tasks: a notify beyond `idle_workers` has no parked worker
                // to land on (awake workers re-check the ready queue before
                // sleeping, so surplus tasks are never stranded), and a
                // notify beyond `released` would wake a worker to an empty
                // queue.
                for _ in 0..released.min(inner.idle_workers) {
                    shared.work_cv.notify_one();
                }
            }
            inner.in_flight -= 1;
            inner.stats.completed += 1;
            if let Err(panic) = result {
                inner.stats.failed += 1;
                let msg = panic_message(&*panic);
                inner
                    .errors
                    .push(format!("task {task_id} ({label}): {msg}"));
            }
            // A lane decommissioned mid-task stays busy forever.
            inner.busy[worker] = inner.decommissioned[worker];
            shared.window_cv.notify_all();
            shared.done_cv.notify_all();
            shared.quiesce_cv.notify_all();
        }
    }
}

/// Cached SUPERSIM_DEBUG environment check (hot paths consult this).
fn debug_enabled() -> bool {
    static FLAG: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *FLAG.get_or_init(|| std::env::var_os("SUPERSIM_DEBUG").is_some())
}

fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{PolicyKind, SchedulerKind};
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
    use supersim_dag::{Access, DataId};

    fn d(i: u64) -> DataId {
        DataId(i)
    }

    #[test]
    fn dependent_tasks_run_in_order() {
        let rt = Runtime::new(RuntimeConfig::simple(4));
        let log = Arc::new(Mutex::new(Vec::new()));
        for i in 0..20u64 {
            let log = log.clone();
            rt.submit(TaskDesc::new(
                "t",
                vec![Access::read_write(d(0))],
                move |_| {
                    log.lock().push(i);
                },
            ));
        }
        rt.wait_all().unwrap();
        let log = log.lock();
        assert_eq!(
            *log,
            (0..20).collect::<Vec<_>>(),
            "RW chain must serialize in order"
        );
    }

    #[test]
    fn independent_tasks_all_run() {
        let rt = Runtime::new(RuntimeConfig::simple(4));
        let count = Arc::new(AtomicU64::new(0));
        for i in 0..100u64 {
            let count = count.clone();
            rt.submit(TaskDesc::new("t", vec![Access::write(d(i))], move |_| {
                count.fetch_add(1, Ordering::SeqCst);
            }));
        }
        rt.wait_all().unwrap();
        assert_eq!(count.load(Ordering::SeqCst), 100);
        assert_eq!(rt.stats().completed, 100);
    }

    #[test]
    fn raw_dependency_enforced() {
        // writer -> readers -> writer2; writer2 must see both readers done.
        let rt = Runtime::new(RuntimeConfig::simple(4));
        let state = Arc::new(AtomicU64::new(0));
        let s1 = state.clone();
        rt.submit(TaskDesc::new("w", vec![Access::write(d(0))], move |_| {
            s1.store(1, Ordering::SeqCst);
        }));
        let readers_done = Arc::new(AtomicUsize::new(0));
        for _ in 0..3 {
            let s = state.clone();
            let rd = readers_done.clone();
            rt.submit(TaskDesc::new("r", vec![Access::read(d(0))], move |_| {
                assert_eq!(s.load(Ordering::SeqCst), 1, "reader ran before writer");
                rd.fetch_add(1, Ordering::SeqCst);
            }));
        }
        let rd = readers_done.clone();
        rt.submit(TaskDesc::new("w2", vec![Access::write(d(0))], move |_| {
            assert_eq!(rd.load(Ordering::SeqCst), 3, "writer2 ran before readers");
        }));
        rt.wait_all().unwrap();
    }

    #[test]
    fn parallel_readers_overlap_possible() {
        // Not a strict guarantee, but with 4 workers and a barrier inside
        // readers, they must be able to run concurrently (would deadlock
        // if the runtime serialized readers).
        let rt = Runtime::new(RuntimeConfig::simple(4));
        rt.submit(TaskDesc::new("w", vec![Access::write(d(0))], |_| {}));
        let barrier = Arc::new(std::sync::Barrier::new(3));
        for _ in 0..3 {
            let b = barrier.clone();
            rt.submit(TaskDesc::new("r", vec![Access::read(d(0))], move |_| {
                b.wait();
            }));
        }
        rt.wait_all().unwrap();
    }

    #[test]
    fn window_backpressure_limits_in_flight() {
        let cfg = RuntimeConfig {
            workers: 1,
            policy: PolicyKind::CentralFifo,
            window: 2,
            name: "test",
        };
        let rt = Runtime::new(cfg);
        let max_seen = Arc::new(AtomicU64::new(0));
        let live = Arc::new(AtomicU64::new(0));
        for i in 0..10u64 {
            let live = live.clone();
            let max_seen = max_seen.clone();
            rt.submit(TaskDesc::new("t", vec![Access::write(d(i))], move |_| {
                let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                max_seen.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(std::time::Duration::from_millis(1));
                live.fetch_sub(1, Ordering::SeqCst);
            }));
        }
        rt.wait_all().unwrap();
        // One worker: at most 1 running; window capped submission to 2.
        assert!(max_seen.load(Ordering::SeqCst) <= 2);
    }

    #[test]
    fn panicking_task_reported_not_fatal() {
        let rt = Runtime::new(RuntimeConfig::simple(2));
        rt.submit(TaskDesc::new("boom", vec![Access::write(d(0))], |_| {
            panic!("kaboom");
        }));
        let ok_ran = Arc::new(AtomicU64::new(0));
        let ok2 = ok_ran.clone();
        rt.submit(TaskDesc::new("ok", vec![Access::write(d(1))], move |_| {
            ok2.store(1, Ordering::SeqCst);
        }));
        let errs = rt.wait_all().unwrap_err();
        assert_eq!(errs.len(), 1);
        assert!(errs[0].contains("kaboom"));
        assert!(errs[0].contains("boom"));
        assert_eq!(ok_ran.load(Ordering::SeqCst), 1);
        assert_eq!(rt.stats().failed, 1);
        // A second wait_all succeeds (errors were drained).
        rt.wait_all().unwrap();
    }

    #[test]
    fn trace_recorded_in_real_mode() {
        let recorder = TraceRecorder::new();
        let rt = Runtime::with_trace(RuntimeConfig::simple(2), Some(recorder.clone()));
        for i in 0..5u64 {
            rt.submit(TaskDesc::new("k", vec![Access::write(d(i))], |_| {
                std::thread::sleep(std::time::Duration::from_micros(200));
            }));
        }
        rt.wait_all().unwrap();
        let trace = recorder.finish(2);
        assert_eq!(trace.len(), 5);
        assert!(trace.validate(1e-9).is_ok());
        assert!(trace.makespan() > 0.0);
    }

    #[test]
    fn all_scheduler_profiles_run_a_dag() {
        for kind in [
            SchedulerKind::Quark,
            SchedulerKind::StarPu,
            SchedulerKind::OmpSs,
        ] {
            let rt = Runtime::new(kind.config(3));
            let count = Arc::new(AtomicU64::new(0));
            // Diamond DAGs over 10 data regions.
            for i in 0..10u64 {
                for _ in 0..3 {
                    let c = count.clone();
                    rt.submit(TaskDesc::new(
                        "t",
                        vec![Access::read_write(d(i))],
                        move |_| {
                            c.fetch_add(1, Ordering::SeqCst);
                        },
                    ));
                }
            }
            rt.wait_all().unwrap();
            assert_eq!(count.load(Ordering::SeqCst), 30, "{:?}", kind);
        }
    }

    #[test]
    fn probe_reports_quiescent_when_idle() {
        let rt = Runtime::new(RuntimeConfig::simple(2));
        let probe = rt.probe();
        rt.submit(TaskDesc::new("t", vec![Access::write(d(0))], |_| {}));
        // Unsealed submission stream: never quiescent.
        assert!(!probe.quiescent());
        rt.seal();
        rt.wait_all().unwrap();
        assert!(probe.quiescent());
        probe.wait_quiescent();
        assert_eq!(probe.completed(), 1);
        probe.wait_settled(1);
    }

    #[test]
    fn seal_unseal_cycle() {
        let rt = Runtime::new(RuntimeConfig::simple(1));
        rt.submit(TaskDesc::new("t", vec![], |_| {}));
        rt.seal();
        rt.wait_all().unwrap();
        rt.unseal();
        rt.submit(TaskDesc::new("t2", vec![], |_| {}));
        rt.seal();
        rt.wait_all().unwrap();
        assert_eq!(rt.stats().completed, 2);
    }

    #[test]
    #[should_panic(expected = "submit() after seal()")]
    fn submit_after_seal_panics() {
        let rt = Runtime::new(RuntimeConfig::simple(1));
        rt.seal();
        rt.submit(TaskDesc::new("t", vec![], |_| {}));
    }

    #[test]
    fn mark_registered_decrements_in_dispatch() {
        let rt = Runtime::new(RuntimeConfig::simple(1));
        let probe = rt.probe();
        let (ready_tx, ready_rx) = std::sync::mpsc::channel::<()>();
        let (go_tx, go_rx) = std::sync::mpsc::channel::<()>();
        rt.submit(TaskDesc::new("t", vec![Access::write(d(0))], move |ctx| {
            ready_tx.send(()).unwrap();
            // Hold the dispatch window open until the main thread checked.
            go_rx
                .recv_timeout(std::time::Duration::from_secs(5))
                .unwrap();
            ctx.mark_registered();
        }));
        rt.seal();
        ready_rx
            .recv_timeout(std::time::Duration::from_secs(5))
            .unwrap();
        // Task popped but not registered: in dispatch -> not quiescent.
        assert!(!probe.quiescent());
        go_tx.send(()).unwrap();
        rt.wait_all().unwrap();
        assert!(probe.quiescent());
    }

    #[test]
    fn priorities_respected_by_priority_policy() {
        // One worker, priority policy: after the blocker finishes, the
        // high-priority task must run before the low-priority one.
        let cfg = RuntimeConfig {
            workers: 1,
            policy: PolicyKind::Priority,
            window: usize::MAX,
            name: "prio-test",
        };
        let rt = Runtime::new(cfg);
        let order = Arc::new(Mutex::new(Vec::new()));
        let gate = Arc::new(std::sync::Barrier::new(2));
        let g2 = gate.clone();
        // Blocker occupies the worker while we enqueue the contenders.
        rt.submit(TaskDesc::new(
            "block",
            vec![Access::write(d(9))],
            move |_| {
                g2.wait();
            },
        ));
        let o1 = order.clone();
        rt.submit(
            TaskDesc::new("low", vec![Access::write(d(1))], move |_| {
                o1.lock().push("low");
            })
            .with_priority(1),
        );
        let o2 = order.clone();
        rt.submit(
            TaskDesc::new("high", vec![Access::write(d(2))], move |_| {
                o2.lock().push("high");
            })
            .with_priority(10),
        );
        gate.wait(); // release the blocker
        rt.wait_all().unwrap();
        assert_eq!(*order.lock(), vec!["high", "low"]);
    }

    #[test]
    fn stats_track_per_worker_counts() {
        let rt = Runtime::new(RuntimeConfig::simple(2));
        for i in 0..40u64 {
            rt.submit(TaskDesc::new("t", vec![Access::write(d(i))], |_| {
                std::thread::sleep(std::time::Duration::from_micros(100));
            }));
        }
        rt.wait_all().unwrap();
        let s = rt.stats();
        assert_eq!(s.per_worker_tasks.iter().sum::<u64>(), 40);
        assert_eq!(s.completed, 40);
    }

    #[test]
    fn stats_track_transitions_and_lock_traffic() {
        let rt = Runtime::new(RuntimeConfig::simple(2));
        for i in 0..10u64 {
            rt.submit(TaskDesc::new("t", vec![Access::write(d(i))], |_| {}));
        }
        rt.wait_all().unwrap();
        let s = rt.stats();
        // One busy transition per executed task.
        assert_eq!(s.busy_transitions, 10);
        // At least one submit + one acquire + one completion lock per task.
        assert!(
            s.lock_acquisitions >= 30,
            "lock acquisitions {}",
            s.lock_acquisitions
        );
        // Both workers must have parked at least once waiting for work.
        assert!(s.idle_transitions >= 1);
    }

    #[test]
    fn submitted_counts_tasks() {
        let rt = Runtime::new(RuntimeConfig::simple(1));
        assert_eq!(rt.submitted(), 0);
        rt.submit(TaskDesc::new("t", vec![], |_| {}));
        assert_eq!(rt.submitted(), 1);
        rt.wait_all().unwrap();
    }

    #[test]
    fn tasks_with_no_accesses_are_independent() {
        let rt = Runtime::new(RuntimeConfig::simple(4));
        let count = Arc::new(AtomicU64::new(0));
        for _ in 0..32 {
            let c = count.clone();
            rt.submit(TaskDesc::new("free", vec![], move |_| {
                c.fetch_add(1, Ordering::SeqCst);
            }));
        }
        rt.wait_all().unwrap();
        assert_eq!(count.load(Ordering::SeqCst), 32);
    }

    #[test]
    fn pinned_tasks_run_only_inside_their_range() {
        let cfg = RuntimeConfig {
            workers: 4,
            policy: PolicyKind::Pinned,
            window: usize::MAX,
            name: "pin-test",
        };
        let rt = Runtime::new(cfg);
        let seen = Arc::new(Mutex::new(Vec::new()));
        for i in 0..24u64 {
            let seen = seen.clone();
            let lo = (i % 2) as usize * 2; // [0,2) or [2,4)
            rt.submit(
                TaskDesc::new("t", vec![Access::write(d(i))], move |ctx| {
                    seen.lock().push((lo, ctx.worker));
                })
                .with_pin(lo, lo + 2),
            );
        }
        rt.wait_all().unwrap();
        for (lo, w) in seen.lock().iter() {
            assert!(
                *w >= *lo && *w < lo + 2,
                "task pinned to [{lo}, {}) ran on worker {w}",
                lo + 2
            );
        }
    }

    #[test]
    fn pinned_quiescence_sees_past_stalled_lane() {
        // One ready task pinned to a busy lane, other workers idle: the
        // probe must report quiescent (the legacy predicate would spin
        // forever because not every worker is busy).
        let cfg = RuntimeConfig {
            workers: 3,
            policy: PolicyKind::Pinned,
            window: usize::MAX,
            name: "pin-q",
        };
        let rt = Runtime::new(cfg);
        let probe = rt.probe();
        let (hold_tx, hold_rx) = std::sync::mpsc::channel::<()>();
        let (started_tx, started_rx) = std::sync::mpsc::channel::<()>();
        // Occupy worker 0's lane...
        rt.submit(
            TaskDesc::new("hold", vec![Access::write(d(0))], move |ctx| {
                ctx.mark_registered();
                started_tx.send(()).unwrap();
                hold_rx
                    .recv_timeout(std::time::Duration::from_secs(5))
                    .unwrap();
            })
            .with_pin(0, 1),
        );
        // ...and queue a second task behind the same lane.
        rt.submit(TaskDesc::new("next", vec![Access::write(d(1))], |_| {}).with_pin(0, 1));
        rt.seal();
        started_rx
            .recv_timeout(std::time::Duration::from_secs(5))
            .unwrap();
        probe.wait_quiescent();
        assert!(probe.quiescent());
        hold_tx.send(()).unwrap();
        rt.wait_all().unwrap();
    }

    #[test]
    fn decommissioned_worker_takes_no_work() {
        let rt = Runtime::new(RuntimeConfig::simple(2));
        rt.decommission(1);
        assert!(rt.is_decommissioned(1));
        assert!(!rt.is_decommissioned(0));
        let seen = Arc::new(Mutex::new(Vec::new()));
        for i in 0..20u64 {
            let seen = seen.clone();
            rt.submit(TaskDesc::new("t", vec![Access::write(d(i))], move |ctx| {
                seen.lock().push(ctx.worker);
            }));
        }
        rt.wait_all().unwrap();
        let seen = seen.lock();
        assert_eq!(seen.len(), 20);
        assert!(
            seen.iter().all(|&w| w == 0),
            "dead worker executed a task: {seen:?}"
        );
    }

    #[test]
    fn pinned_lane_shrink_mid_run_stays_quiescent() {
        // The node-death scenario: a pinned lane range loses a lane while
        // work is queued against it. A task pinned to {busy lane, dead
        // lane} is stalled — the dead lane counts as busy — so quiescence
        // must hold, and the task must later run on the surviving lane.
        let cfg = RuntimeConfig {
            workers: 3,
            policy: PolicyKind::Pinned,
            window: usize::MAX,
            name: "pin-shrink",
        };
        let rt = Runtime::new(cfg);
        let probe = rt.probe();
        let (hold_tx, hold_rx) = std::sync::mpsc::channel::<()>();
        let (started_tx, started_rx) = std::sync::mpsc::channel::<()>();
        // Occupy lane 0.
        rt.submit(
            TaskDesc::new("hold", vec![Access::write(d(0))], move |ctx| {
                ctx.mark_registered();
                started_tx.send(()).unwrap();
                hold_rx
                    .recv_timeout(std::time::Duration::from_secs(5))
                    .unwrap();
            })
            .with_pin(0, 1),
        );
        started_rx
            .recv_timeout(std::time::Duration::from_secs(5))
            .unwrap();
        // Lane 1 dies; a task pinned to [0, 2) now has one busy and one
        // dead lane — stalled, not runnable, not a quiescence violation.
        rt.decommission(1);
        let ran_on = Arc::new(AtomicUsize::new(usize::MAX));
        let r = ran_on.clone();
        rt.submit(
            TaskDesc::new("next", vec![Access::write(d(1))], move |ctx| {
                r.store(ctx.worker, Ordering::SeqCst);
            })
            .with_pin(0, 2),
        );
        rt.seal();
        probe.wait_quiescent();
        assert!(probe.quiescent());
        hold_tx.send(()).unwrap();
        rt.wait_all().unwrap();
        assert_eq!(
            ran_on.load(Ordering::SeqCst),
            0,
            "the pinned task must run on the surviving lane"
        );
    }

    #[test]
    fn wait_all_with_nothing_submitted() {
        let rt = Runtime::new(RuntimeConfig::simple(1));
        rt.wait_all().unwrap();
    }

    #[test]
    fn multi_phase_submission() {
        let rt = Runtime::new(RuntimeConfig::simple(2));
        let c = Arc::new(AtomicU64::new(0));
        for i in 0..5u64 {
            let c = c.clone();
            rt.submit(TaskDesc::new("p1", vec![Access::write(d(i))], move |_| {
                c.fetch_add(1, Ordering::SeqCst);
            }));
        }
        rt.wait_all().unwrap();
        assert_eq!(c.load(Ordering::SeqCst), 5);
        for i in 0..5u64 {
            let c = c.clone();
            rt.submit(TaskDesc::new("p2", vec![Access::write(d(i))], move |_| {
                c.fetch_add(1, Ordering::SeqCst);
            }));
        }
        rt.wait_all().unwrap();
        assert_eq!(c.load(Ordering::SeqCst), 10);
    }
}

#[cfg(test)]
mod cancellation_tests {
    //! QUARK-style task cancellation.
    use super::*;
    use crate::config::RuntimeConfig;
    use crate::task::TaskDesc;
    use std::sync::atomic::{AtomicU64, Ordering};
    use supersim_dag::{Access, DataId};

    #[test]
    fn abort_pending_drops_unstarted_tasks() {
        let rt = Runtime::new(RuntimeConfig::simple(1));
        let ran = Arc::new(AtomicU64::new(0));
        let (gate_tx, gate_rx) = std::sync::mpsc::channel::<()>();
        let (started_tx, started_rx) = std::sync::mpsc::channel::<()>();
        // Blocker occupies the only worker.
        rt.submit(TaskDesc::new(
            "block",
            vec![Access::write(DataId(0))],
            move |_| {
                started_tx.send(()).unwrap();
                gate_rx
                    .recv_timeout(std::time::Duration::from_secs(5))
                    .unwrap();
            },
        ));
        for i in 1..=5u64 {
            let ran = ran.clone();
            rt.submit(TaskDesc::new(
                "work",
                vec![Access::write(DataId(i))],
                move |_| {
                    ran.fetch_add(1, Ordering::SeqCst);
                },
            ));
        }
        rt.seal();
        started_rx
            .recv_timeout(std::time::Duration::from_secs(5))
            .unwrap();
        let cancelled = rt.abort_pending();
        gate_tx.send(()).unwrap();
        rt.wait_all().unwrap();
        assert_eq!(cancelled, 5);
        assert_eq!(
            ran.load(Ordering::SeqCst),
            0,
            "cancelled tasks must not run"
        );
        assert_eq!(rt.stats().cancelled, 5);
        assert_eq!(rt.stats().completed, 1, "only the blocker executed");
    }

    #[test]
    fn abort_then_resubmit_new_phase() {
        let rt = Runtime::new(RuntimeConfig::simple(2));
        rt.submit(TaskDesc::new("t", vec![Access::write(DataId(0))], |_| {}));
        rt.seal();
        rt.wait_all().unwrap();
        // Nothing pending: abort is a no-op.
        assert_eq!(rt.abort_pending(), 0);
        rt.unseal();
        let ran = Arc::new(AtomicU64::new(0));
        let r2 = ran.clone();
        rt.submit(TaskDesc::new(
            "t2",
            vec![Access::write(DataId(1))],
            move |_| {
                r2.fetch_add(1, Ordering::SeqCst);
            },
        ));
        rt.seal();
        rt.wait_all().unwrap();
        assert_eq!(ran.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn cancelled_dependents_never_release() {
        // Error-recovery pattern: a failing task's successors are aborted.
        let rt = Runtime::new(RuntimeConfig::simple(1));
        let ran = Arc::new(AtomicU64::new(0));
        rt.submit(TaskDesc::new(
            "boom",
            vec![Access::write(DataId(0))],
            |_| {
                panic!("numerical breakdown");
            },
        ));
        // Give the failure a moment to land, then cancel the rest.
        let r2 = ran.clone();
        rt.submit(TaskDesc::new(
            "dependent",
            vec![Access::read(DataId(0))],
            move |_| {
                r2.fetch_add(1, Ordering::SeqCst);
            },
        ));
        rt.seal();
        // Busy-wait for the failure to be recorded, then abort.
        for _ in 0..500 {
            if rt.stats().failed > 0 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        rt.abort_pending();
        let result = rt.wait_all();
        assert!(result.is_err(), "the panic must be reported");
        // The dependent may have run only if it was dispatched before the
        // abort; with a 1-worker runtime and the panic recorded first,
        // cancellation must have caught it... unless it was already done.
        let total = rt.stats().completed + rt.stats().cancelled;
        assert_eq!(total, 2, "every task accounted for");
    }
}
