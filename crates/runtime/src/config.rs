//! Runtime configuration and scheduler profiles.

/// Ready-queue scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// One global FIFO queue (QUARK's default dispatch order).
    CentralFifo,
    /// One global LIFO stack (depth-first; cache-friendly).
    CentralLifo,
    /// One global priority queue ordered by the task's `priority` field
    /// (higher first), FIFO within equal priorities — StarPU's `prio`/`dm`
    /// family once priorities are set from a duration model.
    Priority,
    /// Per-worker deques with work stealing (StarPU's `ws` policy): a task
    /// released by worker `w` is pushed to `w`'s deque; workers pop LIFO
    /// from their own deque and steal FIFO from others.
    WorkStealing,
    /// Per-worker queues keyed by data affinity (OmpSs/Nanos++-style):
    /// a task is queued on the worker that owns its first writable data
    /// region; stealing is allowed when a worker's own queue is empty.
    LocalityAware,
    /// FIFO honoring per-task worker-range pins (cluster simulation:
    /// compute tasks pinned to a node's workers, transfers to its NIC
    /// lanes). Unpinned tasks may run anywhere.
    Pinned,
}

/// Named scheduler profile: a preset of policy + window modeled after one
/// of the paper's three runtimes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerKind {
    /// QUARK (UTK): central FIFO, task window, quiescence query available.
    Quark,
    /// StarPU (INRIA): work stealing, effectively unbounded window.
    StarPu,
    /// OmpSs (BSC): locality-aware queues, moderate throttle.
    OmpSs,
}

impl SchedulerKind {
    /// The profile's human-readable name (as used in figure labels).
    pub fn name(self) -> &'static str {
        match self {
            SchedulerKind::Quark => "quark",
            SchedulerKind::StarPu => "starpu",
            SchedulerKind::OmpSs => "ompss",
        }
    }

    /// Default configuration for this profile with `workers` threads.
    pub fn config(self, workers: usize) -> RuntimeConfig {
        match self {
            SchedulerKind::Quark => RuntimeConfig {
                workers,
                policy: PolicyKind::CentralFifo,
                window: 5000,
                name: "quark",
            },
            SchedulerKind::StarPu => RuntimeConfig {
                workers,
                policy: PolicyKind::WorkStealing,
                window: usize::MAX,
                name: "starpu",
            },
            SchedulerKind::OmpSs => RuntimeConfig {
                workers,
                policy: PolicyKind::LocalityAware,
                window: 2000,
                name: "ompss",
            },
        }
    }
}

/// Full runtime configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuntimeConfig {
    /// Number of worker threads. Independent of host core count: in
    /// simulation mode tasks block rather than compute, so any number of
    /// virtual workers runs fine on any host.
    pub workers: usize,
    /// Ready-queue policy.
    pub policy: PolicyKind,
    /// Task window: `submit` blocks while this many tasks are in flight
    /// (submitted but not completed). QUARK-style backpressure.
    pub window: usize,
    /// Profile name used in traces/reports.
    pub name: &'static str,
}

impl RuntimeConfig {
    /// A minimal config: central FIFO, unbounded window.
    pub fn simple(workers: usize) -> Self {
        RuntimeConfig {
            workers,
            policy: PolicyKind::CentralFifo,
            window: usize::MAX,
            name: "simple",
        }
    }
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self::simple(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_presets() {
        let q = SchedulerKind::Quark.config(4);
        assert_eq!(q.policy, PolicyKind::CentralFifo);
        assert_eq!(q.window, 5000);
        assert_eq!(q.workers, 4);
        assert_eq!(q.name, "quark");

        let s = SchedulerKind::StarPu.config(2);
        assert_eq!(s.policy, PolicyKind::WorkStealing);
        assert_eq!(s.window, usize::MAX);

        let o = SchedulerKind::OmpSs.config(8);
        assert_eq!(o.policy, PolicyKind::LocalityAware);
        assert_eq!(o.window, 2000);
    }

    #[test]
    fn names() {
        assert_eq!(SchedulerKind::Quark.name(), "quark");
        assert_eq!(SchedulerKind::StarPu.name(), "starpu");
        assert_eq!(SchedulerKind::OmpSs.name(), "ompss");
    }

    #[test]
    fn default_is_simple() {
        let c = RuntimeConfig::default();
        assert_eq!(c.policy, PolicyKind::CentralFifo);
        assert_eq!(c.window, usize::MAX);
    }
}
