//! Submission-side hazard analysis, shared by the threaded engine and the
//! pure-DES replay backend.
//!
//! The superscalar contract: tasks are submitted serially with data-access
//! annotations, and RaW/WaR/WaW hazards against earlier submissions become
//! dependences. This module owns the per-data reader/writer state and the
//! predecessor derivation. It was extracted from `Runtime::submit` so the
//! DES replay backend resolves dependences through the *same* code — a
//! precondition of the bit-for-bit trace-equality contract between the two
//! backends (see DESIGN.md, "Replay backend").

use std::collections::HashMap;
use supersim_dag::{normalize_accesses, Access, DataId};

/// Per-data hazard state (same discipline as `supersim_dag::build`).
#[derive(Default)]
struct DataState {
    last_writer: Option<u64>,
    readers: Vec<u64>,
}

/// Tracks reader/writer state per data id across a serial submission
/// stream and derives each task's predecessor set.
#[derive(Default)]
pub struct HazardTracker {
    data: HashMap<DataId, DataState>,
}

impl HazardTracker {
    /// Empty tracker: no data has been touched yet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record task `id`'s accesses and return `(preds, affinity)`: the
    /// sorted, deduplicated predecessor task ids, and the first written
    /// data id (the locality-affinity hint). Accesses are normalized
    /// (duplicate data ids merged) before analysis, exactly as
    /// `Runtime::submit` always did.
    ///
    /// `id` must be the caller's next submission id; predecessors only
    /// ever reference earlier ids.
    pub fn analyze(&mut self, id: u64, accesses: &[Access]) -> (Vec<u64>, Option<u64>) {
        let accesses = normalize_accesses(accesses);
        let affinity = accesses.iter().find(|a| a.mode.writes()).map(|a| a.data.0);
        let mut preds: Vec<u64> = Vec::new();
        for a in &accesses {
            let st = self.data.entry(a.data).or_default();
            if a.mode.reads() || a.mode.writes() {
                if let Some(w) = st.last_writer {
                    preds.push(w);
                }
            }
            if a.mode.writes() {
                preds.extend(st.readers.iter().copied());
            }
            if a.mode.writes() {
                st.last_writer = Some(id);
                st.readers.clear();
            } else {
                st.readers.push(id);
            }
        }
        preds.sort_unstable();
        preds.dedup();
        (preds, affinity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_war_waw_hazards() {
        let mut h = HazardTracker::new();
        let x = DataId(0);
        // 0 writes x; 1 reads x (RaW on 0); 2 writes x (WaR on 1, WaW on 0).
        let (p0, a0) = h.analyze(0, &[Access::write(x)]);
        assert!(p0.is_empty());
        assert_eq!(a0, Some(0));
        let (p1, a1) = h.analyze(1, &[Access::read(x)]);
        assert_eq!(p1, vec![0]);
        assert_eq!(a1, None);
        let (p2, _) = h.analyze(2, &[Access::write(x)]);
        assert_eq!(p2, vec![0, 1]);
    }

    #[test]
    fn concurrent_readers_share_no_hazard() {
        let mut h = HazardTracker::new();
        let x = DataId(3);
        h.analyze(0, &[Access::write(x)]);
        let (p1, _) = h.analyze(1, &[Access::read(x)]);
        let (p2, _) = h.analyze(2, &[Access::read(x)]);
        assert_eq!(p1, vec![0]);
        assert_eq!(p2, vec![0]);
    }

    #[test]
    fn preds_are_sorted_and_deduped() {
        let mut h = HazardTracker::new();
        let (x, y) = (DataId(0), DataId(1));
        h.analyze(0, &[Access::write(x), Access::write(y)]);
        // Reads both — writer 0 appears twice before dedup.
        let (p, _) = h.analyze(1, &[Access::read(y), Access::read(x)]);
        assert_eq!(p, vec![0]);
    }

    #[test]
    fn affinity_is_first_written_data() {
        let mut h = HazardTracker::new();
        let (p, aff) = h.analyze(0, &[Access::read(DataId(5)), Access::read_write(DataId(9))]);
        assert!(p.is_empty());
        assert_eq!(aff, Some(9));
    }
}
