//! Convenience constructors for the three paper scheduler profiles.

use crate::config::SchedulerKind;
use crate::engine::Runtime;
use supersim_trace::TraceRecorder;

/// Build a runtime for one of the paper's schedulers.
pub fn runtime_for(kind: SchedulerKind, workers: usize) -> Runtime {
    Runtime::new(kind.config(workers))
}

/// Build a trace-recording runtime for one of the paper's schedulers.
pub fn traced_runtime_for(kind: SchedulerKind, workers: usize, recorder: TraceRecorder) -> Runtime {
    Runtime::with_trace(kind.config(workers), Some(recorder))
}

/// All three profiles, for sweep loops.
pub const ALL_SCHEDULERS: [SchedulerKind; 3] = [
    SchedulerKind::Quark,
    SchedulerKind::StarPu,
    SchedulerKind::OmpSs,
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskDesc;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn all_profiles_construct_and_run() {
        for kind in ALL_SCHEDULERS {
            let rt = runtime_for(kind, 2);
            let c = Arc::new(AtomicU64::new(0));
            let c2 = c.clone();
            rt.submit(TaskDesc::new("t", vec![], move |_| {
                c2.fetch_add(1, Ordering::SeqCst);
            }));
            rt.wait_all().unwrap();
            assert_eq!(c.load(Ordering::SeqCst), 1);
            assert_eq!(rt.config().name, kind.name());
        }
    }

    #[test]
    fn traced_profile_records() {
        let rec = TraceRecorder::new();
        let rt = traced_runtime_for(SchedulerKind::Quark, 2, rec.clone());
        rt.submit(TaskDesc::new("k", vec![], |_| {}));
        rt.wait_all().unwrap();
        assert_eq!(rec.len(), 1);
    }
}
