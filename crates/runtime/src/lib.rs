//! # supersim-runtime
//!
//! A superscalar task runtime — the class of system the paper simulates
//! (QUARK, StarPU, OmpSs; §IV-A). Tasks are submitted serially with data
//! access annotations; the runtime resolves RaW/WaR/WaW hazards at
//! submission, maintains the dependence graph, and dispatches ready tasks
//! to worker threads according to a pluggable scheduling policy.
//!
//! The paper's simulation methodology requires exactly this substrate: the
//! scheduler does all "dependence tracking work, while ... the work inside
//! the tasks is not done" (§V). The same engine executes either real
//! kernels or the simulated-kernel protocol from `supersim-core`.
//!
//! Three *profiles* model the three schedulers the paper evaluates:
//!
//! * [`SchedulerKind::Quark`] — centralized FIFO ready queue with a task
//!   window, plus the scheduler-quiescence query the paper describes as a
//!   QUARK extension for exactly this simulator;
//! * [`SchedulerKind::StarPu`] — work-stealing per-worker deques (StarPU's
//!   `ws` policy); a priority (`prio`/`dm`-style) policy is also available;
//! * [`SchedulerKind::OmpSs`] — locality-aware per-worker queues with a
//!   submission throttle (Nanos++-style breadth-first).
//!
//! The engine exposes the hooks the simulation layer needs:
//! [`quiesce::Quiesce`] (is all scheduler bookkeeping done?) and per-task
//! [`task::TaskContext`] callbacks.

pub mod config;
pub mod engine;
pub mod hazards;
pub mod policy;
pub mod profiles;
#[cfg(test)]
mod proptests;
pub mod quiesce;
pub mod stats;
pub mod task;

pub use config::{PolicyKind, RuntimeConfig, SchedulerKind};
pub use engine::Runtime;
pub use hazards::HazardTracker;
pub use policy::{make_policy, Policy, ReadyMeta};
pub use quiesce::Quiesce;
pub use stats::RuntimeStats;
pub use task::{TaskContext, TaskDesc};
