//! Log-normal distribution.
//!
//! The paper found the log-normal "slightly outperformed the others in some
//! cases" as a kernel-duration model (§V-B2) — it is strictly positive and
//! right-skewed, matching kernels whose slow tail comes from cache misses.

use crate::normal::Normal;
use crate::special::std_normal_cdf;
use crate::{DistError, Distribution};
use rand::Rng;
use serde::{Deserialize, Serialize};

const LN_SQRT_2PI: f64 = 0.918_938_533_204_672_7;

/// Log-normal distribution: `ln X ~ N(mu, sigma^2)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Create a log-normal; requires finite `mu` and `sigma > 0`.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, DistError> {
        if !mu.is_finite() {
            return Err(DistError::InvalidParameter("lognormal mu must be finite"));
        }
        if !(sigma.is_finite() && sigma > 0.0) {
            return Err(DistError::InvalidParameter(
                "lognormal sigma must be positive",
            ));
        }
        Ok(LogNormal { mu, sigma })
    }

    /// Construct from the desired mean and standard deviation of `X` itself
    /// (not of `ln X`). Convenient when matching empirical moments.
    pub fn from_mean_std(mean: f64, std: f64) -> Result<Self, DistError> {
        if !(mean.is_finite() && mean > 0.0) {
            return Err(DistError::InvalidParameter(
                "lognormal mean must be positive",
            ));
        }
        if !(std.is_finite() && std > 0.0) {
            return Err(DistError::InvalidParameter(
                "lognormal std must be positive",
            ));
        }
        let cv2 = (std / mean).powi(2);
        let sigma2 = (1.0 + cv2).ln();
        let mu = mean.ln() - 0.5 * sigma2;
        Self::new(mu, sigma2.sqrt())
    }

    /// Log-scale location parameter.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Log-scale shape parameter.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// The median, `exp(mu)`.
    pub fn median(&self) -> f64 {
        self.mu.exp()
    }
}

impl Distribution for LogNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * Normal::sample_standard(rng)).exp()
    }

    fn mean(&self) -> f64 {
        (self.mu + 0.5 * self.sigma * self.sigma).exp()
    }

    fn variance(&self) -> f64 {
        let s2 = self.sigma * self.sigma;
        (s2.exp() - 1.0) * (2.0 * self.mu + s2).exp()
    }

    fn pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            self.ln_pdf(x).exp()
        }
    }

    fn ln_pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return f64::NEG_INFINITY;
        }
        let z = (x.ln() - self.mu) / self.sigma;
        -0.5 * z * z - x.ln() - self.sigma.ln() - LN_SQRT_2PI
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            std_normal_cdf((x.ln() - self.mu) / self.sigma)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_params() {
        assert!(LogNormal::new(0.0, 0.0).is_err());
        assert!(LogNormal::new(f64::INFINITY, 1.0).is_err());
        assert!(LogNormal::from_mean_std(-1.0, 1.0).is_err());
        assert!(LogNormal::from_mean_std(1.0, 0.0).is_err());
    }

    #[test]
    fn from_mean_std_round_trips_moments() {
        let d = LogNormal::from_mean_std(5.0, 1.25).unwrap();
        assert!((d.mean() - 5.0).abs() < 1e-10, "mean {}", d.mean());
        assert!((d.std_dev() - 1.25).abs() < 1e-10, "std {}", d.std_dev());
    }

    #[test]
    fn samples_positive_and_match_mean() {
        let d = LogNormal::new(0.0, 0.5).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        let n = 50_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = d.sample(&mut rng);
            assert!(x > 0.0);
            sum += x;
        }
        let mean = sum / n as f64;
        assert!(
            (mean - d.mean()).abs() < 0.02 * d.mean(),
            "mean {mean} vs {}",
            d.mean()
        );
    }

    #[test]
    fn pdf_zero_outside_support() {
        let d = LogNormal::new(0.0, 1.0).unwrap();
        assert_eq!(d.pdf(0.0), 0.0);
        assert_eq!(d.pdf(-1.0), 0.0);
        assert_eq!(d.cdf(-1.0), 0.0);
        assert_eq!(d.ln_pdf(-1.0), f64::NEG_INFINITY);
    }

    #[test]
    fn cdf_at_median_is_half() {
        let d = LogNormal::new(0.7, 0.3).unwrap();
        assert!((d.cdf(d.median()) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn right_skewed() {
        // For a log-normal, mean > median.
        let d = LogNormal::new(0.0, 0.8).unwrap();
        assert!(d.mean() > d.median());
    }
}
