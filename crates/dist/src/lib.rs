//! # supersim-dist
//!
//! Probability distributions, parameter fitting, and goodness-of-fit tests
//! used to model the execution time of computational kernels.
//!
//! The paper ("Parallel Simulation of Superscalar Scheduling", ICPP 2014,
//! §V-B) models each kernel class with a simple parametric distribution —
//! normal, gamma, or log-normal — fitted to empirical timings collected from
//! a real run, and notes that the log-normal slightly outperforms the others
//! in some cases. This crate provides:
//!
//! * the distribution implementations themselves, with deterministic
//!   sampling from any [`rand::Rng`] ([`Normal`], [`Gamma`], [`LogNormal`],
//!   [`Uniform`], [`Exponential`], [`Constant`], [`Empirical`]);
//! * a serializable sum type [`Dist`] so fitted models can be persisted;
//! * moment accumulation ([`moments::Moments`]) and parameter fitting
//!   ([`fit`]) with AIC-based model selection ([`fit::select_model`]);
//! * goodness-of-fit machinery ([`gof`]) — the Kolmogorov–Smirnov test and
//!   information criteria;
//! * histogram and kernel-density estimation ([`histogram`], [`kde`]) used
//!   to regenerate the density plots of Figs. 3 and 4.
//!
//! # Example
//!
//! ```
//! use supersim_dist::{Dist, Distribution, fit};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let truth = Dist::log_normal(-1.0, 0.25).unwrap();
//! let samples: Vec<f64> = (0..4000).map(|_| truth.sample(&mut rng)).collect();
//! let selection = fit::select_model(&samples).unwrap();
//! // The log-normal should win (or at least be competitive) on its own data.
//! assert!(selection.best().aic <= selection.candidates()[0].aic + 1e-9);
//! ```

pub mod constant;
pub mod empirical;
pub mod exponential;
pub mod fit;
pub mod gamma;
pub mod gof;
pub mod histogram;
pub mod kde;
pub mod lognormal;
pub mod mixture;
pub mod moments;
pub mod normal;
#[cfg(test)]
mod proptests;
pub mod quantile;
pub mod special;
pub mod uniform;

pub use constant::Constant;
pub use empirical::Empirical;
pub use exponential::Exponential;
pub use gamma::Gamma;
pub use lognormal::LogNormal;
pub use mixture::Mixture;
pub use normal::Normal;
pub use uniform::Uniform;

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Errors produced when constructing or fitting distributions.
#[derive(Debug, Clone, PartialEq)]
pub enum DistError {
    /// A parameter was out of its valid domain (e.g. non-positive variance).
    InvalidParameter(&'static str),
    /// Not enough data points to fit the requested model.
    InsufficientData { needed: usize, got: usize },
    /// The data violates a support constraint (e.g. negative values for a
    /// log-normal fit).
    UnsupportedData(&'static str),
    /// An iterative fit failed to converge.
    NoConvergence(&'static str),
}

impl std::fmt::Display for DistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
            DistError::InsufficientData { needed, got } => {
                write!(
                    f,
                    "insufficient data: need at least {needed} samples, got {got}"
                )
            }
            DistError::UnsupportedData(what) => write!(f, "unsupported data: {what}"),
            DistError::NoConvergence(what) => write!(f, "fit did not converge: {what}"),
        }
    }
}

impl std::error::Error for DistError {}

/// Common interface for continuous univariate distributions.
///
/// All kernel-duration models implement this trait. Durations are
/// non-negative in practice, but the trait itself does not enforce a
/// support; the simulation layer clamps at zero where needed.
pub trait Distribution {
    /// Draw one sample using the supplied random source.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64;

    /// The distribution mean.
    fn mean(&self) -> f64;

    /// The distribution variance.
    fn variance(&self) -> f64;

    /// Probability density at `x`.
    fn pdf(&self, x: f64) -> f64;

    /// Natural log of the density at `x` (may be `-inf` outside the support).
    fn ln_pdf(&self, x: f64) -> f64 {
        self.pdf(x).ln()
    }

    /// Cumulative distribution function at `x`.
    fn cdf(&self, x: f64) -> f64;

    /// Standard deviation, `sqrt(variance)`.
    fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }
}

/// A serializable closed set of the distributions used for kernel models.
///
/// Having a concrete enum (rather than trait objects) lets fitted models be
/// persisted to the calibration database and compared structurally in tests.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "family", rename_all = "snake_case")]
pub enum Dist {
    /// Degenerate point mass.
    Constant(Constant),
    /// Uniform on `[lo, hi]`.
    Uniform(Uniform),
    /// Exponential with rate `lambda`.
    Exponential(Exponential),
    /// Normal (Gaussian).
    Normal(Normal),
    /// Log-normal: `ln X ~ N(mu, sigma^2)`.
    LogNormal(LogNormal),
    /// Gamma with shape `k` and scale `theta`.
    Gamma(Gamma),
    /// Empirical distribution (resamples the stored data).
    Empirical(Empirical),
    /// Finite mixture of other distributions (e.g. a cache-hit/miss
    /// bimodal kernel model — paper §VII's "improve the kernel model").
    Mixture(Mixture),
}

impl Dist {
    /// Point mass at `v`.
    pub fn constant(v: f64) -> Self {
        Dist::Constant(Constant::new(v))
    }

    /// Uniform on `[lo, hi]`.
    pub fn uniform(lo: f64, hi: f64) -> Result<Self, DistError> {
        Uniform::new(lo, hi).map(Dist::Uniform)
    }

    /// Exponential with rate `lambda`.
    pub fn exponential(lambda: f64) -> Result<Self, DistError> {
        Exponential::new(lambda).map(Dist::Exponential)
    }

    /// Normal with mean `mu` and standard deviation `sigma`.
    pub fn normal(mu: f64, sigma: f64) -> Result<Self, DistError> {
        Normal::new(mu, sigma).map(Dist::Normal)
    }

    /// Log-normal with log-mean `mu` and log-standard-deviation `sigma`.
    pub fn log_normal(mu: f64, sigma: f64) -> Result<Self, DistError> {
        LogNormal::new(mu, sigma).map(Dist::LogNormal)
    }

    /// Gamma with shape `k` and scale `theta`.
    pub fn gamma(shape: f64, scale: f64) -> Result<Self, DistError> {
        Gamma::new(shape, scale).map(Dist::Gamma)
    }

    /// Empirical distribution over the provided samples.
    pub fn empirical(samples: Vec<f64>) -> Result<Self, DistError> {
        Empirical::new(samples).map(Dist::Empirical)
    }

    /// Finite mixture from `(weight, component)` pairs.
    pub fn mixture(components: Vec<(f64, Dist)>) -> Result<Self, DistError> {
        Mixture::new(components).map(Dist::Mixture)
    }

    /// Human-readable family name, e.g. `"lognormal"`.
    pub fn family(&self) -> &'static str {
        match self {
            Dist::Constant(_) => "constant",
            Dist::Uniform(_) => "uniform",
            Dist::Exponential(_) => "exponential",
            Dist::Normal(_) => "normal",
            Dist::LogNormal(_) => "lognormal",
            Dist::Gamma(_) => "gamma",
            Dist::Empirical(_) => "empirical",
            Dist::Mixture(_) => "mixture",
        }
    }

    /// Number of free parameters (used by AIC/BIC).
    pub fn param_count(&self) -> usize {
        match self {
            Dist::Constant(_) => 1,
            Dist::Uniform(_) => 2,
            Dist::Exponential(_) => 1,
            Dist::Normal(_) => 2,
            Dist::LogNormal(_) => 2,
            Dist::Gamma(_) => 2,
            // An empirical model has (effectively) as many parameters as
            // samples; report n so AIC never prefers pure memorization.
            Dist::Empirical(e) => e.len(),
            // Each component: its parameters plus one weight.
            Dist::Mixture(m) => m
                .components()
                .iter()
                .map(|(_, d)| d.param_count() + 1)
                .sum(),
        }
    }
}

impl Distribution for Dist {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match self {
            Dist::Constant(d) => d.sample(rng),
            Dist::Uniform(d) => d.sample(rng),
            Dist::Exponential(d) => d.sample(rng),
            Dist::Normal(d) => d.sample(rng),
            Dist::LogNormal(d) => d.sample(rng),
            Dist::Gamma(d) => d.sample(rng),
            Dist::Empirical(d) => d.sample(rng),
            Dist::Mixture(d) => d.sample(rng),
        }
    }

    fn mean(&self) -> f64 {
        match self {
            Dist::Constant(d) => d.mean(),
            Dist::Uniform(d) => d.mean(),
            Dist::Exponential(d) => d.mean(),
            Dist::Normal(d) => d.mean(),
            Dist::LogNormal(d) => d.mean(),
            Dist::Gamma(d) => d.mean(),
            Dist::Empirical(d) => d.mean(),
            Dist::Mixture(d) => d.mean(),
        }
    }

    fn variance(&self) -> f64 {
        match self {
            Dist::Constant(d) => d.variance(),
            Dist::Uniform(d) => d.variance(),
            Dist::Exponential(d) => d.variance(),
            Dist::Normal(d) => d.variance(),
            Dist::LogNormal(d) => d.variance(),
            Dist::Gamma(d) => d.variance(),
            Dist::Empirical(d) => d.variance(),
            Dist::Mixture(d) => d.variance(),
        }
    }

    fn pdf(&self, x: f64) -> f64 {
        match self {
            Dist::Constant(d) => d.pdf(x),
            Dist::Uniform(d) => d.pdf(x),
            Dist::Exponential(d) => d.pdf(x),
            Dist::Normal(d) => d.pdf(x),
            Dist::LogNormal(d) => d.pdf(x),
            Dist::Gamma(d) => d.pdf(x),
            Dist::Empirical(d) => d.pdf(x),
            Dist::Mixture(d) => d.pdf(x),
        }
    }

    fn ln_pdf(&self, x: f64) -> f64 {
        match self {
            Dist::Constant(d) => d.ln_pdf(x),
            Dist::Uniform(d) => d.ln_pdf(x),
            Dist::Exponential(d) => d.ln_pdf(x),
            Dist::Normal(d) => d.ln_pdf(x),
            Dist::LogNormal(d) => d.ln_pdf(x),
            Dist::Gamma(d) => d.ln_pdf(x),
            Dist::Empirical(d) => d.ln_pdf(x),
            Dist::Mixture(d) => d.ln_pdf(x),
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        match self {
            Dist::Constant(d) => d.cdf(x),
            Dist::Uniform(d) => d.cdf(x),
            Dist::Exponential(d) => d.cdf(x),
            Dist::Normal(d) => d.cdf(x),
            Dist::LogNormal(d) => d.cdf(x),
            Dist::Gamma(d) => d.cdf(x),
            Dist::Empirical(d) => d.cdf(x),
            Dist::Mixture(d) => d.cdf(x),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn enum_dispatch_matches_inner() {
        let n = Normal::new(3.0, 0.5).unwrap();
        let d = Dist::Normal(n);
        assert_eq!(d.mean(), n.mean());
        assert_eq!(d.variance(), n.variance());
        assert_eq!(d.pdf(3.1), n.pdf(3.1));
        assert_eq!(d.cdf(3.1), n.cdf(3.1));
        assert_eq!(d.family(), "normal");
        assert_eq!(d.param_count(), 2);
    }

    #[test]
    fn serde_round_trip() {
        let cases = vec![
            Dist::constant(1.5),
            Dist::uniform(0.0, 2.0).unwrap(),
            Dist::exponential(3.0).unwrap(),
            Dist::normal(1.0, 0.1).unwrap(),
            Dist::log_normal(-0.5, 0.3).unwrap(),
            Dist::gamma(4.0, 0.25).unwrap(),
            Dist::empirical(vec![1.0, 2.0, 3.0]).unwrap(),
        ];
        for d in cases {
            let json = serde_json::to_string(&d).unwrap();
            let back: Dist = serde_json::from_str(&json).unwrap();
            assert_eq!(d, back, "round trip failed for {json}");
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let d = Dist::gamma(2.0, 0.5).unwrap();
        let mut a = rand::rngs::StdRng::seed_from_u64(42);
        let mut b = rand::rngs::StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut a), d.sample(&mut b));
        }
    }

    #[test]
    fn error_display_is_informative() {
        let e = DistError::InsufficientData { needed: 2, got: 0 };
        assert!(e.to_string().contains("need at least 2"));
        assert!(DistError::InvalidParameter("sigma")
            .to_string()
            .contains("sigma"));
    }
}
