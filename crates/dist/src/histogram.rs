//! Equal-width histograms with density normalization.
//!
//! Used by the figure benches to regenerate the kernel-timing density plots
//! of paper Figs. 3 and 4 (histogram of empirical timings with fitted
//! distribution curves overlaid).

use serde::{Deserialize, Serialize};

/// An equal-width histogram over `[lo, hi)` (last bin closed).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Create an empty histogram with `bins` equal-width bins over `[lo, hi]`.
    ///
    /// Panics if `bins == 0` or `lo >= hi` or bounds are not finite.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "bad histogram bounds [{lo},{hi}]"
        );
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
        }
    }

    /// Build a histogram from data with an automatically chosen bin count
    /// (Freedman–Diaconis, falling back to Sturges for degenerate IQR).
    pub fn auto(data: &[f64]) -> Option<Self> {
        let finite: Vec<f64> = data.iter().copied().filter(|x| x.is_finite()).collect();
        if finite.len() < 2 {
            return None;
        }
        let mut sorted = finite.clone();
        sorted.sort_by(f64::total_cmp);
        let lo = sorted[0];
        let hi = *sorted.last().unwrap();
        if lo >= hi {
            return None;
        }
        let n = sorted.len() as f64;
        let iqr = crate::quantile::quantile_sorted(&sorted, 0.75)
            - crate::quantile::quantile_sorted(&sorted, 0.25);
        let bins = if iqr > 0.0 {
            let width = 2.0 * iqr / n.cbrt();
            (((hi - lo) / width).ceil() as usize).clamp(1, 512)
        } else {
            // Sturges.
            ((n.log2().ceil() as usize) + 1).clamp(1, 512)
        };
        let mut h = Histogram::new(lo, hi, bins);
        h.add_all(&finite);
        Some(h)
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Width of each bin.
    pub fn bin_width(&self) -> f64 {
        (self.hi - self.lo) / self.counts.len() as f64
    }

    /// Lower bound of the histogram range.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound of the histogram range.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Total number of accumulated values (including out-of-range values,
    /// which are clamped into the edge bins).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Raw counts per bin.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Add one value. Out-of-range values are clamped to the edge bins;
    /// non-finite values are ignored.
    pub fn add(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        let idx = ((x - self.lo) / self.bin_width()).floor();
        let idx = (idx.max(0.0) as usize).min(self.counts.len() - 1);
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Add many values.
    pub fn add_all(&mut self, xs: &[f64]) {
        for &x in xs {
            self.add(x);
        }
    }

    /// Bin center positions.
    pub fn centers(&self) -> Vec<f64> {
        let w = self.bin_width();
        (0..self.counts.len())
            .map(|i| self.lo + (i as f64 + 0.5) * w)
            .collect()
    }

    /// Densities per bin: `count / (total * bin_width)`, so the histogram
    /// integrates to 1 and can be overlaid with a PDF.
    pub fn densities(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        let norm = 1.0 / (self.total as f64 * self.bin_width());
        self.counts.iter().map(|&c| c as f64 * norm).collect()
    }

    /// The bin index containing `x`, or None if out of range.
    pub fn bin_of(&self, x: f64) -> Option<usize> {
        if !x.is_finite() || x < self.lo || x > self.hi {
            return None;
        }
        let idx = ((x - self.lo) / self.bin_width()).floor() as usize;
        Some(idx.min(self.counts.len() - 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_panics() {
        Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    fn counts_land_in_right_bins() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.add_all(&[0.5, 1.5, 1.7, 9.99]);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[1], 2);
        assert_eq!(h.counts()[9], 1);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn out_of_range_clamped_non_finite_dropped() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.add(-5.0);
        h.add(7.0);
        h.add(f64::NAN);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[3], 1);
        assert_eq!(h.total(), 2);
    }

    #[test]
    fn upper_edge_goes_to_last_bin() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.add(1.0);
        assert_eq!(h.counts()[3], 1);
    }

    #[test]
    fn densities_integrate_to_one() {
        let mut h = Histogram::new(0.0, 2.0, 20);
        h.add_all(
            &(0..1000)
                .map(|i| (i % 200) as f64 / 100.0)
                .collect::<Vec<_>>(),
        );
        let sum: f64 = h.densities().iter().map(|d| d * h.bin_width()).sum();
        assert!((sum - 1.0).abs() < 1e-12, "integral {sum}");
    }

    #[test]
    fn auto_histogram_covers_data() {
        let data: Vec<f64> = (0..500).map(|i| (i as f64 * 0.618).sin() + 2.0).collect();
        let h = Histogram::auto(&data).unwrap();
        assert_eq!(h.total(), 500);
        assert!(h.bins() >= 2);
        assert!(h.lo() <= 1.01 && h.hi() >= 2.99);
    }

    #[test]
    fn auto_rejects_degenerate() {
        assert!(Histogram::auto(&[1.0]).is_none());
        assert!(Histogram::auto(&[2.0, 2.0, 2.0]).is_none());
        assert!(Histogram::auto(&[]).is_none());
    }

    #[test]
    fn centers_are_midpoints() {
        let h = Histogram::new(0.0, 4.0, 4);
        assert_eq!(h.centers(), vec![0.5, 1.5, 2.5, 3.5]);
    }

    #[test]
    fn bin_of_boundaries() {
        let h = Histogram::new(0.0, 4.0, 4);
        assert_eq!(h.bin_of(0.0), Some(0));
        assert_eq!(h.bin_of(3.999), Some(3));
        assert_eq!(h.bin_of(4.0), Some(3));
        assert_eq!(h.bin_of(-0.1), None);
        assert_eq!(h.bin_of(4.1), None);
    }
}
