//! Special mathematical functions needed by the distribution implementations.
//!
//! Implemented from scratch (no external math crates): Lanczos log-gamma,
//! digamma, error function, inverse error function, and the regularized
//! incomplete gamma function. Accuracy targets are ~1e-12 relative for
//! `ln_gamma`, ~1e-10 for `erf`, and ~1e-10 for `reg_gamma_lower`, which is
//! far tighter than anything the simulation needs.

/// Lanczos coefficients (g = 7, n = 9), standard double-precision set.
const LANCZOS_G: f64 = 7.0;
const LANCZOS: [f64; 9] = [
    0.999_999_999_999_809_9,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural log of the gamma function, valid for `x > 0`.
///
/// Uses the Lanczos approximation with reflection for `x < 0.5`.
pub fn ln_gamma(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    if x <= 0.0 {
        // Poles at non-positive integers; use the reflection formula for
        // negative non-integers (needed only for robustness, fitting code
        // always passes positive arguments).
        if x == x.floor() {
            return f64::INFINITY;
        }
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin().abs()).ln() - ln_gamma(1.0 - x);
    }
    if x < 0.5 {
        // Reflection keeps the Lanczos sum well conditioned near zero.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = LANCZOS[0];
    for (i, &c) in LANCZOS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + LANCZOS_G + 0.5;
    let half_ln_2pi = 0.918_938_533_204_672_7; // 0.5 * ln(2*pi)
    half_ln_2pi + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Digamma function (derivative of `ln_gamma`), valid for `x > 0`.
///
/// Recurrence to push the argument above 6, then the asymptotic series.
pub fn digamma(mut x: f64) -> f64 {
    if x.is_nan() || x <= 0.0 {
        return f64::NAN;
    }
    let mut result = 0.0;
    while x < 6.0 {
        result -= 1.0 / x;
        x += 1.0;
    }
    // Asymptotic expansion: ln x - 1/(2x) - sum B_{2n}/(2n x^{2n}).
    let inv = 1.0 / x;
    let inv2 = inv * inv;
    result + x.ln()
        - 0.5 * inv
        - inv2
            * (1.0 / 12.0
                - inv2 * (1.0 / 120.0 - inv2 * (1.0 / 252.0 - inv2 * (1.0 / 240.0 - inv2 / 132.0))))
}

/// Error function, computed via the identity `erf(x) = P(1/2, x^2)` with
/// the regularized incomplete gamma machinery below (~1e-14 accurate).
pub fn erf(x: f64) -> f64 {
    if x == 0.0 {
        return 0.0;
    }
    let p = reg_gamma_lower(0.5, x * x);
    if x > 0.0 {
        p
    } else {
        -p
    }
}

/// Complementary error function, `erfc(x) = Q(1/2, x^2)` for `x >= 0`.
///
/// The continued-fraction branch keeps full relative precision in the tail
/// (where `1 - erf(x)` would cancel catastrophically).
pub fn erfc(x: f64) -> f64 {
    if x < 0.0 {
        return 2.0 - erfc(-x);
    }
    if x == 0.0 {
        return 1.0;
    }
    let x2 = x * x;
    if x2 < 1.5 {
        1.0 - gamma_series(0.5, x2)
    } else {
        gamma_cont_frac(0.5, x2)
    }
}

/// Standard normal CDF `Phi(x)`.
pub fn std_normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Inverse of the standard normal CDF (the probit function).
///
/// Acklam's rational approximation, refined with one Halley step, giving
/// full double precision for `p` in `(0, 1)`.
pub fn std_normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile requires p in (0,1), got {p}");
    // Acklam coefficients.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley refinement step.
    let e = std_normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// Regularized lower incomplete gamma function `P(a, x)`.
///
/// Series expansion for `x < a + 1`, continued fraction otherwise
/// (Numerical Recipes `gammp`).
pub fn reg_gamma_lower(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "reg_gamma_lower requires a > 0");
    if x <= 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_series(a, x)
    } else {
        1.0 - gamma_cont_frac(a, x)
    }
}

/// Series representation of `P(a, x)`.
fn gamma_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..500 {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * 1e-15 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Continued-fraction representation of `Q(a, x) = 1 - P(a, x)`.
fn gamma_cont_frac(a: f64, x: f64) -> f64 {
    const FPMIN: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / FPMIN;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = b + an / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-15 {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!(
            (a - b).abs() <= tol * (1.0 + b.abs()),
            "{a} != {b} (tol {tol})"
        );
    }

    #[test]
    fn ln_gamma_known_values() {
        // Gamma(1)=1, Gamma(2)=1, Gamma(5)=24, Gamma(0.5)=sqrt(pi).
        close(ln_gamma(1.0), 0.0, 1e-12);
        close(ln_gamma(2.0), 0.0, 1e-12);
        close(ln_gamma(5.0), 24.0_f64.ln(), 1e-12);
        close(ln_gamma(0.5), std::f64::consts::PI.sqrt().ln(), 1e-12);
        close(ln_gamma(10.5), 1_133_278.388_948_441_4_f64.ln(), 1e-10);
    }

    #[test]
    fn ln_gamma_recurrence_holds() {
        // ln Gamma(x+1) = ln Gamma(x) + ln x across a wide range.
        for i in 1..200 {
            let x = i as f64 * 0.37 + 0.01;
            close(ln_gamma(x + 1.0), ln_gamma(x) + x.ln(), 1e-11);
        }
    }

    #[test]
    fn digamma_known_values() {
        const EULER_GAMMA: f64 = 0.577_215_664_901_532_9;
        close(digamma(1.0), -EULER_GAMMA, 1e-10);
        close(digamma(0.5), -EULER_GAMMA - 2.0 * (2.0_f64).ln(), 1e-10);
        // Recurrence: psi(x+1) = psi(x) + 1/x.
        for i in 1..100 {
            let x = i as f64 * 0.29 + 0.05;
            close(digamma(x + 1.0), digamma(x) + 1.0 / x, 1e-10);
        }
    }

    #[test]
    fn digamma_matches_ln_gamma_derivative() {
        // Central difference of ln_gamma should approximate digamma.
        for &x in &[0.7, 1.3, 2.9, 7.5, 23.0] {
            let h = 1e-6;
            let numeric = (ln_gamma(x + h) - ln_gamma(x - h)) / (2.0 * h);
            close(digamma(x), numeric, 1e-6);
        }
    }

    #[test]
    fn erf_known_values() {
        close(erf(0.0), 0.0, 1e-12);
        close(erf(1.0), 0.842_700_792_949_714_9, 2e-7);
        close(erf(-1.0), -0.842_700_792_949_714_9, 2e-7);
        close(erf(2.0), 0.995_322_265_018_952_7, 2e-7);
        assert!(erf(6.0) > 0.999_999_999);
        assert!(erf(-6.0) < -0.999_999_999);
    }

    #[test]
    fn erfc_symmetry() {
        for &x in &[0.1, 0.5, 1.0, 2.0, 3.5] {
            close(erfc(x) + erfc(-x), 2.0, 1e-9);
        }
    }

    #[test]
    fn normal_cdf_quantile_invert() {
        for &p in &[0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999] {
            let x = std_normal_quantile(p);
            close(std_normal_cdf(x), p, 1e-7);
        }
    }

    #[test]
    #[should_panic(expected = "p in (0,1)")]
    fn quantile_rejects_out_of_range() {
        std_normal_quantile(1.5);
    }

    #[test]
    fn reg_gamma_lower_known_values() {
        // P(1, x) = 1 - exp(-x).
        for &x in &[0.1, 0.5, 1.0, 2.5, 7.0] {
            close(reg_gamma_lower(1.0, x), 1.0 - (-x).exp(), 1e-12);
        }
        // P(a, 0) = 0; limits to 1 for large x.
        assert_eq!(reg_gamma_lower(3.0, 0.0), 0.0);
        assert!(reg_gamma_lower(3.0, 100.0) > 1.0 - 1e-12);
        // Monotone in x.
        let mut prev = 0.0;
        for i in 1..100 {
            let v = reg_gamma_lower(2.5, i as f64 * 0.1);
            assert!(v >= prev);
            prev = v;
        }
    }
}
