//! Finite mixture distributions.
//!
//! The paper's future work (§VII) notes that single simple distributions
//! are "a simplification of what actually occurs in most workloads" — the
//! classic counterexample being a bimodal kernel whose duration depends on
//! whether its tile is cache-resident. A weighted mixture of the simple
//! families models exactly that.

use crate::{Dist, DistError, Distribution};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A finite mixture: sample a component with probability proportional to
/// its weight, then sample from that component.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mixture {
    components: Vec<(f64, Dist)>,
}

impl Mixture {
    /// Build from `(weight, component)` pairs. Weights must be positive
    /// and are normalized internally; at least one component is required.
    pub fn new(components: Vec<(f64, Dist)>) -> Result<Self, DistError> {
        if components.is_empty() {
            return Err(DistError::InvalidParameter(
                "mixture needs at least one component",
            ));
        }
        if components.iter().any(|(w, _)| !(w.is_finite() && *w > 0.0)) {
            return Err(DistError::InvalidParameter(
                "mixture weights must be positive",
            ));
        }
        let total: f64 = components.iter().map(|(w, _)| w).sum();
        let components = components
            .into_iter()
            .map(|(w, d)| (w / total, d))
            .collect();
        Ok(Mixture { components })
    }

    /// A two-component convenience constructor: value `fast` with
    /// probability `p_fast`, else `slow` — the cache-hit/cache-miss model.
    pub fn bimodal(p_fast: f64, fast: Dist, slow: Dist) -> Result<Self, DistError> {
        if !(p_fast.is_finite() && p_fast > 0.0 && p_fast < 1.0) {
            return Err(DistError::InvalidParameter(
                "bimodal probability must be in (0,1)",
            ));
        }
        Self::new(vec![(p_fast, fast), (1.0 - p_fast, slow)])
    }

    /// The normalized `(weight, component)` pairs.
    pub fn components(&self) -> &[(f64, Dist)] {
        &self.components
    }
}

impl Distribution for Mixture {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.random();
        let mut acc = 0.0;
        for (w, d) in &self.components {
            acc += w;
            if u < acc {
                return d.sample(rng);
            }
        }
        // Floating-point slack: fall through to the last component.
        self.components.last().expect("non-empty").1.sample(rng)
    }

    fn mean(&self) -> f64 {
        self.components.iter().map(|(w, d)| w * d.mean()).sum()
    }

    fn variance(&self) -> f64 {
        // Var = E[X^2] - E[X]^2 with E[X^2] mixed per component.
        let mean = self.mean();
        let second: f64 = self
            .components
            .iter()
            .map(|(w, d)| w * (d.variance() + d.mean() * d.mean()))
            .sum();
        second - mean * mean
    }

    fn pdf(&self, x: f64) -> f64 {
        self.components.iter().map(|(w, d)| w * d.pdf(x)).sum()
    }

    fn cdf(&self, x: f64) -> f64 {
        self.components.iter().map(|(w, d)| w * d.cdf(x)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn bimodal() -> Mixture {
        Mixture::bimodal(
            0.7,
            Dist::normal(1.0, 0.05).unwrap(),
            Dist::normal(5.0, 0.1).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn rejects_invalid_construction() {
        assert!(Mixture::new(vec![]).is_err());
        assert!(Mixture::new(vec![(0.0, Dist::constant(1.0))]).is_err());
        assert!(Mixture::new(vec![(-1.0, Dist::constant(1.0))]).is_err());
        assert!(Mixture::bimodal(0.0, Dist::constant(1.0), Dist::constant(2.0)).is_err());
        assert!(Mixture::bimodal(1.0, Dist::constant(1.0), Dist::constant(2.0)).is_err());
    }

    #[test]
    fn weights_normalized() {
        let m = Mixture::new(vec![(2.0, Dist::constant(0.0)), (6.0, Dist::constant(1.0))]).unwrap();
        assert!((m.components()[0].0 - 0.25).abs() < 1e-15);
        assert!((m.components()[1].0 - 0.75).abs() < 1e-15);
        assert!((m.mean() - 0.75).abs() < 1e-15);
    }

    #[test]
    fn moments_match_mixture_formulas() {
        let m = bimodal();
        // mean = 0.7*1 + 0.3*5 = 2.2
        assert!((m.mean() - 2.2).abs() < 1e-12);
        // E[X^2] = 0.7*(0.0025+1) + 0.3*(0.01+25) = 0.701750 + 7.503 = 8.20475
        let var = 8.20475 - 2.2 * 2.2;
        assert!(
            (m.variance() - var).abs() < 1e-10,
            "{} vs {var}",
            m.variance()
        );
    }

    #[test]
    fn samples_split_between_modes() {
        let m = bimodal();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let n = 20_000;
        let fast = (0..n).filter(|_| m.sample(&mut rng) < 3.0).count();
        let frac = fast as f64 / n as f64;
        assert!((frac - 0.7).abs() < 0.02, "fast fraction {frac}");
    }

    #[test]
    fn pdf_cdf_are_weighted_sums() {
        let m = bimodal();
        assert!(m.pdf(1.0) > m.pdf(3.0), "density peaks at the fast mode");
        assert!(
            (m.cdf(3.0) - 0.7).abs() < 1e-6,
            "70% of mass below the valley"
        );
        assert!((m.cdf(100.0) - 1.0).abs() < 1e-9);
        assert!(m.cdf(-100.0) < 1e-9);
    }

    #[test]
    fn serde_round_trip() {
        let m = bimodal();
        let json = serde_json::to_string(&m).unwrap();
        let back: Mixture = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn usable_as_kernel_model_shape() {
        // Sanity: samples are finite and non-negative when components are.
        let m = Mixture::bimodal(
            0.5,
            Dist::gamma(4.0, 0.001).unwrap(),
            Dist::gamma(4.0, 0.01).unwrap(),
        )
        .unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x = m.sample(&mut rng);
            assert!(x.is_finite() && x >= 0.0);
        }
    }
}
