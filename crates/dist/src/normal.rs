//! Normal (Gaussian) distribution.
//!
//! In dense linear algebra "the kernels are most commonly described using
//! the normal distribution of execution times" (paper §V-B2); this is the
//! first of the three candidate kernel models.

use crate::special::{std_normal_cdf, std_normal_quantile};
use crate::{DistError, Distribution};
use rand::Rng;
use serde::{Deserialize, Serialize};

const LN_SQRT_2PI: f64 = 0.918_938_533_204_672_7;

/// Normal distribution with mean `mu` and standard deviation `sigma`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Normal {
    mu: f64,
    sigma: f64,
}

impl Normal {
    /// Create a normal distribution; requires finite `mu` and `sigma > 0`.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, DistError> {
        if !mu.is_finite() {
            return Err(DistError::InvalidParameter("normal mean must be finite"));
        }
        if !(sigma.is_finite() && sigma > 0.0) {
            return Err(DistError::InvalidParameter("normal sigma must be positive"));
        }
        Ok(Normal { mu, sigma })
    }

    /// The location parameter.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// The scale parameter.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Draw a standard-normal variate via Box–Muller.
    ///
    /// The polar (Marsaglia) variant is avoided on purpose: it consumes a
    /// *data-dependent* number of RNG draws, which would make downstream
    /// sampling sequences fragile; Box–Muller always consumes exactly two.
    pub fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        let u1: f64 = rng.random();
        let u2: f64 = rng.random();
        // Guard u1 = 0 (random() is in [0,1)); 1-u1 is in (0,1].
        let r = (-2.0 * (1.0 - u1).ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        r * theta.cos()
    }

    /// Quantile function (inverse CDF).
    pub fn quantile(&self, p: f64) -> f64 {
        self.mu + self.sigma * std_normal_quantile(p)
    }
}

impl Distribution for Normal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mu + self.sigma * Self::sample_standard(rng)
    }

    fn mean(&self) -> f64 {
        self.mu
    }

    fn variance(&self) -> f64 {
        self.sigma * self.sigma
    }

    fn pdf(&self, x: f64) -> f64 {
        self.ln_pdf(x).exp()
    }

    fn ln_pdf(&self, x: f64) -> f64 {
        let z = (x - self.mu) / self.sigma;
        -0.5 * z * z - self.sigma.ln() - LN_SQRT_2PI
    }

    fn cdf(&self, x: f64) -> f64 {
        std_normal_cdf((x - self.mu) / self.sigma)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_params() {
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, 0.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
    }

    #[test]
    fn sample_moments() {
        let n = Normal::new(10.0, 2.0).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        let cnt = 50_000;
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        for _ in 0..cnt {
            let x = n.sample(&mut rng);
            sum += x;
            sum2 += x * x;
        }
        let mean = sum / cnt as f64;
        let var = sum2 / cnt as f64 - mean * mean;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn pdf_peak_at_mean() {
        let n = Normal::new(1.0, 0.5).unwrap();
        let peak = n.pdf(1.0);
        assert!(peak > n.pdf(0.5));
        assert!(peak > n.pdf(1.5));
        // Peak density of N(mu, sigma) is 1/(sigma*sqrt(2pi)).
        let expect = 1.0 / (0.5 * (2.0 * std::f64::consts::PI).sqrt());
        assert!((peak - expect).abs() < 1e-12);
    }

    #[test]
    fn cdf_symmetry_and_quantile() {
        let n = Normal::new(3.0, 1.5).unwrap();
        assert!((n.cdf(3.0) - 0.5).abs() < 1e-9);
        for &p in &[0.05, 0.25, 0.5, 0.75, 0.95] {
            let x = n.quantile(p);
            assert!((n.cdf(x) - p).abs() < 1e-6, "p={p}");
        }
    }

    #[test]
    fn standard_sampler_consumes_fixed_rng_amount() {
        // Two seeds through different numbers of draws must realign:
        // each standard sample consumes exactly two uniforms.
        let mut a = rand::rngs::StdRng::seed_from_u64(9);
        let mut b = rand::rngs::StdRng::seed_from_u64(9);
        let _ = Normal::sample_standard(&mut a);
        let _: f64 = b.random();
        let _: f64 = b.random();
        assert_eq!(a.random::<u64>(), b.random::<u64>());
    }

    #[test]
    fn ln_pdf_matches_pdf() {
        let n = Normal::new(-2.0, 0.7).unwrap();
        for &x in &[-3.0, -2.0, 0.0, 1.0] {
            assert!((n.ln_pdf(x) - n.pdf(x).ln()).abs() < 1e-10);
        }
    }
}
