//! Goodness-of-fit: Kolmogorov–Smirnov test.
//!
//! Used to sanity-check the fitted kernel models ("to test how appropriate
//! these distributions are, we fitted the empirical distributions of
//! completion times", paper §V-B2).

use crate::{Dist, Distribution};

/// One-sample Kolmogorov–Smirnov statistic: the max distance between the
/// empirical CDF of `data` and the model CDF.
pub fn ks_statistic(dist: &Dist, data: &[f64]) -> f64 {
    let mut sorted: Vec<f64> = data.iter().copied().filter(|x| x.is_finite()).collect();
    if sorted.is_empty() {
        return f64::NAN;
    }
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len() as f64;
    let mut d = 0.0_f64;
    for (i, &x) in sorted.iter().enumerate() {
        let cdf = dist.cdf(x);
        // ECDF jumps from i/n to (i+1)/n at x; check both sides.
        let d_plus = ((i + 1) as f64 / n - cdf).abs();
        let d_minus = (cdf - i as f64 / n).abs();
        d = d.max(d_plus).max(d_minus);
    }
    d
}

/// Asymptotic Kolmogorov distribution survival function:
/// `Q(lambda) = 2 * sum_{j>=1} (-1)^{j-1} exp(-2 j^2 lambda^2)`.
///
/// Returns the approximate p-value for the KS test with statistic `d` and
/// sample size `n`. Accurate enough for model-diagnostic purposes (the
/// classic Numerical Recipes `probks`).
pub fn ks_p_value(d: f64, n: usize) -> f64 {
    if !(d.is_finite() && d >= 0.0) || n == 0 {
        return f64::NAN;
    }
    let en = (n as f64).sqrt();
    let lambda = (en + 0.12 + 0.11 / en) * d;
    let mut sum = 0.0;
    let mut sign = 1.0;
    let mut prev_term = 0.0_f64;
    for j in 1..=100 {
        let term = sign * 2.0 * (-2.0 * (j as f64) * (j as f64) * lambda * lambda).exp();
        sum += term;
        if term.abs() <= 1e-9 * sum.abs() || term.abs() <= 1e-12 * prev_term.abs() {
            return sum.clamp(0.0, 1.0);
        }
        prev_term = term;
        sign = -sign;
    }
    // Alternating series failed to converge: this only happens for very
    // small lambda, where the distribution mass is all above d — p = 1
    // (same convention as Numerical Recipes' probks).
    1.0
}

/// Combined KS test: statistic and p-value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KsTest {
    /// The KS statistic (sup-norm distance of CDFs).
    pub statistic: f64,
    /// Approximate p-value under the null that the data came from `dist`.
    pub p_value: f64,
}

/// Run a one-sample KS test of `data` against `dist`.
pub fn ks_test(dist: &Dist, data: &[f64]) -> KsTest {
    let d = ks_statistic(dist, data);
    KsTest {
        statistic: d,
        p_value: ks_p_value(d, data.len()),
    }
}

/// Two-sample KS statistic between two data sets.
pub fn ks_two_sample(a: &[f64], b: &[f64]) -> f64 {
    let mut sa: Vec<f64> = a.iter().copied().filter(|x| x.is_finite()).collect();
    let mut sb: Vec<f64> = b.iter().copied().filter(|x| x.is_finite()).collect();
    if sa.is_empty() || sb.is_empty() {
        return f64::NAN;
    }
    sa.sort_by(f64::total_cmp);
    sb.sort_by(f64::total_cmp);
    let (na, nb) = (sa.len() as f64, sb.len() as f64);
    let (mut ia, mut ib) = (0usize, 0usize);
    let mut d = 0.0_f64;
    while ia < sa.len() && ib < sb.len() {
        let xa = sa[ia];
        let xb = sb[ib];
        let x = xa.min(xb);
        while ia < sa.len() && sa[ia] <= x {
            ia += 1;
        }
        while ib < sb.len() && sb[ib] <= x {
            ib += 1;
        }
        d = d.max((ia as f64 / na - ib as f64 / nb).abs());
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Dist;
    use rand::SeedableRng;

    fn samples(d: &Dist, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n).map(|_| d.sample(&mut rng)).collect()
    }

    #[test]
    fn ks_small_for_true_model() {
        let d = Dist::normal(0.0, 1.0).unwrap();
        let data = samples(&d, 5_000, 1);
        let t = ks_test(&d, &data);
        assert!(t.statistic < 0.03, "stat {}", t.statistic);
        assert!(t.p_value > 0.01, "p {}", t.p_value);
    }

    #[test]
    fn ks_large_for_wrong_model() {
        let truth = Dist::normal(0.0, 1.0).unwrap();
        let wrong = Dist::normal(2.0, 1.0).unwrap();
        let data = samples(&truth, 5_000, 2);
        let t = ks_test(&wrong, &data);
        assert!(t.statistic > 0.5, "stat {}", t.statistic);
        assert!(t.p_value < 1e-6, "p {}", t.p_value);
    }

    #[test]
    fn ks_p_value_limits() {
        // Tiny statistic -> p near 1; huge statistic -> p near 0.
        assert!(ks_p_value(0.001, 100) > 0.99);
        assert!(ks_p_value(0.9, 100) < 1e-10);
    }

    #[test]
    fn ks_statistic_empty_is_nan() {
        let d = Dist::normal(0.0, 1.0).unwrap();
        assert!(ks_statistic(&d, &[]).is_nan());
    }

    #[test]
    fn two_sample_same_source_small() {
        let d = Dist::gamma(3.0, 1.0).unwrap();
        let a = samples(&d, 4_000, 3);
        let b = samples(&d, 4_000, 4);
        assert!(ks_two_sample(&a, &b) < 0.05);
    }

    #[test]
    fn two_sample_different_sources_large() {
        let a = samples(&Dist::normal(0.0, 1.0).unwrap(), 2_000, 5);
        let b = samples(&Dist::normal(3.0, 1.0).unwrap(), 2_000, 6);
        assert!(ks_two_sample(&a, &b) > 0.7);
    }

    #[test]
    fn two_sample_identical_data_zero() {
        let a = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(ks_two_sample(&a, &a), 0.0);
    }
}
