//! Exponential distribution (rate parameterization).
//!
//! Not one of the paper's three kernel models, but the canonical service-time
//! distribution for discrete-event simulation; it is used by the synthetic
//! workloads and as an additional candidate in model selection.

use crate::{DistError, Distribution};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Exponential distribution with rate `lambda` (mean `1/lambda`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Exponential {
    lambda: f64,
}

impl Exponential {
    /// Create an exponential with rate `lambda > 0`.
    pub fn new(lambda: f64) -> Result<Self, DistError> {
        if !(lambda.is_finite() && lambda > 0.0) {
            return Err(DistError::InvalidParameter(
                "exponential rate must be positive",
            ));
        }
        Ok(Exponential { lambda })
    }

    /// Create from the mean (`mean = 1/lambda`).
    pub fn from_mean(mean: f64) -> Result<Self, DistError> {
        if !(mean.is_finite() && mean > 0.0) {
            return Err(DistError::InvalidParameter(
                "exponential mean must be positive",
            ));
        }
        Self::new(1.0 / mean)
    }

    /// The rate parameter.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }
}

impl Distribution for Exponential {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Inverse-CDF sampling; `1 - u` avoids ln(0) since `random` is in [0,1).
        let u: f64 = rng.random();
        -(1.0 - u).ln() / self.lambda
    }

    fn mean(&self) -> f64 {
        1.0 / self.lambda
    }

    fn variance(&self) -> f64 {
        1.0 / (self.lambda * self.lambda)
    }

    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            self.lambda * (-self.lambda * x).exp()
        }
    }

    fn ln_pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            f64::NEG_INFINITY
        } else {
            self.lambda.ln() - self.lambda * x
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            1.0 - (-self.lambda * x).exp()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_rate() {
        assert!(Exponential::new(0.0).is_err());
        assert!(Exponential::new(-1.0).is_err());
        assert!(Exponential::new(f64::NAN).is_err());
    }

    #[test]
    fn from_mean_inverts_rate() {
        let e = Exponential::from_mean(4.0).unwrap();
        assert!((e.lambda() - 0.25).abs() < 1e-15);
        assert!((e.mean() - 4.0).abs() < 1e-15);
    }

    #[test]
    fn moments_match_samples() {
        let e = Exponential::new(2.0).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| e.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn samples_nonnegative() {
        let e = Exponential::new(0.5).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        assert!((0..1000).all(|_| e.sample(&mut rng) >= 0.0));
    }

    #[test]
    fn pdf_cdf_ln_pdf_consistent() {
        let e = Exponential::new(1.5).unwrap();
        assert_eq!(e.pdf(-0.1), 0.0);
        assert_eq!(e.cdf(-0.1), 0.0);
        assert!((e.ln_pdf(0.7) - e.pdf(0.7).ln()).abs() < 1e-12);
        assert!((e.cdf(10.0) - 1.0).abs() < 1e-6);
    }
}
