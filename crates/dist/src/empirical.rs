//! Empirical distribution backed by observed samples.
//!
//! The most literal kernel model: resample the measured durations directly
//! (a bootstrap). The figure benches use it as the "emp." reference curve
//! alongside the fitted parametric models, as in paper Figs. 3 and 4.

use crate::{DistError, Distribution};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// An empirical distribution; sampling draws uniformly from stored data.
///
/// The sample vector is kept sorted so that CDF queries are `O(log n)` and
/// quantiles are `O(1)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Empirical {
    sorted: Vec<f64>,
}

impl Empirical {
    /// Build from raw samples. Requires at least one finite sample.
    pub fn new(mut samples: Vec<f64>) -> Result<Self, DistError> {
        samples.retain(|x| x.is_finite());
        if samples.is_empty() {
            return Err(DistError::InsufficientData { needed: 1, got: 0 });
        }
        samples.sort_by(f64::total_cmp);
        Ok(Empirical { sorted: samples })
    }

    /// Number of stored samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the sample set is empty (never true post-construction).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The stored samples in ascending order.
    pub fn data(&self) -> &[f64] {
        &self.sorted
    }

    /// Smallest observed value.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Largest observed value.
    pub fn max(&self) -> f64 {
        *self.sorted.last().unwrap()
    }

    /// Empirical quantile with linear interpolation (type-7, the R default).
    pub fn quantile(&self, p: f64) -> f64 {
        crate::quantile::quantile_sorted(&self.sorted, p)
    }
}

impl Distribution for Empirical {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let i = rng.random_range(0..self.sorted.len());
        self.sorted[i]
    }

    fn mean(&self) -> f64 {
        self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
    }

    fn variance(&self) -> f64 {
        let m = self.mean();
        self.sorted.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / self.sorted.len() as f64
    }

    /// A discrete distribution has no density; we return a histogram-style
    /// estimate over a small window so the value is still plottable.
    fn pdf(&self, x: f64) -> f64 {
        let n = self.sorted.len() as f64;
        let span = (self.max() - self.min()).max(f64::MIN_POSITIVE);
        // Window of 1/20 of the data range, like a coarse boxcar KDE.
        let h = span / 20.0;
        let lo = self.sorted.partition_point(|&v| v < x - h);
        let hi = self.sorted.partition_point(|&v| v <= x + h);
        (hi - lo) as f64 / (n * 2.0 * h)
    }

    fn cdf(&self, x: f64) -> f64 {
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn rejects_empty_or_all_nan() {
        assert!(Empirical::new(vec![]).is_err());
        assert!(Empirical::new(vec![f64::NAN, f64::INFINITY]).is_err());
    }

    #[test]
    fn filters_non_finite() {
        let e = Empirical::new(vec![1.0, f64::NAN, 3.0]).unwrap();
        assert_eq!(e.len(), 2);
        assert_eq!(e.data(), &[1.0, 3.0]);
    }

    #[test]
    fn sampling_only_returns_observed_values() {
        let e = Empirical::new(vec![2.0, 4.0, 8.0]).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        for _ in 0..100 {
            let x = e.sample(&mut rng);
            assert!(x == 2.0 || x == 4.0 || x == 8.0);
        }
    }

    #[test]
    fn mean_variance_exact() {
        let e = Empirical::new(vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(e.mean(), 2.5);
        assert_eq!(e.variance(), 1.25);
    }

    #[test]
    fn cdf_is_step_function() {
        let e = Empirical::new(vec![1.0, 2.0, 2.0, 5.0]).unwrap();
        assert_eq!(e.cdf(0.5), 0.0);
        assert_eq!(e.cdf(1.0), 0.25);
        assert_eq!(e.cdf(2.0), 0.75);
        assert_eq!(e.cdf(4.9), 0.75);
        assert_eq!(e.cdf(5.0), 1.0);
    }

    #[test]
    fn min_max_quantiles() {
        let e = Empirical::new(vec![5.0, 1.0, 3.0]).unwrap();
        assert_eq!(e.min(), 1.0);
        assert_eq!(e.max(), 5.0);
        assert_eq!(e.quantile(0.0), 1.0);
        assert_eq!(e.quantile(1.0), 5.0);
        assert_eq!(e.quantile(0.5), 3.0);
    }

    #[test]
    fn pdf_concentrates_near_data() {
        let e = Empirical::new((0..100).map(|i| i as f64 * 0.01).collect()).unwrap();
        // Uniform-ish data: density near the middle should be ~1 (over [0,1)).
        let p = e.pdf(0.5);
        assert!(p > 0.5 && p < 2.0, "pdf {p}");
    }
}
