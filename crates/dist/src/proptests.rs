//! Property-based tests for the distribution layer.

#![cfg(test)]

use crate::{fit, quantile, Dist, Distribution};
use proptest::prelude::*;
use rand::SeedableRng;

fn dist_strategy() -> impl Strategy<Value = Dist> {
    prop_oneof![
        (0.01f64..100.0).prop_map(Dist::constant),
        (-10.0f64..10.0, 0.01f64..5.0).prop_map(|(lo, w)| Dist::uniform(lo, lo + w).unwrap()),
        (0.01f64..10.0).prop_map(|l| Dist::exponential(l).unwrap()),
        (-5.0f64..5.0, 0.01f64..3.0).prop_map(|(m, s)| Dist::normal(m, s).unwrap()),
        (-3.0f64..3.0, 0.01f64..1.5).prop_map(|(m, s)| Dist::log_normal(m, s).unwrap()),
        (0.1f64..20.0, 0.01f64..5.0).prop_map(|(k, t)| Dist::gamma(k, t).unwrap()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// CDF is monotone non-decreasing and within [0, 1].
    #[test]
    fn cdf_monotone_in_unit_interval(d in dist_strategy(), xs in prop::collection::vec(-50.0f64..50.0, 2..20)) {
        let mut xs = xs;
        xs.sort_by(f64::total_cmp);
        let mut prev = 0.0f64;
        for &x in &xs {
            let c = d.cdf(x);
            prop_assert!((0.0..=1.0).contains(&c), "cdf({x}) = {c}");
            prop_assert!(c >= prev - 1e-12, "cdf not monotone at {x}");
            prev = c;
        }
    }

    /// PDF is non-negative everywhere.
    #[test]
    fn pdf_nonnegative(d in dist_strategy(), x in -50.0f64..50.0) {
        prop_assert!(d.pdf(x) >= 0.0);
    }

    /// Sample mean converges to the distribution mean (loose 5-sigma band).
    #[test]
    fn sample_mean_matches(d in dist_strategy(), seed in 0u64..1000) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n = 4000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        let sigma = d.std_dev() / (n as f64).sqrt();
        let tol = 6.0 * sigma + 1e-9 + 0.01 * d.mean().abs();
        prop_assert!((mean - d.mean()).abs() < tol,
            "sample mean {mean} vs {} (tol {tol}) for {d:?}", d.mean());
    }

    /// Samples of positive-support families are non-negative.
    #[test]
    fn positive_support_families(seed in 0u64..500, k in 0.1f64..10.0, t in 0.01f64..5.0) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let g = Dist::gamma(k, t).unwrap();
        let l = Dist::log_normal(0.0, k.min(2.0)).unwrap();
        let e = Dist::exponential(t).unwrap();
        for _ in 0..100 {
            prop_assert!(g.sample(&mut rng) >= 0.0);
            prop_assert!(l.sample(&mut rng) > 0.0);
            prop_assert!(e.sample(&mut rng) >= 0.0);
        }
    }

    /// Sampling is a pure function of the RNG state.
    #[test]
    fn sampling_deterministic(d in dist_strategy(), seed in 0u64..1000) {
        let mut a = rand::rngs::StdRng::seed_from_u64(seed);
        let mut b = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..20 {
            prop_assert_eq!(d.sample(&mut a), d.sample(&mut b));
        }
    }

    /// Serde round-trips preserve the distribution exactly.
    #[test]
    fn serde_round_trip_any(d in dist_strategy()) {
        let json = serde_json::to_string(&d).unwrap();
        let back: Dist = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(d, back);
    }

    /// Quantiles are monotone and bracketed by the sample extremes.
    #[test]
    fn quantiles_monotone(data in prop::collection::vec(-100.0f64..100.0, 1..60),
                          p1 in 0.0f64..1.0, p2 in 0.0f64..1.0) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        let qlo = quantile::quantile(&data, lo);
        let qhi = quantile::quantile(&data, hi);
        prop_assert!(qlo <= qhi + 1e-12);
        let min = data.iter().copied().fold(f64::INFINITY, f64::min);
        let max = data.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(qlo >= min - 1e-12 && qhi <= max + 1e-12);
    }

    /// Normal fit recovers parameters within statistical tolerance.
    #[test]
    fn normal_fit_recovers(mu in -10.0f64..10.0, sigma in 0.05f64..3.0, seed in 0u64..300) {
        let truth = Dist::normal(mu, sigma).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let data: Vec<f64> = (0..3000).map(|_| truth.sample(&mut rng)).collect();
        let f = fit::fit_normal(&data).unwrap();
        prop_assert!((f.mu() - mu).abs() < 6.0 * sigma / (3000f64).sqrt() + 1e-6);
        prop_assert!((f.sigma() - sigma).abs() < 0.15 * sigma + 1e-6);
    }

    /// Histogram density always integrates to ~1 for non-degenerate data.
    #[test]
    fn histogram_integrates(data in prop::collection::vec(0.0f64..10.0, 8..200)) {
        if let Some(h) = crate::histogram::Histogram::auto(&data) {
            let integral: f64 = h.densities().iter().map(|d| d * h.bin_width()).sum();
            prop_assert!((integral - 1.0).abs() < 1e-9, "integral {integral}");
        }
    }

    /// Moments accumulator merge == sequential accumulation, any split.
    #[test]
    fn moments_merge_any_split(data in prop::collection::vec(-1e3f64..1e3, 2..120), split in 0usize..120) {
        let split = split.min(data.len());
        let whole = crate::moments::Moments::from_slice(&data);
        let mut a = crate::moments::Moments::from_slice(&data[..split]);
        let b = crate::moments::Moments::from_slice(&data[split..]);
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() < 1e-6 * (1.0 + whole.mean().abs()));
        prop_assert!((a.variance() - whole.variance()).abs() < 1e-4 * (1.0 + whole.variance()));
    }
}
