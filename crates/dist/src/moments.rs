//! Online moment accumulation (Welford) and sample summaries.

use serde::{Deserialize, Serialize};

/// Numerically stable online accumulator for the first four central moments.
///
/// Uses the Welford/Pébay update formulas; merging two accumulators is also
/// supported so per-thread statistics can be combined.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Moments {
    n: u64,
    mean: f64,
    m2: f64,
    m3: f64,
    m4: f64,
    min: f64,
    max: f64,
}

impl Moments {
    /// Fresh accumulator.
    pub fn new() -> Self {
        Moments {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            m3: 0.0,
            m4: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Accumulate one observation. Non-finite values are ignored.
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        let n1 = self.n as f64;
        self.n += 1;
        let n = self.n as f64;
        let delta = x - self.mean;
        let delta_n = delta / n;
        let delta_n2 = delta_n * delta_n;
        let term1 = delta * delta_n * n1;
        self.mean += delta_n;
        self.m4 += term1 * delta_n2 * (n * n - 3.0 * n + 3.0) + 6.0 * delta_n2 * self.m2
            - 4.0 * delta_n * self.m3;
        self.m3 += term1 * delta_n * (n - 2.0) - 3.0 * delta_n * self.m2;
        self.m2 += term1;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Accumulate a slice of observations.
    pub fn push_all(&mut self, xs: &[f64]) {
        for &x in xs {
            self.push(x);
        }
    }

    /// Build directly from a slice.
    pub fn from_slice(xs: &[f64]) -> Self {
        let mut m = Moments::new();
        m.push_all(xs);
        m
    }

    /// Merge another accumulator into this one (Pébay's parallel formulas).
    pub fn merge(&mut self, other: &Moments) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let (na, nb) = (self.n as f64, other.n as f64);
        let n = na + nb;
        let delta = other.mean - self.mean;
        let delta2 = delta * delta;
        let delta3 = delta2 * delta;
        let delta4 = delta3 * delta;

        let mean = self.mean + delta * nb / n;
        let m2 = self.m2 + other.m2 + delta2 * na * nb / n;
        let m3 = self.m3
            + other.m3
            + delta3 * na * nb * (na - nb) / (n * n)
            + 3.0 * delta * (na * other.m2 - nb * self.m2) / n;
        let m4 = self.m4
            + other.m4
            + delta4 * na * nb * (na * na - na * nb + nb * nb) / (n * n * n)
            + 6.0 * delta2 * (na * na * other.m2 + nb * nb * self.m2) / (n * n)
            + 4.0 * delta * (na * other.m3 - nb * self.m3) / n;

        self.n += other.n;
        self.mean = mean;
        self.m2 = m2;
        self.m3 = m3;
        self.m4 = m4;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of accumulated (finite) observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (divides by `n`).
    pub fn variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Unbiased sample variance (divides by `n - 1`; 0 for n < 2).
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Sample standard deviation.
    pub fn sample_std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Skewness (0 for degenerate data).
    pub fn skewness(&self) -> f64 {
        if self.n == 0 || self.m2 == 0.0 {
            return 0.0;
        }
        let n = self.n as f64;
        (n.sqrt() * self.m3) / self.m2.powf(1.5)
    }

    /// Excess kurtosis (0 for degenerate data).
    pub fn kurtosis(&self) -> f64 {
        if self.n == 0 || self.m2 == 0.0 {
            return 0.0;
        }
        let n = self.n as f64;
        n * self.m4 / (self.m2 * self.m2) - 3.0
    }

    /// Minimum observed value (`+inf` if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observed value (`-inf` if empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Coefficient of variation, `std/mean` (0 for zero mean).
    pub fn cv(&self) -> f64 {
        if self.mean() == 0.0 {
            0.0
        } else {
            self.std_dev() / self.mean().abs()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_safe() {
        let m = Moments::new();
        assert_eq!(m.count(), 0);
        assert_eq!(m.mean(), 0.0);
        assert_eq!(m.variance(), 0.0);
        assert_eq!(m.skewness(), 0.0);
        assert_eq!(m.kurtosis(), 0.0);
    }

    #[test]
    fn basic_moments() {
        let m = Moments::from_slice(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(m.count(), 8);
        assert!((m.mean() - 5.0).abs() < 1e-12);
        assert!((m.variance() - 4.0).abs() < 1e-12);
        assert!((m.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(m.min(), 2.0);
        assert_eq!(m.max(), 9.0);
    }

    #[test]
    fn sample_variance_uses_n_minus_one() {
        let m = Moments::from_slice(&[1.0, 2.0, 3.0]);
        assert!((m.sample_variance() - 1.0).abs() < 1e-12);
        assert!((m.variance() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn ignores_non_finite() {
        let m = Moments::from_slice(&[1.0, f64::NAN, 2.0, f64::INFINITY]);
        assert_eq!(m.count(), 2);
        assert!((m.mean() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..1000)
            .map(|i| ((i * 37) % 101) as f64 * 0.13 + 1.0)
            .collect();
        let whole = Moments::from_slice(&data);
        let mut a = Moments::from_slice(&data[..333]);
        let b = Moments::from_slice(&data[333..]);
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-10);
        assert!((a.variance() - whole.variance()).abs() < 1e-8);
        assert!((a.skewness() - whole.skewness()).abs() < 1e-8);
        assert!((a.kurtosis() - whole.kurtosis()).abs() < 1e-7);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let data = [3.0, 1.0, 4.0, 1.0, 5.0];
        let mut m = Moments::from_slice(&data);
        let before = m;
        m.merge(&Moments::new());
        assert_eq!(m, before);

        let mut e = Moments::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn skewness_sign_detects_asymmetry() {
        // Right-skewed data: skewness > 0.
        let right: Vec<f64> = (0..100).map(|i| (i as f64 / 10.0).exp()).collect();
        assert!(Moments::from_slice(&right).skewness() > 0.5);
        // Symmetric data: skewness near 0.
        let sym: Vec<f64> = (-50..=50).map(|i| i as f64).collect();
        assert!(Moments::from_slice(&sym).skewness().abs() < 1e-10);
    }

    #[test]
    fn cv_basic() {
        let m = Moments::from_slice(&[10.0, 10.0, 10.0]);
        assert_eq!(m.cv(), 0.0);
        let m2 = Moments::from_slice(&[8.0, 12.0]);
        assert!((m2.cv() - 0.2).abs() < 1e-12);
    }
}
