//! Gaussian kernel density estimation.
//!
//! Produces the smooth "emp." density curve plotted alongside the fitted
//! parametric models in the Fig. 3/4 reproductions.

use crate::moments::Moments;

/// A Gaussian KDE over a fixed data set.
#[derive(Debug, Clone, PartialEq)]
pub struct Kde {
    data: Vec<f64>,
    bandwidth: f64,
}

impl Kde {
    /// Build a KDE with Silverman's rule-of-thumb bandwidth:
    /// `0.9 * min(std, IQR/1.34) * n^(-1/5)`.
    ///
    /// Returns `None` for fewer than 2 finite points or degenerate spread.
    pub fn silverman(data: &[f64]) -> Option<Self> {
        let finite: Vec<f64> = data.iter().copied().filter(|x| x.is_finite()).collect();
        if finite.len() < 2 {
            return None;
        }
        let m = Moments::from_slice(&finite);
        let std = m.sample_std_dev();
        let iqr = crate::quantile::iqr(&finite);
        let spread = if iqr > 0.0 { std.min(iqr / 1.34) } else { std };
        if spread <= 0.0 {
            return None;
        }
        let n = finite.len() as f64;
        let bw = 0.9 * spread * n.powf(-0.2);
        Some(Kde {
            data: finite,
            bandwidth: bw,
        })
    }

    /// Build with an explicit bandwidth (`> 0`).
    pub fn with_bandwidth(data: &[f64], bandwidth: f64) -> Option<Self> {
        let finite: Vec<f64> = data.iter().copied().filter(|x| x.is_finite()).collect();
        if finite.is_empty() || !(bandwidth.is_finite() && bandwidth > 0.0) {
            return None;
        }
        Some(Kde {
            data: finite,
            bandwidth,
        })
    }

    /// The bandwidth in use.
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// Number of data points.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the KDE has no data (never true post-construction).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Density estimate at `x`.
    pub fn density(&self, x: f64) -> f64 {
        const INV_SQRT_2PI: f64 = 0.398_942_280_401_432_7;
        let h = self.bandwidth;
        let mut sum = 0.0;
        for &xi in &self.data {
            let z = (x - xi) / h;
            sum += (-0.5 * z * z).exp();
        }
        sum * INV_SQRT_2PI / (self.data.len() as f64 * h)
    }

    /// Evaluate the density on `n` evenly spaced points covering the data
    /// range extended by 3 bandwidths on each side.
    pub fn grid(&self, n: usize) -> Vec<(f64, f64)> {
        assert!(n >= 2, "grid needs at least 2 points");
        let lo = self.data.iter().copied().fold(f64::INFINITY, f64::min) - 3.0 * self.bandwidth;
        let hi = self.data.iter().copied().fold(f64::NEG_INFINITY, f64::max) + 3.0 * self.bandwidth;
        let step = (hi - lo) / (n - 1) as f64;
        (0..n)
            .map(|i| {
                let x = lo + i as f64 * step;
                (x, self.density(x))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dist, Distribution};
    use rand::SeedableRng;

    #[test]
    fn rejects_degenerate_input() {
        assert!(Kde::silverman(&[]).is_none());
        assert!(Kde::silverman(&[1.0]).is_none());
        assert!(Kde::silverman(&[2.0, 2.0, 2.0]).is_none());
        assert!(Kde::with_bandwidth(&[1.0], 0.0).is_none());
        assert!(Kde::with_bandwidth(&[], 1.0).is_none());
    }

    #[test]
    fn density_integrates_to_one() {
        let data: Vec<f64> = (0..200).map(|i| (i as f64 * 0.37).sin()).collect();
        let kde = Kde::silverman(&data).unwrap();
        let grid = kde.grid(2_000);
        let step = grid[1].0 - grid[0].0;
        let integral: f64 = grid.iter().map(|&(_, d)| d * step).sum();
        assert!((integral - 1.0).abs() < 0.01, "integral {integral}");
    }

    #[test]
    fn kde_approximates_true_density() {
        let truth = Dist::normal(0.0, 1.0).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let data: Vec<f64> = (0..5_000).map(|_| truth.sample(&mut rng)).collect();
        let kde = Kde::silverman(&data).unwrap();
        for &x in &[-1.0, 0.0, 1.0] {
            let est = kde.density(x);
            let exact = truth.pdf(x);
            assert!((est - exact).abs() < 0.05, "x={x}: {est} vs {exact}");
        }
    }

    #[test]
    fn density_peaks_near_data() {
        let kde = Kde::with_bandwidth(&[5.0, 5.1, 4.9], 0.2).unwrap();
        assert!(kde.density(5.0) > kde.density(3.0));
        assert!(kde.density(5.0) > kde.density(7.0));
    }
}
