//! Continuous uniform distribution on `[lo, hi]`.

use crate::{DistError, Distribution};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Uniform distribution on the closed interval `[lo, hi]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// Create a uniform distribution; requires `lo < hi`, both finite.
    pub fn new(lo: f64, hi: f64) -> Result<Self, DistError> {
        if !lo.is_finite() || !hi.is_finite() {
            return Err(DistError::InvalidParameter("uniform bounds must be finite"));
        }
        if lo >= hi {
            return Err(DistError::InvalidParameter("uniform requires lo < hi"));
        }
        Ok(Uniform { lo, hi })
    }

    /// Lower bound.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Interval width.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }
}

impl Distribution for Uniform {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.lo + rng.random::<f64>() * (self.hi - self.lo)
    }

    fn mean(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }

    fn variance(&self) -> f64 {
        let w = self.width();
        w * w / 12.0
    }

    fn pdf(&self, x: f64) -> f64 {
        if x >= self.lo && x <= self.hi {
            1.0 / self.width()
        } else {
            0.0
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x < self.lo {
            0.0
        } else if x > self.hi {
            1.0
        } else {
            (x - self.lo) / self.width()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_bounds() {
        assert!(Uniform::new(1.0, 1.0).is_err());
        assert!(Uniform::new(2.0, 1.0).is_err());
        assert!(Uniform::new(f64::NEG_INFINITY, 1.0).is_err());
    }

    #[test]
    fn samples_stay_in_range_and_match_moments() {
        let u = Uniform::new(2.0, 6.0).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let n = 20_000;
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        for _ in 0..n {
            let x = u.sample(&mut rng);
            assert!((2.0..=6.0).contains(&x));
            sum += x;
            sum2 += x * x;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!((mean - u.mean()).abs() < 0.05, "mean {mean}");
        assert!((var - u.variance()).abs() < 0.1, "var {var}");
    }

    #[test]
    fn pdf_cdf_consistent() {
        let u = Uniform::new(0.0, 4.0).unwrap();
        assert_eq!(u.pdf(2.0), 0.25);
        assert_eq!(u.pdf(-1.0), 0.0);
        assert_eq!(u.pdf(5.0), 0.0);
        assert_eq!(u.cdf(0.0), 0.0);
        assert_eq!(u.cdf(1.0), 0.25);
        assert_eq!(u.cdf(4.0), 1.0);
        assert_eq!(u.cdf(9.0), 1.0);
    }
}
