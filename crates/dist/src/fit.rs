//! Parameter fitting and model selection for kernel-duration data.
//!
//! Reproduces the paper's §V-B2 methodology: fit normal, gamma and
//! log-normal candidates to the empirical kernel timings and pick the best.
//! Fits use maximum likelihood (closed-form for normal/log-normal, Newton on
//! the digamma equation for gamma), and selection uses the Akaike
//! Information Criterion over the shared data.

use crate::moments::Moments;
use crate::special::digamma;
use crate::{Dist, DistError, Distribution, Exponential, Gamma, LogNormal, Normal, Uniform};
use serde::{Deserialize, Serialize};

/// Minimum number of samples we are willing to fit a 2-parameter model to.
pub const MIN_FIT_SAMPLES: usize = 8;

/// Fit a normal distribution by maximum likelihood (sample mean/std).
pub fn fit_normal(data: &[f64]) -> Result<Normal, DistError> {
    let m = finite_moments(data)?;
    let sigma = m.sample_std_dev();
    if sigma <= 0.0 {
        return Err(DistError::UnsupportedData(
            "zero variance data cannot fit a normal",
        ));
    }
    Normal::new(m.mean(), sigma)
}

/// Fit a log-normal by maximum likelihood on the log-transformed data.
pub fn fit_lognormal(data: &[f64]) -> Result<LogNormal, DistError> {
    check_count(data)?;
    if data.iter().any(|&x| x <= 0.0) {
        return Err(DistError::UnsupportedData(
            "lognormal fit requires strictly positive data",
        ));
    }
    let logs: Vec<f64> = data.iter().map(|x| x.ln()).collect();
    let m = Moments::from_slice(&logs);
    let sigma = m.sample_std_dev();
    if sigma <= 0.0 {
        return Err(DistError::UnsupportedData(
            "zero variance data cannot fit a lognormal",
        ));
    }
    LogNormal::new(m.mean(), sigma)
}

/// Fit a gamma distribution.
///
/// Starts from the Minka/method-of-moments initializer and refines the shape
/// with Newton iterations on the MLE condition
/// `ln(k) - psi(k) = ln(mean) - mean(ln x)`.
pub fn fit_gamma(data: &[f64]) -> Result<Gamma, DistError> {
    check_count(data)?;
    if data.iter().any(|&x| x <= 0.0) {
        return Err(DistError::UnsupportedData(
            "gamma fit requires strictly positive data",
        ));
    }
    let m = finite_moments(data)?;
    let mean = m.mean();
    let mean_ln = data.iter().map(|x| x.ln()).sum::<f64>() / data.len() as f64;
    let s = mean.ln() - mean_ln;
    if s <= 0.0 {
        // Degenerate (all samples equal) — fall back to the moment estimate.
        let var = m.sample_variance();
        if var <= 0.0 {
            return Err(DistError::UnsupportedData(
                "zero variance data cannot fit a gamma",
            ));
        }
        return Gamma::from_mean_std(mean, var.sqrt());
    }
    // Minka's closed-form initializer.
    let mut k = (3.0 - s + ((s - 3.0) * (s - 3.0) + 24.0 * s).sqrt()) / (12.0 * s);
    if !k.is_finite() || k <= 0.0 {
        k = 1.0;
    }
    // Newton refinement: f(k) = ln k - psi(k) - s, f'(k) ~ 1/k - psi'(k);
    // we use the standard approximation psi'(k) ≈ (psi(k+h)-psi(k))/h.
    for _ in 0..50 {
        let f = k.ln() - digamma(k) - s;
        let h = 1e-6 * k.max(1e-6);
        let fp = (1.0 / k) - (digamma(k + h) - digamma(k)) / h;
        let step = f / fp;
        let next = k - step;
        let next = if next <= 0.0 { k / 2.0 } else { next };
        if (next - k).abs() <= 1e-12 * k {
            k = next;
            break;
        }
        k = next;
    }
    if !k.is_finite() || k <= 0.0 {
        return Err(DistError::NoConvergence("gamma shape iteration diverged"));
    }
    Gamma::new(k, mean / k)
}

/// Fit an exponential by maximum likelihood (rate = 1/mean).
pub fn fit_exponential(data: &[f64]) -> Result<Exponential, DistError> {
    let m = finite_moments(data)?;
    if m.mean() <= 0.0 {
        return Err(DistError::UnsupportedData(
            "exponential fit requires positive mean",
        ));
    }
    Exponential::from_mean(m.mean())
}

/// Fit a uniform over the observed range (MLE for the uniform family).
pub fn fit_uniform(data: &[f64]) -> Result<Uniform, DistError> {
    let m = finite_moments(data)?;
    if m.min() >= m.max() {
        return Err(DistError::UnsupportedData(
            "uniform fit requires a non-degenerate range",
        ));
    }
    Uniform::new(m.min(), m.max())
}

fn check_count(data: &[f64]) -> Result<(), DistError> {
    if data.len() < MIN_FIT_SAMPLES {
        return Err(DistError::InsufficientData {
            needed: MIN_FIT_SAMPLES,
            got: data.len(),
        });
    }
    Ok(())
}

fn finite_moments(data: &[f64]) -> Result<Moments, DistError> {
    check_count(data)?;
    let m = Moments::from_slice(data);
    if (m.count() as usize) < MIN_FIT_SAMPLES {
        return Err(DistError::InsufficientData {
            needed: MIN_FIT_SAMPLES,
            got: m.count() as usize,
        });
    }
    Ok(m)
}

/// Total log-likelihood of `data` under `dist`.
pub fn log_likelihood(dist: &Dist, data: &[f64]) -> f64 {
    data.iter().map(|&x| dist.ln_pdf(x)).sum()
}

/// Akaike Information Criterion: `2k - 2 ln L`.
pub fn aic(log_lik: f64, param_count: usize) -> f64 {
    2.0 * param_count as f64 - 2.0 * log_lik
}

/// Bayesian Information Criterion: `k ln n - 2 ln L`.
pub fn bic(log_lik: f64, param_count: usize, n: usize) -> f64 {
    param_count as f64 * (n as f64).ln() - 2.0 * log_lik
}

/// One fitted candidate model with its quality scores.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FittedModel {
    /// The fitted distribution.
    pub dist: Dist,
    /// Total log-likelihood on the fitting data.
    pub log_likelihood: f64,
    /// Akaike information criterion (lower is better).
    pub aic: f64,
    /// Bayesian information criterion (lower is better).
    pub bic: f64,
    /// Kolmogorov–Smirnov statistic against the fitting data.
    pub ks_statistic: f64,
}

/// The result of fitting all candidate families to one data set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelSelection {
    candidates: Vec<FittedModel>,
}

impl ModelSelection {
    /// All successfully fitted candidates, sorted by ascending AIC.
    pub fn candidates(&self) -> &[FittedModel] {
        &self.candidates
    }

    /// The AIC-best model.
    pub fn best(&self) -> &FittedModel {
        &self.candidates[0]
    }

    /// Find the candidate from a given family, if it was fitted.
    pub fn family(&self, name: &str) -> Option<&FittedModel> {
        self.candidates.iter().find(|c| c.dist.family() == name)
    }
}

/// Fit the paper's three kernel models (normal, gamma, log-normal) plus an
/// exponential baseline, score each with AIC, and return them ranked.
///
/// Families whose support does not admit the data (e.g. gamma with
/// non-positive samples) are silently skipped; an error is returned only if
/// *no* family could be fitted.
pub fn select_model(data: &[f64]) -> Result<ModelSelection, DistError> {
    check_count(data)?;
    let mut candidates = Vec::new();
    let mut push = |d: Dist| {
        let ll = log_likelihood(&d, data);
        if !ll.is_finite() {
            return;
        }
        let k = d.param_count();
        candidates.push(FittedModel {
            aic: aic(ll, k),
            bic: bic(ll, k, data.len()),
            ks_statistic: crate::gof::ks_statistic(&d, data),
            log_likelihood: ll,
            dist: d,
        });
    };
    if let Ok(n) = fit_normal(data) {
        push(Dist::Normal(n));
    }
    if let Ok(g) = fit_gamma(data) {
        push(Dist::Gamma(g));
    }
    if let Ok(l) = fit_lognormal(data) {
        push(Dist::LogNormal(l));
    }
    if let Ok(e) = fit_exponential(data) {
        push(Dist::Exponential(e));
    }
    if candidates.is_empty() {
        return Err(DistError::UnsupportedData(
            "no candidate family admits this data",
        ));
    }
    candidates.sort_by(|a, b| a.aic.total_cmp(&b.aic));
    Ok(ModelSelection { candidates })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn samples(d: &Dist, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n).map(|_| d.sample(&mut rng)).collect()
    }

    #[test]
    fn normal_fit_recovers_parameters() {
        let truth = Dist::normal(5.0, 0.8).unwrap();
        let data = samples(&truth, 20_000, 1);
        let fit = fit_normal(&data).unwrap();
        assert!((fit.mu() - 5.0).abs() < 0.03, "mu {}", fit.mu());
        assert!((fit.sigma() - 0.8).abs() < 0.02, "sigma {}", fit.sigma());
    }

    #[test]
    fn lognormal_fit_recovers_parameters() {
        let truth = Dist::log_normal(-0.5, 0.4).unwrap();
        let data = samples(&truth, 20_000, 2);
        let fit = fit_lognormal(&data).unwrap();
        assert!((fit.mu() + 0.5).abs() < 0.02, "mu {}", fit.mu());
        assert!((fit.sigma() - 0.4).abs() < 0.01, "sigma {}", fit.sigma());
    }

    #[test]
    fn gamma_fit_recovers_parameters() {
        let truth = Dist::gamma(5.0, 0.3).unwrap();
        let data = samples(&truth, 20_000, 3);
        let fit = fit_gamma(&data).unwrap();
        assert!((fit.shape() - 5.0).abs() < 0.3, "shape {}", fit.shape());
        assert!((fit.scale() - 0.3).abs() < 0.03, "scale {}", fit.scale());
    }

    #[test]
    fn gamma_fit_small_shape() {
        let truth = Dist::gamma(0.7, 2.0).unwrap();
        let data = samples(&truth, 40_000, 4);
        let fit = fit_gamma(&data).unwrap();
        assert!((fit.shape() - 0.7).abs() < 0.05, "shape {}", fit.shape());
    }

    #[test]
    fn exponential_and_uniform_fits() {
        let e = fit_exponential(&[1.0, 3.0, 2.0, 2.0, 1.5, 2.5, 2.0, 2.0]).unwrap();
        assert!((e.mean() - 2.0).abs() < 1e-12);
        let u = fit_uniform(&[1.0, 3.0, 2.0, 2.0, 1.5, 2.5, 2.0, 2.0]).unwrap();
        assert_eq!(u.lo(), 1.0);
        assert_eq!(u.hi(), 3.0);
    }

    #[test]
    fn fits_reject_insufficient_or_invalid_data() {
        assert!(matches!(
            fit_normal(&[1.0, 2.0]),
            Err(DistError::InsufficientData { .. })
        ));
        let with_negative = [-1.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0];
        assert!(matches!(
            fit_lognormal(&with_negative),
            Err(DistError::UnsupportedData(_))
        ));
        assert!(matches!(
            fit_gamma(&with_negative),
            Err(DistError::UnsupportedData(_))
        ));
        let constant = [2.0; 10];
        assert!(fit_normal(&constant).is_err());
        assert!(fit_uniform(&constant).is_err());
    }

    #[test]
    fn selection_prefers_true_family_normal() {
        let truth = Dist::normal(10.0, 0.5).unwrap();
        let data = samples(&truth, 8_000, 5);
        let sel = select_model(&data).unwrap();
        assert_eq!(sel.best().dist.family(), "normal");
    }

    #[test]
    fn selection_prefers_true_family_gamma_over_exponential() {
        // Strongly-shaped gamma should beat exponential and normal.
        let truth = Dist::gamma(2.0, 1.0).unwrap();
        let data = samples(&truth, 8_000, 6);
        let sel = select_model(&data).unwrap();
        let fam = sel.best().dist.family();
        assert!(fam == "gamma" || fam == "lognormal", "best was {fam}");
        // The exponential must be strictly worse.
        let exp = sel.family("exponential").unwrap();
        assert!(exp.aic > sel.best().aic);
    }

    #[test]
    fn selection_orders_by_aic() {
        let truth = Dist::log_normal(0.0, 0.6).unwrap();
        let data = samples(&truth, 4_000, 7);
        let sel = select_model(&data).unwrap();
        let aics: Vec<f64> = sel.candidates().iter().map(|c| c.aic).collect();
        assert!(
            aics.windows(2).all(|w| w[0] <= w[1]),
            "not sorted: {aics:?}"
        );
    }

    #[test]
    fn selection_skips_inadmissible_families() {
        // Data with negatives: gamma/lognormal skipped, normal still fits.
        let truth = Dist::normal(0.0, 1.0).unwrap();
        let data = samples(&truth, 4_000, 8);
        assert!(data.iter().any(|&x| x < 0.0));
        let sel = select_model(&data).unwrap();
        assert!(sel.family("gamma").is_none());
        assert!(sel.family("lognormal").is_none());
        assert_eq!(sel.best().dist.family(), "normal");
    }

    #[test]
    fn aic_bic_formulas() {
        assert_eq!(aic(-10.0, 2), 24.0);
        assert!((bic(-10.0, 2, 100) - (2.0 * 100f64.ln() + 20.0)).abs() < 1e-12);
    }
}
