//! Degenerate (point-mass) distribution.
//!
//! Useful as the simplest possible kernel model — the paper contrasts its
//! probabilistic models against "a constant or uniform distribution"
//! (Fig. 4 caption); this is that baseline.

use crate::{DistError, Distribution};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A distribution that always returns `value`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Constant {
    value: f64,
}

impl Constant {
    /// Point mass at `value`. NaN is normalized to 0 to keep the type total.
    pub fn new(value: f64) -> Self {
        let value = if value.is_nan() { 0.0 } else { value };
        Constant { value }
    }

    /// Construct, rejecting non-finite values.
    pub fn try_new(value: f64) -> Result<Self, DistError> {
        if !value.is_finite() {
            return Err(DistError::InvalidParameter("constant value must be finite"));
        }
        Ok(Constant { value })
    }

    /// The point of mass.
    pub fn value(&self) -> f64 {
        self.value
    }
}

impl Distribution for Constant {
    fn sample<R: Rng + ?Sized>(&self, _rng: &mut R) -> f64 {
        self.value
    }

    fn mean(&self) -> f64 {
        self.value
    }

    fn variance(&self) -> f64 {
        0.0
    }

    /// The density of a point mass is not a function; by convention we
    /// return `+inf` at the atom and `0` elsewhere.
    fn pdf(&self, x: f64) -> f64 {
        if x == self.value {
            f64::INFINITY
        } else {
            0.0
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x >= self.value {
            1.0
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn always_returns_value() {
        let c = Constant::new(2.5);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(c.sample(&mut rng), 2.5);
        }
        assert_eq!(c.mean(), 2.5);
        assert_eq!(c.variance(), 0.0);
        assert_eq!(c.std_dev(), 0.0);
    }

    #[test]
    fn cdf_is_step() {
        let c = Constant::new(1.0);
        assert_eq!(c.cdf(0.999), 0.0);
        assert_eq!(c.cdf(1.0), 1.0);
        assert_eq!(c.cdf(2.0), 1.0);
    }

    #[test]
    fn try_new_rejects_non_finite() {
        assert!(Constant::try_new(f64::INFINITY).is_err());
        assert!(Constant::try_new(f64::NAN).is_err());
        assert!(Constant::try_new(3.0).is_ok());
    }

    #[test]
    fn nan_normalized() {
        assert_eq!(Constant::new(f64::NAN).value(), 0.0);
    }
}
