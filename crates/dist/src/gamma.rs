//! Gamma distribution (shape/scale parameterization).
//!
//! The second of the paper's three candidate kernel models (§V-B2).
//! Sampling uses the Marsaglia–Tsang squeeze method, with the standard
//! `U^(1/k)` boost for shape < 1.

use crate::special::{ln_gamma, reg_gamma_lower};
use crate::{DistError, Distribution};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Gamma distribution with shape `k` and scale `theta` (mean `k*theta`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Gamma {
    shape: f64,
    scale: f64,
}

impl Gamma {
    /// Create a gamma distribution; requires `shape > 0` and `scale > 0`.
    pub fn new(shape: f64, scale: f64) -> Result<Self, DistError> {
        if !(shape.is_finite() && shape > 0.0) {
            return Err(DistError::InvalidParameter("gamma shape must be positive"));
        }
        if !(scale.is_finite() && scale > 0.0) {
            return Err(DistError::InvalidParameter("gamma scale must be positive"));
        }
        Ok(Gamma { shape, scale })
    }

    /// Construct from the desired mean and standard deviation
    /// (method-of-moments inversion).
    pub fn from_mean_std(mean: f64, std: f64) -> Result<Self, DistError> {
        if !(mean.is_finite() && mean > 0.0) {
            return Err(DistError::InvalidParameter("gamma mean must be positive"));
        }
        if !(std.is_finite() && std > 0.0) {
            return Err(DistError::InvalidParameter("gamma std must be positive"));
        }
        let shape = (mean / std).powi(2);
        let scale = std * std / mean;
        Self::new(shape, scale)
    }

    /// Shape parameter `k`.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// Scale parameter `theta`.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Marsaglia–Tsang sampler for a unit-scale gamma with shape `k >= 1`.
    fn sample_mt<R: Rng + ?Sized>(k: f64, rng: &mut R) -> f64 {
        debug_assert!(k >= 1.0);
        let d = k - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            // One normal draw and one uniform per attempt.
            let x = crate::normal::Normal::sample_standard(rng);
            let v = 1.0 + c * x;
            if v <= 0.0 {
                continue;
            }
            let v3 = v * v * v;
            let u: f64 = rng.random();
            // Squeeze test, then full acceptance test.
            if u < 1.0 - 0.0331 * x * x * x * x {
                return d * v3;
            }
            if u > 0.0 && u.ln() < 0.5 * x * x + d * (1.0 - v3 + v3.ln()) {
                return d * v3;
            }
        }
    }
}

impl Distribution for Gamma {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.shape >= 1.0 {
            Self::sample_mt(self.shape, rng) * self.scale
        } else {
            // Boost: Gamma(k) = Gamma(k+1) * U^(1/k) for k < 1.
            let g = Self::sample_mt(self.shape + 1.0, rng);
            let u: f64 = rng.random();
            // Guard against u = 0: powf(inf) would overflow to 0 anyway via
            // exp(-inf), but make the intent explicit.
            let u = u.max(f64::MIN_POSITIVE);
            g * u.powf(1.0 / self.shape) * self.scale
        }
    }

    fn mean(&self) -> f64 {
        self.shape * self.scale
    }

    fn variance(&self) -> f64 {
        self.shape * self.scale * self.scale
    }

    fn pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            self.ln_pdf(x).exp()
        }
    }

    fn ln_pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return f64::NEG_INFINITY;
        }
        (self.shape - 1.0) * x.ln()
            - x / self.scale
            - ln_gamma(self.shape)
            - self.shape * self.scale.ln()
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            reg_gamma_lower(self.shape, x / self.scale)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_params() {
        assert!(Gamma::new(0.0, 1.0).is_err());
        assert!(Gamma::new(1.0, 0.0).is_err());
        assert!(Gamma::new(-2.0, 1.0).is_err());
        assert!(Gamma::new(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn from_mean_std_round_trips() {
        let g = Gamma::from_mean_std(6.0, 1.5).unwrap();
        assert!((g.mean() - 6.0).abs() < 1e-12);
        assert!((g.std_dev() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn sample_moments_shape_above_one() {
        let g = Gamma::new(4.0, 0.5).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        let n = 50_000;
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        for _ in 0..n {
            let x = g.sample(&mut rng);
            assert!(x > 0.0);
            sum += x;
            sum2 += x * x;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!((mean - 2.0).abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn sample_moments_shape_below_one() {
        let g = Gamma::new(0.5, 2.0).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(37);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| g.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.03, "mean {mean}");
    }

    #[test]
    fn pdf_integrates_to_one() {
        // Trapezoidal integration of the density.
        let g = Gamma::new(3.0, 0.7).unwrap();
        let (a, b, n) = (0.0, 30.0, 30_000);
        let h = (b - a) / n as f64;
        let mut total = 0.0;
        for i in 0..=n {
            let x = a + i as f64 * h;
            let w = if i == 0 || i == n { 0.5 } else { 1.0 };
            total += w * g.pdf(x);
        }
        total *= h;
        assert!((total - 1.0).abs() < 1e-6, "integral {total}");
    }

    #[test]
    fn cdf_matches_pdf_integral() {
        let g = Gamma::new(2.5, 1.2).unwrap();
        // CDF(x) should equal integral of pdf up to x.
        let x_target = 4.0;
        let n = 40_000;
        let h = x_target / n as f64;
        let mut total = 0.0;
        for i in 0..=n {
            let x = i as f64 * h;
            let w = if i == 0 || i == n { 0.5 } else { 1.0 };
            total += w * g.pdf(x);
        }
        total *= h;
        assert!((g.cdf(x_target) - total).abs() < 1e-6);
    }

    #[test]
    fn gamma_shape_one_is_exponential() {
        let g = Gamma::new(1.0, 2.0).unwrap();
        let e = crate::Exponential::new(0.5).unwrap();
        for &x in &[0.1, 1.0, 3.0, 8.0] {
            assert!((g.pdf(x) - e.pdf(x)).abs() < 1e-10);
            assert!((g.cdf(x) - e.cdf(x)).abs() < 1e-10);
        }
    }
}
