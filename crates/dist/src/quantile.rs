//! Empirical quantiles and percentile summaries.

/// Linear-interpolation quantile over a **sorted** slice (R type-7).
///
/// `p` is clamped to `[0, 1]`. Panics on an empty slice.
pub fn quantile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty slice");
    let p = p.clamp(0.0, 1.0);
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let h = p * (n - 1) as f64;
    let lo = h.floor() as usize;
    let hi = (lo + 1).min(n - 1);
    let frac = h - lo as f64;
    sorted[lo] + frac * (sorted[hi] - sorted[lo])
}

/// Sorts a copy of the data and computes the quantile.
pub fn quantile(data: &[f64], p: f64) -> f64 {
    let mut v: Vec<f64> = data.iter().copied().filter(|x| x.is_finite()).collect();
    assert!(!v.is_empty(), "quantile of empty/non-finite data");
    v.sort_by(f64::total_cmp);
    quantile_sorted(&v, p)
}

/// Median convenience wrapper.
pub fn median(data: &[f64]) -> f64 {
    quantile(data, 0.5)
}

/// Interquartile range `Q3 - Q1`.
pub fn iqr(data: &[f64]) -> f64 {
    let mut v: Vec<f64> = data.iter().copied().filter(|x| x.is_finite()).collect();
    assert!(!v.is_empty(), "iqr of empty data");
    v.sort_by(f64::total_cmp);
    quantile_sorted(&v, 0.75) - quantile_sorted(&v, 0.25)
}

/// A five-number summary plus mean: the standard box-plot statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FiveNumber {
    /// Minimum value.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum value.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
}

impl FiveNumber {
    /// Compute the summary; filters non-finite values, panics if nothing is left.
    pub fn of(data: &[f64]) -> Self {
        let mut v: Vec<f64> = data.iter().copied().filter(|x| x.is_finite()).collect();
        assert!(!v.is_empty(), "summary of empty data");
        v.sort_by(f64::total_cmp);
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        FiveNumber {
            min: v[0],
            q1: quantile_sorted(&v, 0.25),
            median: quantile_sorted(&v, 0.5),
            q3: quantile_sorted(&v, 0.75),
            max: *v.last().unwrap(),
            mean,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_of_singleton() {
        assert_eq!(quantile(&[7.0], 0.3), 7.0);
    }

    #[test]
    fn quantile_endpoints() {
        let d = [3.0, 1.0, 2.0];
        assert_eq!(quantile(&d, 0.0), 1.0);
        assert_eq!(quantile(&d, 1.0), 3.0);
        assert_eq!(quantile(&d, 0.5), 2.0);
    }

    #[test]
    fn quantile_interpolates() {
        let d = [0.0, 10.0];
        assert_eq!(quantile(&d, 0.25), 2.5);
        assert_eq!(quantile(&d, 0.75), 7.5);
    }

    #[test]
    fn quantile_clamps_p() {
        let d = [1.0, 2.0];
        assert_eq!(quantile(&d, -1.0), 1.0);
        assert_eq!(quantile(&d, 2.0), 2.0);
    }

    #[test]
    fn median_even_count() {
        assert_eq!(median(&[1.0, 2.0, 3.0, 4.0]), 2.5);
    }

    #[test]
    fn iqr_known() {
        // 1..=9: Q1 = 3, Q3 = 7 under type-7.
        let d: Vec<f64> = (1..=9).map(|i| i as f64).collect();
        assert_eq!(iqr(&d), 4.0);
    }

    #[test]
    fn five_number_summary() {
        let d: Vec<f64> = (1..=5).map(|i| i as f64).collect();
        let s = FiveNumber::of(&d);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.q1, 2.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.q3, 4.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.mean, 3.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_panics() {
        median(&[]);
    }
}
