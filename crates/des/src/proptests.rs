//! Property-based determinism tests for the streaming trace pipeline:
//! replaying a random DAG on the DES backend with a `TraceSink` draining
//! spans at virtual-time epoch boundaries must reproduce, byte for byte,
//! the canonical trace of the same replay buffering everything in the
//! recorder — across random DAG shapes, duration seeds, and flush-epoch
//! sizes, on both the central-FIFO (Quark) and Pinned (cluster) profiles.
//!
//! This is the executable form of the epoch-flush contract: an epoch
//! batch contains exactly the spans ending inside that epoch, sorted by
//! `(start, seq)` — the same total order the buffered merge uses — so
//! concatenating the batches reconstructs the buffered trace exactly.

#![cfg(test)]

use crate::replay::{ReplayBody, ReplayEngine, ReplayTask};
use proptest::prelude::*;
use std::sync::Arc;
use supersim_core::{KernelModel, ModelRegistry, SimConfig, SimSession};
use supersim_dag::{Access, DataId};
use supersim_dist::Dist;
use supersim_runtime::{PolicyKind, RuntimeConfig};
use supersim_trace::sink::CollectSink;

/// One randomly shaped task: which cells it touches (hazards against
/// earlier tasks become the DAG edges) and its kernel class.
#[derive(Debug, Clone)]
struct TaskSpec {
    label: &'static str,
    writes: u64,
    reads: u64,
}

const LABELS: [&str; 3] = ["gemm", "trsm", "potrf"];

fn task_strategy(cells: u64) -> impl Strategy<Value = TaskSpec> {
    (0usize..LABELS.len(), 0..cells, 0..cells).prop_map(|(l, w, r)| TaskSpec {
        label: LABELS[l],
        writes: w,
        reads: r,
    })
}

fn session(seed: u64) -> Arc<SimSession> {
    let mut models = ModelRegistry::new();
    for l in LABELS {
        models.insert(l, KernelModel::new(Dist::log_normal(-4.0, 0.4).unwrap()));
    }
    SimSession::new(
        models,
        SimConfig {
            seed,
            ..SimConfig::default()
        },
    )
}

/// Materialize the random specs into a replay stream against `session`:
/// ranked bodies, so durations come from the session's seeded models and
/// the run actually exercises the duration-sampling protocol.
fn tasks_for(
    session: &SimSession,
    specs: &[TaskSpec],
    pin_lanes: Option<usize>,
) -> Vec<ReplayTask> {
    specs
        .iter()
        .enumerate()
        .map(|(i, spec)| ReplayTask {
            label: spec.label.to_string(),
            accesses: vec![
                Access::write(DataId(spec.writes)),
                Access::read(DataId(spec.reads)),
            ],
            priority: 0,
            pin: pin_lanes.map(|lanes| {
                let lane = i % lanes;
                (lane, lane + 1)
            }),
            body: ReplayBody::Ranked {
                rank: session.next_rank(spec.label),
            },
        })
        .collect()
}

/// Run the replay once buffered and once streaming through a
/// `CollectSink` with the given epoch, and return both canonical
/// projections. Identical seeds give identical durations, so any
/// difference is the streaming path's fault.
fn canonical_pair(
    specs: &[TaskSpec],
    seed: u64,
    epoch: f64,
    config: &RuntimeConfig,
    pin_lanes: Option<usize>,
) -> (String, String) {
    let buffered = {
        let s = session(seed);
        let eng = ReplayEngine::new(config, s.clone()).unwrap();
        eng.run(tasks_for(&s, specs, pin_lanes));
        let mut trace = s.finish_trace(config.workers);
        trace.normalize();
        trace.canonical()
    };
    let streamed = {
        let s = session(seed);
        let sink = CollectSink::new();
        let handle = sink.handle();
        s.trace_recorder().attach_sink(Box::new(sink), epoch);
        let eng = ReplayEngine::new(config, s.clone()).unwrap();
        eng.run(tasks_for(&s, specs, pin_lanes));
        let residual = s.finish_trace(config.workers);
        assert!(
            residual.is_empty(),
            "streaming finish leaves nothing resident"
        );
        let mut trace = handle.into_trace(config.workers);
        trace.normalize();
        trace.canonical()
    };
    (buffered, streamed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Quark profile (central FIFO): random DAGs x seeds x epochs.
    #[test]
    fn streaming_equals_buffered_fifo(
        specs in prop::collection::vec(task_strategy(12), 1..60),
        seed in 0u64..1_000,
        epoch in 0.005f64..0.5,
        workers in 1usize..5,
        window in prop_oneof![Just(4usize), Just(16), Just(usize::MAX)],
    ) {
        let cfg = RuntimeConfig {
            workers,
            window,
            ..RuntimeConfig::simple(workers)
        };
        let (buffered, streamed) = canonical_pair(&specs, seed, epoch, &cfg, None);
        prop_assert!(!buffered.is_empty());
        prop_assert_eq!(buffered, streamed);
    }

    /// Pinned profile (the cluster policy): every task pinned to one
    /// lane, as the distributed replay driver pins compute and NIC work.
    #[test]
    fn streaming_equals_buffered_pinned(
        specs in prop::collection::vec(task_strategy(8), 1..40),
        seed in 0u64..1_000,
        epoch in 0.005f64..0.5,
        lanes in 2usize..5,
    ) {
        let cfg = RuntimeConfig {
            workers: lanes,
            policy: PolicyKind::Pinned,
            window: usize::MAX,
            name: "pinned",
        };
        let (buffered, streamed) = canonical_pair(&specs, seed, epoch, &cfg, Some(lanes));
        prop_assert!(!buffered.is_empty());
        prop_assert_eq!(buffered, streamed);
    }
}
