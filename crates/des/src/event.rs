//! A minimal generic discrete-event queue.
//!
//! Events are ordered by time; ties break by insertion sequence so runs are
//! deterministic. "The only changes to the system occur when a new task
//! starts or ends" (paper §II) — each such change is one event.

use std::collections::BinaryHeap;

/// A time-stamped event carrying a payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Event<T> {
    /// Simulation time of the event.
    pub time: f64,
    /// Payload.
    pub payload: T,
    seq: u64,
}

struct HeapItem<T>(Event<T>);

impl<T> PartialEq for HeapItem<T> {
    fn eq(&self, other: &Self) -> bool {
        self.0.time == other.0.time && self.0.seq == other.0.seq
    }
}

impl<T> Eq for HeapItem<T> {}

impl<T> Ord for HeapItem<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap: reverse comparison.
        other
            .0
            .time
            .total_cmp(&self.0.time)
            .then_with(|| other.0.seq.cmp(&self.0.seq))
    }
}

impl<T> PartialOrd for HeapItem<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Time-ordered event queue with deterministic FIFO tie-breaking.
pub struct EventQueue<T> {
    heap: BinaryHeap<HeapItem<T>>,
    next_seq: u64,
    now: f64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Empty queue at time 0.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: 0.0,
        }
    }

    /// Current simulation time (the time of the last popped event).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Schedule an event at absolute time `time` (must be ≥ now).
    pub fn schedule(&mut self, time: f64, payload: T) {
        assert!(
            time >= self.now - 1e-12,
            "cannot schedule into the past: {time} < {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(HeapItem(Event { time, payload, seq }));
    }

    /// Pop the earliest event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<Event<T>> {
        let item = self.heap.pop()?;
        self.now = item.0.time;
        Some(item.0)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(3.0, "c");
        q.schedule(1.0, "a");
        q.schedule(2.0, "b");
        assert_eq!(q.pop().unwrap().payload, "a");
        assert_eq!(q.now(), 1.0);
        assert_eq!(q.pop().unwrap().payload, "b");
        assert_eq!(q.pop().unwrap().payload, "c");
        assert!(q.pop().is_none());
        assert_eq!(q.now(), 3.0);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        q.schedule(1.0, 1);
        q.schedule(1.0, 2);
        q.schedule(1.0, 3);
        assert_eq!(q.pop().unwrap().payload, 1);
        assert_eq!(q.pop().unwrap().payload, 2);
        assert_eq!(q.pop().unwrap().payload, 3);
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn rejects_past_events() {
        let mut q = EventQueue::new();
        q.schedule(5.0, ());
        q.pop();
        q.schedule(1.0, ());
    }

    #[test]
    fn len_tracks_pending() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(1.0, ());
        q.schedule(2.0, ());
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
    }
}
