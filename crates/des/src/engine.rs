//! Offline list-scheduling simulation of a task DAG.

use crate::event::EventQueue;
use std::collections::VecDeque;
use supersim_dag::critical_path::bottom_levels;
use supersim_dag::{TaskGraph, TaskId};
use supersim_trace::{Trace, TraceEvent};

/// Ready-task ordering policy of the offline simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DesPolicy {
    /// FIFO by task id (submission order) — mirrors a central FIFO runtime.
    Fifo,
    /// Highest bottom-level first (critical-path list scheduling / HEFT-
    /// style priority).
    BottomLevel,
}

/// Result of an offline simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct DesResult {
    /// The simulated schedule as a trace (virtual time).
    pub trace: Trace,
    /// Predicted makespan.
    pub makespan: f64,
    /// Tasks simulated.
    pub tasks: u64,
    /// Events processed by the event loop.
    pub events: u64,
}

/// Simulate greedy list scheduling of `graph` on `workers` identical
/// workers. `duration(task)` supplies each task's duration — pass
/// `|t| graph.node(t).weight` for weight-based runs or close over sampled
/// values for stochastic ones.
pub fn simulate(
    graph: &TaskGraph,
    workers: usize,
    policy: DesPolicy,
    mut duration: impl FnMut(TaskId) -> f64,
) -> DesResult {
    assert!(workers > 0, "need at least one worker");
    let n = graph.len();
    let bl = match policy {
        DesPolicy::BottomLevel => bottom_levels(graph),
        DesPolicy::Fifo => Vec::new(),
    };

    #[derive(Debug)]
    enum Ev {
        Complete { task: TaskId, worker: usize },
    }

    let mut q: EventQueue<Ev> = EventQueue::new();
    let mut deps: Vec<usize> = (0..n).map(|t| graph.predecessors(t).len()).collect();
    let mut ready: VecDeque<TaskId> = VecDeque::new();
    let mut idle: Vec<usize> = (0..workers).rev().collect();
    let mut trace = Trace::new(workers);

    let push_ready = |ready: &mut VecDeque<TaskId>, t: TaskId| match policy {
        DesPolicy::Fifo => ready.push_back(t),
        DesPolicy::BottomLevel => {
            // Insert keeping descending bottom-level order (ties: task id).
            let key = |x: TaskId| (std::cmp::Reverse(ordered(bl[x])), x);
            let pos = ready
                .iter()
                .position(|&x| key(x) > key(t))
                .unwrap_or(ready.len());
            ready.insert(pos, t);
        }
    };

    for (t, &d) in deps.iter().enumerate() {
        if d == 0 {
            push_ready(&mut ready, t);
        }
    }

    // Dispatch loop: start tasks while both a ready task and an idle
    // worker exist; otherwise advance to the next completion.
    let mut events_processed = 0u64;
    loop {
        while !ready.is_empty() && !idle.is_empty() {
            let t = ready.pop_front().expect("checked non-empty");
            let w = idle.pop().expect("checked non-empty");
            let start = q.now();
            let d = duration(t).max(0.0);
            trace.push(TraceEvent {
                worker: w,
                kernel: graph.node(t).label.clone(),
                task_id: t as u64,
                start,
                end: start + d,
            });
            q.schedule(start + d, Ev::Complete { task: t, worker: w });
        }
        let Some(ev) = q.pop() else { break };
        events_processed += 1;
        let Ev::Complete { task, worker } = ev.payload;
        idle.push(worker);
        for &s in graph.successors(task) {
            deps[s] -= 1;
            if deps[s] == 0 {
                push_ready(&mut ready, s);
            }
        }
    }

    let unfinished: Vec<TaskId> = (0..n).filter(|&t| deps[t] > 0).collect();
    assert!(
        unfinished.is_empty(),
        "cyclic graph: tasks {unfinished:?} never became ready"
    );

    trace.normalize();
    let makespan = trace.makespan();

    // End-of-run totals ride on the result itself: no process-global
    // registry writes, so concurrent simulations never cross-talk.
    DesResult {
        trace,
        makespan,
        tasks: n as u64,
        events: events_processed,
    }
}

/// Total-ordering wrapper for f64 priorities.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Ordered(f64);

impl Eq for Ordered {}

impl PartialOrd for Ordered {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ordered {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

fn ordered(x: f64) -> Ordered {
    Ordered(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use supersim_dag::{Access, DagBuilder, DataId};

    fn weight_of(g: &TaskGraph) -> impl FnMut(TaskId) -> f64 + '_ {
        |t| g.node(t).weight
    }

    fn chain(n: usize, w: f64) -> TaskGraph {
        let mut b = DagBuilder::new();
        for i in 0..n {
            b.submit(&format!("t{i}"), w, &[Access::read_write(DataId(0))]);
        }
        b.finish()
    }

    #[test]
    fn chain_makespan_is_sum() {
        let g = chain(5, 2.0);
        let r = simulate(&g, 4, DesPolicy::Fifo, weight_of(&g));
        assert_eq!(r.makespan, 10.0);
        assert!(r.trace.validate(1e-12).is_ok());
    }

    #[test]
    fn independent_tasks_pack_perfectly() {
        let mut b = DagBuilder::new();
        for i in 0..6 {
            b.submit("t", 1.0, &[Access::write(DataId(i))]);
        }
        let g = b.finish();
        let r = simulate(&g, 3, DesPolicy::Fifo, weight_of(&g));
        assert_eq!(r.makespan, 2.0);
        // All workers used.
        let stats = supersim_trace::TraceStats::of(&r.trace);
        assert!(stats.per_worker_count.iter().all(|&c| c == 2));
    }

    #[test]
    fn respects_dependences() {
        // diamond: 0 -> {1,2} -> 3.
        let mut b = DagBuilder::new();
        b.submit("s", 1.0, &[Access::write(DataId(0))]);
        b.submit(
            "l",
            5.0,
            &[Access::read(DataId(0)), Access::write(DataId(1))],
        );
        b.submit(
            "r",
            2.0,
            &[Access::read(DataId(0)), Access::write(DataId(2))],
        );
        b.submit(
            "j",
            1.0,
            &[Access::read(DataId(1)), Access::read(DataId(2))],
        );
        let g = b.finish();
        let r = simulate(&g, 2, DesPolicy::Fifo, weight_of(&g));
        assert_eq!(r.makespan, 7.0); // 1 + max(5,2) + 1
        let sched: Vec<_> = r
            .trace
            .spans()
            .iter()
            .map(|e| supersim_dag::validate::ScheduledTask {
                task: e.task_id as usize,
                worker: e.worker,
                start: e.start,
                end: e.end,
            })
            .collect();
        assert!(supersim_dag::validate::validate_schedule(&g, &sched, 1e-9).is_ok());
    }

    #[test]
    fn bottom_level_beats_fifo_on_adversarial_graph() {
        // Two chains: a long chain (3 tasks of 2.0) and short independent
        // tasks submitted first. FIFO starts the short tasks and delays the
        // chain; bottom-level prioritizes the chain head.
        let mut b = DagBuilder::new();
        for i in 0..2 {
            b.submit("short", 2.0, &[Access::write(DataId(100 + i))]);
        }
        for _ in 0..3 {
            b.submit("chain", 2.0, &[Access::read_write(DataId(0))]);
        }
        let g = b.finish();
        let fifo = simulate(&g, 2, DesPolicy::Fifo, weight_of(&g));
        let blvl = simulate(&g, 2, DesPolicy::BottomLevel, weight_of(&g));
        assert!(blvl.makespan <= fifo.makespan);
        assert_eq!(blvl.makespan, 6.0); // chain on one worker, shorts on other
    }

    #[test]
    fn single_worker_serializes_everything() {
        let mut b = DagBuilder::new();
        for i in 0..4 {
            b.submit("t", 1.5, &[Access::write(DataId(i))]);
        }
        let g = b.finish();
        let r = simulate(&g, 1, DesPolicy::Fifo, weight_of(&g));
        assert_eq!(r.makespan, 6.0);
    }

    #[test]
    fn custom_duration_function() {
        let g = chain(3, 0.0);
        let mut i = 0;
        let r = simulate(&g, 1, DesPolicy::Fifo, |_| {
            i += 1;
            i as f64
        });
        assert_eq!(r.makespan, 6.0); // 1 + 2 + 3
    }

    #[test]
    fn empty_graph() {
        let g = TaskGraph::new();
        let r = simulate(&g, 2, DesPolicy::Fifo, |_| 1.0);
        assert_eq!(r.makespan, 0.0);
        assert!(r.trace.is_empty());
    }

    #[test]
    fn zero_duration_tasks_complete() {
        let g = chain(3, 0.0);
        let r = simulate(&g, 2, DesPolicy::Fifo, |_| 0.0);
        assert_eq!(r.makespan, 0.0);
        assert_eq!(r.trace.len(), 3);
    }

    #[test]
    fn run_totals_ride_on_the_result() {
        let g = chain(4, 1.0);
        let r = simulate(&g, 2, DesPolicy::Fifo, weight_of(&g));
        assert_eq!(r.tasks, 4);
        assert!(r.events >= 4, "at least one event per completed task");
    }
}
