//! The pure-DES replay backend: a single-threaded event loop reproducing
//! the threaded engine's schedule on the Quark (central-FIFO) and Pinned
//! profiles — no host threads, no TEQ parking, no quiescence machinery.
//!
//! ## Why replay is possible
//!
//! The threaded simulation protocol serializes virtual time completely:
//! the quiescence gate (`(sealed || submitter_waiting) && in_dispatch == 0
//! && policy.stalled(busy)`) forbids the clock from advancing while any
//! dispatch is in flight, so between two consecutive retirements *every*
//! possible dispatch happens, and every task dispatched in that window
//! starts at the same virtual time — the current clock. The schedule is
//! therefore a deterministic function of (task stream, policy, seed), and
//! a sequential loop can reproduce it:
//!
//! 1. **Submit** tasks from the stream while `in_flight < window`,
//!    resolving hazards through the *same* [`HazardTracker`] the threaded
//!    engine uses.
//! 2. **Dispatch** one task per idle lane through the *same*
//!    [`Policy`] object
//!    (`make_policy(config.policy, workers)`), laying out its virtual
//!    timeline with the session's [`SimSession::plan_ranked`] /
//!    [`supersim_core::layout_segments`] — the same draws and the same
//!    arithmetic as the threaded protocol.
//! 3. **Retire** the earliest completion (min `(end, seq)`, exactly the
//!    TEQ's ordering), advance the clock, release successors, refill the
//!    window, and dispatch again.
//!
//! Work-stealing and locality-aware policies are *not* replayable: their
//! dispatch order depends on which host thread steals first, which the
//! quiescence gate does not serialize. [`ReplayEngine::new`] rejects them
//! with [`Unsupported`] rather than replaying something subtly wrong; the
//! same goes for heterogeneous `worker_speeds`, which would make durations
//! depend on the racy task-to-lane assignment.

use std::cmp::Ordering as CmpOrdering;
use std::collections::{BTreeSet, BinaryHeap, HashMap};
use std::sync::Arc;
use supersim_core::{layout_segments, record_segment_spans, KernelPlan, SegmentKind, SimSession};
use supersim_dag::Access;
use supersim_runtime::policy::{make_policy, Policy, ReadyMeta};
use supersim_runtime::{HazardTracker, PolicyKind, RuntimeConfig, RuntimeStats};

/// How a replayed task obtains its duration.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplayBody {
    /// The plan-based simulated-kernel protocol: duration drawn by
    /// [`SimSession::plan_ranked`] from `(seed, label, rank)`, warm-up and
    /// transient-fault prescriptions included. Mirrors
    /// `SimSession::planned_body`.
    Ranked {
        /// Submission rank of this task within its label (claim with
        /// [`SimSession::next_rank`] in stream order, exactly as
        /// `planned_body` does).
        rank: u64,
    },
    /// A fixed externally computed duration (transfer tasks costed by an
    /// interconnect model). Mirrors `SimSession::run_fixed`: no model, no
    /// RNG, no overhead — but still perturbed by an attached injector.
    Fixed {
        /// Nominal duration in virtual seconds.
        duration: f64,
    },
}

/// One task of the replayed stream, in submission order.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayTask {
    /// Kernel-class label (trace and duration-model key).
    pub label: String,
    /// Data accesses; hazards against earlier submissions become
    /// dependences.
    pub accesses: Vec<Access>,
    /// Scheduling priority (ignored by the supported FIFO policies, but
    /// carried so the policy object sees the same metadata).
    pub priority: i64,
    /// Pin to the half-open lane range `[start, end)` (Pinned policy).
    pub pin: Option<(usize, usize)>,
    /// Duration source.
    pub body: ReplayBody,
}

/// Outcome of a replay run.
#[derive(Debug, Clone)]
pub struct ReplayOutcome {
    /// Predicted makespan (the final virtual clock).
    pub makespan: f64,
    /// Tasks completed.
    pub completed: u64,
    /// Retirement events processed.
    pub events: u64,
    /// Engine-compatible statistics (completed count, per-lane task
    /// counts; wall-clock fields stay zero — there are no host threads).
    pub stats: RuntimeStats,
    /// The run stopped early because the session's cancellation flag was
    /// raised or its virtual-time budget was exceeded
    /// ([`SimSession::should_abort`]). Makespan, counts and the recorded
    /// trace cover only the retired prefix.
    pub cancelled: bool,
}

/// The requested configuration cannot be replayed as pure discrete events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Unsupported(pub String);

impl std::fmt::Display for Unsupported {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DES replay backend unsupported: {}", self.0)
    }
}

impl std::error::Error for Unsupported {}

/// Whether the replay backend can reproduce `policy`'s dispatch order.
/// The authoritative check behind [`ReplayEngine::new`], exposed so
/// front-ends can refuse an unsupported profile up front (clean exit)
/// instead of deep in a run.
pub fn replayable_policy(policy: PolicyKind) -> Result<(), Unsupported> {
    match policy {
        PolicyKind::CentralFifo | PolicyKind::Pinned => Ok(()),
        other => Err(Unsupported(format!(
            "policy {other:?} dispatches in host-thread order; only CentralFifo \
             (Quark) and Pinned (cluster) replay deterministically"
        ))),
    }
}

/// An executing task, ordered like the TEQ: min `(end, seq)` where `seq`
/// is dispatch order.
struct Exec {
    end: f64,
    seq: u64,
    lane: usize,
    task: u64,
}

impl PartialEq for Exec {
    fn eq(&self, other: &Self) -> bool {
        self.end == other.end && self.seq == other.seq
    }
}

impl Eq for Exec {}

impl Ord for Exec {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        // Reversed for BinaryHeap's max-heap: earliest (end, seq) on top.
        other
            .end
            .total_cmp(&self.end)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Exec {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}

/// Per-task dependence bookkeeping (the DES analogue of the engine's
/// `Entry`, minus the thread machinery). Nodes live only from submission
/// to retirement — the keyed map they sit in is dropped down to the
/// in-flight window as tasks retire, so replaying a 10⁶-task stream
/// holds 10⁶ nodes only if the window is that large. The task payload
/// itself is taken out at dispatch.
struct Node {
    deps: usize,
    succs: Vec<u64>,
    task: Option<ReplayTask>,
}

/// The replay engine. Construct with [`ReplayEngine::new`], optionally
/// [`ReplayEngine::decommission`] lanes (fault replay), then
/// [`ReplayEngine::run`] the task stream.
pub struct ReplayEngine {
    session: Arc<SimSession>,
    policy: Box<dyn Policy>,
    window: usize,
    lanes: usize,
    decommissioned: Vec<bool>,
}

impl ReplayEngine {
    /// Build a replay engine for `config`'s policy over `config.workers`
    /// virtual lanes. Returns [`Unsupported`] for policies whose threaded
    /// dispatch order is not a deterministic function of the stream
    /// (work stealing, locality-aware, LIFO, priority) and for
    /// heterogeneous `worker_speeds`.
    pub fn new(config: &RuntimeConfig, session: Arc<SimSession>) -> Result<Self, Unsupported> {
        replayable_policy(config.policy)?;
        if !session.config().worker_speeds.is_empty() {
            return Err(Unsupported(
                "heterogeneous worker_speeds make durations depend on the racy \
                 task-to-lane assignment"
                    .to_string(),
            ));
        }
        assert!(config.workers > 0, "replay needs at least one lane");
        Ok(ReplayEngine {
            session,
            policy: make_policy(config.policy, config.workers),
            window: config.window,
            lanes: config.workers,
            decommissioned: vec![false; config.workers],
        })
    }

    /// Permanently remove `lane` from service before the run (fault
    /// replay: a died worker or node lane). Mirrors
    /// `Runtime::decommission`: the lane never dispatches.
    pub fn decommission(&mut self, lane: usize) {
        assert!(lane < self.lanes, "no such lane: {lane}");
        self.decommissioned[lane] = true;
    }

    /// Replay the task stream, recording spans into the session's trace
    /// recorder, and return the outcome. Consumes the engine: the policy
    /// object and hazard state are single-use, like a `Runtime`.
    ///
    /// The stream is pulled lazily, at most a window ahead of
    /// retirement, and per-task bookkeeping is dropped at retirement —
    /// so with a bounded `RuntimeConfig::window` (and a streaming trace
    /// sink attached to the session), memory stays flat no matter how
    /// many tasks the stream yields.
    pub fn run<I>(mut self, tasks: I) -> ReplayOutcome
    where
        I: IntoIterator<Item = ReplayTask>,
    {
        let inj = self.session.fault_injector();
        let mut stream = tasks.into_iter().fuse();
        let mut exhausted = false;
        let mut submitted = 0u64;
        let mut nodes: HashMap<u64, Node> = HashMap::new();
        let mut hazards = HazardTracker::new();
        let mut executing: BinaryHeap<Exec> = BinaryHeap::new();
        let mut idle: BTreeSet<usize> = (0..self.lanes)
            .filter(|&l| !self.decommissioned[l])
            .collect();
        let mut clock = 0.0f64;
        let mut next_seq = 0u64;
        let mut in_flight = 0usize;
        let mut events = 0u64;
        let mut cancelled = false;
        let mut stats = RuntimeStats::new(self.lanes);

        // Submit tasks while the window has room, resolving hazards and
        // pushing newly ready ones into the policy — `Runtime::submit`
        // without the backpressure parking. Newly ready tasks' admitting
        // idle lanes become dispatch candidates. A predecessor absent
        // from `nodes` has already retired and imposes no dependence.
        let submit_while_window =
            |stream: &mut std::iter::Fuse<I::IntoIter>,
             exhausted: &mut bool,
             submitted: &mut u64,
             in_flight: &mut usize,
             nodes: &mut HashMap<u64, Node>,
             hazards: &mut HazardTracker,
             policy: &mut Box<dyn Policy>,
             idle: &BTreeSet<usize>,
             candidates: &mut BTreeSet<usize>| {
                while !*exhausted && *in_flight < self.window {
                    let Some(t) = stream.next() else {
                        *exhausted = true;
                        break;
                    };
                    let id = *submitted;
                    *submitted += 1;
                    let (preds, affinity) = hazards.analyze(id, &t.accesses);
                    let mut deps = 0;
                    for &p in &preds {
                        if let Some(e) = nodes.get_mut(&p) {
                            e.succs.push(id);
                            deps += 1;
                        }
                    }
                    let meta = ReadyMeta {
                        priority: t.priority,
                        releaser: None,
                        affinity,
                        pin: t.pin,
                    };
                    let pin = t.pin;
                    nodes.insert(
                        id,
                        Node {
                            deps,
                            succs: Vec::new(),
                            task: Some(t),
                        },
                    );
                    *in_flight += 1;
                    if deps == 0 {
                        policy.push(id, meta);
                        admitting_idle(idle, pin, candidates);
                    }
                }
            };

        // Initial fill: stream in up to a window of tasks, then dispatch
        // every lane that can take one (all at clock 0, like the threaded
        // engine's pre-first-retirement burst).
        let mut candidates: BTreeSet<usize> = BTreeSet::new();
        submit_while_window(
            &mut stream,
            &mut exhausted,
            &mut submitted,
            &mut in_flight,
            &mut nodes,
            &mut hazards,
            &mut self.policy,
            &idle,
            &mut candidates,
        );
        candidates.extend(idle.iter().copied());

        loop {
            // Dispatch pass: each candidate lane (ascending) takes at most
            // one task from the policy. A successful pop frees queue
            // positions, so pinned successors of the same round stay
            // covered by their own candidate lanes.
            for lane in std::mem::take(&mut candidates) {
                if !idle.contains(&lane) {
                    continue;
                }
                if let Some(task) = self.policy.pop(lane) {
                    idle.remove(&lane);
                    let t = nodes
                        .get_mut(&task)
                        .expect("policy dispatched an unknown task")
                        .task
                        .take()
                        .expect("task dispatched twice");
                    let plan = plan_for(&self.session, &t, inj.as_deref());
                    let (bounds, total) =
                        layout_segments(inj.as_deref(), lane, clock, &plan.segments);
                    let aborted = record_segment_spans(
                        self.session.trace_recorder(),
                        lane,
                        &t.label,
                        task,
                        &bounds,
                    );
                    if plan.is_transient() {
                        let inj = inj.as_ref().expect("transient plan requires an injector");
                        inj.on_transient(&t.label, plan.failures, aborted);
                    }
                    let seq = next_seq;
                    next_seq += 1;
                    executing.push(Exec {
                        end: clock + total,
                        seq,
                        lane,
                        task,
                    });
                }
            }

            // Cooperative cancellation / virtual-budget check, once per
            // retirement: the retirement boundary is the only point where
            // no dispatch is half-recorded, so stopping here leaves a
            // valid trace prefix.
            if self.session.should_abort(clock) {
                cancelled = true;
                break;
            }

            // Retire the earliest completion; its lane frees, successors
            // release, the window refills — in exactly the threaded
            // engine's order (successor pushes land before the refill's).
            let Some(exec) = executing.pop() else { break };
            events += 1;
            clock = clock.max(exec.end);
            // Streaming trace mode: every span ending at or before the
            // new clock is recorded, so elapsed flush epochs can drain.
            self.session.trace_recorder().observe_clock(clock);
            let succs = nodes
                .remove(&exec.task)
                .map(|n| n.succs)
                .unwrap_or_default();
            for s in succs {
                let e = nodes.get_mut(&s).expect("successor retired before its dep");
                e.deps -= 1;
                if e.deps == 0 {
                    let t = e.task.as_ref().expect("ready successor already dispatched");
                    let affinity = t
                        .accesses
                        .iter()
                        .find(|a| a.mode.writes())
                        .map(|a| a.data.0);
                    let meta = ReadyMeta {
                        priority: t.priority,
                        releaser: Some(exec.lane),
                        affinity,
                        pin: t.pin,
                    };
                    let pin = t.pin;
                    self.policy.push(s, meta);
                    admitting_idle(&idle, pin, &mut candidates);
                }
            }
            in_flight -= 1;
            stats.completed += 1;
            stats.per_worker_tasks[exec.lane] += 1;
            if !self.decommissioned[exec.lane] {
                idle.insert(exec.lane);
                candidates.insert(exec.lane);
            }
            submit_while_window(
                &mut stream,
                &mut exhausted,
                &mut submitted,
                &mut in_flight,
                &mut nodes,
                &mut hazards,
                &mut self.policy,
                &idle,
                &mut candidates,
            );
        }

        assert!(
            cancelled || (exhausted && in_flight == 0),
            "replay stalled: {submitted} tasks submitted, {in_flight} in flight \
             (a task pinned exclusively to decommissioned lanes can never run)"
        );

        // Run totals go to the driving session, not a process-global
        // registry: N concurrent replay sessions keep disjoint counters.
        self.session.add_run_counter("des.replay.runs", 1);
        self.session
            .add_run_counter("des.replay.tasks", stats.completed);
        self.session.add_run_counter("des.replay.events", events);

        ReplayOutcome {
            makespan: clock,
            completed: stats.completed,
            events,
            stats,
            cancelled,
        }
    }
}

/// Collect the idle lanes a task's pin admits into `candidates`.
fn admitting_idle(idle: &BTreeSet<usize>, pin: Option<(usize, usize)>, out: &mut BTreeSet<usize>) {
    match pin {
        None => out.extend(idle.iter().copied()),
        Some((lo, hi)) => out.extend(idle.range(lo..hi).copied()),
    }
}

/// The virtual-timeline plan of a replayed task — the same draws the
/// threaded protocol would make.
fn plan_for(
    session: &SimSession,
    t: &ReplayTask,
    inj: Option<&dyn supersim_core::FaultInjector>,
) -> KernelPlan {
    match t.body {
        ReplayBody::Ranked { rank } => session.plan_ranked(&t.label, rank, 1.0, inj),
        ReplayBody::Fixed { duration } => KernelPlan {
            segments: vec![(SegmentKind::Work, duration)],
            failures: 0,
            transient: false,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use supersim_core::{KernelModel, ModelRegistry, SimConfig};
    use supersim_dag::DataId;

    fn session(labels: &[&str], secs: f64, seed: u64) -> Arc<SimSession> {
        let mut m = ModelRegistry::new();
        for l in labels {
            m.insert(*l, KernelModel::constant(secs));
        }
        SimSession::new(
            m,
            SimConfig {
                seed,
                ..SimConfig::default()
            },
        )
    }

    fn ranked(session: &SimSession, label: &str, accesses: Vec<Access>) -> ReplayTask {
        ReplayTask {
            label: label.to_string(),
            accesses,
            priority: 0,
            pin: None,
            body: ReplayBody::Ranked {
                rank: session.next_rank(label),
            },
        }
    }

    #[test]
    fn virtual_budget_cancels_mid_run() {
        let s = session(&["w"], 2.0, 1);
        s.set_virtual_budget(5.0);
        let eng = ReplayEngine::new(&RuntimeConfig::simple(1), s.clone()).unwrap();
        let tasks: Vec<ReplayTask> = (0..10)
            .map(|_| ranked(&s, "w", vec![Access::read_write(DataId(0))]))
            .collect();
        let out = eng.run(tasks);
        assert!(out.cancelled);
        // 2s chain on one lane: retirements at 2, 4, 6 — the check after
        // clock 6 fires, so exactly three tasks retired.
        assert_eq!(out.completed, 3);
        assert!(out.makespan <= 6.0 + 1e-12);
    }

    #[test]
    fn cancel_request_stops_before_first_retirement() {
        let s = session(&["w"], 2.0, 1);
        s.request_cancel();
        let eng = ReplayEngine::new(&RuntimeConfig::simple(2), s.clone()).unwrap();
        let tasks: Vec<ReplayTask> = (0..4).map(|_| ranked(&s, "w", vec![])).collect();
        let out = eng.run(tasks);
        assert!(out.cancelled);
        assert_eq!(out.completed, 0);
    }

    #[test]
    fn clean_runs_report_not_cancelled() {
        let s = session(&["w"], 1.0, 1);
        let eng = ReplayEngine::new(&RuntimeConfig::simple(2), s.clone()).unwrap();
        let tasks: Vec<ReplayTask> = (0..4).map(|_| ranked(&s, "w", vec![])).collect();
        let out = eng.run(tasks);
        assert!(!out.cancelled);
        assert_eq!(out.completed, 4);
    }

    #[test]
    fn chain_serializes() {
        let s = session(&["w"], 2.0, 1);
        let eng = ReplayEngine::new(&RuntimeConfig::simple(4), s.clone()).unwrap();
        let tasks: Vec<ReplayTask> = (0..5)
            .map(|_| ranked(&s, "w", vec![Access::read_write(DataId(0))]))
            .collect();
        let out = eng.run(tasks);
        assert_eq!(out.makespan, 10.0);
        assert_eq!(out.completed, 5);
        let trace = s.finish_trace(4);
        assert_eq!(trace.len(), 5);
        assert!(trace.validate(1e-12).is_ok());
    }

    #[test]
    fn independent_tasks_pack() {
        let s = session(&["w"], 1.0, 1);
        let eng = ReplayEngine::new(&RuntimeConfig::simple(3), s.clone()).unwrap();
        let tasks: Vec<ReplayTask> = (0..6)
            .map(|i| ranked(&s, "w", vec![Access::write(DataId(i))]))
            .collect();
        let out = eng.run(tasks);
        assert_eq!(out.makespan, 2.0);
        assert_eq!(
            out.stats.per_worker_tasks,
            vec![2, 2, 2],
            "FIFO over ascending idle lanes balances exactly"
        );
    }

    #[test]
    fn window_limits_in_flight_submissions() {
        // Window 2 on 4 workers: despite 4 independent tasks and 4 lanes,
        // only 2 can be in flight, so the run takes 2 rounds.
        let s = session(&["w"], 1.0, 1);
        let cfg = RuntimeConfig {
            workers: 4,
            window: 2,
            ..RuntimeConfig::simple(4)
        };
        let eng = ReplayEngine::new(&cfg, s.clone()).unwrap();
        let tasks: Vec<ReplayTask> = (0..4)
            .map(|i| ranked(&s, "w", vec![Access::write(DataId(i))]))
            .collect();
        let out = eng.run(tasks);
        assert_eq!(out.makespan, 2.0);
    }

    #[test]
    fn decommissioned_lane_takes_no_work() {
        let s = session(&["w"], 1.0, 1);
        let mut eng = ReplayEngine::new(&RuntimeConfig::simple(2), s.clone()).unwrap();
        eng.decommission(0);
        let tasks: Vec<ReplayTask> = (0..3)
            .map(|i| ranked(&s, "w", vec![Access::write(DataId(i))]))
            .collect();
        let out = eng.run(tasks);
        assert_eq!(out.makespan, 3.0, "one surviving lane serializes");
        assert_eq!(out.stats.per_worker_tasks, vec![0, 3]);
    }

    #[test]
    fn unsupported_policies_are_rejected() {
        let s = session(&["w"], 1.0, 1);
        for kind in [
            PolicyKind::WorkStealing,
            PolicyKind::LocalityAware,
            PolicyKind::CentralLifo,
            PolicyKind::Priority,
        ] {
            let cfg = RuntimeConfig {
                policy: kind,
                ..RuntimeConfig::simple(2)
            };
            let err = match ReplayEngine::new(&cfg, s.clone()) {
                Err(e) => e,
                Ok(_) => panic!("{kind:?} must be rejected"),
            };
            assert!(err.0.contains("replay"), "{err}");
        }
    }

    #[test]
    fn heterogeneous_speeds_are_rejected() {
        let mut m = ModelRegistry::new();
        m.insert("w", KernelModel::constant(1.0));
        let s = SimSession::new(
            m,
            SimConfig {
                worker_speeds: vec![1.0, 2.0],
                ..SimConfig::default()
            },
        );
        assert!(ReplayEngine::new(&RuntimeConfig::simple(2), s).is_err());
    }

    #[test]
    fn pinned_tasks_respect_ranges() {
        let s = session(&["w"], 1.0, 1);
        let cfg = RuntimeConfig {
            policy: PolicyKind::Pinned,
            ..RuntimeConfig::simple(4)
        };
        let eng = ReplayEngine::new(&cfg, s.clone()).unwrap();
        // 4 independent tasks all pinned to lanes [2, 4).
        let tasks: Vec<ReplayTask> = (0..4)
            .map(|i| ReplayTask {
                pin: Some((2, 4)),
                ..ranked(&s, "w", vec![Access::write(DataId(i))])
            })
            .collect();
        let out = eng.run(tasks);
        assert_eq!(out.makespan, 2.0);
        assert_eq!(out.stats.per_worker_tasks, vec![0, 0, 2, 2]);
    }
}
