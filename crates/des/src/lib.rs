//! # supersim-des
//!
//! A classic **offline** discrete-event simulator: the baseline the
//! scheduler-in-the-loop approach is contrasted against.
//!
//! The paper's §II surveys conventional DES tools (SimGrid, GridSim, ...)
//! that simulate scheduling by *reimplementing* a scheduling policy over an
//! explicit task graph. This crate is that conventional simulator: given a
//! [`supersim_dag::TaskGraph`] and per-task durations, it replays greedy
//! list scheduling on `P` identical workers through an event queue — no
//! real runtime in the loop. The ablation benches compare its predictions
//! against the in-the-loop simulation, quantifying what the paper's
//! approach buys (faithfulness to the *actual* scheduler's dispatch order,
//! window, and policy quirks).
//!
//! * [`event`] — a small generic event queue (time-ordered, deterministic
//!   tie-breaking);
//! * [`engine`] — the list-scheduling simulator producing a [`Trace`];
//! * [`replay`] — the **replay backend**: a pure-DES reproduction of the
//!   threaded engine's schedule on the Quark/Pinned profiles, bit-for-bit
//!   identical canonical traces without one host thread per simulated
//!   worker.
//!
//! [`Trace`]: supersim_trace::Trace

pub mod engine;
pub mod event;
mod proptests;
pub mod replay;

pub use engine::{simulate, DesPolicy, DesResult};
pub use replay::{
    replayable_policy, ReplayBody, ReplayEngine, ReplayOutcome, ReplayTask, Unsupported,
};
