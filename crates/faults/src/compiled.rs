//! Compiling a [`FaultPlan`] into the injector the core session consults.

use crate::lanes::LaneMap;
use crate::plan::{FaultEvent, FaultPlan};
use parking_lot::Mutex;
use supersim_core::{FaultInjector, TransientSpec};

/// Fault accounting accumulated during a run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultStats {
    /// Failed attempts executed (each costs discarded virtual work).
    pub retries: u64,
    /// Tasks that suffered at least one transient failure.
    pub transient_tasks: u64,
    /// Virtual seconds of discarded (aborted) work.
    pub aborted_virtual_seconds: f64,
}

/// A piecewise-constant slowdown-rate function over virtual time:
/// `factors[i]` applies on `[times[i-1], times[i])` (with open ends), and
/// work advances through the segments at `1/factor` work units per
/// virtual second. Overlapping windows multiply.
#[derive(Debug, Clone, PartialEq)]
struct PiecewiseRate {
    times: Vec<f64>,
    factors: Vec<f64>, // len == times.len() + 1
}

impl PiecewiseRate {
    fn from_windows(windows: &[(f64, f64, f64)]) -> Option<Self> {
        if windows.is_empty() {
            return None;
        }
        let mut times: Vec<f64> = windows.iter().flat_map(|&(a, b, _)| [a, b]).collect();
        times.sort_by(f64::total_cmp);
        times.dedup();
        let mut factors = Vec::with_capacity(times.len() + 1);
        // Interval i spans [times[i-1], times[i]); probe its midpoint
        // against every window. The unbounded end intervals carry the
        // factor at -inf / +inf (always 1.0 for finite windows).
        for i in 0..=times.len() {
            let probe = if i == 0 {
                times[0] - 1.0
            } else if i == times.len() {
                times[times.len() - 1] + 1.0
            } else {
                (times[i - 1] + times[i]) / 2.0
            };
            let f: f64 = windows
                .iter()
                .filter(|&&(a, b, _)| probe >= a && probe < b)
                .map(|&(_, _, f)| f)
                .product();
            factors.push(f);
        }
        Some(PiecewiseRate { times, factors })
    }

    /// Virtual seconds that `work` nominal seconds of work started at
    /// `start` take under this rate function.
    fn elapsed(&self, start: f64, mut work: f64) -> f64 {
        if work <= 0.0 {
            return 0.0;
        }
        let mut i = self.times.partition_point(|&t| t <= start);
        let mut t = start;
        loop {
            let f = self.factors[i];
            if i == self.times.len() {
                return t + work * f - start;
            }
            let seg_end = self.times[i];
            let cap = (seg_end - t) / f;
            if work <= cap {
                return t + work * f - start;
            }
            work -= cap;
            t = seg_end;
            i += 1;
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
struct CompiledTransient {
    label: Option<String>,
    period: u64,
    failures: u32,
    fail_fraction: f64,
}

/// A [`FaultPlan`] compiled against a [`LaneMap`]: the
/// [`FaultInjector`] implementation the drivers attach to a session.
pub struct CompiledFaults {
    /// Per-lane slowdown rate (None = never perturbed).
    lanes: Vec<Option<PiecewiseRate>>,
    transients: Vec<CompiledTransient>,
    backoff_base: f64,
    backoff_cap: f64,
    stats: Mutex<FaultStats>,
}

impl CompiledFaults {
    /// Compile `plan` for a machine laid out as `map`. Permanent-failure
    /// events are ignored here — the phased-replay driver handles them —
    /// so the same compiled injector serves both replay phases.
    ///
    /// `shift` subtracts from every window boundary: phase B of a
    /// permanent-failure replay runs on a fresh clock starting at 0, so
    /// its windows must be expressed relative to the restart offset.
    pub fn compile(plan: &FaultPlan, map: &LaneMap, shift: f64) -> Self {
        let mut windows: Vec<Vec<(f64, f64, f64)>> = vec![Vec::new(); map.total()];
        let mut transients = Vec::new();
        for ev in &plan.events {
            match ev {
                FaultEvent::Straggler {
                    scope,
                    from,
                    until,
                    factor,
                } => {
                    for lane in map.lanes_of(*scope) {
                        windows[lane].push((from - shift, until - shift, *factor));
                    }
                }
                FaultEvent::LinkDegradation {
                    node,
                    from,
                    until,
                    factor,
                } => {
                    for lane in map.nic_lanes(*node) {
                        windows[lane].push((from - shift, until - shift, *factor));
                    }
                }
                FaultEvent::Transient {
                    label,
                    period,
                    failures,
                    fail_fraction,
                } => transients.push(CompiledTransient {
                    label: label.clone(),
                    period: *period,
                    failures: *failures,
                    fail_fraction: *fail_fraction,
                }),
                FaultEvent::PermanentFailure { .. } => {}
            }
        }
        CompiledFaults {
            lanes: windows
                .into_iter()
                .map(|w| PiecewiseRate::from_windows(&w))
                .collect(),
            transients,
            backoff_base: plan.recovery.backoff_base,
            backoff_cap: plan.recovery.backoff_cap,
            stats: Mutex::new(FaultStats::default()),
        }
    }

    /// Snapshot of the fault accounting.
    pub fn stats(&self) -> FaultStats {
        *self.stats.lock()
    }

    /// Publish the fault accounting into `snap`.
    #[cfg(feature = "metrics")]
    pub fn publish_metrics(&self, snap: &mut supersim_metrics::MetricsSnapshot) {
        let s = self.stats();
        snap.push_counter("faults.retries", s.retries);
        snap.push_counter("faults.transient.tasks", s.transient_tasks);
        snap.push_gauge(
            "faults.aborted.virtual_us",
            (s.aborted_virtual_seconds * 1e6).round() as i64,
        );
    }
}

impl FaultInjector for CompiledFaults {
    fn perturb(&self, worker: usize, start: f64, duration: f64) -> f64 {
        match self.lanes.get(worker).and_then(|r| r.as_ref()) {
            None => duration,
            Some(rate) => rate.elapsed(start, duration),
        }
    }

    fn transient(&self, label: &str, rank: u64) -> Option<TransientSpec> {
        for t in &self.transients {
            let label_ok = t.label.as_deref().is_none_or(|l| l == label);
            if label_ok && rank.is_multiple_of(t.period) {
                return Some(TransientSpec {
                    failures: t.failures,
                    fail_fraction: t.fail_fraction,
                    backoff_base: self.backoff_base,
                    backoff_cap: self.backoff_cap,
                });
            }
        }
        None
    }

    fn on_transient(&self, _label: &str, failures: u32, aborted_virtual_seconds: f64) {
        let mut s = self.stats.lock();
        s.retries += failures as u64;
        s.transient_tasks += 1;
        s.aborted_virtual_seconds += aborted_virtual_seconds;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultPlan;

    fn approx(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-12, "{a} != {b}");
    }

    #[test]
    fn work_outside_windows_is_unperturbed() {
        let r = PiecewiseRate::from_windows(&[(10.0, 20.0, 2.0)]).unwrap();
        approx(r.elapsed(0.0, 5.0), 5.0);
        approx(r.elapsed(25.0, 5.0), 5.0);
    }

    #[test]
    fn work_inside_a_window_is_scaled() {
        let r = PiecewiseRate::from_windows(&[(10.0, 20.0, 2.0)]).unwrap();
        // Entirely inside: 3 work units at factor 2 = 6 seconds.
        approx(r.elapsed(10.0, 3.0), 6.0);
        // Straddling the end: 5 work inside (10s, exhausting the window
        // at t=20)? No — 5 work at factor 2 = 10s ends exactly at 20.
        approx(r.elapsed(10.0, 5.0), 10.0);
        // 6 work: 5 inside (10s), 1 after (1s).
        approx(r.elapsed(10.0, 6.0), 11.0);
        // Entering from before: 2 work to reach the window (2s), then 1
        // work at factor 2 (2s).
        approx(r.elapsed(8.0, 3.0), 4.0);
    }

    #[test]
    fn overlapping_windows_multiply() {
        let r = PiecewiseRate::from_windows(&[(0.0, 10.0, 2.0), (5.0, 10.0, 3.0)]).unwrap();
        // 1 work at t=6: factor 6.
        approx(r.elapsed(6.0, 0.5), 3.0);
        // 2.5 work from 0: 2.5 work at factor 2 = 5s, ends at 5.0 exactly.
        approx(r.elapsed(0.0, 2.5), 5.0);
        // 3 work from 0: 2.5 at factor 2 (5s), 0.5 at factor 6 (3s).
        approx(r.elapsed(0.0, 3.0), 8.0);
    }

    #[test]
    fn compiled_perturb_scopes_to_lanes() {
        let plan = FaultPlan::new().straggler_worker(1, 0.0, 100.0, 4.0);
        let inj = CompiledFaults::compile(&plan, &LaneMap::single_node(3), 0.0);
        approx(inj.perturb(0, 0.0, 1.0), 1.0);
        approx(inj.perturb(1, 0.0, 1.0), 4.0);
        approx(inj.perturb(2, 0.0, 1.0), 1.0);
    }

    #[test]
    fn compile_shift_moves_windows() {
        let plan = FaultPlan::new().straggler_worker(0, 10.0, 20.0, 2.0);
        let inj = CompiledFaults::compile(&plan, &LaneMap::single_node(1), 10.0);
        // The window now covers [0, 10) on the shifted clock.
        approx(inj.perturb(0, 0.0, 1.0), 2.0);
        approx(inj.perturb(0, 12.0, 1.0), 1.0);
    }

    #[test]
    fn transient_selection_is_periodic_and_label_filtered() {
        let plan = FaultPlan::new().transient_for("dgemm", 3, 2, 0.5);
        let inj = CompiledFaults::compile(&plan, &LaneMap::single_node(1), 0.0);
        assert!(inj.transient("dgemm", 0).is_some());
        assert!(inj.transient("dgemm", 1).is_none());
        assert!(inj.transient("dgemm", 3).is_some());
        assert!(inj.transient("dpotrf", 0).is_none());
        let spec = inj.transient("dgemm", 0).unwrap();
        assert_eq!(spec.failures, 2);
        assert_eq!(spec.fail_fraction, 0.5);
    }

    #[test]
    fn rank_zero_always_matches_some_task() {
        // The monotonicity acceptance property "retries nonzero iff the
        // plan has transients" hinges on rank 0 matching any period.
        for period in [1, 2, 7, 1000] {
            let plan = FaultPlan::new().transient(period, 1, 0.5);
            let inj = CompiledFaults::compile(&plan, &LaneMap::single_node(1), 0.0);
            assert!(inj.transient("anything", 0).is_some());
        }
    }

    #[test]
    fn stats_accumulate_via_on_transient() {
        let plan = FaultPlan::new().transient(1, 2, 0.5);
        let inj = CompiledFaults::compile(&plan, &LaneMap::single_node(1), 0.0);
        inj.on_transient("k", 2, 0.75);
        inj.on_transient("k", 2, 0.25);
        let s = inj.stats();
        assert_eq!(s.retries, 4);
        assert_eq!(s.transient_tasks, 2);
        approx(s.aborted_virtual_seconds, 1.0);
    }
}
