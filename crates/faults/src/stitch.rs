//! Trace surgery for phased permanent-failure replay.
//!
//! A permanent failure is simulated in two phases: phase A runs the full
//! workload and is *cut* at the failure time; phase B re-runs the
//! surviving work on the reduced machine, on a fresh clock. These helpers
//! mark the work lost to the cut and stitch the two phases into one
//! trace on a common timeline with unique task ids.

use supersim_trace::fault::LOST_SUFFIX;
use supersim_trace::{Trace, TraceEvent};

/// A copy of `e` marked as lost to a permanent failure, optionally
/// truncated at the failure time (for in-flight work cut mid-span).
pub fn mark_lost(e: &TraceEvent, truncate_at: Option<f64>) -> TraceEvent {
    let mut out = e.clone();
    out.kernel = format!(
        "{}{LOST_SUFFIX}",
        supersim_trace::fault::base_kernel(&e.kernel)
    );
    if let Some(t) = truncate_at {
        out.end = out.end.min(t).max(out.start);
    }
    out
}

/// Stitch the kept/marked phase-A events and the phase-B trace into one
/// trace: phase-B times are shifted by `time_offset` (the restart point
/// on the global timeline) and phase-B task ids by `id_offset` (so the
/// canonical, id-sorted serialization keeps the phases distinct).
pub fn stitch(
    workers: usize,
    phase_a: Vec<TraceEvent>,
    phase_b: &Trace,
    time_offset: f64,
    id_offset: u64,
) -> Trace {
    let mut events = phase_a;
    events.reserve(phase_b.len());
    for e in phase_b.spans() {
        let mut e = e.clone();
        e.start += time_offset;
        e.end += time_offset;
        e.task_id += id_offset;
        events.push(e);
    }
    let mut trace = Trace::from_parts(workers, events);
    trace.normalize();
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use supersim_trace::fault::{event_kind, SpanKind};

    fn ev(worker: usize, kernel: &str, id: u64, start: f64, end: f64) -> TraceEvent {
        TraceEvent {
            worker,
            kernel: kernel.to_string(),
            task_id: id,
            start,
            end,
        }
    }

    #[test]
    fn mark_lost_marks_and_truncates() {
        let e = ev(0, "dgemm", 3, 1.0, 4.0);
        let lost = mark_lost(&e, Some(2.5));
        assert_eq!(lost.kernel, "dgemm!lost");
        assert_eq!(lost.end, 2.5);
        assert_eq!(event_kind(&lost), SpanKind::Lost);
        // No truncation point: span kept whole.
        assert_eq!(mark_lost(&e, None).end, 4.0);
        // Truncation before the start clamps to an instant, not negative.
        assert_eq!(mark_lost(&e, Some(0.5)).end, 1.0);
    }

    #[test]
    fn stitch_offsets_phase_b() {
        let a = vec![ev(0, "k", 0, 0.0, 1.0), ev(1, "k!lost", 1, 0.0, 0.5)];
        let mut b = Trace::new(2);
        b.push(ev(0, "k", 0, 0.0, 2.0));
        let t = stitch(2, a, &b, 10.0, 100);
        assert_eq!(t.len(), 3);
        let re = t.spans().iter().find(|e| e.task_id == 100).unwrap();
        assert_eq!((re.start, re.end), (10.0, 12.0));
        assert!(t.validate(1e-12).is_ok());
    }
}
