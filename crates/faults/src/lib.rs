//! # supersim-faults
//!
//! Deterministic fault injection for the superscalar scheduling
//! simulator. A [`FaultPlan`] is a list of virtual-clock-scheduled fault
//! events — permanent worker/node failure, transient task failure,
//! straggler slowdown, NIC/link degradation — plus a [`RecoveryPolicy`]
//! (virtual-time retry backoff, restart delay, optional checkpointing).
//!
//! The plan is *compiled* against a [`LaneMap`] (the lane layout of the
//! machine being simulated) into a [`CompiledFaults`] injector that the
//! core session consults from inside the simulated-kernel protocol:
//!
//! * **Stragglers / link degradation** become per-lane piecewise-constant
//!   slowdown-rate functions, integrated under the TEQ state lock — a
//!   task's perturbed duration is a pure function of `(lane, start,
//!   nominal duration)`, never of host timing.
//! * **Transient failures** are selected by submission rank (`rank %
//!   period == 0`), so the set of retried tasks is fixed at submission
//!   time; each failed attempt consumes part of a freshly sampled
//!   duration, then backs off in virtual time (capped exponential).
//! * **Permanent failures** are *not* handled inside the injector: the
//!   fault-aware drivers replay the run in phases (cut at the failure
//!   time, re-place, re-execute) so host threads never race a
//!   virtual-time trigger. This crate supplies the trace surgery
//!   ([`mod@stitch`]) and the degradation accounting ([`DegradationReport`]).
//!
//! Determinism contract: identical `(seed, FaultPlan)` ⇒ identical
//! traces; an **empty** plan compiles to an injector that is never
//! attached, leaving the simulation bit-for-bit identical to a fault-free
//! run.

pub mod compiled;
pub mod lanes;
pub mod plan;
pub mod report;
pub mod stitch;

pub use compiled::{CompiledFaults, FaultStats};
pub use lanes::{LaneMap, NodeLanes};
pub use plan::{CheckpointPolicy, FaultEvent, FaultPlan, FaultScope, RecoveryPolicy};
pub use report::{critical_lane, DegradationReport, FaultAttribution};
pub use stitch::{mark_lost, stitch};
