//! The fault plan: what goes wrong, when, and how the system recovers.

use serde::{Deserialize, Serialize};

/// What a fault event applies to.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultScope {
    /// One worker lane (single-node runs: a worker index; cluster runs: a
    /// global lane index).
    Worker(usize),
    /// Every lane of one node — compute workers and NIC lanes.
    Node(usize),
}

/// One scheduled fault.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultEvent {
    /// Multiplicative slowdown of the scoped lanes over a virtual-time
    /// window: work started (or in progress) inside `[from, until)` takes
    /// `factor` times longer per unit. Factors of overlapping windows
    /// multiply.
    Straggler {
        scope: FaultScope,
        from: f64,
        until: f64,
        factor: f64,
    },
    /// The scoped lanes die permanently at virtual time `at`. At most one
    /// permanent failure per plan.
    PermanentFailure { scope: FaultScope, at: f64 },
    /// Transient task failure: every `period`-th submission of a label
    /// (rank 0, period, 2·period, …) aborts `failures` times — consuming
    /// `fail_fraction` of a freshly sampled duration per attempt, with
    /// capped exponential backoff between attempts — before succeeding.
    /// `label: None` applies to every kernel label.
    Transient {
        label: Option<String>,
        period: u64,
        failures: u32,
        fail_fraction: f64,
    },
    /// NIC/link degradation: transfers on `node`'s NIC lanes executing
    /// inside `[from, until)` take `factor` times longer per unit (the
    /// bandwidth/latency scaling of the Hockney/SharedLink cost, applied
    /// at execution time so the window is honoured).
    LinkDegradation {
        node: usize,
        from: f64,
        until: f64,
        factor: f64,
    },
}

/// Checkpoint/restart cost model (cluster permanent failures): global
/// coordinated snapshots every `interval` virtual seconds, each costing
/// `snapshot_cost`; after a failure the machine restores the last
/// snapshot for `restore_cost` and re-executes everything after it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CheckpointPolicy {
    /// Virtual seconds between snapshots (must be positive).
    pub interval: f64,
    /// Virtual seconds each snapshot costs (added to the faulted
    /// makespan once per snapshot taken before the failure).
    pub snapshot_cost: f64,
    /// Virtual seconds to restore the last snapshot after a failure.
    pub restore_cost: f64,
}

/// How the system recovers from the plan's faults.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecoveryPolicy {
    /// First retry backoff for transient failures (virtual seconds);
    /// attempt `i` backs off `backoff_base * 2^i`.
    pub backoff_base: f64,
    /// Ceiling on any single backoff (virtual seconds).
    pub backoff_cap: f64,
    /// Virtual seconds between a permanent failure and the restart of the
    /// surviving configuration (failure detection + re-placement cost).
    pub restart_delay: f64,
    /// Optional checkpoint/restart model for permanent failures. `None`
    /// restarts from the failure cut (single-node) or from scratch
    /// (cluster) with no snapshot overhead.
    pub checkpoint: Option<CheckpointPolicy>,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            backoff_base: 1e-4,
            backoff_cap: 1e-2,
            restart_delay: 0.0,
            checkpoint: None,
        }
    }
}

/// A deterministic fault plan: events plus recovery policy. An empty
/// plan (no events) perturbs nothing — drivers skip injector attachment
/// entirely, so the simulation is bit-for-bit the fault-free one.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// The scheduled faults.
    pub events: Vec<FaultEvent>,
    /// Recovery parameters shared by all events.
    pub recovery: RecoveryPolicy,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Whether the plan has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Add a straggler window on one worker lane.
    pub fn straggler_worker(mut self, worker: usize, from: f64, until: f64, factor: f64) -> Self {
        assert!(factor > 0.0, "straggler factor must be positive");
        assert!(until > from, "straggler window must be non-empty");
        self.events.push(FaultEvent::Straggler {
            scope: FaultScope::Worker(worker),
            from,
            until,
            factor,
        });
        self
    }

    /// Add a straggler window covering every lane of a node.
    pub fn straggler_node(mut self, node: usize, from: f64, until: f64, factor: f64) -> Self {
        assert!(factor > 0.0, "straggler factor must be positive");
        assert!(until > from, "straggler window must be non-empty");
        self.events.push(FaultEvent::Straggler {
            scope: FaultScope::Node(node),
            from,
            until,
            factor,
        });
        self
    }

    /// Kill one worker lane at virtual time `at`.
    pub fn kill_worker(mut self, worker: usize, at: f64) -> Self {
        self.events.push(FaultEvent::PermanentFailure {
            scope: FaultScope::Worker(worker),
            at,
        });
        self.assert_single_permanent();
        self
    }

    /// Kill a whole node at virtual time `at`.
    pub fn kill_node(mut self, node: usize, at: f64) -> Self {
        self.events.push(FaultEvent::PermanentFailure {
            scope: FaultScope::Node(node),
            at,
        });
        self.assert_single_permanent();
        self
    }

    /// Add transient failures on every label (every `period`-th submission
    /// fails `failures` times, losing `fail_fraction` of each attempt).
    pub fn transient(self, period: u64, failures: u32, fail_fraction: f64) -> Self {
        self.transient_impl(None, period, failures, fail_fraction)
    }

    /// Add transient failures on one kernel label.
    pub fn transient_for(
        self,
        label: impl Into<String>,
        period: u64,
        failures: u32,
        fail_fraction: f64,
    ) -> Self {
        self.transient_impl(Some(label.into()), period, failures, fail_fraction)
    }

    fn transient_impl(
        mut self,
        label: Option<String>,
        period: u64,
        failures: u32,
        fail_fraction: f64,
    ) -> Self {
        assert!(period > 0, "transient period must be positive");
        assert!(failures > 0, "a transient fault needs at least one failure");
        assert!(
            (0.0..=1.0).contains(&fail_fraction),
            "fail_fraction must be in [0, 1]"
        );
        self.events.push(FaultEvent::Transient {
            label,
            period,
            failures,
            fail_fraction,
        });
        self
    }

    /// Add a link-degradation window on a node's NIC lanes.
    pub fn degrade_link(mut self, node: usize, from: f64, until: f64, factor: f64) -> Self {
        assert!(factor > 0.0, "degradation factor must be positive");
        assert!(until > from, "degradation window must be non-empty");
        self.events.push(FaultEvent::LinkDegradation {
            node,
            from,
            until,
            factor,
        });
        self
    }

    /// Replace the recovery policy.
    pub fn with_recovery(mut self, recovery: RecoveryPolicy) -> Self {
        self.recovery = recovery;
        self
    }

    /// The plan's permanent failure, if any.
    pub fn permanent_failure(&self) -> Option<(FaultScope, f64)> {
        self.events.iter().find_map(|e| match e {
            FaultEvent::PermanentFailure { scope, at } => Some((*scope, *at)),
            _ => None,
        })
    }

    /// Whether the plan contains any transient-failure events.
    pub fn has_transients(&self) -> bool {
        self.events
            .iter()
            .any(|e| matches!(e, FaultEvent::Transient { .. }))
    }

    /// Whether the plan contains any straggler or link-degradation
    /// windows (anything the injector's `perturb` hook acts on).
    pub fn has_slowdowns(&self) -> bool {
        self.events.iter().any(|e| {
            matches!(
                e,
                FaultEvent::Straggler { .. } | FaultEvent::LinkDegradation { .. }
            )
        })
    }

    fn assert_single_permanent(&self) {
        let n = self
            .events
            .iter()
            .filter(|e| matches!(e, FaultEvent::PermanentFailure { .. }))
            .count();
        assert!(
            n <= 1,
            "at most one permanent failure per plan (got {n}); \
             model cascading failures as separate scenarios"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_empty() {
        let p = FaultPlan::new();
        assert!(p.is_empty());
        assert!(!p.has_transients());
        assert!(!p.has_slowdowns());
        assert!(p.permanent_failure().is_none());
    }

    #[test]
    fn builder_accumulates_events() {
        let p = FaultPlan::new()
            .straggler_worker(2, 0.0, 1.0, 2.0)
            .transient_for("dgemm", 10, 2, 0.5)
            .degrade_link(1, 0.5, 2.0, 4.0)
            .kill_node(3, 1.5);
        assert_eq!(p.events.len(), 4);
        assert!(p.has_transients());
        assert!(p.has_slowdowns());
        assert_eq!(p.permanent_failure(), Some((FaultScope::Node(3), 1.5)));
    }

    #[test]
    #[should_panic(expected = "at most one permanent failure")]
    fn two_permanent_failures_rejected() {
        let _ = FaultPlan::new().kill_worker(0, 1.0).kill_node(1, 2.0);
    }

    #[test]
    #[should_panic(expected = "fail_fraction must be in [0, 1]")]
    fn bad_fail_fraction_rejected() {
        let _ = FaultPlan::new().transient(5, 1, 1.5);
    }

    #[test]
    fn plans_roundtrip_through_json() {
        let p = FaultPlan::new()
            .straggler_node(0, 0.0, 2.0, 1.5)
            .transient(7, 1, 0.25);
        let json = serde_json::to_string(&p).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
