//! The degradation report: clean vs faulted comparison and attribution.

use serde::{Deserialize, Serialize};
use supersim_trace::Trace;

/// The makespan impact of one fault event run in isolation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultAttribution {
    /// Human-readable description of the event.
    pub fault: String,
    /// Makespan with only this event active.
    pub makespan: f64,
    /// `makespan / clean_makespan`.
    pub slowdown: f64,
}

/// Clean-vs-faulted comparison for one scenario under one fault plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegradationReport {
    /// Makespan of the fault-free run (virtual seconds).
    pub clean_makespan: f64,
    /// Makespan under the full fault plan.
    pub faulted_makespan: f64,
    /// `faulted_makespan / clean_makespan` (1.0 for an empty plan).
    pub slowdown: f64,
    /// Lane finishing last in the clean run. Lane assignment races
    /// run-to-run (only virtual *times* are deterministic, and only on
    /// the deterministic central-FIFO profile), so the two critical-lane
    /// fields are diagnostics, not part of the canonical determinism
    /// contract.
    pub critical_lane_clean: usize,
    /// Lane finishing last in the faulted run (a shift reveals the fault
    /// moved the critical path).
    pub critical_lane_faulted: usize,
    /// Failed transient attempts executed.
    pub retries: u64,
    /// Virtual seconds of work discarded by transient failures.
    pub aborted_virtual_seconds: f64,
    /// Virtual seconds of completed work lost to a permanent failure
    /// (truncated in-flight spans and rolled-back completions).
    pub lost_virtual_seconds: f64,
    /// Virtual seconds of checkpoint overhead folded into the faulted
    /// makespan (snapshots taken + restore).
    pub checkpoint_overhead: f64,
    /// Tasks re-executed in the restart phase of a permanent failure.
    pub restarted_tasks: u64,
    /// Per-event attribution: each fault run alone against the clean run.
    pub per_fault: Vec<FaultAttribution>,
}

impl DegradationReport {
    /// Publish the report's headline numbers into `snap`.
    #[cfg(feature = "metrics")]
    pub fn publish_metrics(&self, snap: &mut supersim_metrics::MetricsSnapshot) {
        snap.push_gauge(
            "faults.makespan.clean_us",
            (self.clean_makespan * 1e6).round() as i64,
        );
        snap.push_gauge(
            "faults.makespan.faulted_us",
            (self.faulted_makespan * 1e6).round() as i64,
        );
        snap.push_counter("faults.retries", self.retries);
        snap.push_counter("faults.restarted.tasks", self.restarted_tasks);
        snap.push_gauge(
            "faults.aborted.virtual_us",
            (self.aborted_virtual_seconds * 1e6).round() as i64,
        );
        snap.push_gauge(
            "faults.lost.virtual_us",
            (self.lost_virtual_seconds * 1e6).round() as i64,
        );
    }
}

/// The lane whose last event ends latest — where the makespan is decided.
/// Returns 0 for an empty trace.
pub fn critical_lane(trace: &Trace) -> usize {
    trace
        .spans()
        .iter()
        .max_by(|a, b| {
            a.end
                .total_cmp(&b.end)
                .then_with(|| a.worker.cmp(&b.worker))
        })
        .map(|e| e.worker)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use supersim_trace::TraceEvent;

    #[test]
    fn critical_lane_is_latest_finisher() {
        let mut t = Trace::new(3);
        for (w, end) in [(0, 1.0), (1, 5.0), (2, 3.0)] {
            t.push(TraceEvent {
                worker: w,
                kernel: "k".into(),
                task_id: w as u64,
                start: 0.0,
                end,
            });
        }
        assert_eq!(critical_lane(&t), 1);
        assert_eq!(critical_lane(&Trace::new(2)), 0);
    }

    #[test]
    fn report_serializes() {
        let r = DegradationReport {
            clean_makespan: 1.0,
            faulted_makespan: 1.5,
            slowdown: 1.5,
            critical_lane_clean: 0,
            critical_lane_faulted: 2,
            retries: 3,
            aborted_virtual_seconds: 0.1,
            lost_virtual_seconds: 0.0,
            checkpoint_overhead: 0.0,
            restarted_tasks: 0,
            per_fault: vec![FaultAttribution {
                fault: "straggler worker 2 x2.0 [0, 1)".into(),
                makespan: 1.4,
                slowdown: 1.4,
            }],
        };
        let json = serde_json::to_string(&r).unwrap();
        let back: DegradationReport = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }
}
