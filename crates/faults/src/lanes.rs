//! The lane layout a plan is compiled against.
//!
//! The faults crate is deliberately independent of the cluster crate, so
//! the mapping from fault scopes (workers, nodes, NICs) to the flat lane
//! space of the simulated machine is passed in explicitly. Workload
//! drivers build it from their `ClusterSpec` (or from a plain worker
//! count for single-node runs).

use crate::plan::FaultScope;

/// One node's lane ranges in the flat lane space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeLanes {
    /// Compute lanes `[lo, hi)`.
    pub compute: (usize, usize),
    /// NIC lanes `[lo, hi)` (empty for single-node machines).
    pub nic: (usize, usize),
}

/// Lane layout of the simulated machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaneMap {
    total: usize,
    nodes: Vec<NodeLanes>,
}

impl LaneMap {
    /// A single shared-memory node of `workers` lanes (no NICs).
    pub fn single_node(workers: usize) -> Self {
        LaneMap {
            total: workers,
            nodes: vec![NodeLanes {
                compute: (0, workers),
                nic: (workers, workers),
            }],
        }
    }

    /// A multi-node layout. `total` must cover every range.
    pub fn with_nodes(nodes: Vec<NodeLanes>, total: usize) -> Self {
        for n in &nodes {
            assert!(
                n.compute.1 <= total && n.nic.1 <= total,
                "lane out of range"
            );
            assert!(n.compute.0 <= n.compute.1 && n.nic.0 <= n.nic.1);
        }
        LaneMap { total, nodes }
    }

    /// Total lane count.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The node's lane ranges.
    pub fn node(&self, node: usize) -> NodeLanes {
        self.nodes[node]
    }

    /// All lanes a scope covers: one lane for a worker scope, compute +
    /// NIC lanes for a node scope.
    pub fn lanes_of(&self, scope: FaultScope) -> Vec<usize> {
        match scope {
            FaultScope::Worker(w) => {
                assert!(w < self.total, "worker {w} outside the lane space");
                vec![w]
            }
            FaultScope::Node(n) => {
                let nl = self.node(n);
                (nl.compute.0..nl.compute.1)
                    .chain(nl.nic.0..nl.nic.1)
                    .collect()
            }
        }
    }

    /// A node's NIC lanes.
    pub fn nic_lanes(&self, node: usize) -> Vec<usize> {
        let nl = self.node(node);
        (nl.nic.0..nl.nic.1).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_node_covers_workers_only() {
        let m = LaneMap::single_node(4);
        assert_eq!(m.total(), 4);
        assert_eq!(m.lanes_of(FaultScope::Worker(2)), vec![2]);
        assert_eq!(m.lanes_of(FaultScope::Node(0)), vec![0, 1, 2, 3]);
        assert!(m.nic_lanes(0).is_empty());
    }

    #[test]
    fn multi_node_scopes_cover_compute_and_nic() {
        // 2 nodes x 2 workers, then 1 NIC lane each: lanes 4 and 5.
        let m = LaneMap::with_nodes(
            vec![
                NodeLanes {
                    compute: (0, 2),
                    nic: (4, 5),
                },
                NodeLanes {
                    compute: (2, 4),
                    nic: (5, 6),
                },
            ],
            6,
        );
        assert_eq!(m.lanes_of(FaultScope::Node(1)), vec![2, 3, 5]);
        assert_eq!(m.nic_lanes(0), vec![4]);
    }
}
