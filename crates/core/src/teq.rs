//! The Task Execution Queue (TEQ) and the virtual clock.
//!
//! "The key element of the simulation environment is the Task Execution
//! Queue ... a priority queue which is prioritized by the simulated
//! completion time of a task" (§V-C). The clock and the queue share one
//! mutex so that reading the clock for a task's start time and inserting
//! its completion are one atomic step.
//!
//! Blocked tasks park on per-waiter condition variables keyed by their
//! ticket's sequence number. Queue transitions compute the new front under
//! the state lock and wake only that front's owner, so a retire costs one
//! wakeup instead of waking every simulated worker (the broadcast herd
//! grows as O(tasks x workers); see DESIGN.md §5 "Locking & wakeup
//! protocol"). [`WakeupMode::Broadcast`] preserves the old behavior for
//! benchmark comparisons.

use crate::obs;
use parking_lot::{Condvar, Mutex};
use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;

/// Ticket identifying one entry in the queue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TeqTicket {
    seq: u64,
    /// The virtual completion time of this entry.
    pub end: f64,
}

/// Heap entry: min-heap by (end, seq) via reversed `Ord`.
#[derive(Debug, PartialEq)]
struct HeapEntry {
    end: f64,
    seq: u64,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the smallest end (then
        // smallest seq, i.e. earliest insertion) on top.
        other
            .end
            .total_cmp(&self.end)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// How queue transitions wake blocked [`TaskExecutionQueue::wait_front`]
/// callers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WakeupMode {
    /// Wake every parked waiter on any transition and let each re-check
    /// whether it is the front. O(waiters) wakeups per retire — kept only
    /// as the baseline for contention benchmarks.
    Broadcast,
    /// Wake only the owner of the entry that just became the front. Each
    /// waiter parks on its own condvar, registered by ticket sequence
    /// number; the new front is computed under the state lock, so exactly
    /// one thread is scheduled per retirement.
    #[default]
    Targeted,
}

struct State {
    clock: f64,
    heap: BinaryHeap<HeapEntry>,
    next_seq: u64,
    /// Completions retired so far (monotone, for diagnostics).
    retired: u64,
    /// Parked `wait_front` callers by ticket seq (targeted mode only).
    /// At most one waiter per seq: a ticket is owned by a single task.
    waiters: HashMap<u64, Arc<Condvar>>,
    /// Observability tally, updated under this mutex (zero-sized and
    /// compiled out when the `metrics` feature is off).
    tally: obs::TeqTally,
}

/// The Task Execution Queue with its embedded virtual clock.
///
/// The simulation clock "is stored as a double precision floating point
/// number which is of sufficient resolution for the tasks we deal with"
/// (§V). It only moves forward, and only when the front entry retires.
pub struct TaskExecutionQueue {
    state: Mutex<State>,
    /// Broadcast-mode condvar (unused in targeted mode).
    cv: Condvar,
    mode: WakeupMode,
}

impl Default for TaskExecutionQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl TaskExecutionQueue {
    /// A fresh queue with the clock at 0, using targeted wakeups.
    pub fn new() -> Self {
        Self::with_wakeup_mode(WakeupMode::default())
    }

    /// A fresh queue with an explicit wakeup discipline (benchmarks use
    /// this to compare broadcast vs targeted under contention).
    pub fn with_wakeup_mode(mode: WakeupMode) -> Self {
        TaskExecutionQueue {
            state: Mutex::new(State {
                clock: 0.0,
                heap: BinaryHeap::new(),
                next_seq: 0,
                retired: 0,
                waiters: HashMap::new(),
                tally: obs::TeqTally::default(),
            }),
            cv: Condvar::new(),
            mode,
        }
    }

    /// The wakeup discipline this queue was built with.
    pub fn wakeup_mode(&self) -> WakeupMode {
        self.mode
    }

    /// Current virtual time.
    pub fn now(&self) -> f64 {
        self.state.lock().clock
    }

    /// Number of entries currently executing (inserted, not retired).
    pub fn len(&self) -> usize {
        self.state.lock().heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total entries retired since creation.
    pub fn retired(&self) -> u64 {
        self.state.lock().retired
    }

    /// Wake whoever owns the current front, if it is parked. Must be
    /// called with the state lock held, after any transition that can
    /// change the front. Broadcast mode wakes everyone instead.
    fn wake_front(&self, st: &mut State) {
        match self.mode {
            WakeupMode::Broadcast => {
                self.cv.notify_all();
                st.tally.on_wakeup();
            }
            WakeupMode::Targeted => {
                if let Some(front) = st.heap.peek() {
                    if let Some(cv) = st.waiters.get(&front.seq) {
                        cv.notify_one();
                        st.tally.on_wakeup();
                    }
                }
            }
        }
    }

    /// Atomically read the clock as this task's start time, compute its
    /// completion as `start + duration`, and insert it. Returns the ticket
    /// plus the start time.
    ///
    /// `duration` is clamped at 0 (models can produce tiny negative
    /// samples when a fitted normal has mass below zero).
    pub fn insert(&self, duration: f64) -> (TeqTicket, f64) {
        self.insert_with(|_| duration)
    }

    /// Like [`TaskExecutionQueue::insert`], but the duration is computed
    /// from the task's start time *under the state lock*, so start-time-
    /// dependent costs (fault windows, time-varying slowdowns) see exactly
    /// the clock value the task starts at — no other insert or retire can
    /// interleave between the clock read and the completion insert.
    pub fn insert_with(&self, duration_at: impl FnOnce(f64) -> f64) -> (TeqTicket, f64) {
        // Sampled latency stamp, taken before the lock so the measurement
        // covers acquisition (the interesting part under contention).
        let stamp = obs::stamp();
        let mut st = self.state.lock();
        let start = st.clock;
        let duration = duration_at(start);
        let duration = if duration.is_finite() {
            duration.max(0.0)
        } else {
            0.0
        };
        let end = start + duration;
        let seq = st.next_seq;
        st.next_seq += 1;
        st.heap.push(HeapEntry { end, seq });
        if debug_enabled() {
            eprintln!("[dbg] teq.insert seq={seq} start={start:.6} end={end:.6}");
        }
        // An insert can only displace the front with the new entry (whose
        // owner is the caller, not parked); it can never make an already
        // parked ticket become the front. Targeted mode therefore has no
        // one to wake here — the lookup is a cheap no-op that keeps the
        // discipline uniform across transitions.
        self.wake_front(&mut st);
        st.tally.on_insert(stamp);
        (TeqTicket { seq, end }, start)
    }

    /// Whether `ticket` is at the front of the queue (the next completion).
    pub fn is_front(&self, ticket: TeqTicket) -> bool {
        let st = self.state.lock();
        st.heap.peek().is_some_and(|e| e.seq == ticket.seq)
    }

    /// Fused query for the quiescence wait loop: whether `ticket` is at
    /// the front, plus the retired count, in one lock acquisition.
    pub fn front_and_retired(&self, ticket: TeqTicket) -> (bool, u64) {
        let st = self.state.lock();
        (
            st.heap.peek().is_some_and(|e| e.seq == ticket.seq),
            st.retired,
        )
    }

    /// Block until `ticket` is at the front.
    pub fn wait_front(&self, ticket: TeqTicket) {
        let mut st = self.state.lock();
        if st.heap.peek().is_some_and(|e| e.seq == ticket.seq) {
            st.tally.on_wait_immediate();
            return;
        }
        // About to park: the timer is 1-in-64 sampled (dedicated stream,
        // first wait per thread always fires) because an unconditional
        // clock read here sits inside the contended critical section and
        // costs double-digit percent drain throughput on its own.
        let timer = obs::wait_timer();
        match self.mode {
            WakeupMode::Broadcast => {
                while st.heap.peek().is_none_or(|e| e.seq != ticket.seq) {
                    self.cv.wait(&mut st);
                }
            }
            WakeupMode::Targeted => {
                let cv = st
                    .waiters
                    .entry(ticket.seq)
                    .or_insert_with(|| Arc::new(Condvar::new()))
                    .clone();
                while st.heap.peek().is_none_or(|e| e.seq != ticket.seq) {
                    cv.wait(&mut st);
                }
                st.waiters.remove(&ticket.seq);
            }
        }
        st.tally.on_wait_parked(timer);
    }

    /// Retire the front entry (must be `ticket` — panics otherwise),
    /// advancing the clock to its completion time.
    pub fn retire(&self, ticket: TeqTicket) {
        let stamp = obs::stamp();
        let mut st = self.state.lock();
        let front = st.heap.peek().expect("retire on empty queue");
        assert_eq!(front.seq, ticket.seq, "retire called by a non-front task");
        let e = st.heap.pop().unwrap();
        if debug_enabled() {
            eprintln!("[dbg] teq.retire seq={} end={:.6}", e.seq, e.end);
        }
        st.clock = st.clock.max(e.end);
        st.retired += 1;
        // The pop promoted a new front; wake its owner (and only it).
        self.wake_front(&mut st);
        st.tally.on_retire(stamp);
    }

    /// Advance the clock directly (used by tests and by the offline DES).
    /// The clock never moves backwards.
    pub fn advance_to(&self, t: f64) {
        let mut st = self.state.lock();
        st.clock = st.clock.max(t);
        // The clock is not part of the wait_front predicate, but broadcast
        // mode historically woke waiters here; keep transitions uniform.
        self.wake_front(&mut st);
    }

    /// Publish this queue's tally into a snapshot: counts, latency
    /// histograms, the current depth, and the wakeup count under the name
    /// of the mode that produced it (`teq.wakeup.targeted` /
    /// `teq.wakeup.broadcast`). Counter pushes accumulate, so publishing
    /// several queues (or the same workload under both modes) sums into
    /// one snapshot.
    #[cfg(feature = "metrics")]
    pub fn publish_metrics(&self, snap: &mut supersim_metrics::MetricsSnapshot) {
        let (tally, depth) = {
            let st = self.state.lock();
            (
                obs::TeqTally {
                    insert_ns: st.tally.insert_ns.clone(),
                    retire_ns: st.tally.retire_ns.clone(),
                    wait_parked_ns: st.tally.wait_parked_ns.clone(),
                    ..st.tally
                },
                st.heap.len() as i64,
            )
        };
        snap.push_counter("teq.insert.count", tally.inserts);
        snap.push_counter("teq.retire.count", tally.retires);
        snap.push_counter("teq.wait.immediate", tally.waits_immediate);
        snap.push_counter("teq.wait.parked", tally.waits_parked);
        let wakeup_name = match self.mode {
            WakeupMode::Targeted => "teq.wakeup.targeted",
            WakeupMode::Broadcast => "teq.wakeup.broadcast",
        };
        snap.push_counter(wakeup_name, tally.wakeups);
        snap.push_gauge("teq.depth", depth);
        snap.push_histogram("teq.insert.ns", &tally.insert_ns);
        snap.push_histogram("teq.retire.ns", &tally.retire_ns);
        snap.push_histogram("teq.wait.parked.ns", &tally.wait_parked_ns);
    }
}

/// Cached SUPERSIM_DEBUG environment check (hot paths consult this).
fn debug_enabled() -> bool {
    static FLAG: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *FLAG.get_or_init(|| std::env::var_os("SUPERSIM_DEBUG").is_some())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_starts_at_zero() {
        let q = TaskExecutionQueue::new();
        assert_eq!(q.now(), 0.0);
        assert!(q.is_empty());
        assert_eq!(q.wakeup_mode(), WakeupMode::Targeted);
    }

    #[test]
    fn insert_reads_clock_as_start() {
        let q = TaskExecutionQueue::new();
        let (t1, s1) = q.insert(2.0);
        assert_eq!(s1, 0.0);
        assert_eq!(t1.end, 2.0);
        assert_eq!(q.len(), 1);
        // Clock does not move on insert.
        assert_eq!(q.now(), 0.0);
    }

    #[test]
    fn retire_advances_clock_in_end_order() {
        let q = TaskExecutionQueue::new();
        let (a, _) = q.insert(3.0);
        let (b, _) = q.insert(1.0);
        assert!(q.is_front(b), "earliest end must be front");
        assert!(!q.is_front(a));
        q.retire(b);
        assert_eq!(q.now(), 1.0);
        assert!(q.is_front(a));
        q.retire(a);
        assert_eq!(q.now(), 3.0);
        assert_eq!(q.retired(), 2);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let q = TaskExecutionQueue::new();
        let (a, _) = q.insert(1.0);
        let (b, _) = q.insert(1.0);
        assert!(q.is_front(a));
        q.retire(a);
        assert!(q.is_front(b));
        q.retire(b);
    }

    #[test]
    #[should_panic(expected = "non-front")]
    fn retire_out_of_order_panics() {
        let q = TaskExecutionQueue::new();
        let (_a, _) = q.insert(1.0);
        let (b, _) = q.insert(2.0);
        q.retire(b);
    }

    #[test]
    fn insert_with_computes_duration_from_start() {
        let q = TaskExecutionQueue::new();
        let (a, _) = q.insert(2.0);
        q.wait_front(a);
        q.retire(a);
        // Clock is 2.0: the closure must observe exactly that start.
        let (t, s) = q.insert_with(|start| start * 0.5);
        assert_eq!(s, 2.0);
        assert_eq!(t.end, 3.0);
        // Non-finite computed durations are clamped like plain inserts.
        let (t2, s2) = q.insert_with(|_| f64::NAN);
        assert_eq!(t2.end, s2);
    }

    #[test]
    fn negative_and_nan_durations_clamped() {
        let q = TaskExecutionQueue::new();
        let (t, s) = q.insert(-5.0);
        assert_eq!(t.end, s);
        let (t2, s2) = q.insert(f64::NAN);
        assert_eq!(t2.end, s2);
    }

    #[test]
    fn clock_monotone_under_retire() {
        let q = TaskExecutionQueue::new();
        let (a, _) = q.insert(5.0);
        q.advance_to(10.0);
        q.retire(a); // end = 5 < clock = 10: clock must not go back
        assert_eq!(q.now(), 10.0);
    }

    #[test]
    fn front_and_retired_is_consistent() {
        let q = TaskExecutionQueue::new();
        let (a, _) = q.insert(1.0);
        let (b, _) = q.insert(2.0);
        assert_eq!(q.front_and_retired(a), (true, 0));
        assert_eq!(q.front_and_retired(b), (false, 0));
        q.retire(a);
        assert_eq!(q.front_and_retired(b), (true, 1));
    }

    fn wakeup_modes() -> [WakeupMode; 2] {
        [WakeupMode::Broadcast, WakeupMode::Targeted]
    }

    #[test]
    fn wait_front_unblocks_when_front_retires() {
        for mode in wakeup_modes() {
            let q = Arc::new(TaskExecutionQueue::with_wakeup_mode(mode));
            let (a, _) = q.insert(1.0);
            let (b, _) = q.insert(2.0);
            let q2 = q.clone();
            let h = std::thread::spawn(move || {
                q2.wait_front(b);
                q2.retire(b);
                q2.now()
            });
            std::thread::sleep(std::time::Duration::from_millis(20));
            q.retire(a);
            let clock = h.join().unwrap();
            assert_eq!(clock, 2.0, "mode {mode:?}");
        }
    }

    #[test]
    fn concurrent_completion_order_matches_end_times() {
        // 8 threads insert random-ish durations; each waits for front and
        // retires; the retirement order must equal ascending end order.
        for mode in wakeup_modes() {
            let q = Arc::new(TaskExecutionQueue::with_wakeup_mode(mode));
            let order = Arc::new(Mutex::new(Vec::new()));
            let mut handles = Vec::new();
            let durations = [0.7, 0.3, 0.9, 0.1, 0.5, 0.2, 0.8, 0.4];
            let mut tickets = Vec::new();
            for &d in &durations {
                tickets.push(q.insert(d));
            }
            for (ticket, _) in tickets {
                let q = q.clone();
                let order = order.clone();
                handles.push(std::thread::spawn(move || {
                    q.wait_front(ticket);
                    order.lock().push(ticket.end);
                    q.retire(ticket);
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            let order = order.lock();
            let mut sorted = order.clone();
            sorted.sort_by(f64::total_cmp);
            assert_eq!(*order, sorted, "mode {mode:?}: must retire in end order");
            assert_eq!(q.now(), 0.9);
        }
    }

    #[test]
    fn sequential_tasks_accumulate_time() {
        // A chain simulated by hand: each task starts at the clock left by
        // the previous retire.
        let q = TaskExecutionQueue::new();
        let mut expected = 0.0;
        for d in [1.0, 2.5, 0.5] {
            let (t, start) = q.insert(d);
            assert_eq!(start, expected);
            q.wait_front(t);
            q.retire(t);
            expected += d;
        }
        assert_eq!(q.now(), 4.0);
    }

    #[test]
    fn waiter_registry_is_cleaned_up() {
        let q = Arc::new(TaskExecutionQueue::new());
        let (a, _) = q.insert(1.0);
        let (b, _) = q.insert(2.0);
        let q2 = q.clone();
        let h = std::thread::spawn(move || {
            q2.wait_front(b);
            q2.retire(b);
        });
        // Let the helper park before retiring the front.
        while q.state.lock().waiters.is_empty() {
            std::thread::yield_now();
        }
        q.retire(a);
        h.join().unwrap();
        assert!(q.state.lock().waiters.is_empty(), "no stale waiter entries");
    }

    /// Heavy contention: 500 tasks/thread distributed over 64 threads, all
    /// inserted up front so the raw insert/wait/retire protocol is
    /// race-free (concurrent *inserts* during retirement can displace an
    /// already-woken front — that is the §V-E race the session-level
    /// mitigations exist for, not a queue property). Each thread then
    /// contends on wait_front for its own tickets in ascending (end, seq)
    /// order, keeping up to 63 threads parked at once — the thundering-herd
    /// scenario targeted wakeups are built for. The global retirement order
    /// must equal ascending (end, seq).
    #[test]
    fn stress_64_threads_retire_in_end_seq_order() {
        const THREADS: usize = 64;
        const TASKS_PER_THREAD: usize = 500;
        let q = Arc::new(TaskExecutionQueue::new());
        let order = Arc::new(Mutex::new(Vec::<(f64, u64)>::with_capacity(
            THREADS * TASKS_PER_THREAD,
        )));
        let mut per_thread: Vec<Vec<TeqTicket>> = vec![Vec::new(); THREADS];
        let mut x = 0x9e37_79b9_7f4a_7c15u64;
        for i in 0..THREADS * TASKS_PER_THREAD {
            // xorshift64 durations with a coarse grid: variety plus ties.
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let d = (x % 100) as f64 / 100.0;
            per_thread[i % THREADS].push(q.insert(d).0);
        }
        let mut handles = Vec::new();
        for mut tickets in per_thread {
            // A thread must serve its own tickets front-first, or it would
            // park on a late ticket while an earlier one of its own blocks
            // the queue.
            tickets.sort_by(|a, b| a.end.total_cmp(&b.end).then_with(|| a.seq.cmp(&b.seq)));
            let q = q.clone();
            let order = order.clone();
            handles.push(std::thread::spawn(move || {
                for ticket in tickets {
                    q.wait_front(ticket);
                    // Front is exclusive: no other thread can retire (and
                    // therefore none can pass wait_front and record) until
                    // this retire happens, so the push order is the global
                    // retire order.
                    order.lock().push((ticket.end, ticket.seq));
                    q.retire(ticket);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let order = order.lock();
        assert_eq!(order.len(), THREADS * TASKS_PER_THREAD);
        for w in order.windows(2) {
            let ord = w[0].0.total_cmp(&w[1].0).then_with(|| w[0].1.cmp(&w[1].1));
            assert!(
                ord == std::cmp::Ordering::Less,
                "retire order violated: {:?} before {:?}",
                w[0],
                w[1]
            );
        }
        assert!(q.state.lock().waiters.is_empty(), "no stale waiter entries");
        assert_eq!(q.retired(), (THREADS * TASKS_PER_THREAD) as u64);
    }

    #[cfg(feature = "metrics")]
    #[test]
    fn tally_published_per_wakeup_mode() {
        for mode in wakeup_modes() {
            let q = Arc::new(TaskExecutionQueue::with_wakeup_mode(mode));
            let (a, _) = q.insert(1.0);
            let (b, _) = q.insert(2.0);
            let q2 = q.clone();
            let h = std::thread::spawn(move || {
                q2.wait_front(b); // parks until a retires
                q2.retire(b);
            });
            std::thread::sleep(std::time::Duration::from_millis(10));
            q.wait_front(a); // immediate: a is already the front
            q.retire(a);
            h.join().unwrap();

            let mut snap = supersim_metrics::MetricsSnapshot::default();
            q.publish_metrics(&mut snap);
            assert_eq!(snap.counter("teq.insert.count"), Some(2), "{mode:?}");
            assert_eq!(snap.counter("teq.retire.count"), Some(2));
            assert_eq!(snap.counter("teq.wait.immediate"), Some(1));
            assert_eq!(snap.counter("teq.wait.parked"), Some(1));
            let wakeup_name = match mode {
                WakeupMode::Targeted => "teq.wakeup.targeted",
                WakeupMode::Broadcast => "teq.wakeup.broadcast",
            };
            assert!(snap.counter(wakeup_name).unwrap() >= 1, "{mode:?}");
            assert_eq!(snap.gauge("teq.depth"), Some(0));
            let wait = snap.histogram("teq.wait.parked.ns").unwrap();
            // The parked wait runs on a freshly spawned thread, whose
            // first wait always samples.
            assert_eq!(wait.count, 1, "first wait on a fresh thread is timed");
            assert!(wait.sum_ns > 0);
            // Latency histograms are sampled 1-in-64 per thread, so their
            // counts are run-dependent here; presence is what's guaranteed.
            assert!(snap.histogram("teq.insert.ns").is_some());
            assert!(snap.histogram("teq.retire.ns").is_some());
        }
    }
}
