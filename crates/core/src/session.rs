//! The simulation session: wires the virtual clock / Task Execution Queue,
//! the kernel models, the trace recorder, and the runtime's quiescence
//! probe into the simulated-kernel protocol of paper §V-D.
//!
//! Usage mirrors the paper: "the developer simply replaces the calls to
//! each computational kernel with a call to the simulated kernel":
//!
//! ```
//! use std::sync::Arc;
//! use supersim_core::{KernelModel, ModelRegistry, RaceMitigation, SimConfig, SimSession};
//! use supersim_runtime::{Runtime, RuntimeConfig, TaskDesc};
//! use supersim_dag::{Access, DataId};
//!
//! let mut models = ModelRegistry::new();
//! models.insert("work", KernelModel::constant(1.0));
//! let session = SimSession::new(models, SimConfig::default());
//!
//! let rt = Runtime::new(RuntimeConfig::simple(2));
//! session.attach_quiesce(rt.probe());
//! // A 3-task chain: virtual makespan must be exactly 3 seconds.
//! for _ in 0..3 {
//!     let s = session.clone();
//!     rt.submit(TaskDesc::new("work", vec![Access::read_write(DataId(0))],
//!         move |ctx| s.run_kernel(ctx, "work")));
//! }
//! rt.seal(); // a simulated run must declare submission complete
//! rt.wait_all().unwrap();
//! assert_eq!(session.virtual_now(), 3.0);
//! let trace = session.finish_trace(2);
//! assert_eq!(trace.len(), 3);
//! ```

use crate::model::ModelRegistry;
use crate::race::RaceMitigation;
use crate::teq::{TaskExecutionQueue, WakeupMode};
use parking_lot::Mutex;
use rand::{Rng, SeedableRng};
#[cfg(feature = "metrics")]
use std::collections::BTreeMap;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use supersim_runtime::{Quiesce, TaskContext};
use supersim_trace::{Trace, TraceRecorder};

/// Simulation configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Seed for the per-task duration RNG. Durations depend only on
    /// `(seed, task_id)` (and, on heterogeneous platforms, the executing
    /// worker's speed), so a simulation is reproducible regardless of
    /// thread interleaving.
    pub seed: u64,
    /// Race mitigation strategy (paper §V-E).
    pub mitigation: RaceMitigation,
    /// Fixed scheduler overhead added to every simulated kernel duration
    /// (seconds). Models the per-task dispatch/bookkeeping cost the paper
    /// identifies as the main error source at small problem sizes (§VII);
    /// the `supersim-calibrate` crate's gap analysis can estimate it.
    /// 0 disables.
    pub overhead_per_task: f64,
    /// Relative speed of each virtual worker (empty = homogeneous).
    /// A sampled duration is divided by the executing worker's speed —
    /// the simplest model of the heterogeneous (CPU + GPU) platforms the
    /// paper lists as future work. Workers beyond the vector's length get
    /// speed 1.0.
    pub worker_speeds: Vec<f64>,
    /// Wakeup discipline for the session's Task Execution Queue.
    /// [`WakeupMode::Targeted`] (the default) wakes exactly the new front
    /// owner per retirement; [`WakeupMode::Broadcast`] is the thundering-
    /// herd baseline, kept selectable so the `supersim metrics` command
    /// can report wakeup counters for both disciplines side by side.
    pub wakeup_mode: WakeupMode,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0x5eed_5eed,
            mitigation: RaceMitigation::Quiesce,
            overhead_per_task: 0.0,
            worker_speeds: Vec::new(),
            wakeup_mode: WakeupMode::default(),
        }
    }
}

impl SimConfig {
    /// The speed factor of `worker` (1.0 when unspecified).
    pub fn speed_of(&self, worker: usize) -> f64 {
        self.worker_speeds.get(worker).copied().unwrap_or(1.0)
    }
}

/// Prescription for a transient task failure: the task fails
/// `failures` times (consuming part of a freshly sampled duration each
/// time, then backing off in virtual time) before succeeding.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransientSpec {
    /// Failed attempts before the task finally succeeds.
    pub failures: u32,
    /// Fraction of an attempt's duration consumed before the failure is
    /// detected, clamped to `[0, 1]`.
    pub fail_fraction: f64,
    /// Backoff after the first failed attempt (virtual seconds); attempt
    /// `i` backs off `backoff_base * 2^i`.
    pub backoff_base: f64,
    /// Ceiling on any single backoff (virtual seconds).
    pub backoff_cap: f64,
}

/// Deterministic fault hooks consulted by the simulated-kernel protocol.
///
/// Implementations must be pure functions of their arguments (plus
/// immutable compiled state): `perturb` runs under the TEQ state lock, so
/// the duration a task observes depends only on `(worker, start,
/// duration)` — never on host timing. An unattached injector (the default)
/// leaves every code path bit-for-bit identical to a fault-free session.
pub trait FaultInjector: Send + Sync {
    /// Perturbed duration of `duration` seconds of work starting at
    /// virtual time `start` on lane `worker` (straggler windows, degraded
    /// links). The default is the identity.
    fn perturb(&self, worker: usize, start: f64, duration: f64) -> f64 {
        let _ = (worker, start);
        duration
    }

    /// Transient-failure prescription for the `rank`-th submission of
    /// `label`, or `None` for a clean execution. Keyed on submission rank
    /// (not worker or task id) so the decision is placement-independent.
    fn transient(&self, label: &str, rank: u64) -> Option<TransientSpec> {
        let _ = (label, rank);
        None
    }

    /// Notification that a transient prescription was executed:
    /// `failures` retries costing `aborted_virtual_seconds` of discarded
    /// (post-perturbation) work. Implementations use this for fault
    /// accounting; determinism of the simulation does not depend on it.
    fn on_transient(&self, label: &str, failures: u32, aborted_virtual_seconds: f64) {
        let _ = (label, failures, aborted_virtual_seconds);
    }
}

/// Segment kinds of a simulated task's virtual timeline. A clean task is
/// a single [`SegmentKind::Work`] segment; a transiently failing one
/// interleaves failed attempts and backoffs before the final execution.
///
/// Public so the DES replay backend can lay out the same timelines the
/// threaded protocol produces (see [`layout_segments`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentKind {
    /// A failed attempt (discarded work).
    Failed,
    /// Idle retry backoff.
    Backoff,
    /// The final, successful execution.
    Work,
}

/// The planned virtual timeline of one ranked kernel execution: everything
/// about the task's duration that is fixed at submission time — sampled
/// durations, transient-failure segments — before any start time or lane
/// assignment is known. Produced by [`SimSession::plan_ranked`]; consumed
/// by [`SimSession::run_kernel_ranked`] (threaded backend) and by the DES
/// replay backend, which must draw the *same* plan for the same
/// `(seed, label, rank)`.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelPlan {
    /// Nominal segment durations in timeline order. A clean execution is a
    /// single `Work` segment.
    pub segments: Vec<(SegmentKind, f64)>,
    /// Failed attempts prescribed by the fault injector (0 = clean).
    pub failures: u32,
    /// Whether the injector prescribed a transient failure (true even for
    /// a degenerate `failures == 0` prescription, which still reports to
    /// [`FaultInjector::on_transient`]).
    pub transient: bool,
}

impl KernelPlan {
    /// Whether this plan came from a transient-failure prescription.
    pub fn is_transient(&self) -> bool {
        self.transient
    }
}

/// Lay a kernel plan's segments onto the virtual timeline from `start`,
/// applying the injector's perturbation to work (but not idle backoff) and
/// the TEQ's non-finite/negative clamping to every segment. Returns the
/// per-segment `(kind, start, end)` bounds and the total duration.
///
/// This is the exact arithmetic [`SimSession`] performs under the TEQ
/// state lock when inserting a (possibly segmented) task; the DES replay
/// backend calls it with its own event-loop clock to reproduce the
/// threaded timelines bit for bit.
pub fn layout_segments(
    inj: Option<&dyn FaultInjector>,
    worker: usize,
    start: f64,
    segs: &[(SegmentKind, f64)],
) -> (Vec<(SegmentKind, f64, f64)>, f64) {
    let mut bounds: Vec<(SegmentKind, f64, f64)> = Vec::with_capacity(segs.len());
    let mut t = start;
    for &(kind, nominal) in segs {
        // Backoff is idle waiting — a slow worker waits at the same rate
        // as a fast one — so only work is perturbed.
        let d = match (kind, inj) {
            (SegmentKind::Backoff, _) | (_, None) => nominal,
            (SegmentKind::Failed | SegmentKind::Work, Some(inj)) => inj.perturb(worker, t, nominal),
        };
        let d = if d.is_finite() { d.max(0.0) } else { 0.0 };
        bounds.push((kind, t, t + d));
        t += d;
    }
    (bounds, t - start)
}

/// Record one trace span per laid-out segment — failed attempts under
/// `label` + [`supersim_trace::fault::FAIL_SUFFIX`], non-empty backoffs
/// under [`supersim_trace::fault::BACKOFF_LABEL`], work under `label`, all
/// sharing `task_id`. Returns the aborted virtual seconds (the summed
/// post-perturbation cost of the failed attempts). Shared by the threaded
/// protocol and the DES replay backend so faulted traces match bit for bit.
pub fn record_segment_spans(
    trace: &TraceRecorder,
    worker: usize,
    label: &str,
    task_id: u64,
    bounds: &[(SegmentKind, f64, f64)],
) -> f64 {
    let mut aborted = 0.0;
    for &(kind, s, e) in bounds {
        match kind {
            SegmentKind::Failed => {
                aborted += e - s;
                let marked = format!("{label}{}", supersim_trace::fault::FAIL_SUFFIX);
                trace.record(worker, &marked, task_id, s, e);
            }
            SegmentKind::Backoff => {
                if e > s {
                    trace.record(worker, supersim_trace::fault::BACKOFF_LABEL, task_id, s, e);
                }
            }
            SegmentKind::Work => trace.record(worker, label, task_id, s, e),
        }
    }
    aborted
}

/// A simulation session. Create one per simulated run; hand
/// [`SimSession::run_kernel`] (or [`SimSession::kernel_body`]) to every
/// task body, then read the predicted makespan and the virtual-time trace.
pub struct SimSession {
    teq: TaskExecutionQueue,
    /// Shared, read-only kernel models. An `Arc` so N concurrent sessions
    /// (a sweep's cells) can share one fitted-model database built once up
    /// front instead of cloning the registry per cell.
    models: Arc<ModelRegistry>,
    trace: TraceRecorder,
    config: SimConfig,
    quiesce: Mutex<Option<Arc<dyn Quiesce>>>,
    /// Optional fault injector (straggler windows, transient failures,
    /// link degradation). `None` — the default — keeps every simulated
    /// path bit-for-bit identical to a fault-free session.
    faults: Mutex<Option<Arc<dyn FaultInjector>>>,
    first_calls: Mutex<HashSet<(usize, String)>>,
    /// Warm-up budget for the plan-based protocol: the first `n`
    /// submissions of each label sample warm (see
    /// [`SimSession::set_warmup_slots`]). 0 disables warm-up entirely.
    warmup_slots: AtomicUsize,
    /// Per-label submission-rank counters for [`SimSession::planned_body`].
    /// Ranks are assigned on the (serial) master thread at submission
    /// time, so they are deterministic regardless of worker interleaving.
    ranks: Mutex<HashMap<String, u64>>,
    /// Cooperative cancellation flag: set via
    /// [`SimSession::request_cancel`] (e.g. by a serving front-end whose
    /// wall-clock deadline expired), polled by engines between
    /// retirements. Never set by the simulation itself.
    cancel: AtomicBool,
    /// Virtual-time budget in seconds, stored as `f64` bits
    /// (`f64::INFINITY` = unlimited). Engines abort a run whose clock
    /// exceeds it — a guard against scenarios whose virtual span is
    /// unexpectedly huge even though each step is cheap.
    virtual_budget_bits: AtomicU64,
    /// Recorder shard occupancy captured by [`SimSession::finish_trace`]
    /// just before the shards are drained, so metrics published after the
    /// run still describe the run (not the emptied buffers).
    #[cfg(feature = "metrics")]
    final_occupancy: Mutex<Option<Vec<usize>>>,
    /// Simulated kernels completed by this session. Per-session (not
    /// process-global) so N concurrent sessions never cross-talk.
    #[cfg(feature = "metrics")]
    kernels: AtomicU64,
    /// Settle-loop spins observed by this session.
    #[cfg(feature = "metrics")]
    quiesce_spins: AtomicU64,
    /// End-of-run counters accumulated by engines driving this session
    /// (e.g. the DES replay backend's run/task/event totals), published
    /// alongside the session's own instruments by
    /// [`SimSession::publish_metrics`].
    #[cfg(feature = "metrics")]
    run_counters: Mutex<BTreeMap<String, u64>>,
}

impl SimSession {
    /// Create a session over a model registry.
    pub fn new(models: ModelRegistry, config: SimConfig) -> Arc<Self> {
        Self::with_shared(Arc::new(models), config)
    }

    /// Create a session over a *shared* model registry. Sweeps build one
    /// fitted-model database up front and hand every concurrent session
    /// the same `Arc` — the registry is read-only, so sharing is free.
    pub fn with_shared(models: Arc<ModelRegistry>, config: SimConfig) -> Arc<Self> {
        Arc::new(SimSession {
            teq: TaskExecutionQueue::with_wakeup_mode(config.wakeup_mode),
            models,
            trace: TraceRecorder::new(),
            config,
            quiesce: Mutex::new(None),
            faults: Mutex::new(None),
            first_calls: Mutex::new(HashSet::new()),
            warmup_slots: AtomicUsize::new(0),
            ranks: Mutex::new(HashMap::new()),
            cancel: AtomicBool::new(false),
            virtual_budget_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            #[cfg(feature = "metrics")]
            final_occupancy: Mutex::new(None),
            #[cfg(feature = "metrics")]
            kernels: AtomicU64::new(0),
            #[cfg(feature = "metrics")]
            quiesce_spins: AtomicU64::new(0),
            #[cfg(feature = "metrics")]
            run_counters: Mutex::new(BTreeMap::new()),
        })
    }

    /// Attach the runtime's quiescence probe (required for
    /// [`RaceMitigation::Quiesce`]; ignored by the other strategies).
    pub fn attach_quiesce(&self, probe: Arc<dyn Quiesce>) {
        *self.quiesce.lock() = Some(probe);
    }

    /// Attach a fault injector. Call before submitting tasks; a session
    /// with no injector attached executes the exact fault-free code path.
    pub fn attach_faults(&self, injector: Arc<dyn FaultInjector>) {
        *self.faults.lock() = Some(injector);
    }

    /// The attached fault injector, if any (the DES replay backend reads
    /// it to draw the same kernel plans the threaded protocol would).
    pub fn fault_injector(&self) -> Option<Arc<dyn FaultInjector>> {
        self.faults.lock().clone()
    }

    /// The session's virtual-time trace recorder. The DES replay backend
    /// records its spans here so [`SimSession::finish_trace`] returns the
    /// run's trace regardless of backend.
    pub fn trace_recorder(&self) -> &TraceRecorder {
        &self.trace
    }

    /// A fresh session with the same models and configuration but reset
    /// state (clock at 0, empty trace, fresh warm-up and rank counters, no
    /// quiescence probe or fault injector, cancellation cleared, unlimited
    /// virtual budget). Used by phased fault replay: the post-failure
    /// phase re-runs the surviving work on a clean clock and is stitched
    /// onto the pre-failure trace afterwards.
    pub fn fork(&self) -> Arc<Self> {
        SimSession::with_shared(self.models.clone(), self.config.clone())
    }

    /// Request cooperative cancellation: engines polling
    /// [`SimSession::should_abort`] stop at their next retirement
    /// boundary. Idempotent; there is no un-cancel (fork for a fresh
    /// session). Safe to call from any thread while the run executes.
    pub fn request_cancel(&self) {
        self.cancel.store(true, Ordering::Relaxed);
    }

    /// Whether [`SimSession::request_cancel`] has been called.
    pub fn cancel_requested(&self) -> bool {
        self.cancel.load(Ordering::Relaxed)
    }

    /// Cap the run's virtual time: once the clock passes `seconds`,
    /// [`SimSession::should_abort`] fires. `f64::INFINITY` (the default)
    /// disables the cap. Panics on NaN or negative budgets.
    pub fn set_virtual_budget(&self, seconds: f64) {
        assert!(seconds >= 0.0, "virtual budget must be non-negative");
        self.virtual_budget_bits
            .store(seconds.to_bits(), Ordering::Relaxed);
    }

    /// Whether an engine driving this session should stop at the next
    /// clean boundary: cancellation was requested, or the virtual clock
    /// (`now`) has exceeded the budget. Engines pass their own clock
    /// rather than reading [`SimSession::virtual_now`] — the DES replay
    /// backend's clock never touches the TEQ.
    pub fn should_abort(&self, now: f64) -> bool {
        self.cancel.load(Ordering::Relaxed)
            || now > f64::from_bits(self.virtual_budget_bits.load(Ordering::Relaxed))
    }

    /// The session configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The kernel-model registry this session samples from.
    pub fn models(&self) -> &ModelRegistry {
        &self.models
    }

    /// Current virtual time (the predicted elapsed seconds so far).
    pub fn virtual_now(&self) -> f64 {
        self.teq.now()
    }

    /// Number of simulated kernels currently "executing".
    pub fn executing(&self) -> usize {
        self.teq.len()
    }

    /// Consume the virtual-time trace recorded so far (normalized, with
    /// `workers` lanes).
    pub fn finish_trace(&self, workers: usize) -> Trace {
        #[cfg(feature = "metrics")]
        {
            *self.final_occupancy.lock() = Some(self.trace.shard_occupancy());
        }
        self.trace.finish(workers)
    }

    /// Publish this session's observability data into `snap`: the TEQ
    /// tally (counts, latency histograms, wakeups under the configured
    /// [`WakeupMode`]'s name), the session's kernel / settle-spin counters
    /// (`sim.kernels.count`, `sim.quiesce.spins`), any engine run counters
    /// accumulated via [`SimSession::add_run_counter`], the trace
    /// recorder's total event count, and its per-shard occupancy (as
    /// captured at [`SimSession::finish_trace`] time, or live if the trace
    /// has not been finished). All of these are per-session: concurrent
    /// sessions publish disjoint totals with no process-global cross-talk.
    /// See DESIGN.md §5e for the metric catalog.
    #[cfg(feature = "metrics")]
    pub fn publish_metrics(&self, snap: &mut supersim_metrics::MetricsSnapshot) {
        self.teq.publish_metrics(snap);
        snap.push_counter("sim.kernels.count", self.kernels.load(Ordering::Relaxed));
        snap.push_counter(
            "sim.quiesce.spins",
            self.quiesce_spins.load(Ordering::Relaxed),
        );
        for (name, value) in self.run_counters.lock().iter() {
            snap.push_counter(name, *value);
        }
        snap.push_counter("trace.events.recorded", self.trace.total_recorded());
        let occupancy = self
            .final_occupancy
            .lock()
            .clone()
            .unwrap_or_else(|| self.trace.shard_occupancy());
        let occupied = occupancy.iter().filter(|&&n| n > 0).count();
        snap.push_gauge("trace.shards.occupied", occupied as i64);
        for (i, &n) in occupancy.iter().enumerate() {
            if n > 0 {
                snap.push_gauge(&format!("trace.shard.{i:02}.occupancy"), n as i64);
            }
        }
    }

    /// Accumulate an end-of-run counter under `name`, published by
    /// [`SimSession::publish_metrics`]. Engines driving this session (the
    /// DES replay backend) report their run/task/event totals here instead
    /// of to the process-global registry, so N concurrent sessions keep
    /// disjoint totals. A no-op without the `metrics` feature.
    pub fn add_run_counter(&self, _name: &str, _n: u64) {
        #[cfg(feature = "metrics")]
        {
            *self
                .run_counters
                .lock()
                .entry(_name.to_string())
                .or_insert(0) += _n;
        }
    }

    /// Count one simulated kernel against this session.
    #[inline]
    fn note_kernel(&self) {
        #[cfg(feature = "metrics")]
        self.kernels.fetch_add(1, Ordering::Relaxed);
    }

    /// Count settle-loop spins against this session.
    #[inline]
    fn note_quiesce_spins(&self, _spins: u64) {
        #[cfg(feature = "metrics")]
        self.quiesce_spins.fetch_add(_spins, Ordering::Relaxed);
    }

    /// The simulated-kernel protocol (paper §V-D). Call from inside a task
    /// body submitted to the runtime; `label` selects the duration model.
    ///
    /// The call blocks (in wall-clock time) until every simulated task with
    /// an earlier virtual completion has returned, then returns — from the
    /// scheduler's perspective the kernel "ran" for its virtual duration.
    pub fn run_kernel(&self, ctx: &TaskContext, label: &str) {
        let model = self.models.expect(label);
        let first = self
            .first_calls
            .lock()
            .insert((ctx.worker, label.to_string()));
        let mut rng = rand::rngs::StdRng::seed_from_u64(splitmix64(self.config.seed ^ ctx.task_id));
        // Consume one draw so task_id=0 with seed^0 doesn't alias the raw
        // seed stream used elsewhere.
        let _: u64 = rng.random();
        let speed = self.config.speed_of(ctx.worker);
        assert!(speed > 0.0, "worker speed must be positive");
        let duration = model.sample(&mut rng, first) / speed + self.config.overhead_per_task;
        self.simulate(ctx, label, duration);
    }

    /// Set the warm-up budget for the plan-based protocol: the first `n`
    /// submissions of each label (by submission rank, not worker arrival
    /// order) sample with the model's warm-up factor applied. Drivers set
    /// this to the worker count so a cold run warms one slot per worker —
    /// but unlike the legacy first-call-per-worker keying, the choice of
    /// *which* tasks are warm is fixed at submission time and therefore
    /// deterministic across schedules and placements.
    pub fn set_warmup_slots(&self, n: usize) {
        self.warmup_slots.store(n, Ordering::Relaxed);
    }

    /// Claim the next submission rank for `label`. Call from the (serial)
    /// master thread at task-build time; [`SimSession::planned_body`] does
    /// this for you.
    pub fn next_rank(&self, label: &str) -> u64 {
        let mut ranks = self.ranks.lock();
        let r = ranks.entry(label.to_string()).or_insert(0);
        let rank = *r;
        *r += 1;
        rank
    }

    /// The plan-based simulated-kernel protocol: like
    /// [`SimSession::run_kernel`], but the duration RNG is keyed by
    /// `(seed, label, rank)` — the task's submission rank within its label
    /// — instead of the runtime task id, and warm-up applies to the first
    /// [`SimSession::set_warmup_slots`] ranks of each label. Both keys are
    /// fixed at submission time, so per-task durations are identical across
    /// worker counts, schedulers, and cluster placements (transfer tasks
    /// interleaved into the id space cannot shift them).
    pub fn run_kernel_ranked(&self, ctx: &TaskContext, label: &str, rank: u64) {
        let speed = self.config.speed_of(ctx.worker);
        assert!(speed > 0.0, "worker speed must be positive");
        let faults = self.faults.lock().clone();
        let plan = self.plan_ranked(label, rank, speed, faults.as_deref());
        if plan.is_transient() {
            let inj = faults
                .as_ref()
                .expect("transient plan requires an injector");
            let aborted = self.simulate_segments(ctx, label, &plan.segments, inj);
            inj.on_transient(label, plan.failures, aborted);
        } else {
            self.simulate(ctx, label, plan.segments[0].1);
        }
    }

    /// Draw the virtual timeline of the `rank`-th submission of `label`:
    /// the sampled duration (RNG keyed by `(seed, label, rank)`, warm-up
    /// applied to the first [`SimSession::set_warmup_slots`] ranks) plus
    /// any transient-failure segments the injector prescribes — `failures`
    /// aborted attempts, each consuming a fraction of a *freshly sampled*
    /// duration (retries re-draw from the same keyed stream — a retry is a
    /// new execution, not a replay), separated by capped exponential
    /// backoff in virtual time, then the final successful execution.
    ///
    /// Every sampling decision of the threaded protocol lives here, so the
    /// DES replay backend obtains bit-identical durations by calling this
    /// with the same arguments.
    pub fn plan_ranked(
        &self,
        label: &str,
        rank: u64,
        speed: f64,
        inj: Option<&dyn FaultInjector>,
    ) -> KernelPlan {
        let model = self.models.expect(label);
        let warm = (rank as usize) < self.warmup_slots.load(Ordering::Relaxed);
        let key = self.config.seed ^ label_hash(label) ^ rank.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let mut rng = rand::rngs::StdRng::seed_from_u64(splitmix64(key));
        let _: u64 = rng.random();
        let duration = model.sample(&mut rng, warm) / speed + self.config.overhead_per_task;
        if let Some(inj) = inj {
            if let Some(spec) = inj.transient(label, rank) {
                let frac = spec.fail_fraction.clamp(0.0, 1.0);
                let mut segs = Vec::with_capacity(2 * spec.failures as usize + 1);
                let mut attempt = duration;
                for i in 0..spec.failures {
                    segs.push((SegmentKind::Failed, attempt * frac));
                    let backoff =
                        (spec.backoff_base * (1u64 << i.min(62)) as f64).min(spec.backoff_cap);
                    segs.push((SegmentKind::Backoff, backoff.max(0.0)));
                    attempt = model.sample(&mut rng, warm) / speed + self.config.overhead_per_task;
                }
                segs.push((SegmentKind::Work, attempt));
                return KernelPlan {
                    segments: segs,
                    failures: spec.failures,
                    transient: true,
                };
            }
        }
        KernelPlan {
            segments: vec![(SegmentKind::Work, duration)],
            failures: 0,
            transient: false,
        }
    }

    /// Run a simulated task with an externally computed `duration` —
    /// no model lookup, no RNG, no speed scaling, no per-task overhead.
    /// Used for communication tasks whose duration comes from an
    /// interconnect model. Zero durations are valid: the task occupies its
    /// lane for a virtual instant without advancing the clock.
    pub fn run_fixed(&self, ctx: &TaskContext, label: &str, duration: f64) {
        self.simulate(ctx, label, duration);
    }

    /// Steps (1)–(5) of the protocol, shared by every entry point.
    fn simulate(&self, ctx: &TaskContext, label: &str, duration: f64) {
        self.note_kernel();
        // (1)+(2): read the clock for the start, insert the completion.
        // With an injector attached the duration is re-derived from the
        // start time *under the TEQ lock*, so start-dependent costs
        // (straggler windows, degraded links) are a pure function of the
        // virtual timeline.
        let faults = self.faults.lock().clone();
        let (ticket, start) = match &faults {
            None => self.teq.insert(duration),
            Some(inj) => self
                .teq
                .insert_with(|start| inj.perturb(ctx.worker, start, duration)),
        };
        if debug_enabled() {
            eprintln!(
                "[dbg] insert task={} w={} start={:.6} end={:.6}",
                ctx.task_id, ctx.worker, start, ticket.end
            );
        }
        // (3): the trace records virtual times.
        self.trace
            .record(ctx.worker, label, ctx.task_id, start, ticket.end);
        // The task is now visible to the simulation: scheduler bookkeeping
        // for this dispatch is done.
        ctx.mark_registered();
        self.settle_and_retire(ctx, ticket);
    }

    /// Steps (1)–(5) for a transiently failing task: one TEQ insertion
    /// covering the whole failed-attempt / backoff / re-execution timeline
    /// (computed segment by segment under the TEQ lock, stragglers applied
    /// to work but not to idle backoff), recorded as one trace span per
    /// segment under the same task id. Returns the aborted virtual seconds
    /// (the post-perturbation cost of the failed attempts).
    fn simulate_segments(
        &self,
        ctx: &TaskContext,
        label: &str,
        segs: &[(SegmentKind, f64)],
        inj: &Arc<dyn FaultInjector>,
    ) -> f64 {
        self.note_kernel();
        let mut bounds: Vec<(SegmentKind, f64, f64)> = Vec::with_capacity(segs.len());
        let (ticket, start) = self.teq.insert_with(|start| {
            let (b, total) = layout_segments(Some(inj.as_ref()), ctx.worker, start, segs);
            bounds = b;
            total
        });
        if debug_enabled() {
            eprintln!(
                "[dbg] insert task={} w={} start={:.6} end={:.6} segments={}",
                ctx.task_id,
                ctx.worker,
                start,
                ticket.end,
                segs.len()
            );
        }
        let aborted = record_segment_spans(&self.trace, ctx.worker, label, ctx.task_id, &bounds);
        ctx.mark_registered();
        self.settle_and_retire(ctx, ticket);
        aborted
    }

    /// Steps (4)+(5) of the protocol, shared by [`SimSession::simulate`]
    /// and [`SimSession::simulate_segments`].
    fn settle_and_retire(&self, ctx: &TaskContext, ticket: crate::teq::TeqTicket) {
        // (4): wait to be the next virtual completion, guarding against the
        // §V-E race before retiring. `wait_front` parks on this ticket's
        // own condvar (targeted wakeup): the retiring front wakes exactly
        // the next front's owner, so re-entering the loop after a failed
        // quiescence check costs one wakeup, not a broadcast herd. The
        // probe handle is resolved once — not per loop iteration — since
        // re-locking `self.quiesce` on every settle retry put an extra
        // mutex acquisition on the hot path.
        let probe = match self.config.mitigation {
            RaceMitigation::Quiesce => Some(
                self.quiesce
                    .lock()
                    .clone()
                    .expect("RaceMitigation::Quiesce requires attach_quiesce"),
            ),
            _ => None,
        };
        // Settle retries: every extra pass through this loop means a
        // quiescence (or re-front) check failed and the task went back to
        // waiting. Accumulated locally and flushed to the global counter
        // once per kernel, so the hot loop touches no shared state.
        let mut spins = 0u64;
        loop {
            self.teq.wait_front(ticket);
            match self.config.mitigation {
                RaceMitigation::None => break,
                RaceMitigation::SleepYield { .. } => {
                    self.config.mitigation.portable_delay();
                    if self.teq.is_front(ticket) {
                        break;
                    }
                    spins += 1;
                }
                RaceMitigation::Quiesce => {
                    // Every task already retired must have had its
                    // completion propagated, and the scheduler must have no
                    // in-flight dispatches. The retired count is re-read
                    // after the wait: if another task retired while this
                    // one was blocked (it lost the front in the meantime),
                    // the settle target is stale and the wait must be
                    // re-run against the new count — otherwise this task
                    // can slip out during the short window in which the
                    // newly retired task has left the queue but has not
                    // yet released its successors. The post-wait front and
                    // retired-count reads are fused into one TEQ lock
                    // acquisition.
                    let probe = probe.as_ref().expect("probe resolved above");
                    let (_, retired_before) = self.teq.front_and_retired(ticket);
                    probe.wait_settled(retired_before);
                    let (is_front, retired_now) = self.teq.front_and_retired(ticket);
                    if retired_now == retired_before && is_front {
                        break;
                    }
                    spins += 1;
                }
            }
        }
        self.note_quiesce_spins(spins);
        // (5): retire — advance the clock to this task's completion.
        if debug_enabled() {
            eprintln!("[dbg] retire task={} end={:.6}", ctx.task_id, ticket.end);
        }
        self.teq.retire(ticket);
        // Streaming mode: retirement is the only place the virtual clock
        // advances, so epoch flushes hang off it. One relaxed atomic
        // load when no sink is attached.
        self.trace.observe_clock(self.teq.now());
    }

    /// Convenience: build a task body closure for `label`.
    pub fn kernel_body(
        self: &Arc<Self>,
        label: impl Into<String>,
    ) -> impl FnOnce(&TaskContext) + Send + 'static {
        let session = self.clone();
        let label = label.into();
        move |ctx: &TaskContext| session.run_kernel(ctx, &label)
    }

    /// Build a task body for the plan-based protocol: claims the label's
    /// next submission rank *now* (call on the master thread, in
    /// submission order) and runs [`SimSession::run_kernel_ranked`] with it
    /// when the task executes.
    pub fn planned_body(
        self: &Arc<Self>,
        label: impl Into<String>,
    ) -> impl FnOnce(&TaskContext) + Send + 'static {
        let session = self.clone();
        let label = label.into();
        let rank = session.next_rank(&label);
        move |ctx: &TaskContext| session.run_kernel_ranked(ctx, &label, rank)
    }
}

/// Cached SUPERSIM_DEBUG environment check (hot paths consult this).
fn debug_enabled() -> bool {
    static FLAG: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *FLAG.get_or_init(|| std::env::var_os("SUPERSIM_DEBUG").is_some())
}

/// FNV-1a hash of a label, mixing the kernel class into the ranked RNG key.
fn label_hash(label: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in label.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// SplitMix64 — decorrelates seed^task_id into a well-mixed RNG seed.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::KernelModel;
    use supersim_dag::{Access, DataId};
    use supersim_dist::Dist;
    use supersim_runtime::{Runtime, RuntimeConfig, TaskDesc};
    use supersim_trace::TraceComparison;

    fn constant_models(labels: &[(&str, f64)]) -> ModelRegistry {
        let mut m = ModelRegistry::new();
        for &(l, d) in labels {
            m.insert(l, KernelModel::constant(d));
        }
        m
    }

    fn d(i: u64) -> DataId {
        DataId(i)
    }

    fn new_session(models: ModelRegistry, mitigation: RaceMitigation) -> Arc<SimSession> {
        SimSession::new(
            models,
            SimConfig {
                seed: 42,
                mitigation,
                ..SimConfig::default()
            },
        )
    }

    #[test]
    fn cancel_and_budget_drive_should_abort() {
        let s = new_session(constant_models(&[("k", 1.0)]), RaceMitigation::Quiesce);
        assert!(!s.cancel_requested());
        assert!(!s.should_abort(1e300), "default budget is unlimited");
        s.set_virtual_budget(10.0);
        assert!(!s.should_abort(10.0), "budget is inclusive");
        assert!(s.should_abort(10.0 + 1e-9));
        s.request_cancel();
        assert!(s.cancel_requested());
        assert!(s.should_abort(0.0), "cancel fires regardless of clock");
        // A fork starts clean.
        let f = s.fork();
        assert!(!f.cancel_requested());
        assert!(!f.should_abort(1e300));
    }

    #[test]
    fn chain_makespan_is_exact() {
        let session = new_session(constant_models(&[("k", 1.5)]), RaceMitigation::Quiesce);
        let rt = Runtime::new(RuntimeConfig::simple(2));
        session.attach_quiesce(rt.probe());
        for _ in 0..4 {
            let s = session.clone();
            rt.submit(TaskDesc::new(
                "k",
                vec![Access::read_write(d(0))],
                move |ctx| s.run_kernel(ctx, "k"),
            ));
        }
        rt.seal();
        rt.wait_all().unwrap();
        assert_eq!(session.virtual_now(), 6.0);
        let trace = session.finish_trace(2);
        assert_eq!(trace.len(), 4);
        assert!(trace.validate(1e-12).is_ok());
    }

    #[test]
    fn independent_tasks_fill_virtual_workers() {
        // 4 unit tasks on 2 workers: perfect packing = exactly 2 virtual
        // seconds (see DESIGN.md — FIFO dispatch, workers free at retire).
        let session = new_session(constant_models(&[("k", 1.0)]), RaceMitigation::Quiesce);
        let rt = Runtime::new(RuntimeConfig::simple(2));
        session.attach_quiesce(rt.probe());
        for i in 0..4u64 {
            let s = session.clone();
            rt.submit(TaskDesc::new("k", vec![Access::write(d(i))], move |ctx| {
                s.run_kernel(ctx, "k")
            }));
        }
        rt.seal();
        rt.wait_all().unwrap();
        assert_eq!(session.virtual_now(), 2.0);
    }

    #[test]
    fn more_virtual_workers_than_host_cores() {
        // 16 independent unit tasks on 16 workers: virtual makespan 1s even
        // on a single-core host — the central virtual-platform claim.
        let session = new_session(constant_models(&[("k", 1.0)]), RaceMitigation::Quiesce);
        let rt = Runtime::new(RuntimeConfig::simple(16));
        session.attach_quiesce(rt.probe());
        for i in 0..16u64 {
            let s = session.clone();
            rt.submit(TaskDesc::new("k", vec![Access::write(d(i))], move |ctx| {
                s.run_kernel(ctx, "k")
            }));
        }
        rt.seal();
        rt.wait_all().unwrap();
        assert_eq!(session.virtual_now(), 1.0);
        let trace = session.finish_trace(16);
        assert_eq!(trace.len(), 16);
        // Every task must start at virtual 0.
        assert!(trace.spans().iter().all(|e| e.start == 0.0));
    }

    #[test]
    fn diamond_respects_dependences_in_virtual_time() {
        // 0 -> {1, 2} -> 3 with distinct durations.
        let models = constant_models(&[("a", 1.0), ("b", 2.0), ("c", 3.0), ("e", 1.0)]);
        let session = new_session(models, RaceMitigation::Quiesce);
        let rt = Runtime::new(RuntimeConfig::simple(3));
        session.attach_quiesce(rt.probe());
        let s = session.clone();
        rt.submit(TaskDesc::new("a", vec![Access::write(d(0))], move |ctx| {
            s.run_kernel(ctx, "a")
        }));
        let s = session.clone();
        rt.submit(TaskDesc::new(
            "b",
            vec![Access::read(d(0)), Access::write(d(1))],
            move |ctx| s.run_kernel(ctx, "b"),
        ));
        let s = session.clone();
        rt.submit(TaskDesc::new(
            "c",
            vec![Access::read(d(0)), Access::write(d(2))],
            move |ctx| s.run_kernel(ctx, "c"),
        ));
        let s = session.clone();
        rt.submit(TaskDesc::new(
            "e",
            vec![Access::read(d(1)), Access::read(d(2)), Access::write(d(3))],
            move |ctx| s.run_kernel(ctx, "e"),
        ));
        rt.seal();
        rt.wait_all().unwrap();
        // a: 0-1; b: 1-3; c: 1-4; e: 4-5.
        assert_eq!(session.virtual_now(), 5.0);
        let trace = session.finish_trace(3);
        let by_label = |l: &str| trace.spans().iter().find(|e| e.kernel == l).unwrap();
        assert_eq!((by_label("a").start, by_label("a").end), (0.0, 1.0));
        assert_eq!((by_label("b").start, by_label("b").end), (1.0, 3.0));
        assert_eq!((by_label("c").start, by_label("c").end), (1.0, 4.0));
        assert_eq!((by_label("e").start, by_label("e").end), (4.0, 5.0));
    }

    #[test]
    fn virtual_times_deterministic_across_runs() {
        // Random durations, same seed: virtual start/end of every task
        // must be bit-identical between runs, regardless of host timing.
        let run = || {
            let mut models = ModelRegistry::new();
            models.insert("k", KernelModel::new(Dist::log_normal(-2.0, 0.4).unwrap()));
            let session = SimSession::new(
                models,
                SimConfig {
                    seed: 7,
                    ..SimConfig::default()
                },
            );
            let rt = Runtime::new(RuntimeConfig::simple(3));
            session.attach_quiesce(rt.probe());
            for i in 0..30u64 {
                let s = session.clone();
                // Chain within each of 3 lanes: data id i % 3.
                rt.submit(TaskDesc::new(
                    "k",
                    vec![Access::read_write(d(i % 3))],
                    move |ctx| s.run_kernel(ctx, "k"),
                ));
            }
            rt.seal();
            rt.wait_all().unwrap();
            session.finish_trace(3)
        };
        let t1 = run();
        let t2 = run();
        let cmp = TraceComparison::compare(&t1, &t2);
        assert_eq!(cmp.makespan_rel_error, 0.0);
        assert_eq!(cmp.matched_tasks, 30);
        assert_eq!(cmp.mean_start_shift, 0.0);
    }

    #[test]
    fn warmup_factor_inflates_first_call_per_worker() {
        let mut models = ModelRegistry::new();
        models.insert("k", KernelModel::with_warmup(Dist::constant(1.0), 3.0));
        let session = new_session(models, RaceMitigation::Quiesce);
        let rt = Runtime::new(RuntimeConfig::simple(1));
        session.attach_quiesce(rt.probe());
        for i in 0..3u64 {
            let s = session.clone();
            rt.submit(TaskDesc::new("k", vec![Access::write(d(i))], move |ctx| {
                s.run_kernel(ctx, "k")
            }));
        }
        rt.seal();
        rt.wait_all().unwrap();
        // One worker: first call 3s, then 1s each: 5s.
        assert_eq!(session.virtual_now(), 5.0);
    }

    /// The Fig. 5 scenario: two workers; A (1s) and B (2s) independent,
    /// C (0.5s) depends on A. Correct virtual trace: C starts at 1.0 and
    /// the makespan is 2.0 (B is the last to finish).
    fn fig5_run(mitigation: RaceMitigation) -> (f64, f64) {
        let models = constant_models(&[("a", 1.0), ("b", 2.0), ("c", 0.5)]);
        let session = new_session(models, mitigation);
        let rt = Runtime::new(RuntimeConfig::simple(2));
        session.attach_quiesce(rt.probe());
        let s = session.clone();
        rt.submit(TaskDesc::new("a", vec![Access::write(d(0))], move |ctx| {
            s.run_kernel(ctx, "a")
        }));
        let s = session.clone();
        rt.submit(TaskDesc::new("b", vec![Access::write(d(1))], move |ctx| {
            s.run_kernel(ctx, "b")
        }));
        let s = session.clone();
        rt.submit(TaskDesc::new("c", vec![Access::read(d(0))], move |ctx| {
            s.run_kernel(ctx, "c")
        }));
        rt.seal();
        rt.wait_all().unwrap();
        let trace = session.finish_trace(2);
        let c = trace.spans().iter().find(|e| e.kernel == "c").unwrap();
        (c.start, trace.makespan())
    }

    #[test]
    fn fig5_race_fixed_by_quiesce() {
        for _ in 0..10 {
            let (c_start, makespan) = fig5_run(RaceMitigation::Quiesce);
            assert_eq!(c_start, 1.0, "C must start when A completes");
            assert_eq!(makespan, 2.0);
        }
    }

    #[test]
    fn fig5_race_fixed_by_sleep_yield() {
        // A generous sleep makes the portable mitigation reliable here.
        let m = RaceMitigation::SleepYield {
            yields: 8,
            sleep_us: 5000,
        };
        for _ in 0..5 {
            let (c_start, makespan) = fig5_run(m);
            assert_eq!(c_start, 1.0, "C must start when A completes");
            assert_eq!(makespan, 2.0);
        }
    }

    #[test]
    fn fig5_race_manifests_without_mitigation() {
        // Without mitigation, B usually retires before C registers, so C
        // reads the advanced clock (start 2.0 instead of 1.0). The race is
        // timing-dependent; require it to appear at least once in 20 runs
        // (in practice it appears nearly every run).
        let mut raced = 0;
        for _ in 0..20 {
            let (c_start, makespan) = fig5_run(RaceMitigation::None);
            if c_start > 1.5 {
                raced += 1;
                assert!(makespan > 2.4, "raced run must show inflated makespan");
            }
        }
        assert!(
            raced > 0,
            "the race never manifested in 20 unmitigated runs"
        );
    }

    #[test]
    #[should_panic(expected = "requires attach_quiesce")]
    fn quiesce_without_probe_panics() {
        let session = new_session(constant_models(&[("k", 1.0)]), RaceMitigation::Quiesce);
        let rt = Runtime::new(RuntimeConfig::simple(1));
        // No attach_quiesce: the task body panics, the runtime records it.
        let s = session.clone();
        rt.submit(TaskDesc::new("k", vec![], move |ctx| {
            s.run_kernel(ctx, "k")
        }));
        let errs = rt.wait_all().unwrap_err();
        // Re-panic with the recorded message to satisfy should_panic.
        panic!("{}", errs[0]);
    }

    #[test]
    fn planned_warmup_is_rank_keyed_and_deterministic() {
        let run = |workers: usize| {
            let mut models = ModelRegistry::new();
            models.insert("k", KernelModel::with_warmup(Dist::constant(1.0), 3.0));
            let session = new_session(models, RaceMitigation::Quiesce);
            session.set_warmup_slots(1);
            let rt = Runtime::new(RuntimeConfig::simple(workers));
            session.attach_quiesce(rt.probe());
            for _ in 0..3u64 {
                rt.submit(TaskDesc::new(
                    "k",
                    vec![Access::read_write(d(0))],
                    session.planned_body("k"),
                ));
            }
            rt.seal();
            rt.wait_all().unwrap();
            session.virtual_now()
        };
        // A single chain: rank 0 is warm (3s), ranks 1-2 are 1s each.
        // The warm task is the *first submitted*, independent of which
        // worker happens to pop it — so the makespan is schedule-stable.
        assert_eq!(run(1), 5.0);
        assert_eq!(run(4), 5.0);
    }

    #[test]
    fn ranked_durations_independent_of_task_ids() {
        // Same label ranks must draw the same durations even when the
        // runtime task ids differ (e.g. transfer tasks interleaved).
        let run = |extra_tasks: u64| {
            let mut models = ModelRegistry::new();
            models.insert("k", KernelModel::new(Dist::log_normal(-2.0, 0.4).unwrap()));
            models.insert("pad", KernelModel::constant(0.0));
            let session = new_session(models, RaceMitigation::Quiesce);
            let rt = Runtime::new(RuntimeConfig::simple(2));
            session.attach_quiesce(rt.probe());
            for i in 0..extra_tasks {
                rt.submit(TaskDesc::new(
                    "pad",
                    vec![Access::write(d(100 + i))],
                    session.planned_body("pad"),
                ));
            }
            for i in 0..6u64 {
                rt.submit(TaskDesc::new(
                    "k",
                    vec![Access::read_write(d(i % 2))],
                    session.planned_body("k"),
                ));
            }
            rt.seal();
            rt.wait_all().unwrap();
            let trace = session.finish_trace(2);
            let mut durs: Vec<f64> = trace
                .spans()
                .iter()
                .filter(|e| e.kernel == "k")
                .map(|e| e.duration())
                .collect();
            durs.sort_by(f64::total_cmp);
            durs
        };
        assert_eq!(run(0), run(5), "padding tasks must not shift durations");
    }

    #[test]
    fn run_fixed_uses_exact_duration_no_overhead() {
        let session = SimSession::new(
            ModelRegistry::new(), // no models needed
            SimConfig {
                overhead_per_task: 0.5,
                worker_speeds: vec![0.25],
                ..SimConfig::default()
            },
        );
        let rt = Runtime::new(RuntimeConfig::simple(1));
        session.attach_quiesce(rt.probe());
        let s = session.clone();
        rt.submit(TaskDesc::new("xfer", vec![Access::write(d(0))], move |c| {
            s.run_fixed(c, "xfer", 2.0)
        }));
        let s = session.clone();
        rt.submit(TaskDesc::new("xfer", vec![Access::write(d(1))], move |c| {
            s.run_fixed(c, "xfer", 0.0)
        }));
        rt.seal();
        rt.wait_all().unwrap();
        // Neither overhead nor worker speed applies to fixed durations.
        assert_eq!(session.virtual_now(), 2.0);
        let trace = session.finish_trace(1);
        assert_eq!(trace.len(), 2);
    }

    #[test]
    fn splitmix_mixes() {
        // Adjacent inputs produce well-separated outputs.
        let a = splitmix64(1);
        let b = splitmix64(2);
        assert_ne!(a, b);
        assert!((a ^ b).count_ones() > 10);
    }
}

#[cfg(test)]
mod extension_tests {
    //! Tests of the future-work extensions: heterogeneous worker speeds
    //! and per-task overhead modeling.
    use super::*;
    use crate::model::KernelModel;
    use supersim_dag::{Access, DataId};
    use supersim_runtime::{Runtime, RuntimeConfig, TaskDesc};

    fn models(dur: f64) -> ModelRegistry {
        let mut m = ModelRegistry::new();
        m.insert("k", KernelModel::constant(dur));
        m
    }

    #[test]
    fn overhead_per_task_extends_durations() {
        let session = SimSession::new(
            models(1.0),
            SimConfig {
                overhead_per_task: 0.5,
                ..SimConfig::default()
            },
        );
        let rt = Runtime::new(RuntimeConfig::simple(1));
        session.attach_quiesce(rt.probe());
        for i in 0..4u64 {
            let s = session.clone();
            rt.submit(TaskDesc::new(
                "k",
                vec![Access::write(DataId(i))],
                move |c| s.run_kernel(c, "k"),
            ));
        }
        rt.seal();
        rt.wait_all().unwrap();
        // 4 tasks x (1.0 + 0.5) on one worker.
        assert_eq!(session.virtual_now(), 6.0);
    }

    #[test]
    fn heterogeneous_speeds_scale_durations() {
        // Worker 0 at speed 1, worker 1 at speed 4. A task on worker 1
        // takes a quarter of the time.
        let session = SimSession::new(
            models(2.0),
            SimConfig {
                worker_speeds: vec![1.0, 4.0],
                ..SimConfig::default()
            },
        );
        let rt = Runtime::new(RuntimeConfig::simple(2));
        session.attach_quiesce(rt.probe());
        for i in 0..2u64 {
            let s = session.clone();
            rt.submit(TaskDesc::new(
                "k",
                vec![Access::write(DataId(i))],
                move |c| s.run_kernel(c, "k"),
            ));
        }
        rt.seal();
        rt.wait_all().unwrap();
        let trace = session.finish_trace(2);
        let durations: Vec<f64> = trace.spans().iter().map(|e| e.duration()).collect();
        let mut sorted = durations.clone();
        sorted.sort_by(f64::total_cmp);
        assert_eq!(
            sorted,
            vec![0.5, 2.0],
            "one fast (2/4) and one slow (2/1) execution"
        );
    }

    #[test]
    fn unspecified_workers_default_to_unit_speed() {
        let cfg = SimConfig {
            worker_speeds: vec![2.0],
            ..SimConfig::default()
        };
        assert_eq!(cfg.speed_of(0), 2.0);
        assert_eq!(cfg.speed_of(5), 1.0);
    }

    #[test]
    fn gpu_like_platform_prefers_parallel_finish() {
        // 8 independent tasks, 1 "GPU" (10x) + 1 CPU: the makespan is far
        // below the homogeneous 2-worker packing.
        let hetero = SimConfig {
            worker_speeds: vec![1.0, 10.0],
            ..SimConfig::default()
        };
        let session = SimSession::new(models(1.0), hetero);
        let rt = Runtime::new(RuntimeConfig::simple(2));
        session.attach_quiesce(rt.probe());
        for i in 0..8u64 {
            let s = session.clone();
            rt.submit(TaskDesc::new(
                "k",
                vec![Access::write(DataId(i))],
                move |c| s.run_kernel(c, "k"),
            ));
        }
        rt.seal();
        rt.wait_all().unwrap();
        // Homogeneous 2 workers would need 4.0 virtual seconds.
        assert!(
            session.virtual_now() < 4.0,
            "makespan {}",
            session.virtual_now()
        );
    }
}

#[cfg(all(test, feature = "metrics"))]
mod isolation_tests {
    use super::*;
    use crate::model::KernelModel;
    use supersim_dag::{Access, DataId};
    use supersim_runtime::{Runtime, RuntimeConfig, TaskDesc};

    fn run_chain(session: &Arc<SimSession>, tasks: u64) {
        let rt = Runtime::new(RuntimeConfig::simple(2));
        session.attach_quiesce(rt.probe());
        for _ in 0..tasks {
            let s = session.clone();
            rt.submit(TaskDesc::new(
                "k",
                vec![Access::read_write(DataId(0))],
                move |ctx| s.run_kernel(ctx, "k"),
            ));
        }
        rt.seal();
        rt.wait_all().unwrap();
    }

    /// Concurrent sessions publish *exact, disjoint* kernel counts — the
    /// property a process-global counter cannot provide. This is the
    /// session-isolation invariant the sweep orchestrator rests on
    /// (DESIGN.md §10).
    #[test]
    fn concurrent_sessions_do_not_cross_talk() {
        let make = || {
            let mut m = ModelRegistry::new();
            m.insert("k", KernelModel::constant(1.0));
            SimSession::new(m, SimConfig::default())
        };
        let a = make();
        let b = make();
        std::thread::scope(|s| {
            s.spawn(|| run_chain(&a, 3));
            s.spawn(|| run_chain(&b, 5));
        });
        a.add_run_counter("des.replay.runs", 1);

        let mut snap_a = supersim_metrics::MetricsSnapshot::default();
        a.publish_metrics(&mut snap_a);
        let mut snap_b = supersim_metrics::MetricsSnapshot::default();
        b.publish_metrics(&mut snap_b);
        assert_eq!(snap_a.counter("sim.kernels.count"), Some(3));
        assert_eq!(snap_b.counter("sim.kernels.count"), Some(5));
        assert_eq!(snap_a.counter("des.replay.runs"), Some(1));
        assert_eq!(snap_b.counter("des.replay.runs"), None);
    }

    /// A shared registry is one allocation: sessions built over the same
    /// `Arc` observe the same models without cloning.
    #[test]
    fn with_shared_reuses_one_registry() {
        let mut m = ModelRegistry::new();
        m.insert("k", KernelModel::constant(2.0));
        let shared = Arc::new(m);
        let a = SimSession::with_shared(shared.clone(), SimConfig::default());
        let b = SimSession::with_shared(shared.clone(), SimConfig::default());
        assert!(std::ptr::eq(a.models(), b.models()));
        assert!(std::ptr::eq(a.models(), a.fork().models()));
    }
}
