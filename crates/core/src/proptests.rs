//! Property-based tests of the simulation core.

#![cfg(test)]

use crate::model::{KernelModel, ModelRegistry};
use crate::race::RaceMitigation;
use crate::session::{SimConfig, SimSession};
use crate::teq::TaskExecutionQueue;
use proptest::prelude::*;
use std::sync::Arc;
use supersim_dag::{Access, AccessMode, DataId};
use supersim_dist::Dist;
use supersim_runtime::{Runtime, RuntimeConfig, TaskDesc};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Serial TEQ usage: retirement order equals ascending (end, seq)
    /// order and the clock ends at the max end.
    #[test]
    fn teq_retires_in_end_order(durations in prop::collection::vec(0.0f64..10.0, 1..40)) {
        let q = TaskExecutionQueue::new();
        let mut tickets = Vec::new();
        for &d in &durations {
            tickets.push(q.insert(d).0);
        }
        let mut order: Vec<f64> = Vec::new();
        // Retire all: repeatedly find the front ticket.
        let mut remaining = tickets;
        while !remaining.is_empty() {
            let idx = (0..remaining.len())
                .find(|&i| q.is_front(remaining[i]))
                .expect("some ticket must be front");
            let t = remaining.swap_remove(idx);
            order.push(t.end);
            q.retire(t);
        }
        let mut sorted = order.clone();
        sorted.sort_by(f64::total_cmp);
        prop_assert_eq!(&order, &sorted);
        let max = durations.iter().copied().fold(0.0f64, f64::max);
        prop_assert!((q.now() - max).abs() < 1e-12);
    }

    /// A simulated random DAG yields the same makespan for any worker
    /// surplus: adding workers beyond the DAG's max width cannot change
    /// the predicted time.
    #[test]
    fn worker_surplus_is_neutral(seed in 0u64..200, width in 1usize..4) {
        let makespan = |workers: usize| {
            let mut models = ModelRegistry::new();
            models.insert("k", KernelModel::new(Dist::gamma(4.0, 0.05).unwrap()));
            let session = SimSession::new(
                models,
                SimConfig { seed, ..SimConfig::default() },
            );
            let rt = Runtime::new(RuntimeConfig::simple(workers));
            session.attach_quiesce(rt.probe());
            // `width` independent chains of 6 tasks.
            for i in 0..(width * 6) {
                let s = session.clone();
                let lane = (i % width) as u64;
                rt.submit(TaskDesc::new(
                    "k",
                    vec![Access::read_write(DataId(lane))],
                    move |ctx| s.run_kernel(ctx, "k"),
                ));
            }
            rt.seal();
            rt.wait_all().unwrap();
            session.virtual_now()
        };
        let at_width = makespan(width);
        let surplus = makespan(width + 3);
        prop_assert!((at_width - surplus).abs() < 1e-12,
            "makespan changed with surplus workers: {at_width} vs {surplus}");
    }

    /// Simulated makespan is invariant to the mitigation choice between
    /// quiesce and generous sleep-yield (both are *correct*; only `None`
    /// may race).
    #[test]
    fn mitigations_agree(seed in 0u64..50) {
        let run = |mit: RaceMitigation| {
            let mut models = ModelRegistry::new();
            models.insert("k", KernelModel::new(Dist::log_normal(-3.0, 0.4).unwrap()));
            let session = SimSession::new(
                models,
                SimConfig { seed, mitigation: mit, ..SimConfig::default() },
            );
            let rt = Runtime::new(RuntimeConfig::simple(2));
            session.attach_quiesce(rt.probe());
            for i in 0..12u64 {
                let s = session.clone();
                rt.submit(TaskDesc::new(
                    "k",
                    vec![Access::read_write(DataId(i % 2))],
                    move |ctx| s.run_kernel(ctx, "k"),
                ));
            }
            rt.seal();
            rt.wait_all().unwrap();
            session.virtual_now()
        };
        let q = run(RaceMitigation::Quiesce);
        let sy = run(RaceMitigation::SleepYield { yields: 4, sleep_us: 2000 });
        // Quiesce is exact. Sleep-yield is the paper's *heuristic*
        // mitigation: if the host deschedules the submitting thread past
        // the sleep window, a retiring task can advance the clock before a
        // late-dispatched successor reads it. That failure mode can only
        // *delay* virtual starts, never accelerate them — so sleep-yield's
        // makespan dominates the exact one, and is bounded by the serial
        // sum (all 12 task durations back to back).
        prop_assert!(sy >= q - 1e-12, "sleep_yield {sy} finished before exact {q}");
        let serial: f64 = {
            let mut models = ModelRegistry::new();
            models.insert("k", KernelModel::new(Dist::log_normal(-3.0, 0.4).unwrap()));
            let session = SimSession::new(
                models,
                SimConfig { seed, ..SimConfig::default() },
            );
            let rt = Runtime::new(RuntimeConfig::simple(1));
            session.attach_quiesce(rt.probe());
            for _i in 0..12u64 {
                let s = session.clone();
                rt.submit(TaskDesc::new(
                    "k",
                    vec![Access::read_write(DataId(0))],
                    move |ctx| s.run_kernel(ctx, "k"),
                ));
            }
            rt.seal();
            rt.wait_all().unwrap();
                session.virtual_now()
        };
        prop_assert!(sy <= serial + 1e-9, "sleep_yield {sy} beyond serial bound {serial}");
    }

    /// Worker speeds scale a serial chain's makespan exactly inversely.
    #[test]
    fn speed_scales_chain(speed in 0.25f64..8.0, tasks in 1usize..10) {
        let run = |speeds: Vec<f64>| {
            let mut models = ModelRegistry::new();
            models.insert("k", KernelModel::constant(1.0));
            let session = SimSession::new(
                models,
                SimConfig { worker_speeds: speeds, ..SimConfig::default() },
            );
            let rt = Runtime::new(RuntimeConfig::simple(1));
            session.attach_quiesce(rt.probe());
            for _ in 0..tasks {
                let s = session.clone();
                rt.submit(TaskDesc::new("k", vec![Access::read_write(DataId(0))], move |c| {
                    s.run_kernel(c, "k")
                }));
            }
            rt.seal();
            rt.wait_all().unwrap();
            session.virtual_now()
        };
        let base = run(vec![]);
        let scaled = run(vec![speed]);
        prop_assert!((scaled - base / speed).abs() < 1e-9 * base,
            "chain at speed {speed}: {scaled} vs {}", base / speed);
    }
}

/// Regression: heavy concurrent load on the TEQ with threads retiring in
/// end order must never deadlock or misorder (stress version of the unit
/// test, kept out of proptest for its thread count).
#[test]
fn teq_concurrent_stress() {
    use parking_lot::Mutex;
    for round in 0..5u64 {
        let q = Arc::new(TaskExecutionQueue::new());
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        let mut tickets = Vec::new();
        for i in 0..24u64 {
            let d = ((i * 7919 + round * 104729) % 97) as f64 / 10.0;
            tickets.push(q.insert(d));
        }
        for (ticket, _) in tickets {
            let q = q.clone();
            let order = order.clone();
            handles.push(std::thread::spawn(move || {
                q.wait_front(ticket);
                order.lock().push(ticket.end);
                q.retire(ticket);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let order = order.lock();
        let mut sorted = order.clone();
        sorted.sort_by(f64::total_cmp);
        assert_eq!(*order, sorted, "round {round}: misordered retirement");
    }
}

/// AccessMode is irrelevant to the sim layer, but the wiring through the
/// runtime must preserve dependence semantics with mixed modes.
#[test]
fn mixed_modes_simulate_correctly() {
    let mut models = ModelRegistry::new();
    models.insert("w", KernelModel::constant(1.0));
    models.insert("r", KernelModel::constant(1.0));
    let session = SimSession::new(models, SimConfig::default());
    let rt = Runtime::new(RuntimeConfig::simple(4));
    session.attach_quiesce(rt.probe());
    // w -> 3 parallel readers -> w2.
    let s = session.clone();
    rt.submit(TaskDesc::new(
        "w",
        vec![Access::write(DataId(0))],
        move |c| s.run_kernel(c, "w"),
    ));
    for _ in 0..3 {
        let s = session.clone();
        rt.submit(TaskDesc::new(
            "r",
            vec![Access::read(DataId(0))],
            move |c| s.run_kernel(c, "r"),
        ));
    }
    let s = session.clone();
    rt.submit(TaskDesc::new(
        "w",
        vec![Access::write(DataId(0))],
        move |c| s.run_kernel(c, "w"),
    ));
    rt.seal();
    rt.wait_all().unwrap();
    // w (1s) + parallel readers (1s) + w2 (1s).
    assert_eq!(session.virtual_now(), 3.0);
    let _ = AccessMode::Read; // silence unused import lint paths
}
