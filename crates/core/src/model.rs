//! Kernel duration models.
//!
//! "Each task's running time is not fixed, but rather is determined by a
//! probabilistic distribution" (§V-B). A [`KernelModel`] wraps a fitted
//! distribution plus the first-call warm-up effect the paper observed with
//! MKL ("the first kernel on each thread will take significantly longer to
//! execute than the following kernels").

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use supersim_dist::{Dist, Distribution};

/// Duration model for one kernel class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelModel {
    /// The fitted duration distribution (seconds).
    pub dist: Dist,
    /// Multiplier applied to the first execution of this kernel class on
    /// each worker (models library initialization); 1.0 disables it.
    pub warmup_factor: f64,
}

impl KernelModel {
    /// Model with no warm-up effect.
    pub fn new(dist: Dist) -> Self {
        KernelModel {
            dist,
            warmup_factor: 1.0,
        }
    }

    /// Model with a warm-up multiplier for each worker's first call.
    pub fn with_warmup(dist: Dist, warmup_factor: f64) -> Self {
        KernelModel {
            dist,
            warmup_factor,
        }
    }

    /// Deterministic model (constant duration).
    pub fn constant(seconds: f64) -> Self {
        Self::new(Dist::constant(seconds))
    }

    /// Sample a duration; `first_call_on_worker` applies the warm-up factor.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, first_call_on_worker: bool) -> f64 {
        let base = self.dist.sample(rng).max(0.0);
        if first_call_on_worker {
            base * self.warmup_factor
        } else {
            base
        }
    }

    /// The model's mean duration (ignoring warm-up).
    pub fn mean(&self) -> f64 {
        self.dist.mean()
    }
}

/// Registry of duration models keyed by kernel-class label.
///
/// Serializable so a calibration run can persist it and later simulations
/// can reload it (the calibration "database").
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ModelRegistry {
    models: BTreeMap<String, KernelModel>,
    /// Fallback model used for labels with no entry (None = panic on miss).
    pub fallback: Option<KernelModel>,
}

impl ModelRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert or replace the model for a label.
    pub fn insert(&mut self, label: impl Into<String>, model: KernelModel) {
        self.models.insert(label.into(), model);
    }

    /// Look up a model.
    pub fn get(&self, label: &str) -> Option<&KernelModel> {
        self.models.get(label).or(self.fallback.as_ref())
    }

    /// Look up a model, panicking with a clear message if absent.
    pub fn expect(&self, label: &str) -> &KernelModel {
        self.get(label).unwrap_or_else(|| {
            panic!("no kernel model registered for '{label}' and no fallback set")
        })
    }

    /// Labels with explicit models.
    pub fn labels(&self) -> impl Iterator<Item = &str> {
        self.models.keys().map(String::as_str)
    }

    /// Number of explicit models.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// Whether the registry has no explicit models.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn constant_model_is_exact() {
        let m = KernelModel::constant(0.5);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        assert_eq!(m.sample(&mut rng, false), 0.5);
        assert_eq!(m.mean(), 0.5);
    }

    #[test]
    fn warmup_applies_only_when_flagged() {
        let m = KernelModel::with_warmup(Dist::constant(1.0), 3.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        assert_eq!(m.sample(&mut rng, true), 3.0);
        assert_eq!(m.sample(&mut rng, false), 1.0);
    }

    #[test]
    fn samples_never_negative() {
        // A normal with mass below zero must be clamped.
        let m = KernelModel::new(Dist::normal(0.001, 0.1).unwrap());
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            assert!(m.sample(&mut rng, false) >= 0.0);
        }
    }

    #[test]
    fn registry_lookup_and_fallback() {
        let mut r = ModelRegistry::new();
        r.insert("dgemm", KernelModel::constant(1.0));
        assert!(r.get("dgemm").is_some());
        assert!(r.get("nope").is_none());
        r.fallback = Some(KernelModel::constant(9.0));
        assert_eq!(r.get("nope").unwrap().mean(), 9.0);
        assert_eq!(r.expect("dgemm").mean(), 1.0);
        assert_eq!(r.len(), 1);
        assert_eq!(r.labels().collect::<Vec<_>>(), vec!["dgemm"]);
    }

    #[test]
    #[should_panic(expected = "no kernel model registered for 'mystery'")]
    fn expect_panics_without_model() {
        ModelRegistry::new().expect("mystery");
    }

    #[test]
    fn registry_serde_round_trip() {
        let mut r = ModelRegistry::new();
        r.insert("dgemm", KernelModel::new(Dist::gamma(4.0, 0.001).unwrap()));
        r.insert(
            "dpotrf",
            KernelModel::with_warmup(Dist::log_normal(-7.0, 0.2).unwrap(), 2.0),
        );
        let json = serde_json::to_string(&r).unwrap();
        let back: ModelRegistry = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }
}
