//! # supersim-core
//!
//! The paper's primary contribution: a **parallel simulation library for
//! superscalar schedulers** (§V). A real runtime keeps doing all dependence
//! tracking and scheduling with real worker threads, but each computational
//! kernel is replaced by a call into this library, which
//!
//! 1. reads the **virtual clock** to obtain the task's simulated start,
//! 2. samples the task duration from the kernel's fitted distribution,
//! 3. inserts itself into the **Task Execution Queue** (a priority queue
//!    ordered by virtual completion time),
//! 4. blocks until it is at the front of the queue — preserving the order
//!    of task completions in virtual time — and then
//! 5. advances the clock to its completion time and returns, at which
//!    point the scheduler believes the task "ran".
//!
//! The scheduling race of §V-E (a retiring task racing a just-released
//! successor's queue insertion) is closed by a pluggable
//! [`RaceMitigation`]: the QUARK-style quiescence query, the portable
//! sleep/yield fallback, or `None` to deliberately reproduce the bug.
//!
//! Modules:
//!
//! * [`teq`] — the Task Execution Queue with the embedded virtual clock;
//! * [`model`] — kernel duration models (distribution + warm-up effects);
//! * [`race`] — race-condition mitigation strategies;
//! * [`session`] — the simulation session tying clock, queue, models,
//!   trace, and runtime quiescence together.

pub mod model;
pub mod obs;
#[cfg(test)]
mod proptests;
pub mod race;
pub mod session;
pub mod teq;

pub use model::{KernelModel, ModelRegistry};
pub use race::RaceMitigation;
pub use session::{
    layout_segments, record_segment_spans, FaultInjector, KernelPlan, SegmentKind, SimConfig,
    SimSession, TransientSpec,
};
pub use teq::{TaskExecutionQueue, WakeupMode};
