//! Race-condition mitigation strategies (paper §V-E, Fig. 5).
//!
//! A task at the front of the Task Execution Queue may return *before* a
//! successor just released by an earlier completion has inserted itself —
//! the successor then reads an already-advanced clock and lands too late in
//! the simulated trace. The paper describes two fixes:
//!
//! * a QUARK-specific **quiescence query** ("determine if the scheduler has
//!   completed all bookkeeping related to scheduling"), and
//! * a portable **sleep/yield**: "a judicious use of the `sleep()`
//!   function ... a further enhancement of this is a call to the kernel
//!   `sched_yield()`".
//!
//! [`RaceMitigation::None`] reproduces the uncorrected behavior for the
//! Fig. 5 demonstration and the ablation bench.

use serde::{Deserialize, Serialize};

/// How the simulated kernel guards against the §V-E scheduling race before
/// retiring from the front of the Task Execution Queue.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RaceMitigation {
    /// No mitigation: retire immediately at the front. Reproduces the race.
    None,
    /// Portable mitigation: yield `yields` times, then sleep `sleep_us`
    /// microseconds, giving the scheduler thread(s) time to finish
    /// bookkeeping and newly-dispatched tasks time to register.
    SleepYield {
        /// Number of `sched_yield` calls before sleeping.
        yields: u32,
        /// Sleep duration in microseconds (0 = yields only).
        sleep_us: u64,
    },
    /// Exact mitigation via the runtime's quiescence query (QUARK-style).
    Quiesce,
}

impl RaceMitigation {
    /// The paper's portable default: a few yields plus a short sleep.
    pub fn sleep_yield_default() -> Self {
        RaceMitigation::SleepYield {
            yields: 4,
            sleep_us: 200,
        }
    }

    /// Execute the portable delay (no-op for the other variants — the
    /// quiesce wait needs the runtime handle and lives in the session).
    pub fn portable_delay(&self) {
        if let RaceMitigation::SleepYield { yields, sleep_us } = self {
            for _ in 0..*yields {
                std::thread::yield_now();
            }
            if *sleep_us > 0 {
                std::thread::sleep(std::time::Duration::from_micros(*sleep_us));
            }
        }
    }

    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            RaceMitigation::None => "none",
            RaceMitigation::SleepYield { .. } => "sleep_yield",
            RaceMitigation::Quiesce => "quiesce",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names() {
        assert_eq!(RaceMitigation::None.name(), "none");
        assert_eq!(RaceMitigation::sleep_yield_default().name(), "sleep_yield");
        assert_eq!(RaceMitigation::Quiesce.name(), "quiesce");
    }

    #[test]
    fn portable_delay_is_noop_for_non_sleep() {
        let t0 = std::time::Instant::now();
        RaceMitigation::None.portable_delay();
        RaceMitigation::Quiesce.portable_delay();
        assert!(t0.elapsed().as_millis() < 50);
    }

    #[test]
    fn portable_delay_sleeps() {
        let m = RaceMitigation::SleepYield {
            yields: 0,
            sleep_us: 2000,
        };
        let t0 = std::time::Instant::now();
        m.portable_delay();
        assert!(t0.elapsed().as_micros() >= 2000);
    }

    #[test]
    fn serde_round_trip() {
        for m in [
            RaceMitigation::None,
            RaceMitigation::Quiesce,
            RaceMitigation::SleepYield {
                yields: 2,
                sleep_us: 10,
            },
        ] {
            let json = serde_json::to_string(&m).unwrap();
            let back: RaceMitigation = serde_json::from_str(&json).unwrap();
            assert_eq!(m, back);
        }
    }
}
