//! Hot-path observability hooks for the TEQ and the session.
//!
//! Everything here comes in two shapes selected by the `metrics` feature:
//!
//! * **enabled** — [`TeqTally`] is a plain struct of counters and
//!   [`supersim_metrics::LocalHistogram`]s that lives *inside* the TEQ's
//!   `State` and is updated under the state mutex the queue already
//!   holds, so a tally bump costs an ordinary increment, not an atomic
//!   or an extra lock. Latency timing uses the thread-local 1-in-64
//!   sampler ([`supersim_metrics::sample`]): one stream for the
//!   nanosecond-scale insert/retire ops and an independent stream for
//!   parked waits, whose clock reads would otherwise land inside the
//!   contended TEQ critical section (measured at ~13% drain throughput
//!   on a 1-CPU host — far over the 2% budget — when unconditional).
//!   The first wait on each thread always samples, so even a short run
//!   records a non-zero wait histogram.
//! * **disabled** — [`TeqTally`] is a zero-sized struct whose methods
//!   are inline empty bodies and the stamp types are `()`; the
//!   instrumentation compiles out entirely. `size_of::<TeqTally>() == 0`
//!   is asserted by a test compiled only in the disabled build.
//!
//! The session's kernel / settle-spin counters live on `SimSession`
//! itself (per-session atomics published by `publish_metrics`), not
//! here: concurrent sessions must never share a process-global counter.
//!
//! The metric names emitted here are cataloged in DESIGN.md §5e.

/// 1-in-64 thread-local sampling for the nanosecond-scale TEQ ops.
#[cfg(feature = "metrics")]
pub const SAMPLE_MASK: u64 = 63;

#[cfg(feature = "metrics")]
mod imp {
    use supersim_metrics::{sample, LocalHistogram};

    /// A sampled start timestamp for insert/retire latency (taken before
    /// the state lock so the measurement covers lock acquisition).
    pub type Stamp = Option<std::time::Instant>;

    /// A sampled start timestamp for a parked wait (dedicated sampling
    /// stream; the first wait on each thread always samples).
    pub type WaitTimer = Option<std::time::Instant>;

    /// Sampled stamp: `Some` roughly 1 in 64 calls per thread.
    #[inline]
    pub fn stamp() -> Stamp {
        sample::stamp(super::SAMPLE_MASK)
    }

    /// Sampled stamp for a wait that is about to park.
    #[inline]
    pub fn wait_timer() -> WaitTimer {
        sample::wait_stamp(super::SAMPLE_MASK)
    }

    /// In-queue tally, updated under the TEQ state mutex.
    #[derive(Debug, Default)]
    pub struct TeqTally {
        /// Total inserts.
        pub inserts: u64,
        /// Total retires.
        pub retires: u64,
        /// `wait_front` calls satisfied without parking.
        pub waits_immediate: u64,
        /// `wait_front` calls that parked at least once.
        pub waits_parked: u64,
        /// Condvar notifies actually issued (one per `notify_one`, one
        /// per `notify_all` — the unit is "wake operations", not woken
        /// threads).
        pub wakeups: u64,
        /// Sampled insert latency (lock + heap push), nanoseconds.
        pub insert_ns: LocalHistogram,
        /// Sampled retire latency (lock + pop + wake), nanoseconds.
        pub retire_ns: LocalHistogram,
        /// Sampled parked-wait latency (park to front), nanoseconds.
        pub wait_parked_ns: LocalHistogram,
    }

    impl TeqTally {
        #[inline]
        pub fn on_insert(&mut self, stamp: Stamp) {
            self.inserts += 1;
            if let Some(ns) = sample::elapsed_ns(stamp) {
                self.insert_ns.record(ns);
            }
        }

        #[inline]
        pub fn on_retire(&mut self, stamp: Stamp) {
            self.retires += 1;
            if let Some(ns) = sample::elapsed_ns(stamp) {
                self.retire_ns.record(ns);
            }
        }

        #[inline]
        pub fn on_wait_immediate(&mut self) {
            self.waits_immediate += 1;
        }

        #[inline]
        pub fn on_wait_parked(&mut self, timer: WaitTimer) {
            self.waits_parked += 1;
            if let Some(ns) = sample::elapsed_ns(timer) {
                self.wait_parked_ns.record(ns);
            }
        }

        #[inline]
        pub fn on_wakeup(&mut self) {
            self.wakeups += 1;
        }
    }
}

#[cfg(not(feature = "metrics"))]
mod imp {
    /// Disabled: a stamp is nothing.
    pub type Stamp = ();

    /// Disabled: a wait timer is nothing.
    pub type WaitTimer = ();

    /// Disabled: no clock is read.
    #[inline(always)]
    pub fn stamp() -> Stamp {}

    /// Disabled: no clock is read.
    #[inline(always)]
    pub fn wait_timer() -> WaitTimer {}

    /// Disabled: a zero-sized tally whose updates compile out.
    #[derive(Debug, Default)]
    pub struct TeqTally;

    impl TeqTally {
        #[inline(always)]
        pub fn on_insert(&mut self, _stamp: Stamp) {}
        #[inline(always)]
        pub fn on_retire(&mut self, _stamp: Stamp) {}
        #[inline(always)]
        pub fn on_wait_immediate(&mut self) {}
        #[inline(always)]
        pub fn on_wait_parked(&mut self, _timer: WaitTimer) {}
        #[inline(always)]
        pub fn on_wakeup(&mut self) {}
    }
}

pub use imp::*;

#[cfg(all(test, not(feature = "metrics")))]
mod disabled_tests {
    use super::*;

    /// The whole point of the disabled build: the tally occupies no
    /// space in the TEQ state and its stamps are unit values, so the
    /// instrumented code paths are byte-identical to uninstrumented
    /// ones after inlining.
    #[test]
    fn disabled_tally_is_zero_sized() {
        assert_eq!(std::mem::size_of::<TeqTally>(), 0);
        assert_eq!(std::mem::size_of::<Stamp>(), 0);
        assert_eq!(std::mem::size_of::<WaitTimer>(), 0);
    }
}

#[cfg(all(test, feature = "metrics"))]
mod enabled_tests {
    use super::*;

    #[test]
    fn tally_counts_and_samples() {
        let mut t = TeqTally::default();
        t.on_insert(Some(std::time::Instant::now()));
        t.on_insert(None);
        t.on_retire(None);
        t.on_wait_immediate();
        t.on_wait_parked(Some(std::time::Instant::now()));
        t.on_wait_parked(None);
        t.on_wakeup();
        assert_eq!(t.inserts, 2);
        assert_eq!(t.retires, 1);
        assert_eq!(t.waits_immediate, 1);
        assert_eq!(t.waits_parked, 2, "counter is exact even when unsampled");
        assert_eq!(t.wakeups, 1);
        assert_eq!(t.insert_ns.count(), 1, "only the sampled insert lands");
        assert_eq!(t.retire_ns.count(), 0);
        assert_eq!(t.wait_parked_ns.count(), 1, "only the sampled wait lands");
    }
}
