//! Refactor guard for the extracted-policy invariant.
//!
//! The DES replay backend reproduces the threaded engine's schedule by
//! driving the *same* policy objects `make_policy` builds — which is only
//! sound while the threaded engine routes **every** dispatch decision
//! through that one object, with no second copy of the scheduling logic
//! inside the engine. This test wraps the Quark policy (`CentralFifo`) in
//! a counting shim via `Runtime::with_policy_and_trace` and checks that
//! each task of a dependent simulated workload is pushed into and popped
//! out of the shared object exactly once.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use supersim_core::{KernelModel, ModelRegistry, SimConfig, SimSession};
use supersim_dag::{Access, DataId};
use supersim_runtime::{
    make_policy, Policy, PolicyKind, ReadyMeta, Runtime, SchedulerKind, TaskDesc,
};

/// Wraps the real policy, counting every push/pop that reaches it.
struct Counting {
    inner: Box<dyn Policy>,
    pushes: Arc<AtomicU64>,
    pops: Arc<AtomicU64>,
}

impl Policy for Counting {
    fn push(&mut self, task: u64, meta: ReadyMeta) {
        self.pushes.fetch_add(1, Ordering::Relaxed);
        self.inner.push(task, meta);
    }

    fn pop(&mut self, worker: usize) -> Option<u64> {
        let t = self.inner.pop(worker);
        if t.is_some() {
            self.pops.fetch_add(1, Ordering::Relaxed);
        }
        t
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn stalled(&self, busy: &[bool]) -> bool {
        self.inner.stalled(busy)
    }

    fn broadcast_wakeups(&self) -> bool {
        self.inner.broadcast_wakeups()
    }
}

#[test]
fn quark_routes_every_dispatch_through_the_shared_policy() {
    let workers = 3;
    let pushes = Arc::new(AtomicU64::new(0));
    let pops = Arc::new(AtomicU64::new(0));
    let config = SchedulerKind::Quark.config(workers);
    assert_eq!(
        config.policy,
        PolicyKind::CentralFifo,
        "Quark profile must use the central FIFO the DES backend replays"
    );
    let policy = Box::new(Counting {
        inner: make_policy(config.policy, workers),
        pushes: pushes.clone(),
        pops: pops.clone(),
    });
    let rt = Runtime::with_policy_and_trace(config, policy, None);

    let mut models = ModelRegistry::new();
    models.insert("k", KernelModel::constant(0.001));
    let session = SimSession::new(models, SimConfig::default());
    session.attach_quiesce(rt.probe());

    // A mix of chains and independent tasks: 4 chains of 8 over distinct
    // tiles, so tasks become ready both at submission and at completion.
    let mut submitted = 0u64;
    for chain in 0..4u64 {
        for _ in 0..8 {
            let s = session.clone();
            rt.submit(TaskDesc::new(
                "k",
                vec![Access::read_write(DataId(chain))],
                move |ctx| s.run_kernel(ctx, "k"),
            ));
            submitted += 1;
        }
    }
    rt.seal();
    rt.wait_all().unwrap();

    assert_eq!(
        pushes.load(Ordering::Relaxed),
        submitted,
        "every ready task must be enqueued via the shared policy object"
    );
    assert_eq!(
        pops.load(Ordering::Relaxed),
        submitted,
        "every dispatch must be dequeued via the shared policy object"
    );
    assert_eq!(rt.stats().completed, submitted);
}
