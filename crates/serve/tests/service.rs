//! End-to-end lifecycle tests of the resident service: admission control
//! under saturation, wall-clock timeout cancellation, virtual-time
//! budgets, response-cache byte identity, streaming, and the metrics
//! endpoint. Every test boots a real daemon on an ephemeral port and
//! talks to it over TCP through the same client the CI smoke job uses.

use std::time::Duration;
use supersim_serve::{client_request, ServeConfig, Server};

fn boot(workers: usize, queue: usize, default_timeout_ms: u64) -> supersim_serve::ServerHandle {
    Server::bind(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        queue,
        default_timeout_ms,
        retry_after_secs: 7,
    })
    .expect("bind ephemeral port")
    .spawn()
}

fn post(
    handle: &supersim_serve::ServerHandle,
    path: &str,
    body: &str,
) -> supersim_serve::ClientResponse {
    client_request(handle.addr, "POST", path, body, Duration::from_secs(120)).expect("request")
}

fn get(handle: &supersim_serve::ServerHandle, path: &str) -> supersim_serve::ClientResponse {
    client_request(handle.addr, "GET", path, "", Duration::from_secs(30)).expect("request")
}

/// Past saturation (1 worker, 1 queue slot, 16 concurrent runs) every
/// request still gets an HTTP answer — 200 or 503 + `Retry-After`, never
/// a silent drop — and at least one of each appears.
#[test]
fn saturation_rejects_with_retry_after_never_drops() {
    let handle = boot(1, 1, 120_000);
    let addr = handle.addr;
    let clients: Vec<_> = (0..16)
        .map(|i| {
            std::thread::spawn(move || {
                // Distinct seeds defeat the response cache; 40x40 tiles is
                // heavy enough (~21k tasks) to hold the single worker.
                let body = format!("{{\"tiles\":40,\"seed\":{i},\"backend\":\"des\"}}");
                client_request(addr, "POST", "/run", &body, Duration::from_secs(120))
                    .expect("every request gets an answer")
            })
        })
        .collect();
    let responses: Vec<_> = clients.into_iter().map(|c| c.join().unwrap()).collect();
    let mut ok = 0;
    let mut rejected = 0;
    for r in &responses {
        match r.status {
            200 => ok += 1,
            503 => {
                rejected += 1;
                assert_eq!(
                    r.header("retry-after"),
                    Some("7"),
                    "503 carries the configured Retry-After"
                );
                assert!(r.body.contains("error"), "503 body explains: {}", r.body);
            }
            other => panic!("unexpected status {other}: {}", r.body),
        }
    }
    assert!(ok >= 1, "the admitted requests complete ({ok} ok)");
    assert!(
        rejected >= 1,
        "16 concurrent runs against capacity 2 must trip admission control"
    );
    let metrics = get(&handle, "/metrics").body;
    assert!(
        metrics.contains("serve.admission.rejected"),
        "rejections are counted: {metrics}"
    );
    handle.shutdown();
}

/// A run that exceeds its wall-clock timeout is cancelled mid-flight and
/// answered 504; the daemon stays healthy and counts the timeout.
#[test]
fn timeout_cancels_a_running_scenario() {
    let handle = boot(1, 4, 120_000);
    // 80x80 tiles (~171k tasks) takes well over 100ms to build and
    // replay; the 100ms deadline fires while the DES clock is advancing
    // and request_cancel stops it at the next retirement.
    let resp = post(
        &handle,
        "/run",
        "{\"tiles\":80,\"backend\":\"des\",\"timeout_ms\":100}",
    );
    assert_eq!(resp.status, 504, "{}", resp.body);
    assert!(resp.body.contains("timeout"), "{}", resp.body);
    // The daemon is still serving.
    let health = get(&handle, "/healthz");
    assert_eq!(health.status, 200);
    let metrics = get(&handle, "/metrics").body;
    assert!(metrics.contains("serve.timeouts"), "{metrics}");
    handle.shutdown();
}

/// A virtual-time budget bounds the simulated clock: exceeding it is a
/// 422, enforced exactly on the DES backend.
#[test]
fn virtual_budget_exceeded_is_422() {
    let handle = boot(2, 4, 120_000);
    let resp = post(
        &handle,
        "/run",
        "{\"tiles\":16,\"backend\":\"des\",\"virtual_budget\":1e-6}",
    );
    assert_eq!(resp.status, 422, "{}", resp.body);
    assert!(
        resp.body.contains("virtual budget exceeded"),
        "{}",
        resp.body
    );
    // The same scenario without the budget completes fine.
    let resp = post(&handle, "/run", "{\"tiles\":16,\"backend\":\"des\"}");
    assert_eq!(resp.status, 200, "{}", resp.body);
    handle.shutdown();
}

/// The scenario cache: a repeated deterministic (DES) request is served
/// from cache, byte-identical to the cold response.
#[test]
fn cache_hit_is_byte_identical_to_cold() {
    let handle = boot(2, 4, 120_000);
    // 32x32 tiles (~11k tasks) makes the cold run expensive enough that
    // the cached round trip must beat it by at least 5x.
    let body = "{\"tiles\":32,\"seed\":7,\"backend\":\"des\"}";
    let t0 = std::time::Instant::now();
    let cold = post(&handle, "/run", body);
    let cold_latency = t0.elapsed();
    assert_eq!(cold.status, 200, "{}", cold.body);
    assert_eq!(cold.header("x-cache"), Some("miss"));
    let t1 = std::time::Instant::now();
    let warm = post(&handle, "/run", body);
    let warm_latency = t1.elapsed();
    assert_eq!(warm.status, 200);
    assert_eq!(warm.header("x-cache"), Some("hit"));
    assert!(
        warm_latency.as_secs_f64() * 5.0 <= cold_latency.as_secs_f64(),
        "cached round trip ({warm_latency:?}) must be >= 5x faster than cold ({cold_latency:?})"
    );
    assert_eq!(
        cold.body, warm.body,
        "cache hit must be byte-identical to the cold response"
    );
    // A different seed is a different scenario: miss, different document.
    let other = post(
        &handle,
        "/run",
        "{\"tiles\":32,\"seed\":8,\"backend\":\"des\"}",
    );
    assert_eq!(other.header("x-cache"), Some("miss"));
    assert_ne!(cold.body, other.body);
    // The response parses and echoes the content hash.
    let doc: serde_json::Value = serde_json::from_str(&cold.body).unwrap();
    assert!(doc["scenario"]["content_hash"]
        .as_str()
        .unwrap()
        .starts_with("0x"));
    assert!(doc["result"]["trace_hash"]
        .as_str()
        .unwrap()
        .starts_with("0x"));
    let metrics = get(&handle, "/metrics").body;
    assert!(metrics.contains("serve.cache.hit"), "{metrics}");
    handle.shutdown();
}

/// `"stream": true` switches to chunked ndjson ending in a result event,
/// with the run's finalized spans streamed as `span` events along the way.
#[test]
fn streaming_run_ends_with_a_result_event() {
    let handle = boot(2, 4, 120_000);
    let resp = post(
        &handle,
        "/run",
        "{\"tiles\":48,\"backend\":\"des\",\"stream\":true,\"stream_epoch\":0.5}",
    );
    assert_eq!(resp.status, 200, "{}", resp.body);
    let last = resp.body.lines().last().expect("at least one event");
    assert!(last.contains("\"event\":\"result\""), "{last}");
    let doc: serde_json::Value = serde_json::from_str(last).unwrap();
    assert_eq!(doc["data"]["scenario"]["algorithm"], "cholesky");
    // Every task of the run arrives as a span event before the result.
    let spans = resp
        .body
        .lines()
        .filter(|l| l.contains("\"event\":\"span\""))
        .count();
    let tasks = doc["data"]["result"]["tasks"].as_u64().unwrap_or(0);
    assert!(
        spans as u64 >= tasks,
        "streamed {spans} spans for {tasks} tasks"
    );
    let span_line = resp
        .body
        .lines()
        .find(|l| l.contains("\"event\":\"span\""))
        .expect("at least one span event");
    let span: serde_json::Value = serde_json::from_str(span_line).unwrap();
    assert!(span["kernel"].as_str().is_some(), "{span_line}");
    assert!(span["end"].as_f64().unwrap() >= span["start"].as_f64().unwrap());
    // A bad epoch is rejected before any work happens.
    let bad = post(
        &handle,
        "/run",
        "{\"tiles\":4,\"stream\":true,\"stream_epoch\":0.0}",
    );
    assert_eq!(bad.status, 400, "{}", bad.body);
    handle.shutdown();
}

/// `/sweep` maps the request onto the sweep runner and returns the
/// deterministic merged report; malformed matrices are 400s.
#[test]
fn sweep_endpoint_runs_a_matrix() {
    let handle = boot(2, 4, 120_000);
    let resp = post(
        &handle,
        "/sweep",
        "{\"tile_counts\":[4],\"tile_sizes\":[16,32],\"seeds\":[1],\"jobs\":2}",
    );
    assert_eq!(resp.status, 200, "{}", resp.body);
    let doc: serde_json::Value = serde_json::from_str(&resp.body).unwrap();
    assert!(doc["cells_total"].as_u64().unwrap() >= 2, "{}", resp.body);
    let bad = post(&handle, "/sweep", "{\"tile_sizes\":[]}");
    assert_eq!(bad.status, 400, "{}", bad.body);
    handle.shutdown();
}

/// Protocol errors: bad JSON is 400, unknown paths are 404, unsupported
/// methods are 405 — all as JSON error documents.
#[test]
fn protocol_errors_map_to_statuses() {
    let handle = boot(1, 4, 120_000);
    let bad = post(&handle, "/run", "{not json");
    assert_eq!(bad.status, 400, "{}", bad.body);
    let invalid = post(&handle, "/run", "{\"workers\":0}");
    assert_eq!(invalid.status, 400, "{}", invalid.body);
    assert!(invalid.body.contains("workers"), "{}", invalid.body);
    let missing = get(&handle, "/nope");
    assert_eq!(missing.status, 404);
    let wrong = client_request(
        handle.addr,
        "DELETE",
        "/healthz",
        "",
        Duration::from_secs(30),
    )
    .unwrap();
    assert_eq!(wrong.status, 405);
    handle.shutdown();
}
