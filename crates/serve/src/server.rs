//! The daemon: accept loop, bounded worker pool with admission control,
//! request routing, per-request timeouts/budgets with cooperative
//! cancellation, progress streaming, and the response cache.
//!
//! ## Threading model
//!
//! One acceptor (the thread that called [`Server::run`]) plus a fixed
//! pool of `workers` request threads draining a bounded queue. Admission
//! control happens at accept time: when the queue already holds `queue`
//! waiting connections, the acceptor answers `503` with `Retry-After`
//! itself (on a short-lived thread, so slow clients cannot stall the
//! accept loop) — requests are *never* silently dropped. Each worker
//! executes its run on a separate child thread so the worker can watch
//! the wall clock, stream progress, and cancel the session when the
//! deadline passes.

use crate::api::{RunOutput, RunRequest, SweepRequest, Terminal, MAX_BODY_BYTES};
use crate::cache::{ModelCache, ResponseCache};
use crate::http::{read_request, ChunkedWriter, Request, Response};
use parking_lot::{Condvar, Mutex};
use serde::Serialize;
use std::collections::{BTreeMap, VecDeque};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};
use supersim_core::SimSession;
use supersim_metrics::{LocalHistogram, MetricsSnapshot};
use supersim_trace::sink::{ndjson_line, ChannelSink};
use supersim_trace::TraceEvent;

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:8077` (port 0 = ephemeral).
    pub addr: String,
    /// Request worker threads (0 = available host parallelism).
    pub workers: usize,
    /// Connections allowed to wait beyond the in-service ones before the
    /// acceptor starts answering 503 (0 = no waiting room).
    pub queue: usize,
    /// Default per-request wall-clock timeout in milliseconds (0 = none);
    /// a request's `timeout_ms` overrides it.
    pub default_timeout_ms: u64,
    /// `Retry-After` seconds advertised on 503 responses.
    pub retry_after_secs: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:8077".to_string(),
            workers: 0,
            queue: 4,
            default_timeout_ms: 30_000,
            retry_after_secs: 1,
        }
    }
}

/// Per-endpoint counters and latency histograms — the service's own
/// observability, always on (independent of the simulator's `metrics`
/// feature).
#[derive(Default)]
struct ServeMetrics {
    counters: Mutex<BTreeMap<String, u64>>,
    latencies: Mutex<BTreeMap<String, LocalHistogram>>,
}

impl ServeMetrics {
    fn bump(&self, name: &str) {
        *self.counters.lock().entry(name.to_string()).or_insert(0) += 1;
    }

    fn record_latency(&self, endpoint: &str, elapsed: Duration) {
        self.latencies
            .lock()
            .entry(format!("serve.latency.{endpoint}"))
            .or_default()
            .record(elapsed.as_nanos() as u64);
    }

    fn publish(&self, snap: &mut MetricsSnapshot) {
        for (name, value) in self.counters.lock().iter() {
            snap.push_counter(name, *value);
        }
        for (name, hist) in self.latencies.lock().iter() {
            snap.push_histogram(name, hist);
        }
    }
}

/// Shared daemon state.
struct State {
    config: ServeConfig,
    addr: SocketAddr,
    pending: Mutex<VecDeque<TcpStream>>,
    wake: Condvar,
    shutdown: AtomicBool,
    metrics: ServeMetrics,
    responses: ResponseCache,
    models: ModelCache,
    /// Aggregate of every served session's simulator instruments
    /// (TEQ tallies, kernel counts, replay totals), merged run by run.
    #[cfg(feature = "metrics")]
    sim_metrics: Mutex<MetricsSnapshot>,
}

/// A bound, not-yet-running daemon. [`Server::run`] blocks; tests and
/// benches use [`Server::spawn`] for a background instance on an
/// ephemeral port.
pub struct Server {
    listener: TcpListener,
    state: Arc<State>,
}

/// Handle to a background daemon started by [`Server::spawn`].
pub struct ServerHandle {
    /// The daemon's bound address.
    pub addr: SocketAddr,
    thread: std::thread::JoinHandle<()>,
}

impl ServerHandle {
    /// Politely stop the daemon (`POST /shutdown`) and join it.
    pub fn shutdown(self) {
        let _ = crate::http::client_request(
            self.addr,
            "POST",
            "/shutdown",
            "",
            Duration::from_secs(10),
        );
        let _ = self.thread.join();
    }
}

impl Server {
    /// Bind the listener (no requests served yet).
    pub fn bind(config: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        Ok(Server {
            listener,
            state: Arc::new(State {
                config,
                addr,
                pending: Mutex::new(VecDeque::new()),
                wake: Condvar::new(),
                shutdown: AtomicBool::new(false),
                metrics: ServeMetrics::default(),
                responses: ResponseCache::new(),
                models: ModelCache::new(),
                #[cfg(feature = "metrics")]
                sim_metrics: Mutex::new(MetricsSnapshot::default()),
            }),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// Serve until `POST /shutdown`. Blocks the calling thread (it
    /// becomes the acceptor).
    pub fn run(self) {
        let workers = if self.state.config.workers == 0 {
            std::thread::available_parallelism().map_or(2, |n| n.get())
        } else {
            self.state.config.workers
        };
        let mut pool = Vec::with_capacity(workers);
        for i in 0..workers {
            let state = self.state.clone();
            pool.push(
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&state))
                    .expect("spawn request worker"),
            );
        }

        for conn in self.listener.incoming() {
            if self.state.shutdown.load(Ordering::Relaxed) {
                break;
            }
            let Ok(stream) = conn else { continue };
            let mut pending = self.state.pending.lock();
            if pending.len() >= self.state.config.queue {
                drop(pending);
                // Saturated: answer 503 off-thread so a slow client can't
                // stall the accept loop.
                let state = self.state.clone();
                std::thread::spawn(move || reject_saturated(&state, stream));
                continue;
            }
            pending.push_back(stream);
            drop(pending);
            self.state.wake.notify_one();
        }

        self.state.shutdown.store(true, Ordering::Relaxed);
        self.state.wake.notify_all();
        for t in pool {
            let _ = t.join();
        }
    }

    /// Start the daemon on a background thread; returns once the
    /// listener is accepting.
    pub fn spawn(self) -> ServerHandle {
        let addr = self.local_addr();
        let thread = std::thread::Builder::new()
            .name("serve-acceptor".to_string())
            .spawn(move || self.run())
            .expect("spawn acceptor");
        ServerHandle { addr, thread }
    }
}

/// Answer a saturated-queue connection: 503 + `Retry-After`, never a
/// silent drop. Reads (and discards) the request first so well-behaved
/// clients see the response rather than a reset.
fn reject_saturated(state: &State, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    let _ = read_request(&mut stream, MAX_BODY_BYTES);
    state.metrics.bump("serve.admission.rejected");
    state.metrics.bump("serve.responses.503");
    let _ = Response::error(503, "server saturated; retry")
        .header("Retry-After", &state.config.retry_after_secs.to_string())
        .write_to(&mut stream);
}

fn worker_loop(state: &State) {
    loop {
        let stream = {
            let mut pending = state.pending.lock();
            loop {
                if let Some(s) = pending.pop_front() {
                    break s;
                }
                if state.shutdown.load(Ordering::Relaxed) {
                    return;
                }
                state.wake.wait(&mut pending);
            }
        };
        handle_connection(state, stream);
        if state.shutdown.load(Ordering::Relaxed) {
            return;
        }
    }
}

fn handle_connection(state: &State, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(30)));
    let req = match read_request(&mut stream, MAX_BODY_BYTES) {
        Ok(r) => r,
        Err(e) => {
            state.metrics.bump("serve.responses.400");
            let _ = Response::error(400, &format!("malformed request: {e}")).write_to(&mut stream);
            return;
        }
    };
    let endpoint = req.path.trim_start_matches('/').to_string();
    let endpoint = if endpoint.is_empty() {
        "root".to_string()
    } else {
        endpoint
    };
    state.metrics.bump(&format!("serve.requests.{endpoint}"));
    let started = Instant::now();
    let status = route(state, &req, &mut stream);
    state.metrics.bump(&format!("serve.responses.{status}"));
    state.metrics.record_latency(&endpoint, started.elapsed());
}

/// Dispatch one request; returns the response status for accounting.
fn route(state: &State, req: &Request, stream: &mut TcpStream) -> u16 {
    let send = |resp: Response, stream: &mut TcpStream| -> u16 {
        let status = resp.status;
        let _ = resp.write_to(stream);
        status
    };
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => {
            #[derive(Serialize)]
            struct Health {
                status: &'static str,
                queued: usize,
            }
            let body = serde_json::to_string(&Health {
                status: "ok",
                queued: state.pending.lock().len(),
            })
            .expect("health body serializes");
            send(Response::json(200, body), stream)
        }
        ("GET", "/metrics") => {
            let mut snap = MetricsSnapshot::default();
            state.metrics.publish(&mut snap);
            snap.push_gauge("serve.queue.depth", state.pending.lock().len() as i64);
            snap.push_gauge("serve.cache.responses", state.responses.len() as i64);
            snap.push_gauge("serve.cache.models", state.models.len() as i64);
            #[cfg(feature = "metrics")]
            snap.merge(&state.sim_metrics.lock());
            send(Response::json(200, snap.to_json()), stream)
        }
        ("POST", "/shutdown") => {
            state.shutdown.store(true, Ordering::Relaxed);
            state.wake.notify_all();
            // Unblock the acceptor's `incoming()` with one no-op connect.
            let _ = TcpStream::connect_timeout(&state.addr, Duration::from_secs(1));
            send(
                Response::json(200, "{\"status\":\"shutting down\"}"),
                stream,
            )
        }
        ("POST", "/run") => handle_run(state, req, stream),
        ("POST", "/sweep") => handle_sweep(state, req, stream),
        ("GET" | "POST", _) => send(Response::error(404, "no such endpoint"), stream),
        _ => send(Response::error(405, "method not allowed"), stream),
    }
}

/// One streamed progress event.
#[derive(Serialize)]
struct ProgressEvent {
    event: &'static str,
    virtual_seconds: f64,
    executing: usize,
}

/// A finalized span as a stream event: the recorder's ndjson line tagged
/// with an `event` discriminator so clients demultiplex one ndjson
/// stream of progress, span, and result events.
fn span_event_line(e: &TraceEvent) -> String {
    let body = ndjson_line(e);
    format!("{{\"event\":\"span\",{}\n", &body[1..])
}

/// Forward every epoch batch currently in the channel to the chunked
/// stream. Returns false when the client went away mid-write.
fn forward_spans(w: &mut ChunkedWriter<'_>, srx: &mpsc::Receiver<Vec<TraceEvent>>) -> bool {
    while let Ok(batch) = srx.try_recv() {
        for e in &batch {
            if w.chunk(span_event_line(e).as_bytes()).is_err() {
                return false;
            }
        }
    }
    true
}

/// Where a `/run` response goes: one JSON document, or an already-open
/// chunked ndjson stream (whose 200 header has gone out, so errors become
/// terminal `error` events instead of status codes).
enum Sink<'a> {
    Plain(&'a mut TcpStream),
    Stream(ChunkedWriter<'a>),
}

fn handle_run(state: &State, req: &Request, stream: &mut TcpStream) -> u16 {
    let parsed: RunRequest = match serde_json::from_str(&String::from_utf8_lossy(&req.body)) {
        Ok(r) => r,
        Err(e) => {
            let _ = Response::error(400, &format!("bad request: {e}")).write_to(stream);
            return 400;
        }
    };
    let prepared = match parsed.prepare(&state.models) {
        Ok(p) => p,
        Err(e) => {
            let _ = Response::error(400, &e).write_to(stream);
            return 400;
        }
    };

    // Cache check: only deterministic (DES, non-streamed) responses are
    // ever inserted, so a hit is byte-identical to the cold body.
    if prepared.cacheable {
        if let Some(body) = state.responses.get(prepared.content_hash) {
            state.metrics.bump("serve.cache.hit");
            let _ = Response::json(200, body.as_bytes().to_vec())
                .header("X-Cache", "hit")
                .write_to(stream);
            return 200;
        }
        state.metrics.bump("serve.cache.miss");
    }

    // Run on a child thread so this worker can watch the wall clock,
    // stream progress, and cancel the session past the deadline.
    let session = SimSession::with_shared(prepared.models.clone(), prepared.sim_config.clone());
    if let Some(b) = prepared.virtual_budget {
        session.set_virtual_budget(b);
    }
    // Streaming runs subscribe to the trace: a bounded channel sink
    // drains finalized epoch batches off the recorder, and the progress
    // loop forwards them as `span` events. Bounded and lossy (drops are
    // counted and reported) so a slow client can never stall the run.
    let span_rx = prepared.stream.then(|| {
        let (stx, srx) = mpsc::sync_channel::<Vec<TraceEvent>>(256);
        let sink = ChannelSink::new(stx);
        let dropped = sink.dropped();
        session
            .trace_recorder()
            .attach_sink(Box::new(sink), prepared.stream_epoch);
        (srx, dropped)
    });
    let scenario = prepared.scenario.clone().session(session.clone());
    let terminal = prepared.terminal;
    let (tx, rx) = mpsc::channel::<Result<RunOutput, String>>();
    let runner = std::thread::Builder::new()
        .name("serve-run".to_string())
        .spawn(move || {
            let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match terminal {
                Terminal::Sim => RunOutput::Sim(scenario.run_sim()),
                Terminal::Cluster => RunOutput::Cluster(scenario.run_cluster()),
                Terminal::Faults => RunOutput::Faults(scenario.run_faults()),
            }))
            .map_err(|p| panic_message(&p));
            let _ = tx.send(out);
        })
        .expect("spawn run thread");

    let timeout_ms = prepared
        .timeout_ms
        .unwrap_or(state.config.default_timeout_ms);
    let deadline = (timeout_ms > 0).then(|| Instant::now() + Duration::from_millis(timeout_ms));

    let mut sink = if prepared.stream {
        match ChunkedWriter::start(stream, 200, &[("X-Cache".to_string(), "miss".to_string())]) {
            Ok(w) => Sink::Stream(w),
            Err(_) => {
                // Client went away before the stream opened: cancel and
                // let the runner wind down.
                session.request_cancel();
                drop(rx);
                let _ = runner.join();
                return 200;
            }
        }
    } else {
        Sink::Plain(stream)
    };

    let mut timed_out = false;
    let outcome = loop {
        match rx.recv_timeout(Duration::from_millis(50)) {
            Ok(out) => break Some(out),
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                break Some(Err("run thread died without a result".to_string()))
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if let Sink::Stream(w) = &mut sink {
                    if let Some((srx, _)) = &span_rx {
                        if !forward_spans(w, srx) {
                            session.request_cancel();
                            timed_out = true;
                            break None;
                        }
                    }
                    let ev = ProgressEvent {
                        event: "progress",
                        virtual_seconds: session.virtual_now(),
                        executing: session.executing(),
                    };
                    let line = format!(
                        "{}\n",
                        serde_json::to_string(&ev).expect("progress serializes")
                    );
                    if w.chunk(line.as_bytes()).is_err() {
                        // Client went away: cancel the run and stop.
                        session.request_cancel();
                        timed_out = true;
                        break None;
                    }
                }
                if deadline.is_some_and(|d| Instant::now() >= d) {
                    session.request_cancel();
                    state.metrics.bump("serve.timeouts");
                    timed_out = true;
                    // Grace period: a DES run exits at its next
                    // retirement; the threaded engine is best-effort and
                    // may run on detached.
                    let _ = rx.recv_timeout(Duration::from_millis(500));
                    break None;
                }
            }
        }
    };
    if outcome.is_some() {
        let _ = runner.join();
    }

    // Fold the served session's simulator instruments into the daemon
    // aggregate (runs that timed out still simulated work worth counting).
    #[cfg(feature = "metrics")]
    {
        let mut local = MetricsSnapshot::default();
        session.publish_metrics(&mut local);
        state.sim_metrics.lock().merge(&local);
    }

    match outcome {
        None => finish_run(sink, 504, "wall-clock timeout; run cancelled"),
        Some(Err(msg)) => finish_run(sink, 500, &format!("run failed: {msg}")),
        Some(Ok(out)) => {
            if timed_out {
                return finish_run(sink, 504, "wall-clock timeout; run cancelled");
            }
            // The DES backend stops past the budget (so the makespan
            // exceeds it exactly when the budget fired); the threaded
            // engine runs to completion and is checked after the fact.
            if prepared
                .virtual_budget
                .is_some_and(|b| out.makespan() > b || session.cancel_requested())
            {
                return finish_run(
                    sink,
                    422,
                    &format!(
                        "virtual budget exceeded: clock {} > budget {}",
                        out.makespan(),
                        prepared.virtual_budget.unwrap_or(f64::INFINITY)
                    ),
                );
            }
            let doc = crate::api::RunResponse {
                scenario: prepared.echo.clone(),
                result: out.doc(),
            };
            let body = serde_json::to_string(&doc).expect("run response serializes");
            match sink {
                Sink::Stream(mut w) => {
                    // The runner has joined, so the recorder's final
                    // flush has already landed in the channel: drain the
                    // tail, report any drops, then emit the result.
                    if let Some((srx, dropped)) = &span_rx {
                        let _ = forward_spans(&mut w, srx);
                        let d = dropped.load(Ordering::Relaxed);
                        if d > 0 {
                            let line = format!("{{\"event\":\"spans_dropped\",\"count\":{d}}}\n");
                            let _ = w.chunk(line.as_bytes());
                        }
                    }
                    let line = format!("{{\"event\":\"result\",\"data\":{body}}}\n");
                    let _ = w.chunk(line.as_bytes());
                    let _ = w.finish();
                    200
                }
                Sink::Plain(stream) => {
                    if prepared.cacheable {
                        state
                            .responses
                            .insert(prepared.content_hash, Arc::new(body.clone()));
                    }
                    let _ = Response::json(200, body)
                        .header("X-Cache", "miss")
                        .write_to(stream);
                    200
                }
            }
        }
    }
}

/// Emit a terminal error for `/run`: an `error` event on an open stream
/// (the 200 header already went out), a plain status response otherwise.
fn finish_run(sink: Sink<'_>, status: u16, msg: &str) -> u16 {
    match sink {
        Sink::Stream(mut w) => {
            let escaped = serde_json::to_string(msg).expect("string serializes");
            let line = format!("{{\"event\":\"error\",\"status\":{status},\"error\":{escaped}}}\n");
            let _ = w.chunk(line.as_bytes());
            let _ = w.finish();
        }
        Sink::Plain(stream) => {
            let _ = Response::error(status, msg).write_to(stream);
        }
    }
    status
}

fn handle_sweep(state: &State, req: &Request, stream: &mut TcpStream) -> u16 {
    let parsed: SweepRequest = match serde_json::from_str(&String::from_utf8_lossy(&req.body)) {
        Ok(r) => r,
        Err(e) => {
            let _ = Response::error(400, &format!("bad request: {e}")).write_to(stream);
            return 400;
        }
    };
    let spec = match parsed.spec() {
        Ok(s) => s,
        Err(e) => {
            let _ = Response::error(400, &e).write_to(stream);
            return 400;
        }
    };
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    let jobs = parsed.jobs.unwrap_or(0).clamp(0, host).max(1).min(host);
    let outcome = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| spec.run(jobs))) {
        Ok(o) => o,
        Err(p) => {
            let _ = Response::error(500, &format!("sweep failed: {}", panic_message(&p)))
                .write_to(stream);
            return 500;
        }
    };
    #[cfg(feature = "metrics")]
    state.sim_metrics.lock().merge(&outcome.metrics);
    #[cfg(not(feature = "metrics"))]
    let _ = state;
    // The report is deterministic for a fixed spec (wall-clock data lives
    // outside it), so the body is byte-stable across jobs values too.
    let _ = Response::json(200, outcome.report.to_json()).write_to(stream);
    200
}

fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic".to_string()
    }
}
