//! The two memoization layers behind the service.
//!
//! * [`ModelCache`] — fitted/synthetic duration-model databases, keyed by
//!   their *content* (a calibration file is re-read per request but only
//!   re-parsed when its bytes change; synthetic registries are keyed by
//!   their parameters). Model construction dominates request setup, and a
//!   registry is immutable once built, so every concurrent session shares
//!   one `Arc` — the same sharing discipline sweeps use.
//! * [`ResponseCache`] — full serialized `/run` response documents, keyed
//!   by [`Scenario::content_hash`](supersim_workloads::Scenario::content_hash).
//!   Only deterministic (DES-backend, non-streamed) responses are
//!   inserted, so a hit is byte-identical to the cold response by
//!   construction.
//!
//! Mutable per-run state (sessions, compiled fault injectors — whose
//! [`supersim_faults::CompiledFaults`] carry live stats) is deliberately
//! **not** cached: those are rebuilt per request from the cached
//! immutable inputs.

use crate::api::{fnv1a, ModelSource};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use supersim_calibrate::CalibrationDb;
use supersim_core::{KernelModel, ModelRegistry};
use supersim_dist::Dist;
use supersim_workloads::Algorithm;

/// Cached, shared duration-model registries.
#[derive(Default)]
pub struct ModelCache {
    /// Key: a content descriptor (see [`ModelCache::resolve`]).
    map: Mutex<HashMap<String, Arc<ModelRegistry>>>,
    /// Calibration freshness: path → (raw-bytes digest, db fingerprint).
    files: Mutex<HashMap<String, (u64, u64)>>,
}

impl ModelCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registries currently cached.
    pub fn len(&self) -> usize {
        self.map.lock().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Resolve a model source to a shared registry, memoized by content:
    /// synthetic/constant sources key on `(algorithm, parameters)`;
    /// calibration sources re-read the file each call but skip the JSON
    /// parse and registry clone when the bytes are unchanged (keyed on
    /// [`CalibrationDb::fingerprint`], so an edited database is re-fitted
    /// rather than served stale).
    pub fn resolve(
        &self,
        source: &ModelSource,
        algorithm: Algorithm,
    ) -> Result<Arc<ModelRegistry>, String> {
        match source {
            ModelSource::Synthetic { mu, sigma, warmup } => {
                let mu = mu.unwrap_or(-6.0);
                let sigma = sigma.unwrap_or(0.3);
                let warmup = warmup.unwrap_or(1.0);
                if sigma < 0.0 || sigma.is_nan() {
                    return Err("sigma must be non-negative".to_string());
                }
                if warmup <= 0.0 || warmup.is_nan() {
                    return Err("warmup must be positive".to_string());
                }
                let key = format!("synthetic:{}:{mu:e}:{sigma:e}:{warmup:e}", algorithm.name());
                self.build_cached(&key, || {
                    let dist = Dist::log_normal(mu, sigma)
                        .map_err(|e| format!("bad synthetic model: {e}"))?;
                    let mut m = ModelRegistry::new();
                    for label in algorithm.labels() {
                        m.insert(*label, KernelModel::with_warmup(dist.clone(), warmup));
                    }
                    Ok(m)
                })
            }
            ModelSource::Constant { seconds } => {
                if *seconds < 0.0 || seconds.is_nan() {
                    return Err("seconds must be non-negative".to_string());
                }
                let key = format!("constant:{}:{seconds:e}", algorithm.name());
                self.build_cached(&key, || {
                    let mut m = ModelRegistry::new();
                    for label in algorithm.labels() {
                        m.insert(*label, KernelModel::constant(*seconds));
                    }
                    Ok(m)
                })
            }
            ModelSource::Calibration { path } => self.calibration(path),
        }
    }

    fn build_cached(
        &self,
        key: &str,
        build: impl FnOnce() -> Result<ModelRegistry, String>,
    ) -> Result<Arc<ModelRegistry>, String> {
        if let Some(m) = self.map.lock().get(key) {
            return Ok(m.clone());
        }
        let built = Arc::new(build()?);
        // Races insert twice at worst; last write wins and both values
        // are identical by construction.
        self.map.lock().insert(key.to_string(), built.clone());
        Ok(built)
    }

    /// Load (or reuse) a calibration database's fitted registry.
    fn calibration(&self, path: &str) -> Result<Arc<ModelRegistry>, String> {
        let bytes = std::fs::read(path).map_err(|e| format!("cannot read '{path}': {e}"))?;
        let digest = fnv1a(&bytes);
        if let Some((cached_digest, fp)) = self.files.lock().get(path) {
            if *cached_digest == digest {
                let key = format!("calibration:{fp:016x}");
                if let Some(m) = self.map.lock().get(&key) {
                    return Ok(m.clone());
                }
            }
        }
        let text = String::from_utf8(bytes).map_err(|_| format!("'{path}' is not UTF-8"))?;
        let db = CalibrationDb::from_json(&text).map_err(|e| format!("bad calibration: {e}"))?;
        let fp = db.fingerprint();
        let key = format!("calibration:{fp:016x}");
        let models = self
            .map
            .lock()
            .entry(key)
            .or_insert_with(|| db.shared_models())
            .clone();
        self.files.lock().insert(path.to_string(), (digest, fp));
        Ok(models)
    }
}

/// Cached serialized `/run` responses, keyed by scenario content hash.
#[derive(Default)]
pub struct ResponseCache {
    map: Mutex<HashMap<u64, Arc<String>>>,
}

impl ResponseCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cached responses.
    pub fn len(&self) -> usize {
        self.map.lock().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The cached body for `key`, if any.
    pub fn get(&self, key: u64) -> Option<Arc<String>> {
        self.map.lock().get(&key).cloned()
    }

    /// Memoize `body` under `key`.
    pub fn insert(&self, key: u64, body: Arc<String>) {
        self.map.lock().insert(key, body);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_registries_are_shared_by_parameters() {
        let cache = ModelCache::new();
        let src = ModelSource::Synthetic {
            mu: Some(-6.0),
            sigma: Some(0.3),
            warmup: None,
        };
        let a = cache.resolve(&src, Algorithm::Cholesky).unwrap();
        let b = cache.resolve(&src, Algorithm::Cholesky).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "same parameters share one registry");
        let c = cache.resolve(&src, Algorithm::Lu).unwrap();
        assert!(!Arc::ptr_eq(&a, &c), "different label sets");
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn constant_source_validates() {
        let cache = ModelCache::new();
        let err = cache
            .resolve(
                &ModelSource::Constant { seconds: -1.0 },
                Algorithm::Cholesky,
            )
            .unwrap_err();
        assert!(err.contains("non-negative"));
        let m = cache
            .resolve(&ModelSource::Constant { seconds: 0.01 }, Algorithm::Qr)
            .unwrap();
        assert_eq!(m.len(), Algorithm::Qr.labels().len());
    }

    #[test]
    fn calibration_files_reload_only_on_change() {
        use supersim_calibrate::{calibrate, FitOptions};
        use supersim_trace::{Trace, TraceEvent};
        let mut t = Trace::new(1);
        for i in 0..40u64 {
            t.push(TraceEvent {
                worker: 0,
                kernel: "dgemm".into(),
                task_id: i,
                start: i as f64,
                end: i as f64 + 0.01,
            });
        }
        let cal = calibrate(&t, FitOptions::default());
        let db = CalibrationDb::new("cache test", 64, 8, 1, cal);
        let dir = std::env::temp_dir().join(format!("supersim-serve-cache-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cal.json");
        db.save(&path).unwrap();
        let p = path.to_str().unwrap();

        let cache = ModelCache::new();
        let a = cache.calibration(p).unwrap();
        let b = cache.calibration(p).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "unchanged file reuses the registry");

        // Rewrite with different provenance: the fingerprint changes, so
        // the stale registry must not be served.
        let mut db2 = db.clone();
        db2.description = "edited".into();
        db2.save(&path).unwrap();
        let c = cache.calibration(p).unwrap();
        assert!(!Arc::ptr_eq(&a, &c), "edited file re-parses");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn response_cache_round_trips() {
        let cache = ResponseCache::new();
        assert!(cache.get(1).is_none());
        cache.insert(1, Arc::new("{\"x\":1}".to_string()));
        assert_eq!(cache.get(1).unwrap().as_str(), "{\"x\":1}");
        assert_eq!(cache.len(), 1);
    }
}
