//! A deliberately small HTTP/1.1 subset over `std::net::TcpStream`: enough
//! for JSON request/response bodies, chunked streaming responses, and the
//! tiny client the tests and benches use. Hand-rolled because the
//! workspace vendors every dependency (see `vendor/README.md`) and a full
//! HTTP stack is far more surface than the service needs.
//!
//! Supported: request line + headers + `Content-Length` bodies,
//! `Connection: close` semantics (one request per connection), fixed and
//! chunked (`Transfer-Encoding: chunked`) responses. Not supported:
//! keep-alive pipelining, trailers, compression, TLS.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Maximum accepted header block (request line + headers) in bytes.
const MAX_HEADER_BYTES: usize = 16 * 1024;

/// A parsed request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, ...).
    pub method: String,
    /// Path component, query string stripped.
    pub path: String,
    /// Headers, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty without `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of header `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Read and parse one request from `stream`, capping the body at
/// `max_body` bytes. Errors map to a 400 at the call site.
pub fn read_request(stream: &mut TcpStream, max_body: usize) -> io::Result<Request> {
    let mut reader = BufReader::new(stream);
    let mut head = Vec::new();
    // Read up to the blank line separating headers from the body.
    loop {
        let mut line = Vec::new();
        let n = read_crlf_line(&mut reader, &mut line)?;
        if n == 0 {
            return Err(bad("connection closed mid-request"));
        }
        if line.is_empty() {
            break;
        }
        head.extend_from_slice(&line);
        head.push(b'\n');
        if head.len() > MAX_HEADER_BYTES {
            return Err(bad("request header block too large"));
        }
    }
    let head = String::from_utf8(head).map_err(|_| bad("non-UTF-8 request head"))?;
    let mut lines = head.lines();
    let request_line = lines.next().ok_or_else(|| bad("empty request"))?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| bad("missing method"))?
        .to_ascii_uppercase();
    let target = parts.next().ok_or_else(|| bad("missing request target"))?;
    let path = target.split('?').next().unwrap_or(target).to_string();
    let mut headers = Vec::new();
    for line in lines {
        if let Some((k, v)) = line.split_once(':') {
            headers.push((k.trim().to_ascii_lowercase(), v.trim().to_string()));
        }
    }
    let content_length: usize = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| v.parse().map_err(|_| bad("bad Content-Length")))
        .transpose()?
        .unwrap_or(0);
    if content_length > max_body {
        return Err(bad("request body too large"));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Request {
        method,
        path,
        headers,
        body,
    })
}

/// Read one `\r\n`-terminated line (terminator stripped) into `out`.
/// Returns bytes consumed including the terminator (0 = EOF).
fn read_crlf_line<R: BufRead>(reader: &mut R, out: &mut Vec<u8>) -> io::Result<usize> {
    let n = reader.read_until(b'\n', out)?;
    while out.last() == Some(&b'\n') || out.last() == Some(&b'\r') {
        out.pop();
    }
    Ok(n)
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

/// Canonical reason phrases for the status codes the service emits.
pub fn status_text(code: u16) -> &'static str {
    match code {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// A fixed (non-streaming) response.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Extra headers beyond Content-Type/Content-Length/Connection.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// A JSON error body `{"error": msg}` with the given status.
    pub fn error(status: u16, msg: &str) -> Response {
        let escaped = serde_json::to_string(msg).expect("string serializes");
        Response::json(status, format!("{{\"error\":{escaped}}}"))
    }

    /// Attach an extra header.
    pub fn header(mut self, name: &str, value: &str) -> Response {
        self.headers.push((name.to_string(), value.to_string()));
        self
    }

    /// Serialize onto `stream` with `Connection: close`.
    pub fn write_to(&self, stream: &mut TcpStream) -> io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n",
            self.status,
            status_text(self.status),
            self.body.len()
        );
        for (k, v) in &self.headers {
            head.push_str(&format!("{k}: {v}\r\n"));
        }
        head.push_str("\r\n");
        stream.write_all(head.as_bytes())?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

/// A chunked (`Transfer-Encoding: chunked`) response in progress: the
/// status line goes out at construction, each [`ChunkedWriter::chunk`]
/// flushes immediately (streamed progress must not sit in a buffer), and
/// [`ChunkedWriter::finish`] terminates the stream.
pub struct ChunkedWriter<'a> {
    stream: &'a mut TcpStream,
}

impl<'a> ChunkedWriter<'a> {
    /// Start a chunked response with `status` and optional extra headers.
    pub fn start(
        stream: &'a mut TcpStream,
        status: u16,
        headers: &[(String, String)],
    ) -> io::Result<ChunkedWriter<'a>> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: application/x-ndjson\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n",
            status,
            status_text(status)
        );
        for (k, v) in headers {
            head.push_str(&format!("{k}: {v}\r\n"));
        }
        head.push_str("\r\n");
        stream.write_all(head.as_bytes())?;
        stream.flush()?;
        Ok(ChunkedWriter { stream })
    }

    /// Emit one chunk (a full ndjson line including its newline).
    pub fn chunk(&mut self, data: &[u8]) -> io::Result<()> {
        write!(self.stream, "{:x}\r\n", data.len())?;
        self.stream.write_all(data)?;
        self.stream.write_all(b"\r\n")?;
        self.stream.flush()
    }

    /// Terminate the chunked stream.
    pub fn finish(self) -> io::Result<()> {
        self.stream.write_all(b"0\r\n\r\n")?;
        self.stream.flush()
    }
}

/// A parsed client-side response (testing / benchmarking helper).
#[derive(Debug)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Headers, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Body, chunked transfer decoding already applied.
    pub body: String,
}

impl ClientResponse {
    /// First value of header `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Minimal blocking HTTP client: one request, `Connection: close`, fixed
/// or chunked response. The integration tests, the CI smoke job's
/// cross-checks, and `perf_baseline`'s `serve_cached_rps` probe all go
/// through this, so they measure the same byte stream a real client sees.
pub fn client_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
    timeout: Duration,
) -> io::Result<ClientResponse> {
    let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;

    let mut reader = BufReader::new(stream);
    let mut line = Vec::new();
    read_crlf_line(&mut reader, &mut line)?;
    let status_line = String::from_utf8(line).map_err(|_| bad("non-UTF-8 status line"))?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("malformed status line"))?;
    let mut headers = Vec::new();
    loop {
        let mut line = Vec::new();
        let n = read_crlf_line(&mut reader, &mut line)?;
        if n == 0 || line.is_empty() {
            break;
        }
        let text = String::from_utf8(line).map_err(|_| bad("non-UTF-8 header"))?;
        if let Some((k, v)) = text.split_once(':') {
            headers.push((k.trim().to_ascii_lowercase(), v.trim().to_string()));
        }
    }
    let chunked = headers
        .iter()
        .any(|(k, v)| k == "transfer-encoding" && v.eq_ignore_ascii_case("chunked"));
    let mut body = Vec::new();
    if chunked {
        loop {
            let mut size_line = Vec::new();
            read_crlf_line(&mut reader, &mut size_line)?;
            let text = String::from_utf8(size_line).map_err(|_| bad("non-UTF-8 chunk size"))?;
            let size = usize::from_str_radix(text.trim(), 16).map_err(|_| bad("bad chunk size"))?;
            if size == 0 {
                break;
            }
            let mut chunk = vec![0u8; size];
            reader.read_exact(&mut chunk)?;
            body.extend_from_slice(&chunk);
            let mut crlf = [0u8; 2];
            reader.read_exact(&mut crlf)?;
        }
    } else if let Some(len) = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .and_then(|(_, v)| v.parse::<usize>().ok())
    {
        body = vec![0u8; len];
        reader.read_exact(&mut body)?;
    } else {
        reader.read_to_end(&mut body)?;
    }
    Ok(ClientResponse {
        status,
        headers,
        body: String::from_utf8(body).map_err(|_| bad("non-UTF-8 body"))?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn request_round_trips_through_a_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let req = read_request(&mut stream, 1 << 20).unwrap();
            assert_eq!(req.method, "POST");
            assert_eq!(req.path, "/run");
            assert_eq!(req.body, b"{\"n\":64}");
            Response::json(200, "{\"ok\":true}")
                .header("X-Cache", "miss")
                .write_to(&mut stream)
                .unwrap();
        });
        let resp = client_request(
            addr,
            "POST",
            "/run?verbose=1",
            "{\"n\":64}",
            Duration::from_secs(5),
        )
        .unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, "{\"ok\":true}");
        assert_eq!(resp.header("x-cache"), Some("miss"));
        server.join().unwrap();
    }

    #[test]
    fn chunked_response_decodes() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let _ = read_request(&mut stream, 1 << 20).unwrap();
            let mut w = ChunkedWriter::start(&mut stream, 200, &[]).unwrap();
            w.chunk(b"{\"event\":\"progress\"}\n").unwrap();
            w.chunk(b"{\"event\":\"result\"}\n").unwrap();
            w.finish().unwrap();
        });
        let resp = client_request(addr, "GET", "/x", "", Duration::from_secs(5)).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(
            resp.body,
            "{\"event\":\"progress\"}\n{\"event\":\"result\"}\n"
        );
        server.join().unwrap();
    }

    #[test]
    fn oversized_body_rejected() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            assert!(read_request(&mut stream, 4).is_err());
        });
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\n0123456789")
            .unwrap();
        server.join().unwrap();
    }
}
