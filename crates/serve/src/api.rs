//! Typed request/response schema for the service, plus the mapping from
//! wire DTOs onto the existing [`Scenario`] / [`SweepSpec`] builders.
//!
//! Every field the builders would `assert!` on is validated here first and
//! returned as an `Err(String)` — the server turns those into 400s instead
//! of worker-thread panics. Response documents contain **only
//! virtual-time, seed-determined data** (no wall-clock timing, no lane
//! assignments beyond the canonical trace digest), so a cached response is
//! byte-identical to a cold one on the deterministic backends.

use crate::cache::ModelCache;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use supersim_cluster::{ClusterSpec, Hockney, Interconnect, SharedLink, ZeroCost};
use supersim_core::{ModelRegistry, SimConfig};
use supersim_faults::FaultPlan;
use supersim_runtime::SchedulerKind;
use supersim_workloads::sweep::{FaultPlanSpec, InterconnectSpec, SweepModels, AUTOTUNE_AXES};
use supersim_workloads::{
    Algorithm, Backend, ClusterRun, FaultOutcome, Scenario, SimRun, SweepBackend, SweepSpec,
};

/// Maximum accepted request body (JSON) in bytes.
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// FNV-1a 64 over a byte string — the digest used for trace hashes.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Where a request's kernel duration models come from.
#[derive(Debug, Clone, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum ModelSource {
    /// Load a fitted [`supersim_calibrate::CalibrationDb`] from disk
    /// (cached by content fingerprint — see [`ModelCache`]).
    Calibration {
        /// Path to the calibration JSON on the server host.
        path: String,
    },
    /// Synthetic log-normal models for every kernel label (the CLI's
    /// default recipe): `logN(mu, sigma)` with a first-`workers`-tasks
    /// warm-up multiplier.
    Synthetic {
        /// Log-space mean (default -6.0, ~2.5 ms kernels).
        mu: Option<f64>,
        /// Log-space sigma (default 0.3).
        sigma: Option<f64>,
        /// Warm-up multiplier (default 1.0 = off).
        warmup: Option<f64>,
    },
    /// Constant-duration models (exact, reproducible timing).
    Constant {
        /// Seconds per kernel.
        seconds: f64,
    },
}

/// A distributed-scenario request fragment.
#[derive(Debug, Clone, Deserialize)]
pub struct ClusterRequest {
    /// Node count (> 0).
    pub nodes: usize,
    /// Compute workers per node (> 0).
    pub workers_per_node: usize,
    /// NIC lanes per node (default: the interconnect model's preference).
    pub nic_lanes: Option<usize>,
    /// Interconnect model: `zero` | `hockney` | `sharedlink` (default
    /// `hockney`).
    pub interconnect: Option<String>,
    /// Per-message latency seconds (hockney/sharedlink; default 1e-5).
    pub latency: Option<f64>,
    /// Bandwidth bytes/s (hockney/sharedlink; default 1e10).
    pub bandwidth: Option<f64>,
}

/// A `/run` request: one scenario. Every field is optional; defaults
/// mirror the CLI (`cholesky`, 8x8 tiles of 64, `quark`, 4 workers, seed
/// 42). `backend` additionally accepts `auto` (the default): DES replay
/// wherever the profile replays deterministically, threaded otherwise.
#[derive(Debug, Clone, Deserialize)]
pub struct RunRequest {
    /// `cholesky` | `qr` | `lu`.
    pub algorithm: Option<String>,
    /// Matrix order (wins over `tiles`).
    pub n: Option<usize>,
    /// Tile-grid side (`n = tiles * tile_size`).
    pub tiles: Option<usize>,
    /// Tile size `nb`.
    pub tile_size: Option<usize>,
    /// `quark` | `starpu` | `ompss`.
    pub scheduler: Option<String>,
    /// Virtual worker count (per node for cluster scenarios).
    pub workers: Option<usize>,
    /// Duration-sampling seed.
    pub seed: Option<u64>,
    /// `auto` | `des` | `threaded`.
    pub backend: Option<String>,
    /// Kernel model source (default: synthetic log-normal).
    pub models: Option<ModelSource>,
    /// Distributed scenario.
    pub cluster: Option<ClusterRequest>,
    /// Full typed fault plan (wins over `fault_preset`).
    pub faults: Option<FaultPlan>,
    /// Canned plan: `clean` | `straggler` | `transient` | `kill`.
    pub fault_preset: Option<String>,
    /// Per-task scheduler overhead in seconds.
    pub overhead_per_task: Option<f64>,
    /// Virtual-time budget in seconds: the run is aborted (422) once the
    /// simulated clock exceeds it. Enforced exactly on the DES backend.
    pub virtual_budget: Option<f64>,
    /// Wall-clock timeout in milliseconds (overrides the server default;
    /// 0 disables).
    pub timeout_ms: Option<u64>,
    /// Stream ndjson progress events over a chunked response instead of
    /// one JSON document.
    pub stream: Option<bool>,
    /// Flush epoch, in virtual seconds, for streamed span events: spans
    /// are delivered once the simulated clock passes each epoch boundary
    /// (default 1.0; only meaningful with `stream: true`).
    pub stream_epoch: Option<f64>,
}

/// A `/sweep` request: a parameter matrix for [`SweepSpec`]. Axis fields
/// default to the sweep's own defaults when omitted; empty axes are
/// rejected (they would expand to nothing).
#[derive(Debug, Clone, Deserialize)]
pub struct SweepRequest {
    /// Algorithm axis.
    pub algorithms: Option<Vec<String>>,
    /// Explicit matrix orders (wins over `tile_counts`).
    pub orders: Option<Vec<usize>>,
    /// Tile-grid sides.
    pub tile_counts: Option<Vec<usize>>,
    /// Tile sizes.
    pub tile_sizes: Option<Vec<usize>>,
    /// Scheduler axis.
    pub schedulers: Option<Vec<String>>,
    /// Worker-count axis.
    pub worker_counts: Option<Vec<usize>>,
    /// Node-count axis (0 = single-node cell).
    pub node_counts: Option<Vec<usize>>,
    /// Fault-plan presets per cell.
    pub plans: Option<Vec<String>>,
    /// Seed axis.
    pub seeds: Option<Vec<u64>>,
    /// `auto` | `des` | `threaded`.
    pub backend: Option<String>,
    /// Interconnect for cluster cells: `zero` | `hockney` | `sharedlink`.
    pub interconnect: Option<String>,
    /// Interconnect latency seconds.
    pub latency: Option<f64>,
    /// Interconnect bandwidth bytes/s.
    pub bandwidth: Option<f64>,
    /// NIC lanes per node.
    pub nic_lanes: Option<usize>,
    /// Per-task overhead seconds.
    pub overhead_per_task: Option<f64>,
    /// Kernel models (synthetic/constant only; calibration databases are
    /// per-request work the sweep's model bank handles itself).
    pub models: Option<ModelSource>,
    /// Autotune axis name (see the sweep docs).
    pub autotune: Option<String>,
    /// Host threads (0 = all cores). Capped by the server.
    pub jobs: Option<usize>,
}

/// The scenario echo included in every `/run` response: what the server
/// actually ran, after defaulting — plus the content hash the response
/// cache keys on.
#[derive(Debug, Clone, Serialize)]
pub struct ScenarioEcho {
    /// Algorithm name.
    pub algorithm: String,
    /// Resolved matrix order.
    pub n: usize,
    /// Tile size.
    pub nb: usize,
    /// Scheduler profile name.
    pub scheduler: String,
    /// Worker count (per node for cluster scenarios).
    pub workers: usize,
    /// Seed.
    pub seed: u64,
    /// Resolved backend name.
    pub backend: String,
    /// Fault plan name (`preset:<name>`, `custom`, or `none`).
    pub faults: String,
    /// `nodes x workers_per_node : interconnect` for cluster scenarios.
    pub cluster: Option<String>,
    /// `Scenario::content_hash()` as `0x`-prefixed hex.
    pub content_hash: String,
}

/// The deterministic result section of a `/run` response.
#[derive(Debug, Clone, Serialize)]
pub struct ResultDoc {
    /// `sim` | `cluster` | `faults`.
    pub kind: String,
    /// Predicted makespan in virtual seconds (the faulted makespan for
    /// `faults` runs).
    pub predicted_seconds: f64,
    /// Predicted GFLOP/s (0 for `faults` runs — two runs, one rate is
    /// meaningless).
    pub gflops: f64,
    /// Tasks completed.
    pub tasks: u64,
    /// Trace events recorded.
    pub trace_events: usize,
    /// FNV-1a 64 digest of the canonical (task-id-sorted, lane-free)
    /// trace text, `0x`-prefixed — byte-for-byte comparable across runs
    /// on the deterministic profiles.
    pub trace_hash: String,
    /// Transfer tasks (cluster runs).
    pub transfers: Option<u64>,
    /// Bytes moved (cluster runs).
    pub transfer_bytes: Option<u64>,
    /// Clean-run makespan (faults runs).
    pub clean_makespan: Option<f64>,
    /// Faulted-run makespan (faults runs).
    pub faulted_makespan: Option<f64>,
    /// `faulted / clean` (faults runs).
    pub slowdown: Option<f64>,
    /// Failed transient attempts (faults runs).
    pub retries: Option<u64>,
}

/// A full `/run` response document.
#[derive(Debug, Clone, Serialize)]
pub struct RunResponse {
    /// What ran.
    pub scenario: ScenarioEcho,
    /// What it predicted.
    pub result: ResultDoc,
}

/// Which terminal a prepared run goes through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Terminal {
    /// [`Scenario::run_sim`].
    Sim,
    /// [`Scenario::run_cluster`].
    Cluster,
    /// [`Scenario::run_faults`] (permanent failures need phased replay).
    Faults,
}

/// A validated, model-resolved run ready for execution.
pub struct PreparedRun {
    /// The scenario builder (models attached, no session yet — the server
    /// attaches one per execution so it can cancel it).
    pub scenario: Scenario,
    /// Shared model registry (for session construction).
    pub models: Arc<ModelRegistry>,
    /// Session config (seed + overhead).
    pub sim_config: SimConfig,
    /// Terminal to invoke.
    pub terminal: Terminal,
    /// Response echo (content hash already computed).
    pub echo: ScenarioEcho,
    /// Stable content hash (cache key).
    pub content_hash: u64,
    /// Virtual-time budget, if any.
    pub virtual_budget: Option<f64>,
    /// Requested wall timeout override.
    pub timeout_ms: Option<u64>,
    /// Stream progress events.
    pub stream: bool,
    /// Virtual-seconds flush epoch for streamed span events.
    pub stream_epoch: f64,
    /// Response is safe to memoize: deterministic backend, not streamed.
    pub cacheable: bool,
}

fn parse_algorithm(s: Option<&str>) -> Result<Algorithm, String> {
    match s {
        None | Some("cholesky") => Ok(Algorithm::Cholesky),
        Some("qr") => Ok(Algorithm::Qr),
        Some("lu") => Ok(Algorithm::Lu),
        Some(other) => Err(format!("unknown algorithm '{other}' (cholesky|qr|lu)")),
    }
}

fn parse_scheduler(s: Option<&str>) -> Result<SchedulerKind, String> {
    match s {
        None | Some("quark") => Ok(SchedulerKind::Quark),
        Some("starpu") => Ok(SchedulerKind::StarPu),
        Some("ompss") => Ok(SchedulerKind::OmpSs),
        Some(other) => Err(format!("unknown scheduler '{other}' (quark|starpu|ompss)")),
    }
}

/// Resolve `auto`/`des`/`threaded` against what the profile supports.
fn parse_backend(s: Option<&str>, scheduler: SchedulerKind) -> Result<Backend, String> {
    match s {
        None | Some("auto") => Ok(if Backend::Des.supports(scheduler).is_ok() {
            Backend::Des
        } else {
            Backend::Threaded
        }),
        Some("threaded") => Ok(Backend::Threaded),
        Some("des") => {
            Backend::Des
                .supports(scheduler)
                .map_err(|e| e.to_string())?;
            Ok(Backend::Des)
        }
        Some(other) => Err(format!("unknown backend '{other}' (auto|des|threaded)")),
    }
}

fn positive(name: &str, v: usize) -> Result<usize, String> {
    if v == 0 {
        Err(format!("{name} must be positive"))
    } else {
        Ok(v)
    }
}

/// Reject NaN/negative (and for `strict`, zero) float parameters; NaN
/// fails every comparison, so the checks are phrased positively.
fn non_negative_f(name: &str, v: f64, strict: bool) -> Result<f64, String> {
    let ok = if strict { v > 0.0 } else { v >= 0.0 };
    if ok {
        Ok(v)
    } else if strict {
        Err(format!("{name} must be positive"))
    } else {
        Err(format!("{name} must be non-negative"))
    }
}

fn build_interconnect(
    name: Option<&str>,
    latency: Option<f64>,
    bandwidth: Option<f64>,
) -> Result<Arc<dyn Interconnect>, String> {
    let latency = non_negative_f("latency", latency.unwrap_or(1e-5), false)?;
    let bandwidth = non_negative_f("bandwidth", bandwidth.unwrap_or(1e10), true)?;
    match name {
        None | Some("hockney") => Ok(Arc::new(Hockney::new(latency, bandwidth))),
        Some("zero") => Ok(Arc::new(ZeroCost)),
        Some("sharedlink") => Ok(Arc::new(SharedLink::new(latency, bandwidth))),
        Some(other) => Err(format!(
            "unknown interconnect '{other}' (zero|hockney|sharedlink)"
        )),
    }
}

impl RunRequest {
    /// Validate the request, resolve its models through `cache`, and
    /// build the scenario. All builder invariants are checked here so a
    /// malformed request becomes a 400, never a worker panic.
    pub fn prepare(&self, cache: &ModelCache) -> Result<PreparedRun, String> {
        let algorithm = parse_algorithm(self.algorithm.as_deref())?;
        let scheduler = parse_scheduler(self.scheduler.as_deref())?;
        let backend = parse_backend(self.backend.as_deref(), scheduler)?;
        let workers = positive("workers", self.workers.unwrap_or(4))?;
        let seed = self.seed.unwrap_or(42);
        let tile_size = positive("tile_size", self.tile_size.unwrap_or(64))?;
        if let Some(n) = self.n {
            positive("n", n)?;
        }
        if let Some(t) = self.tiles {
            positive("tiles", t)?;
        }
        let overhead = non_negative_f(
            "overhead_per_task",
            self.overhead_per_task.unwrap_or(0.0),
            false,
        )?;
        if let Some(b) = self.virtual_budget {
            non_negative_f("virtual_budget", b, false)?;
        }

        let source = self.models.clone().unwrap_or(ModelSource::Synthetic {
            mu: None,
            sigma: None,
            warmup: None,
        });
        let models = cache.resolve(&source, algorithm)?;

        let (plan, faults_name) = match (&self.faults, self.fault_preset.as_deref()) {
            (Some(p), _) => (p.clone(), "custom".to_string()),
            (None, Some(name)) => {
                let spec = FaultPlanSpec::preset(name).ok_or_else(|| {
                    format!("unknown fault preset '{name}' (clean|straggler|transient|kill)")
                })?;
                (spec.plan, format!("preset:{name}"))
            }
            (None, None) => (FaultPlan::new(), "none".to_string()),
        };
        let terminal = if self.cluster.is_some() {
            if plan.permanent_failure().is_some() {
                Terminal::Faults
            } else {
                Terminal::Cluster
            }
        } else if plan.permanent_failure().is_some() {
            Terminal::Faults
        } else {
            Terminal::Sim
        };

        let sim_config = SimConfig {
            seed,
            overhead_per_task: overhead,
            ..SimConfig::default()
        };
        let mut scenario = Scenario::new(algorithm)
            .tile_size(tile_size)
            .scheduler(scheduler)
            .workers(workers)
            .seed(seed)
            .models_shared(models.clone())
            .config(sim_config.clone())
            .faults(plan)
            .backend(backend);
        if let Some(n) = self.n {
            scenario = scenario.n(n);
        } else if let Some(t) = self.tiles {
            scenario = scenario.tiles(t);
        }
        let mut cluster_echo = None;
        if let Some(c) = &self.cluster {
            if algorithm == Algorithm::Qr {
                return Err("distributed QR is unimplemented; drop the cluster".to_string());
            }
            positive("cluster.nodes", c.nodes)?;
            positive("cluster.workers_per_node", c.workers_per_node)?;
            let ic = build_interconnect(c.interconnect.as_deref(), c.latency, c.bandwidth)?;
            let nic = match c.nic_lanes {
                Some(l) => positive("cluster.nic_lanes", l)?,
                None => ic.default_nic_lanes(),
            };
            let spec = ClusterSpec::new(c.nodes, c.workers_per_node).with_nic_lanes(nic);
            cluster_echo = Some(format!(
                "{}x{}:{}",
                c.nodes,
                c.workers_per_node,
                ic.fingerprint()
            ));
            scenario = scenario.cluster(spec).interconnect(ic);
        }

        let content_hash = scenario.content_hash();
        let stream = self.stream.unwrap_or(false);
        let stream_epoch = self.stream_epoch.unwrap_or(1.0);
        if !stream_epoch.is_finite() || stream_epoch <= 0.0 {
            return Err(format!(
                "stream_epoch must be a positive finite number of virtual seconds, got {stream_epoch}"
            ));
        }
        let echo = ScenarioEcho {
            algorithm: algorithm.name().to_string(),
            n: scenario.matrix_order(),
            nb: tile_size,
            scheduler: scheduler.name().to_string(),
            workers,
            seed,
            backend: backend.name().to_string(),
            faults: faults_name,
            cluster: cluster_echo,
            content_hash: format!("{content_hash:#018x}"),
        };
        Ok(PreparedRun {
            scenario,
            models,
            sim_config,
            terminal,
            echo,
            content_hash,
            virtual_budget: self.virtual_budget,
            timeout_ms: self.timeout_ms,
            stream,
            stream_epoch,
            cacheable: backend == Backend::Des && !stream,
        })
    }
}

/// What a terminal produced, reduced to the deterministic fields.
pub enum RunOutput {
    /// From [`Scenario::run_sim`].
    Sim(SimRun),
    /// From [`Scenario::run_cluster`].
    Cluster(ClusterRun),
    /// From [`Scenario::run_faults`].
    Faults(FaultOutcome),
}

impl RunOutput {
    /// The run's final virtual clock (budget enforcement reads this).
    pub fn makespan(&self) -> f64 {
        match self {
            RunOutput::Sim(r) => r.predicted_seconds,
            RunOutput::Cluster(r) => r.predicted_seconds,
            RunOutput::Faults(o) => o.faulted_makespan,
        }
    }

    /// Build the deterministic result document.
    pub fn doc(&self) -> ResultDoc {
        let hash = |t: &supersim_trace::Trace| format!("{:#018x}", fnv1a(t.canonical().as_bytes()));
        match self {
            RunOutput::Sim(r) => ResultDoc {
                kind: "sim".to_string(),
                predicted_seconds: r.predicted_seconds,
                gflops: r.gflops,
                tasks: r.stats.completed,
                trace_events: r.trace.len(),
                trace_hash: hash(&r.trace),
                transfers: None,
                transfer_bytes: None,
                clean_makespan: None,
                faulted_makespan: None,
                slowdown: None,
                retries: None,
            },
            RunOutput::Cluster(r) => ResultDoc {
                kind: "cluster".to_string(),
                predicted_seconds: r.predicted_seconds,
                gflops: r.gflops,
                tasks: r.stats.completed,
                trace_events: r.trace.len(),
                trace_hash: hash(&r.trace),
                transfers: Some(r.transfers),
                transfer_bytes: Some(r.transfer_bytes),
                clean_makespan: None,
                faulted_makespan: None,
                slowdown: None,
                retries: None,
            },
            RunOutput::Faults(o) => ResultDoc {
                kind: "faults".to_string(),
                predicted_seconds: o.faulted_makespan,
                gflops: 0.0,
                tasks: o.trace.len() as u64,
                trace_events: o.trace.len(),
                trace_hash: hash(&o.trace),
                transfers: None,
                transfer_bytes: None,
                clean_makespan: Some(o.clean_makespan),
                faulted_makespan: Some(o.faulted_makespan),
                slowdown: Some(o.report.slowdown),
                retries: Some(o.report.retries),
            },
        }
    }
}

impl SweepRequest {
    /// Validate and map onto a [`SweepSpec`]. Every axis the sweep's
    /// `cells()` would assert on is checked here.
    pub fn spec(&self) -> Result<SweepSpec, String> {
        let mut spec = SweepSpec::default();
        if let Some(algs) = &self.algorithms {
            if algs.is_empty() {
                return Err("algorithms axis is empty".to_string());
            }
            spec.algorithms = algs
                .iter()
                .map(|s| parse_algorithm(Some(s)))
                .collect::<Result<_, _>>()?;
        }
        if let Some(orders) = &self.orders {
            for &n in orders {
                positive("orders entry", n)?;
            }
            spec.orders = orders.clone();
        }
        if let Some(tc) = &self.tile_counts {
            if tc.is_empty() && self.orders.as_ref().is_none_or(Vec::is_empty) {
                return Err("tile_counts axis is empty".to_string());
            }
            for &t in tc {
                positive("tile_counts entry", t)?;
            }
            spec.tile_counts = tc.clone();
        }
        if let Some(ts) = &self.tile_sizes {
            if ts.is_empty() {
                return Err("tile_sizes axis is empty".to_string());
            }
            for &t in ts {
                positive("tile_sizes entry", t)?;
            }
            spec.tile_sizes = ts.clone();
        }
        if let Some(scheds) = &self.schedulers {
            if scheds.is_empty() {
                return Err("schedulers axis is empty".to_string());
            }
            spec.schedulers = scheds
                .iter()
                .map(|s| parse_scheduler(Some(s)))
                .collect::<Result<_, _>>()?;
        }
        if let Some(w) = &self.worker_counts {
            if w.is_empty() {
                return Err("worker_counts axis is empty".to_string());
            }
            for &x in w {
                positive("worker_counts entry", x)?;
            }
            spec.worker_counts = w.clone();
        }
        if let Some(nodes) = &self.node_counts {
            if nodes.is_empty() {
                return Err("node_counts axis is empty".to_string());
            }
            spec.node_counts = nodes.clone();
        }
        if let Some(plans) = &self.plans {
            if plans.is_empty() {
                return Err("plans axis is empty".to_string());
            }
            spec.plans = plans
                .iter()
                .map(|name| {
                    FaultPlanSpec::preset(name).ok_or_else(|| {
                        format!("unknown fault preset '{name}' (clean|straggler|transient|kill)")
                    })
                })
                .collect::<Result<_, _>>()?;
        }
        if let Some(seeds) = &self.seeds {
            if seeds.is_empty() {
                return Err("seeds axis is empty".to_string());
            }
            spec.seeds = seeds.clone();
        }
        spec.backend = match self.backend.as_deref() {
            None | Some("auto") => SweepBackend::Auto,
            Some("des") => SweepBackend::Des,
            Some("threaded") => SweepBackend::Threaded,
            Some(other) => return Err(format!("unknown backend '{other}' (auto|des|threaded)")),
        };
        if self.interconnect.is_some() || self.latency.is_some() || self.bandwidth.is_some() {
            let latency = non_negative_f("latency", self.latency.unwrap_or(1e-5), false)?;
            let bandwidth = non_negative_f("bandwidth", self.bandwidth.unwrap_or(1e10), true)?;
            let name = self.interconnect.as_deref().unwrap_or("hockney");
            let ic = InterconnectSpec::parse(name, latency, bandwidth).ok_or_else(|| {
                format!("unknown interconnect '{name}' (zero|hockney|sharedlink)")
            })?;
            spec.interconnects = vec![ic];
        }
        if let Some(l) = self.nic_lanes {
            spec.nic_lanes = Some(positive("nic_lanes", l)?);
        }
        if let Some(o) = self.overhead_per_task {
            spec.overhead_per_task = non_negative_f("overhead_per_task", o, false)?;
        }
        match &self.models {
            None => {}
            Some(ModelSource::Synthetic { mu, sigma, warmup }) => {
                let sigma = non_negative_f("sigma", sigma.unwrap_or(0.3), false)?;
                spec.models = SweepModels::Synthetic {
                    mu: mu.unwrap_or(-6.0),
                    sigma,
                    warmup: warmup.unwrap_or(1.0),
                };
            }
            Some(ModelSource::Constant { .. }) => {
                return Err(
                    "constant models are not supported for sweeps; use synthetic with sigma 0"
                        .to_string(),
                );
            }
            Some(ModelSource::Calibration { .. }) => {
                return Err(
                    "calibration databases are not supported for sweeps; use /run per scenario"
                        .to_string(),
                );
            }
        }
        if let Some(axis) = &self.autotune {
            if !(AUTOTUNE_AXES.contains(&axis.as_str()) || axis == "tile_size") {
                return Err(format!(
                    "unknown autotune axis '{axis}' (one of {AUTOTUNE_AXES:?})"
                ));
            }
            spec.autotune = Some(axis.clone());
        }
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(json: &str) -> RunRequest {
        serde_json::from_str(json).expect("request parses")
    }

    #[test]
    fn defaults_mirror_the_cli() {
        let cache = ModelCache::new();
        let p = req("{}").prepare(&cache).unwrap();
        assert_eq!(p.echo.algorithm, "cholesky");
        assert_eq!(p.echo.n, 512);
        assert_eq!(p.echo.nb, 64);
        assert_eq!(p.echo.workers, 4);
        assert_eq!(p.echo.seed, 42);
        // Quark replays deterministically, so auto resolves to DES.
        assert_eq!(p.echo.backend, "des");
        assert!(p.cacheable);
        assert_eq!(p.terminal, Terminal::Sim);
    }

    #[test]
    fn auto_backend_falls_back_for_racy_profiles() {
        let cache = ModelCache::new();
        let p = req("{\"scheduler\":\"starpu\"}").prepare(&cache).unwrap();
        assert_eq!(p.echo.backend, "threaded");
        assert!(!p.cacheable, "threaded runs are never memoized");
        // But forcing DES on a racy profile is a client error.
        let err = req("{\"scheduler\":\"starpu\",\"backend\":\"des\"}")
            .prepare(&cache)
            .err()
            .unwrap();
        assert!(err.contains("host-thread order"), "{err}");
    }

    #[test]
    fn invalid_fields_are_errors_not_panics() {
        let cache = ModelCache::new();
        for (json, needle) in [
            ("{\"n\":0}", "n must be positive"),
            ("{\"workers\":0}", "workers must be positive"),
            ("{\"algorithm\":\"gemm\"}", "unknown algorithm"),
            ("{\"fault_preset\":\"meteor\"}", "unknown fault preset"),
            (
                "{\"cluster\":{\"nodes\":0,\"workers_per_node\":2}}",
                "cluster.nodes",
            ),
            (
                "{\"algorithm\":\"qr\",\"cluster\":{\"nodes\":2,\"workers_per_node\":2}}",
                "distributed QR",
            ),
            ("{\"virtual_budget\":-1.0}", "virtual_budget"),
        ] {
            let err = req(json).prepare(&cache).err().unwrap();
            assert!(err.contains(needle), "for {json}: {err}");
        }
    }

    #[test]
    fn kill_preset_routes_to_the_faults_terminal() {
        let cache = ModelCache::new();
        let p = req("{\"fault_preset\":\"kill\",\"workers\":2}")
            .prepare(&cache)
            .unwrap();
        assert_eq!(p.terminal, Terminal::Faults);
        assert_eq!(p.echo.faults, "preset:kill");
    }

    #[test]
    fn sweep_mapping_validates_axes() {
        let ok: SweepRequest =
            serde_json::from_str("{\"tile_sizes\":[32,64],\"seeds\":[1,2]}").unwrap();
        let spec = ok.spec().unwrap();
        assert_eq!(spec.tile_sizes, vec![32, 64]);
        assert_eq!(spec.seeds, vec![1, 2]);
        let bad: SweepRequest = serde_json::from_str("{\"tile_sizes\":[]}").unwrap();
        assert!(bad.spec().unwrap_err().contains("tile_sizes"));
        let bad: SweepRequest = serde_json::from_str("{\"autotune\":\"flux\"}").unwrap();
        assert!(bad.spec().unwrap_err().contains("autotune"));
    }

    #[test]
    fn content_hash_flows_into_the_echo() {
        let cache = ModelCache::new();
        let a = req("{\"seed\":1}").prepare(&cache).unwrap();
        let b = req("{\"seed\":1}").prepare(&cache).unwrap();
        let c = req("{\"seed\":2}").prepare(&cache).unwrap();
        assert_eq!(a.content_hash, b.content_hash);
        assert_ne!(a.content_hash, c.content_hash);
        assert_eq!(a.echo.content_hash, format!("{:#018x}", a.content_hash));
    }
}
