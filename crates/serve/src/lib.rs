//! Simulation-as-a-service: a resident `supersim serve` daemon.
//!
//! Spinning up a fresh process per scenario wastes the expensive,
//! reusable intermediates — fitted duration-model databases, shared model
//! registries — and gives interactive callers (notebooks, dashboards,
//! sweep frontends) no way to watch a run progress or bound its cost.
//! This crate keeps one process resident and multiplexes typed scenario
//! and sweep requests over HTTP/1.1 (hand-rolled on `std::net`; the
//! workspace vendors every dependency):
//!
//! * **Admission control** — a bounded worker pool; past saturation the
//!   acceptor answers `503` + `Retry-After` instead of queueing without
//!   bound or silently dropping. ([`server`])
//! * **Bounded cost** — per-request wall-clock timeouts (`504`) and
//!   virtual-time budgets (`422`) with cooperative cancellation through
//!   [`supersim_core::SimSession::request_cancel`]. ([`server`])
//! * **Content-addressed caching** — duration-model registries keyed by
//!   calibration-file fingerprint, and full `/run` responses keyed by
//!   [`Scenario::content_hash`](supersim_workloads::Scenario::content_hash);
//!   on the deterministic DES backend a cache hit is byte-identical to
//!   the cold response. ([`cache`])
//! * **Streaming** — `"stream": true` switches `/run` to a chunked
//!   ndjson response of progress events ending in the result. ([`http`])
//!
//! See DESIGN.md §11 for the request lifecycle, cache keying, and
//! backpressure rules.

pub mod api;
pub mod cache;
pub mod http;
pub mod server;

pub use api::{
    ModelSource, ResultDoc, RunRequest, RunResponse, ScenarioEcho, SweepRequest, MAX_BODY_BYTES,
};
pub use cache::{ModelCache, ResponseCache};
pub use http::{client_request, ClientResponse};
pub use server::{ServeConfig, Server, ServerHandle};
