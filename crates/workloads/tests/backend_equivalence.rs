//! Property test for the pure-DES replay backend: over random small DAGs,
//! seeds, window sizes and (lane-placement-independent) fault plans, the
//! single-threaded replay engine must reproduce the threaded engine's
//! canonical trace bit-for-bit. This is the statistical arm of the
//! hand-picked equivalence tests in `src/replay.rs` — shrinking gives a
//! minimal diverging DAG if the dispatch semantics ever drift apart.

use proptest::prelude::*;
use std::sync::Arc;
use supersim_core::{KernelModel, ModelRegistry, SimConfig, SimSession};
use supersim_des::{ReplayBody, ReplayEngine, ReplayTask};
use supersim_dist::Dist;
use supersim_faults::{CompiledFaults, FaultPlan, LaneMap};
use supersim_runtime::{Runtime, SchedulerKind, TaskDesc};
use supersim_workloads::synthetic::{layered, SynthTask};

/// The fault-plan shapes whose outcomes the repo's determinism contract
/// pins down independent of task-to-lane placement (see `faultsim`):
/// node-scope stragglers and rank-keyed transient faults. Per-lane
/// perturbations are racy even threaded-to-threaded, so they are out of
/// scope here just as they are out of scope for that contract.
#[derive(Debug, Clone)]
enum PlanShape {
    Clean,
    StragglerNode {
        from: f64,
        until: f64,
        factor: f64,
    },
    Transient {
        period: u64,
        failures: u32,
        frac: f64,
    },
}

impl PlanShape {
    fn build(&self) -> FaultPlan {
        match *self {
            PlanShape::Clean => FaultPlan::new(),
            PlanShape::StragglerNode {
                from,
                until,
                factor,
            } => FaultPlan::new().straggler_node(0, from, until, factor),
            PlanShape::Transient {
                period,
                failures,
                frac,
            } => FaultPlan::new().transient(period, failures, frac),
        }
    }
}

fn plan_strategy() -> impl Strategy<Value = PlanShape> {
    prop_oneof![
        Just(PlanShape::Clean),
        ((0.0f64..0.5), (0.1f64..1.0), (1.5f64..4.0)).prop_map(|(from, d, factor)| {
            PlanShape::StragglerNode {
                from,
                until: from + d,
                factor,
            }
        }),
        ((2u64..6), (1u32..3), (0.0f64..1.0)).prop_map(|(period, failures, frac)| {
            PlanShape::Transient {
                period,
                failures,
                frac,
            }
        }),
    ]
}

/// Lognormal models (one per layer label) so virtual end times almost
/// never tie — constant durations would let both backends agree by
/// accident even if the tie-break rules diverged.
fn models_for_labels(layers: usize) -> ModelRegistry {
    let mut models = ModelRegistry::new();
    for layer in 0..layers {
        models.insert(
            format!("l{layer}"),
            KernelModel::new(Dist::log_normal(-1.0 - 0.1 * layer as f64, 0.3).unwrap()),
        );
    }
    models
}

fn session_with_plan(
    layers: usize,
    seed: u64,
    workers: usize,
    shape: &PlanShape,
) -> Arc<SimSession> {
    let session = SimSession::new(
        models_for_labels(layers),
        SimConfig {
            seed,
            ..SimConfig::default()
        },
    );
    session.set_warmup_slots(workers);
    let plan = shape.build();
    if !plan.is_empty() {
        session.attach_faults(Arc::new(CompiledFaults::compile(
            &plan,
            &LaneMap::single_node(workers),
            0.0,
        )));
    }
    session
}

/// Canonical trace of the threaded engine running `tasks` on the Quark
/// profile (window overridden) with the plan-based simulated kernels.
fn threaded_trace(
    tasks: &[SynthTask],
    layers: usize,
    seed: u64,
    workers: usize,
    window: usize,
    shape: &PlanShape,
) -> String {
    let session = session_with_plan(layers, seed, workers, shape);
    let mut config = SchedulerKind::Quark.config(workers);
    config.window = window;
    let rt = Runtime::new(config);
    session.attach_quiesce(rt.probe());
    for task in tasks {
        rt.submit(TaskDesc::new(
            task.label.clone(),
            task.accesses.clone(),
            session.planned_body(task.label.clone()),
        ));
    }
    rt.seal();
    rt.wait_all().unwrap();
    session.finish_trace(workers).canonical()
}

/// Canonical trace of the DES replay engine on the identical stream.
fn des_trace(
    tasks: &[SynthTask],
    layers: usize,
    seed: u64,
    workers: usize,
    window: usize,
    shape: &PlanShape,
) -> String {
    let session = session_with_plan(layers, seed, workers, shape);
    let mut config = SchedulerKind::Quark.config(workers);
    config.window = window;
    let engine = ReplayEngine::new(&config, session.clone()).unwrap();
    let stream: Vec<ReplayTask> = tasks
        .iter()
        .map(|task| ReplayTask {
            label: task.label.clone(),
            accesses: task.accesses.clone(),
            priority: 0,
            pin: None,
            body: ReplayBody::Ranked {
                rank: session.next_rank(&task.label),
            },
        })
        .collect();
    let outcome = engine.run(stream);
    assert_eq!(outcome.completed, tasks.len() as u64);
    session.finish_trace(workers).canonical()
}

proptest! {
    // Each case spins up a real threaded runtime; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn des_replays_threaded_bit_for_bit(
        layers in 1usize..5,
        width in 1usize..6,
        fan_in in 0usize..3,
        dag_seed in any::<u64>(),
        sim_seed in any::<u64>(),
        workers in 1usize..5,
        window in prop_oneof![Just(1usize), Just(2), Just(4), Just(6), Just(usize::MAX)],
        shape in plan_strategy(),
    ) {
        let tasks = layered(layers, width, fan_in, 1.0, dag_seed);
        let threaded = threaded_trace(&tasks, layers, sim_seed, workers, window, &shape);
        let des = des_trace(&tasks, layers, sim_seed, workers, window, &shape);
        prop_assert_eq!(
            threaded, des,
            "canonical traces diverged: layers={} width={} fan_in={} dag_seed={} \
             sim_seed={} workers={} window={} plan={:?}",
            layers, width, fan_in, dag_seed, sim_seed, workers, window, shape
        );
    }

    #[test]
    fn racy_profiles_are_rejected_not_misreplayed(
        workers in 1usize..9,
        starpu in any::<bool>(),
    ) {
        let kind = if starpu { SchedulerKind::StarPu } else { SchedulerKind::OmpSs };
        let session = SimSession::new(models_for_labels(1), SimConfig::default());
        let err = ReplayEngine::new(&kind.config(workers), session).err();
        let msg = err.map(|e| e.to_string()).unwrap_or_default();
        prop_assert!(
            msg.contains("replay deterministically"),
            "{:?} must be refused with a clear reason, got: {msg}",
            kind
        );
    }
}

/// Regression test for the quiescence race the DES comparison surfaced:
/// with a *binding* task window (window < ready parallelism), the clock
/// used to advance while the blocked submitter was between wakeup and
/// resubmission, so the next task started at either the freed time or the
/// following completion depending on host scheduling. `quiescent_locked`
/// now requires the window to be genuinely full before a waiting
/// submitter counts as quiescent. These exact parameters reproduced the
/// divergence before the fix within a handful of reruns.
#[test]
fn threaded_is_deterministic_under_binding_window() {
    let (layers, width, fan_in, dag_seed, sim_seed, workers, window) = (
        2usize,
        4usize,
        2usize,
        17086192427406585259u64,
        1348616159483229676u64,
        4usize,
        2usize,
    );
    let tasks = layered(layers, width, fan_in, 1.0, dag_seed);
    let shape = PlanShape::Clean;
    let des = des_trace(&tasks, layers, sim_seed, workers, window, &shape);
    for i in 0..30 {
        let threaded = threaded_trace(&tasks, layers, sim_seed, workers, window, &shape);
        assert_eq!(threaded, des, "threaded diverged from replay on rerun {i}");
    }
}
