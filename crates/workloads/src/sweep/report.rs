//! The merged sweep report: one deterministically ordered document per
//! invocation.
//!
//! Cells are sorted by cell id (their position in the deterministic
//! matrix expansion), floats are written in Rust's shortest-roundtrip
//! form, and nothing wall-clock-dependent is serialized — so the JSON
//! and CSV renderings of a fixed-seed sweep are bit-for-bit identical
//! across runs and across `--jobs` values (the CI `sweep-determinism`
//! job `cmp`s them). The vendored serde derive does not support
//! lifetime-parameterised structs, so the report owns its data.

use super::pareto::pareto_frontier;
use serde::Serialize;
use supersim_faults::DegradationReport;

/// One cell's resolved coordinates and results.
#[derive(Debug, Clone, Serialize)]
pub struct CellResult {
    /// Position in the deterministic matrix expansion (also the merge
    /// order of the report).
    pub id: u64,
    /// Algorithm name.
    pub algorithm: String,
    /// Matrix order.
    pub n: usize,
    /// Tile size.
    pub nb: usize,
    /// Scheduler profile name (`pinned` for cluster cells).
    pub scheduler: String,
    /// Worker count (per node for cluster cells).
    pub workers: usize,
    /// Node count (0 = single-node).
    pub nodes: usize,
    /// Interconnect model name (`-` for single-node cells).
    pub interconnect: String,
    /// Fault-plan name (`clean` for the empty plan).
    pub plan: String,
    /// Duration-sampling seed.
    pub seed: u64,
    /// Backend that executed the cell (`des` or `threaded`).
    pub backend: String,
    /// Trace spans recorded (compute + transfer + fault markers).
    pub tasks: u64,
    /// Predicted makespan (virtual seconds; the faulted makespan for
    /// faulted cells).
    pub makespan: f64,
    /// Predicted GFLOP/s at that makespan.
    pub gflops: f64,
    /// Transfer tasks (cluster cells; 0 single-node).
    pub transfers: u64,
    /// Bytes moved by those transfers (clean cluster cells; the faulted
    /// pipeline does not re-derive volumes, so faulted cells report 0).
    pub transfer_bytes: u64,
    /// Faulted/clean makespan ratio (1.0 for clean cells).
    pub slowdown: f64,
    /// Transient retries executed.
    pub retries: u64,
    /// Tasks re-run by permanent-failure replay.
    pub restarted_tasks: u64,
    /// Full degradation report for faulted cells.
    pub degradation: Option<DegradationReport>,
}

/// The frontier section: objective names plus the ids of the
/// non-dominated cells.
#[derive(Debug, Clone, Serialize)]
pub struct ParetoReport {
    /// Objective names, in vector order, all minimized.
    pub objectives: Vec<String>,
    /// Ids of non-dominated cells, ascending.
    pub frontier: Vec<u64>,
}

/// One value-group of an autotune scan.
#[derive(Debug, Clone, Serialize)]
pub struct AutotuneGroup {
    /// The swept axis value (as a string, e.g. `"64"` for nb=64).
    pub value: String,
    /// Cells in the group.
    pub cells: u64,
    /// Mean makespan across the group.
    pub mean_makespan: f64,
    /// Best (minimum) makespan in the group.
    pub min_makespan: f64,
    /// Worst (maximum) makespan in the group.
    pub max_makespan: f64,
}

/// Argmin-over-the-matrix: group cells by one axis, average the
/// makespans, pick the winner.
#[derive(Debug, Clone, Serialize)]
pub struct AutotuneReport {
    /// The grouped axis (`nb`, `workers`, `scheduler`, ...).
    pub axis: String,
    /// Groups in first-appearance (cell-id) order.
    pub groups: Vec<AutotuneGroup>,
    /// Axis value with the lowest mean makespan (earliest group wins
    /// exact ties).
    pub best: String,
}

/// The merged report of one sweep invocation.
#[derive(Debug, Clone, Serialize)]
pub struct SweepReport {
    /// Report schema version.
    pub version: u32,
    /// Total cells executed.
    pub cells_total: u64,
    /// Per-cell results, ordered by cell id.
    pub cells: Vec<CellResult>,
    /// Pareto frontier over (makespan, slowdown, transfer_bytes).
    pub pareto: ParetoReport,
    /// Present when the sweep ran in `--autotune` mode.
    pub autotune: Option<AutotuneReport>,
}

/// Axes [`autotune`] can group by.
pub const AUTOTUNE_AXES: &[&str] = &[
    "n",
    "nb",
    "scheduler",
    "workers",
    "nodes",
    "interconnect",
    "plan",
    "seed",
    "backend",
];

fn axis_value(cell: &CellResult, axis: &str) -> String {
    match axis {
        "n" => cell.n.to_string(),
        "nb" | "tile_size" => cell.nb.to_string(),
        "scheduler" => cell.scheduler.clone(),
        "workers" => cell.workers.to_string(),
        "nodes" => cell.nodes.to_string(),
        "interconnect" => cell.interconnect.clone(),
        "plan" => cell.plan.clone(),
        "seed" => cell.seed.to_string(),
        "backend" => cell.backend.clone(),
        other => panic!("unknown autotune axis {other:?} (one of {AUTOTUNE_AXES:?})"),
    }
}

/// Group `cells` by `axis` and rank the groups by mean makespan. Groups
/// appear in first-appearance order over ascending cell id, so the
/// report stays deterministic.
pub fn autotune(cells: &[CellResult], axis: &str) -> AutotuneReport {
    let mut groups: Vec<(String, Vec<f64>)> = Vec::new();
    for cell in cells {
        let value = axis_value(cell, axis);
        match groups.iter_mut().find(|(v, _)| *v == value) {
            Some((_, xs)) => xs.push(cell.makespan),
            None => groups.push((value, vec![cell.makespan])),
        }
    }
    let groups: Vec<AutotuneGroup> = groups
        .into_iter()
        .map(|(value, xs)| AutotuneGroup {
            value,
            cells: xs.len() as u64,
            mean_makespan: xs.iter().sum::<f64>() / xs.len() as f64,
            min_makespan: xs.iter().copied().fold(f64::INFINITY, f64::min),
            max_makespan: xs.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        })
        .collect();
    let best = groups
        .iter()
        .min_by(|a, b| a.mean_makespan.total_cmp(&b.mean_makespan))
        .map(|g| g.value.clone())
        .unwrap_or_default();
    AutotuneReport {
        axis: axis.to_string(),
        groups,
        best,
    }
}

impl SweepReport {
    /// Report schema version.
    pub const VERSION: u32 = 1;

    /// Assemble the merged report from executed cells (sorted by id
    /// here) plus the optional autotune axis.
    pub fn assemble(mut cells: Vec<CellResult>, autotune_axis: Option<&str>) -> SweepReport {
        cells.sort_by_key(|c| c.id);
        let points: Vec<(u64, Vec<f64>)> = cells
            .iter()
            .map(|c| (c.id, vec![c.makespan, c.slowdown, c.transfer_bytes as f64]))
            .collect();
        let pareto = ParetoReport {
            objectives: vec![
                "makespan".to_string(),
                "slowdown".to_string(),
                "transfer_bytes".to_string(),
            ],
            frontier: pareto_frontier(&points),
        };
        let autotune = autotune_axis.map(|axis| autotune(&cells, axis));
        SweepReport {
            version: Self::VERSION,
            cells_total: cells.len() as u64,
            cells,
            pareto,
            autotune,
        }
    }

    /// Pretty JSON rendering (deterministic for a fixed-seed sweep).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("sweep report serialization cannot fail")
    }

    /// CSV rendering: fixed column order, one row per cell, a trailing
    /// `pareto` membership column. Floats use Rust's shortest-roundtrip
    /// display, so the bytes are deterministic too.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "id,algorithm,n,nb,scheduler,workers,nodes,interconnect,plan,seed,backend,\
             tasks,makespan,gflops,transfers,transfer_bytes,slowdown,retries,\
             restarted_tasks,pareto\n",
        );
        for c in &self.cells {
            let on_frontier = self.pareto.frontier.binary_search(&c.id).is_ok();
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
                c.id,
                c.algorithm,
                c.n,
                c.nb,
                c.scheduler,
                c.workers,
                c.nodes,
                c.interconnect,
                c.plan,
                c.seed,
                c.backend,
                c.tasks,
                c.makespan,
                c.gflops,
                c.transfers,
                c.transfer_bytes,
                c.slowdown,
                c.retries,
                c.restarted_tasks,
                u8::from(on_frontier),
            ));
        }
        out
    }

    /// Rank-keyed per-cell counts: trace-span and retry totals, which the
    /// determinism contract (DESIGN.md §7) guarantees even on the racy
    /// threaded scheduler profiles where span *times* may differ. The CI
    /// threaded-subset gate `cmp`s this rendering across runs.
    pub fn counts(&self) -> String {
        let mut out =
            String::from("id algorithm n nb scheduler plan seed tasks retries restarted\n");
        for c in &self.cells {
            out.push_str(&format!(
                "{} {} {} {} {} {} {} {} {} {}\n",
                c.id,
                c.algorithm,
                c.n,
                c.nb,
                c.scheduler,
                c.plan,
                c.seed,
                c.tasks,
                c.retries,
                c.restarted_tasks,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(id: u64, makespan: f64, slowdown: f64, bytes: u64) -> CellResult {
        CellResult {
            id,
            algorithm: "cholesky".into(),
            n: 480,
            nb: 48,
            scheduler: "quark".into(),
            workers: 4,
            nodes: 0,
            interconnect: "-".into(),
            plan: "clean".into(),
            seed: 42,
            backend: "des".into(),
            tasks: 10,
            makespan,
            gflops: 1.0,
            transfers: 0,
            transfer_bytes: bytes,
            slowdown,
            retries: 0,
            restarted_tasks: 0,
            degradation: None,
        }
    }

    #[test]
    fn assemble_sorts_and_extracts_frontier() {
        // Insert out of order; cell 2 is dominated by cell 0.
        let cells = vec![
            cell(2, 2.0, 1.0, 100),
            cell(0, 1.0, 1.0, 100),
            cell(1, 3.0, 0.5, 0),
        ];
        let report = SweepReport::assemble(cells, None);
        assert_eq!(
            report.cells.iter().map(|c| c.id).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert_eq!(report.pareto.frontier, vec![0, 1]);
        assert_eq!(report.cells_total, 3);
    }

    #[test]
    fn autotune_groups_and_picks_argmin() {
        let mut a = cell(0, 4.0, 1.0, 0);
        a.nb = 32;
        let mut b = cell(1, 2.0, 1.0, 0);
        b.nb = 64;
        let mut c = cell(2, 6.0, 1.0, 0);
        c.nb = 32;
        let report = SweepReport::assemble(vec![a, b, c], Some("nb"));
        let tune = report.autotune.as_ref().unwrap();
        assert_eq!(tune.best, "64");
        assert_eq!(tune.groups.len(), 2);
        assert_eq!(tune.groups[0].value, "32");
        assert_eq!(tune.groups[0].mean_makespan, 5.0);
        assert_eq!(tune.groups[0].cells, 2);
    }

    #[test]
    fn csv_is_deterministic_and_flags_frontier() {
        let cells = vec![cell(0, 1.0, 1.0, 0), cell(1, 2.0, 1.0, 0)];
        let report = SweepReport::assemble(cells.clone(), None);
        let csv = report.to_csv();
        assert_eq!(csv, SweepReport::assemble(cells, None).to_csv());
        let rows: Vec<&str> = csv.lines().collect();
        assert_eq!(rows.len(), 3);
        assert!(rows[1].ends_with(",1"), "cell 0 on frontier: {}", rows[1]);
        assert!(rows[2].ends_with(",0"), "cell 1 dominated: {}", rows[2]);
    }

    #[test]
    fn json_round_trips_through_vendored_serde() {
        let report = SweepReport::assemble(vec![cell(0, 1.5, 1.0, 7)], Some("nb"));
        let json = report.to_json();
        assert!(json.contains("\"frontier\""));
        assert!(json.contains("\"autotune\""));
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v["cells"][0]["makespan"].as_f64(), Some(1.5));
    }
}
