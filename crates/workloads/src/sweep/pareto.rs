//! Pareto-frontier extraction over sweep cells.
//!
//! A sweep compares configurations along several *minimized* objectives
//! at once (makespan, resilience as slowdown-under-faults, transfer
//! volume). The frontier is the set of non-dominated cells: nobody else
//! is at least as good everywhere and strictly better somewhere.

/// Whether `a` dominates `b` (all objectives minimized): `a` is no worse
/// in every coordinate and strictly better in at least one. Identical
/// points do not dominate each other, so exact ties all stay on the
/// frontier.
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    debug_assert_eq!(a.len(), b.len(), "objective vectors must align");
    let mut strict = false;
    for (x, y) in a.iter().zip(b) {
        if x > y {
            return false;
        }
        if x < y {
            strict = true;
        }
    }
    strict
}

/// Ids of the non-dominated points among `points` (each an id plus its
/// objective vector, all objectives minimized). The result is sorted
/// ascending by id and deduplicated, so it is identical for any
/// permutation of the input — the property the sweep report's
/// byte-for-byte determinism rests on. O(n²·d); a thousand-cell sweep
/// with three objectives is a few million comparisons.
pub fn pareto_frontier(points: &[(u64, Vec<f64>)]) -> Vec<u64> {
    let mut ids: Vec<u64> = points
        .iter()
        .filter(|(_, p)| points.iter().all(|(_, q)| !dominates(q, p)))
        .map(|(id, _)| *id)
        .collect();
    ids.sort_unstable();
    ids.dedup();
    ids
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(id: u64, coords: &[f64]) -> (u64, Vec<f64>) {
        (id, coords.to_vec())
    }

    #[test]
    fn single_point_is_frontier() {
        assert_eq!(pareto_frontier(&[pt(7, &[1.0, 2.0])]), vec![7]);
    }

    #[test]
    fn dominated_point_excluded() {
        let pts = [pt(0, &[1.0, 1.0]), pt(1, &[2.0, 2.0])];
        assert_eq!(pareto_frontier(&pts), vec![0]);
    }

    #[test]
    fn trade_off_keeps_both() {
        let pts = [pt(0, &[1.0, 3.0]), pt(1, &[3.0, 1.0])];
        assert_eq!(pareto_frontier(&pts), vec![0, 1]);
    }

    #[test]
    fn exact_ties_all_survive() {
        let pts = [pt(0, &[1.0, 1.0]), pt(1, &[1.0, 1.0]), pt(2, &[2.0, 1.0])];
        assert_eq!(pareto_frontier(&pts), vec![0, 1]);
    }

    #[test]
    fn equal_in_one_coordinate_still_dominates() {
        // (1,1) vs (1,2): equal first coordinate, strictly better second.
        assert!(dominates(&[1.0, 1.0], &[1.0, 2.0]));
        assert!(!dominates(&[1.0, 2.0], &[1.0, 1.0]));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Coordinates drawn from a tiny integer grid so ties and dominance
    /// chains are common — the interesting cases for frontier logic.
    fn points_strategy() -> impl Strategy<Value = Vec<(u64, Vec<f64>)>> {
        prop::collection::vec((0u64..6, 0u64..6, 0u64..6), 1..40).prop_map(|raw| {
            raw.into_iter()
                .enumerate()
                .map(|(i, (a, b, c))| (i as u64, vec![a as f64, b as f64, c as f64]))
                .collect()
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Every reported frontier point is non-dominated.
        #[test]
        fn frontier_points_are_non_dominated(pts in points_strategy()) {
            let frontier = pareto_frontier(&pts);
            for id in &frontier {
                let (_, p) = pts.iter().find(|(i, _)| i == id).unwrap();
                for (_, q) in &pts {
                    prop_assert!(!dominates(q, p), "frontier point {id} is dominated");
                }
            }
        }

        /// Every dominated cell is excluded — equivalently, every point
        /// off the frontier has a dominator.
        #[test]
        fn excluded_points_are_dominated(pts in points_strategy()) {
            let frontier = pareto_frontier(&pts);
            for (id, p) in &pts {
                if !frontier.contains(id) {
                    prop_assert!(
                        pts.iter().any(|(_, q)| dominates(q, p)),
                        "excluded point {id} has no dominator"
                    );
                }
            }
        }

        /// The output is identical for any permutation of the input: the
        /// frontier of a rotated or reversed point list matches the
        /// original exactly, element for element.
        #[test]
        fn order_is_stable_across_shuffled_input(
            pts in points_strategy(),
            rot in 0usize..40,
        ) {
            let base = pareto_frontier(&pts);
            let mut rotated = pts.clone();
            rotated.rotate_left(rot % pts.len().max(1));
            prop_assert_eq!(&pareto_frontier(&rotated), &base);
            let mut reversed = pts.clone();
            reversed.reverse();
            prop_assert_eq!(&pareto_frontier(&reversed), &base);
        }

        /// Frontier membership of a point never changes when dominated
        /// points are removed from the set.
        #[test]
        fn removing_dominated_points_preserves_frontier(pts in points_strategy()) {
            let frontier = pareto_frontier(&pts);
            let survivors: Vec<_> =
                pts.iter().filter(|(id, _)| frontier.contains(id)).cloned().collect();
            prop_assert_eq!(pareto_frontier(&survivors), frontier);
        }
    }
}
