//! The sweep orchestrator: thousands of scenarios per invocation.
//!
//! A [`SweepSpec`] describes a scenario *matrix* — the cartesian product
//! over algorithm / problem size / tile size / scheduler / workers /
//! nodes / interconnect / fault plan / seed, each axis an explicit list —
//! which expands deterministically into [`CellSpec`]s, executes across
//! host cores on a shared work queue (DES backend preferred, threaded
//! allowed per cell), and merges into one deterministically ordered
//! [`SweepReport`] with Pareto frontiers and an optional autotune
//! (argmin-over-the-matrix) section. This is the compare-schedulers-over-
//! a-corpus methodology of the batch-simulation literature, built on the
//! session isolation invariant: every cell gets its own `SimSession`
//! (clock, trace recorder, counters), and all cells share one read-only
//! fitted-model database built once up front. See DESIGN.md §10.
//!
//! ```
//! use supersim_workloads::sweep::SweepSpec;
//! let spec = SweepSpec {
//!     tile_counts: vec![4],
//!     tile_sizes: vec![8, 16],
//!     worker_counts: vec![3],
//!     seeds: vec![1, 2],
//!     ..SweepSpec::default()
//! };
//! let outcome = spec.run(2);
//! assert_eq!(outcome.report.cells.len(), 4);
//! ```

pub mod pareto;
pub mod report;
pub mod runner;

pub use pareto::{dominates, pareto_frontier};
pub use report::{
    autotune, AutotuneGroup, AutotuneReport, CellResult, ParetoReport, SweepReport, AUTOTUNE_AXES,
};
pub use runner::SweepOutcome;

use crate::driver::Algorithm;
use crate::replay::Backend;
use std::collections::BTreeMap;
use std::sync::Arc;
use supersim_cluster::{Hockney, Interconnect, SharedLink, ZeroCost};
use supersim_core::{KernelModel, ModelRegistry};
use supersim_dist::Dist;
use supersim_faults::FaultPlan;
use supersim_runtime::SchedulerKind;

/// An interconnect model described by value, so a spec is plain data and
/// each cell can build its own `Arc<dyn Interconnect>`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InterconnectSpec {
    /// Free transfers (upper-bound baseline).
    Zero,
    /// Hockney point-to-point: latency + size/bandwidth.
    Hockney {
        /// Per-message latency (seconds).
        latency: f64,
        /// Link bandwidth (bytes/second).
        bandwidth: f64,
    },
    /// One shared link per node (transfers serialize on the NIC lane).
    SharedLink {
        /// Per-message latency (seconds).
        latency: f64,
        /// Link bandwidth (bytes/second).
        bandwidth: f64,
    },
}

impl InterconnectSpec {
    /// Parse a CLI name (`zero`, `hockney`, `sharedlink`) with the given
    /// latency/bandwidth parameters.
    pub fn parse(name: &str, latency: f64, bandwidth: f64) -> Option<InterconnectSpec> {
        match name {
            "zero" => Some(InterconnectSpec::Zero),
            "hockney" => Some(InterconnectSpec::Hockney { latency, bandwidth }),
            "sharedlink" => Some(InterconnectSpec::SharedLink { latency, bandwidth }),
            _ => None,
        }
    }

    /// The model's name as recorded in the report.
    pub fn name(&self) -> &'static str {
        match self {
            InterconnectSpec::Zero => "zero",
            InterconnectSpec::Hockney { .. } => "hockney",
            InterconnectSpec::SharedLink { .. } => "sharedlink",
        }
    }

    /// Build the interconnect model.
    pub fn build(&self) -> Arc<dyn Interconnect> {
        match *self {
            InterconnectSpec::Zero => Arc::new(ZeroCost),
            InterconnectSpec::Hockney { latency, bandwidth } => {
                Arc::new(Hockney::new(latency, bandwidth))
            }
            InterconnectSpec::SharedLink { latency, bandwidth } => {
                Arc::new(SharedLink::new(latency, bandwidth))
            }
        }
    }
}

/// A named fault plan: the name keys the report's `plan` column.
#[derive(Debug, Clone)]
pub struct FaultPlanSpec {
    /// Plan name in the report (`clean`, `straggler`, ...).
    pub name: String,
    /// The plan itself (empty = fault-free cell).
    pub plan: FaultPlan,
}

impl FaultPlanSpec {
    /// The fault-free plan.
    pub fn clean() -> FaultPlanSpec {
        FaultPlanSpec {
            name: "clean".to_string(),
            plan: FaultPlan::new(),
        }
    }

    /// Wrap an explicit plan under a report name.
    pub fn named(name: impl Into<String>, plan: FaultPlan) -> FaultPlanSpec {
        FaultPlanSpec {
            name: name.into(),
            plan,
        }
    }

    /// Canned presets for CLI matrices, all within the lane-independent
    /// determinism contract (DESIGN.md §7): `clean`, `straggler` (node 0
    /// slowed 3x over the first 20% of the clean makespan timeline),
    /// `transient` (every 5th submission of each label fails once), and
    /// `kill` (worker lane 1 dies at t=0.05 with replay recovery).
    pub fn preset(name: &str) -> Option<FaultPlanSpec> {
        let plan = match name {
            "clean" => FaultPlan::new(),
            "straggler" => FaultPlan::new().straggler_node(0, 0.0, 0.2, 3.0),
            "transient" => FaultPlan::new().transient(5, 1, 0.5),
            "kill" => FaultPlan::new().kill_worker(1, 0.05),
            _ => return None,
        };
        Some(FaultPlanSpec::named(name, plan))
    }
}

/// Backend policy for the whole sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SweepBackend {
    /// Per cell: the DES replay backend wherever it can replay the cell
    /// deterministically (the default scheduler and all cluster cells),
    /// the threaded engine for the racy scheduler profiles.
    #[default]
    Auto,
    /// Force DES everywhere. Expansion fails fast if the matrix contains
    /// a scheduler profile DES cannot replay deterministically.
    Des,
    /// Force the threaded engine everywhere.
    Threaded,
}

impl SweepBackend {
    /// Parse a CLI name.
    pub fn parse(s: &str) -> Option<SweepBackend> {
        match s {
            "auto" => Some(SweepBackend::Auto),
            "des" => Some(SweepBackend::Des),
            "threaded" => Some(SweepBackend::Threaded),
            _ => None,
        }
    }
}

/// Where the sweep's kernel models come from. Whatever the source, the
/// registry is materialized **once** and shared read-only (one `Arc`)
/// across every concurrent cell session.
#[derive(Debug, Clone)]
pub enum SweepModels {
    /// Synthetic log-normal models, one per kernel label of every swept
    /// algorithm: `ln N(mu, sigma)` seconds with a first-call warm-up
    /// factor.
    Synthetic {
        /// Log-normal location parameter.
        mu: f64,
        /// Log-normal scale parameter.
        sigma: f64,
        /// First-call warm-up factor (1.0 = none).
        warmup: f64,
    },
    /// One fitted-model database shared by every cell (e.g. loaded from a
    /// `CalibrationDb`).
    Shared(Arc<ModelRegistry>),
    /// A registry per tile size, for autotune sweeps whose calibrations
    /// are nb-dependent. Expansion fails fast if a swept tile size has no
    /// entry.
    PerTileSize(BTreeMap<usize, Arc<ModelRegistry>>),
}

/// A scenario matrix. Every axis is an explicit list; the product of the
/// lists (minus structurally impossible combinations, see
/// [`SweepSpec::cells`]) is the set of cells executed.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Algorithms to sweep.
    pub algorithms: Vec<Algorithm>,
    /// Explicit matrix orders. When non-empty this overrides
    /// `tile_counts`; when empty, `n = tiles * nb` per tile count.
    pub orders: Vec<usize>,
    /// Tile-grid sizes (used when `orders` is empty).
    pub tile_counts: Vec<usize>,
    /// Tile sizes (nb).
    pub tile_sizes: Vec<usize>,
    /// Scheduler profiles (single-node cells; cluster cells always use
    /// the pinned cluster profile).
    pub schedulers: Vec<SchedulerKind>,
    /// Worker counts (per node for cluster cells).
    pub worker_counts: Vec<usize>,
    /// Node counts; 0 means a single-node cell.
    pub node_counts: Vec<usize>,
    /// Interconnect models (cluster cells only; the axis collapses for
    /// single-node cells).
    pub interconnects: Vec<InterconnectSpec>,
    /// Named fault plans.
    pub plans: Vec<FaultPlanSpec>,
    /// Duration-sampling seeds.
    pub seeds: Vec<u64>,
    /// Backend policy.
    pub backend: SweepBackend,
    /// Kernel-model source.
    pub models: SweepModels,
    /// Per-task scheduler overhead (seconds) applied to every cell.
    pub overhead_per_task: f64,
    /// NIC lanes per node (None = the interconnect model's default).
    pub nic_lanes: Option<usize>,
    /// Autotune axis (see [`AUTOTUNE_AXES`]); adds an argmin section to
    /// the report.
    pub autotune: Option<String>,
}

impl Default for SweepSpec {
    fn default() -> Self {
        SweepSpec {
            algorithms: vec![Algorithm::Cholesky],
            orders: Vec::new(),
            tile_counts: vec![8],
            tile_sizes: vec![64],
            schedulers: vec![SchedulerKind::Quark],
            worker_counts: vec![4],
            node_counts: vec![0],
            interconnects: vec![InterconnectSpec::Hockney {
                latency: 1e-5,
                bandwidth: 1e10,
            }],
            plans: vec![FaultPlanSpec::clean()],
            seeds: vec![42],
            backend: SweepBackend::Auto,
            models: SweepModels::Synthetic {
                mu: -6.0,
                sigma: 0.3,
                warmup: 1.5,
            },
            overhead_per_task: 0.0,
            nic_lanes: None,
            autotune: None,
        }
    }
}

/// One fully resolved cell of the matrix.
#[derive(Debug, Clone)]
pub struct CellSpec {
    /// Position in the expansion (the report's merge key).
    pub id: u64,
    /// Algorithm.
    pub algorithm: Algorithm,
    /// Matrix order.
    pub n: usize,
    /// Tile size.
    pub nb: usize,
    /// Scheduler profile (ignored by cluster cells, which run pinned).
    pub scheduler: SchedulerKind,
    /// Workers (per node when `nodes > 0`).
    pub workers: usize,
    /// Nodes (0 = single-node).
    pub nodes: usize,
    /// Interconnect (cluster cells only).
    pub interconnect: Option<InterconnectSpec>,
    /// Fault-plan name.
    pub plan_name: String,
    /// The fault plan.
    pub plan: FaultPlan,
    /// Duration-sampling seed.
    pub seed: u64,
    /// Resolved backend for this cell.
    pub backend: Backend,
}

impl SweepSpec {
    /// Expand the matrix into cells, deterministically: nested loops in
    /// axis order (algorithm, order/tiles, tile size, nodes, scheduler,
    /// workers, interconnect, plan, seed), ids assigned sequentially.
    /// Structurally impossible combinations are dropped, not errors: the
    /// distributed engine implements Cholesky and LU only, so QR ×
    /// cluster cells are skipped; cluster cells collapse the scheduler
    /// axis (always the pinned profile); single-node cells collapse the
    /// interconnect axis.
    ///
    /// # Panics
    ///
    /// If an axis list is empty, or if [`SweepBackend::Des`] is forced
    /// while the matrix contains a single-node scheduler profile the DES
    /// replay cannot run deterministically.
    pub fn cells(&self) -> Vec<CellSpec> {
        for (name, empty) in [
            ("algorithms", self.algorithms.is_empty()),
            (
                "orders/tile_counts",
                self.orders.is_empty() && self.tile_counts.is_empty(),
            ),
            ("tile_sizes", self.tile_sizes.is_empty()),
            ("schedulers", self.schedulers.is_empty()),
            ("worker_counts", self.worker_counts.is_empty()),
            ("node_counts", self.node_counts.is_empty()),
            ("interconnects", self.interconnects.is_empty()),
            ("plans", self.plans.is_empty()),
            ("seeds", self.seeds.is_empty()),
        ] {
            assert!(!empty, "sweep axis {name} is empty");
        }
        if let Some(axis) = &self.autotune {
            assert!(
                AUTOTUNE_AXES.contains(&axis.as_str()) || axis == "tile_size",
                "unknown autotune axis {axis:?} (one of {AUTOTUNE_AXES:?})"
            );
        }

        let mut cells = Vec::new();
        let mut id = 0u64;
        for &algorithm in &self.algorithms {
            for &nb in &self.tile_sizes {
                let orders: Vec<usize> = if self.orders.is_empty() {
                    self.tile_counts.iter().map(|t| t * nb).collect()
                } else {
                    self.orders.clone()
                };
                for &n in &orders {
                    for &nodes in &self.node_counts {
                        if nodes > 0 && algorithm == Algorithm::Qr {
                            // Distributed QR is not implemented.
                            continue;
                        }
                        // Cluster cells always run the pinned cluster
                        // profile; iterating the scheduler axis would
                        // duplicate identical cells.
                        let schedulers: &[SchedulerKind] = if nodes > 0 {
                            &self.schedulers[..1]
                        } else {
                            &self.schedulers
                        };
                        for &scheduler in schedulers {
                            for &workers in &self.worker_counts {
                                let interconnects: &[InterconnectSpec] = if nodes > 0 {
                                    &self.interconnects
                                } else {
                                    &self.interconnects[..1]
                                };
                                for ic in interconnects {
                                    for plan in &self.plans {
                                        for &seed in &self.seeds {
                                            let backend = self.resolve_backend(nodes, scheduler);
                                            cells.push(CellSpec {
                                                id,
                                                algorithm,
                                                n,
                                                nb,
                                                scheduler,
                                                workers,
                                                nodes,
                                                interconnect: (nodes > 0).then_some(*ic),
                                                plan_name: plan.name.clone(),
                                                plan: plan.plan.clone(),
                                                seed,
                                                backend,
                                            });
                                            id += 1;
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        cells
    }

    fn resolve_backend(&self, nodes: usize, scheduler: SchedulerKind) -> Backend {
        // Cluster cells replay on pinned lanes, which DES always supports.
        let des_ok = nodes > 0 || Backend::Des.supports(scheduler).is_ok();
        match self.backend {
            SweepBackend::Threaded => Backend::Threaded,
            SweepBackend::Auto => {
                if des_ok {
                    Backend::Des
                } else {
                    Backend::Threaded
                }
            }
            SweepBackend::Des => {
                assert!(
                    des_ok,
                    "backend des forced, but scheduler {} cannot replay deterministically \
                     on the DES backend (use --backend auto to fall back per cell)",
                    scheduler.name()
                );
                Backend::Des
            }
        }
    }

    /// Materialize the shared model database: one registry (or one per
    /// tile size), built once, shared read-only by every cell session.
    pub(crate) fn model_bank(&self) -> ModelBank {
        match &self.models {
            SweepModels::Shared(registry) => ModelBank::Single(registry.clone()),
            SweepModels::PerTileSize(map) => {
                for &nb in &self.tile_sizes {
                    assert!(
                        map.contains_key(&nb),
                        "SweepModels::PerTileSize has no registry for nb={nb}"
                    );
                }
                ModelBank::PerNb(map.clone())
            }
            SweepModels::Synthetic { mu, sigma, warmup } => {
                let mut registry = ModelRegistry::new();
                for alg in &self.algorithms {
                    for label in alg.labels() {
                        let dist = Dist::log_normal(*mu, *sigma)
                            .expect("synthetic sweep models need valid log-normal parameters");
                        let model = if *warmup == 1.0 {
                            KernelModel::new(dist)
                        } else {
                            KernelModel::with_warmup(dist, *warmup)
                        };
                        registry.insert(*label, model);
                    }
                }
                ModelBank::Single(Arc::new(registry))
            }
        }
    }
}

/// The materialized shared model database.
pub(crate) enum ModelBank {
    Single(Arc<ModelRegistry>),
    PerNb(BTreeMap<usize, Arc<ModelRegistry>>),
}

impl ModelBank {
    pub(crate) fn for_nb(&self, nb: usize) -> Arc<ModelRegistry> {
        match self {
            ModelBank::Single(r) => r.clone(),
            ModelBank::PerNb(map) => map
                .get(&nb)
                .unwrap_or_else(|| panic!("no model registry for nb={nb}"))
                .clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_is_the_cartesian_product() {
        let spec = SweepSpec {
            algorithms: vec![Algorithm::Cholesky, Algorithm::Lu],
            tile_counts: vec![4, 6],
            tile_sizes: vec![16, 32],
            schedulers: vec![SchedulerKind::Quark, SchedulerKind::StarPu],
            seeds: vec![1, 2, 3],
            ..SweepSpec::default()
        };
        let cells = spec.cells();
        assert_eq!(cells.len(), 2 * 2 * 2 * 2 * 3);
        // Ids are sequential and the expansion is deterministic.
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(c.id, i as u64);
        }
        assert_eq!(
            spec.cells().iter().map(|c| c.id).collect::<Vec<_>>(),
            cells.iter().map(|c| c.id).collect::<Vec<_>>()
        );
    }

    #[test]
    fn orders_override_tile_counts() {
        let spec = SweepSpec {
            orders: vec![100, 200],
            tile_counts: vec![4, 6, 8],
            tile_sizes: vec![10],
            ..SweepSpec::default()
        };
        let cells = spec.cells();
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].n, 100);
        assert_eq!(cells[1].n, 200);
    }

    #[test]
    fn cluster_cells_collapse_scheduler_and_skip_qr() {
        let spec = SweepSpec {
            algorithms: vec![Algorithm::Cholesky, Algorithm::Qr],
            schedulers: vec![SchedulerKind::Quark, SchedulerKind::StarPu],
            node_counts: vec![0, 4],
            interconnects: vec![
                InterconnectSpec::Zero,
                InterconnectSpec::Hockney {
                    latency: 1e-5,
                    bandwidth: 1e10,
                },
            ],
            ..SweepSpec::default()
        };
        let cells = spec.cells();
        // Single-node: 2 algs x 2 schedulers x 1 interconnect (collapsed).
        // Cluster: cholesky only, 1 scheduler (collapsed) x 2 interconnects.
        assert_eq!(cells.len(), 2 * 2 + 2);
        assert!(cells
            .iter()
            .all(|c| c.nodes == 0 || c.algorithm == Algorithm::Cholesky));
        assert!(cells
            .iter()
            .all(|c| (c.nodes > 0) == c.interconnect.is_some()));
    }

    #[test]
    fn auto_backend_prefers_des_where_deterministic() {
        let spec = SweepSpec {
            schedulers: vec![SchedulerKind::Quark, SchedulerKind::StarPu],
            node_counts: vec![0, 2],
            ..SweepSpec::default()
        };
        let cells = spec.cells();
        for c in &cells {
            if c.nodes > 0 || c.scheduler == SchedulerKind::Quark {
                assert_eq!(c.backend, Backend::Des, "cell {}", c.id);
            } else {
                assert_eq!(c.backend, Backend::Threaded, "cell {}", c.id);
            }
        }
    }

    #[test]
    #[should_panic(expected = "cannot replay deterministically")]
    fn forced_des_rejects_racy_profiles() {
        let spec = SweepSpec {
            schedulers: vec![SchedulerKind::StarPu],
            backend: SweepBackend::Des,
            ..SweepSpec::default()
        };
        spec.cells();
    }

    #[test]
    fn synthetic_bank_covers_all_swept_algorithms() {
        let spec = SweepSpec {
            algorithms: vec![Algorithm::Cholesky, Algorithm::Qr, Algorithm::Lu],
            ..SweepSpec::default()
        };
        let bank = spec.model_bank();
        let registry = bank.for_nb(64);
        for alg in &spec.algorithms {
            for label in alg.labels() {
                registry.expect(label);
            }
        }
    }
}
