//! The sweep executor: a shared work queue drained by scoped host
//! threads.
//!
//! Cells are independent simulations, so the pool is trivial: one atomic
//! next-cell index, `jobs` scoped threads each looping "claim a cell, run
//! it, append the result locally", and a final merge + sort by cell id.
//! The sorted merge makes the report independent of which thread ran
//! which cell — the determinism-across-`--jobs` guarantee. Each cell
//! builds its own [`SimSession`] over the sweep's shared read-only model
//! database; sessions own their clock, trace recorder, and counters, so
//! N cells in flight never cross-talk (DESIGN.md §10).

use super::report::{CellResult, SweepReport};
use super::{CellSpec, SweepSpec};
use crate::scenario::Scenario;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use supersim_cluster::{ClusterSpec, TRANSFER_LABEL};
use supersim_core::{ModelRegistry, SimConfig, SimSession};
use supersim_tile::flops;
use supersim_trace::fault::base_kernel;
use supersim_trace::Trace;

/// The result of one sweep invocation. Wall-clock timing lives here, not
/// in [`SweepReport`]: the serialized report must stay byte-identical
/// across runs.
pub struct SweepOutcome {
    /// The merged, deterministically ordered report.
    pub report: SweepReport,
    /// Wall-clock seconds for the whole sweep.
    pub wall_seconds: f64,
    /// Host threads used.
    pub jobs: usize,
    /// Aggregate of every cell session's published instruments, merged
    /// across cells (counters sum, histograms merge bucket-wise). Not
    /// deterministic — latency histograms sample wall time — which is
    /// exactly why it is separate from `report`.
    #[cfg(feature = "metrics")]
    pub metrics: supersim_metrics::MetricsSnapshot,
}

impl SweepOutcome {
    /// Cells executed per wall-clock second.
    pub fn cells_per_sec(&self) -> f64 {
        self.report.cells_total as f64 / self.wall_seconds.max(1e-12)
    }
}

impl SweepSpec {
    /// Execute the matrix on `jobs` host threads (0 = the host's
    /// available parallelism) and merge the results. The report is
    /// identical for every `jobs` value; only `wall_seconds` differs.
    pub fn run(&self, jobs: usize) -> SweepOutcome {
        let cells = self.cells();
        let bank = self.model_bank();
        let jobs = if jobs == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            jobs
        };
        // No point spinning up more threads than cells.
        let jobs = jobs.min(cells.len()).max(1);

        let started = std::time::Instant::now();
        let next = AtomicUsize::new(0);
        let merged: Mutex<Vec<CellResult>> = Mutex::new(Vec::with_capacity(cells.len()));
        #[cfg(feature = "metrics")]
        let metrics: Mutex<supersim_metrics::MetricsSnapshot> =
            Mutex::new(supersim_metrics::MetricsSnapshot::default());
        std::thread::scope(|scope| {
            for _ in 0..jobs {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    #[cfg(feature = "metrics")]
                    let mut local_metrics = supersim_metrics::MetricsSnapshot::default();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(cell) = cells.get(i) else { break };
                        let models = bank.for_nb(cell.nb);
                        let session = session_for(self, cell, models);
                        local.push(run_cell(self, cell, session.clone()));
                        #[cfg(feature = "metrics")]
                        session.publish_metrics(&mut local_metrics);
                    }
                    merged.lock().unwrap().append(&mut local);
                    #[cfg(feature = "metrics")]
                    metrics.lock().unwrap().merge(&local_metrics);
                });
            }
        });
        let results = merged.into_inner().unwrap();
        assert_eq!(results.len(), cells.len(), "every cell must report");

        SweepOutcome {
            report: SweepReport::assemble(results, self.autotune.as_deref()),
            wall_seconds: started.elapsed().as_secs_f64(),
            jobs,
            #[cfg(feature = "metrics")]
            metrics: metrics.into_inner().unwrap(),
        }
    }
}

/// The cell's private session over the shared model database — the same
/// construction `Scenario::fresh_session` would perform, made explicit
/// so the runner can publish the session's metrics after the run.
fn session_for(spec: &SweepSpec, cell: &CellSpec, models: Arc<ModelRegistry>) -> Arc<SimSession> {
    SimSession::with_shared(
        models,
        SimConfig {
            seed: cell.seed,
            overhead_per_task: spec.overhead_per_task,
            ..SimConfig::default()
        },
    )
}

fn transfer_spans(trace: &Trace) -> u64 {
    trace
        .spans()
        .iter()
        .filter(|e| base_kernel(&e.kernel) == TRANSFER_LABEL)
        .count() as u64
}

/// Execute one cell and flatten the terminal's result into a
/// [`CellResult`]. Traces are dropped here — a thousand-cell sweep keeps
/// numbers, not schedules.
fn run_cell(spec: &SweepSpec, cell: &CellSpec, session: Arc<SimSession>) -> CellResult {
    let mut scenario = Scenario::new(cell.algorithm)
        .n(cell.n)
        .tile_size(cell.nb)
        .scheduler(cell.scheduler)
        .workers(cell.workers)
        .seed(cell.seed)
        .session(session)
        .backend(cell.backend)
        .faults(cell.plan.clone());
    if let Some(ic) = &cell.interconnect {
        let mut cluster = ClusterSpec::new(cell.nodes, cell.workers);
        if let Some(lanes) = spec.nic_lanes {
            cluster = cluster.with_nic_lanes(lanes);
        }
        scenario = scenario.cluster(cluster).interconnect(ic.build());
    }

    let mut result = CellResult {
        id: cell.id,
        algorithm: cell.algorithm.name().to_string(),
        n: cell.n,
        nb: cell.nb,
        scheduler: if cell.nodes > 0 {
            "pinned".to_string()
        } else {
            cell.scheduler.name().to_string()
        },
        workers: cell.workers,
        nodes: cell.nodes,
        interconnect: cell
            .interconnect
            .as_ref()
            .map_or("-".to_string(), |ic| ic.name().to_string()),
        plan: cell.plan_name.clone(),
        seed: cell.seed,
        backend: cell.backend.name().to_string(),
        tasks: 0,
        makespan: 0.0,
        gflops: 0.0,
        transfers: 0,
        transfer_bytes: 0,
        slowdown: 1.0,
        retries: 0,
        restarted_tasks: 0,
        degradation: None,
    };

    if cell.plan.is_empty() {
        if cell.nodes > 0 {
            let run = scenario.run_cluster();
            result.tasks = run.trace.len() as u64;
            result.makespan = run.predicted_seconds;
            result.gflops = run.gflops;
            result.transfers = run.transfers;
            result.transfer_bytes = run.transfer_bytes;
        } else {
            let run = scenario.run_sim();
            result.tasks = run.trace.len() as u64;
            result.makespan = run.predicted_seconds;
            result.gflops = run.gflops;
        }
    } else {
        let outcome = scenario.run_faults();
        result.tasks = outcome.trace.len() as u64;
        result.makespan = outcome.faulted_makespan;
        result.gflops = flops::gflops(cell.algorithm.flops(cell.n), outcome.faulted_makespan);
        result.transfers = transfer_spans(&outcome.trace);
        // The faulted path surfaces a trace, not the coherence engine's
        // byte ledger, so bytes are reconstructed from the transfer span
        // count: one full tile each (exact whenever nb divides n, as in
        // tile-count-driven matrices).
        result.transfer_bytes = result.transfers * (cell.nb * cell.nb * 8) as u64;
        result.slowdown = outcome.report.slowdown;
        result.retries = outcome.report.retries;
        result.restarted_tasks = outcome.report.restarted_tasks;
        result.degradation = Some(outcome.report);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::Algorithm;
    use crate::sweep::{FaultPlanSpec, SweepBackend};
    use supersim_runtime::SchedulerKind;

    fn small_spec() -> SweepSpec {
        SweepSpec {
            tile_counts: vec![4],
            tile_sizes: vec![12],
            worker_counts: vec![3],
            seeds: vec![1, 2],
            plans: vec![
                FaultPlanSpec::clean(),
                FaultPlanSpec::preset("transient").unwrap(),
            ],
            node_counts: vec![0, 2],
            ..SweepSpec::default()
        }
    }

    /// The acceptance-criterion core: the merged report is byte-for-byte
    /// identical across runs and across `--jobs` values.
    #[test]
    fn report_is_identical_across_jobs() {
        let spec = small_spec();
        let one = spec.run(1);
        let four = spec.run(4);
        assert_eq!(one.report.to_json(), four.report.to_json());
        assert_eq!(one.report.to_csv(), four.report.to_csv());
        assert_eq!(one.report.counts(), four.report.counts());
        assert_eq!(one.jobs, 1);
    }

    #[test]
    fn faulted_cells_carry_degradation_reports() {
        let spec = small_spec();
        let outcome = spec.run(2);
        let cells = &outcome.report.cells;
        assert_eq!(cells.len(), 2 * 2 * 2);
        for c in cells {
            if c.plan == "clean" {
                assert!(c.degradation.is_none());
                assert_eq!(c.slowdown, 1.0);
            } else {
                let report = c.degradation.as_ref().expect("faulted cell report");
                assert_eq!(c.slowdown, report.slowdown);
                assert!(c.retries > 0, "transient preset must retry: cell {}", c.id);
            }
            if c.nodes > 0 {
                assert!(c.transfers > 0, "cluster cell moves tiles: cell {}", c.id);
            }
            assert!(c.makespan > 0.0);
        }
    }

    #[test]
    fn mixed_backends_share_one_report() {
        let spec = SweepSpec {
            tile_counts: vec![4],
            tile_sizes: vec![12],
            worker_counts: vec![3],
            schedulers: vec![SchedulerKind::Quark, SchedulerKind::StarPu],
            backend: SweepBackend::Auto,
            ..SweepSpec::default()
        };
        let outcome = spec.run(2);
        let backends: Vec<&str> = outcome
            .report
            .cells
            .iter()
            .map(|c| c.backend.as_str())
            .collect();
        assert_eq!(backends, vec!["des", "threaded"]);
    }

    #[test]
    fn autotune_section_reports_argmin_over_the_matrix() {
        let spec = SweepSpec {
            algorithms: vec![Algorithm::Cholesky],
            orders: vec![96],
            tile_sizes: vec![12, 24, 48],
            worker_counts: vec![3],
            seeds: vec![1, 2, 3],
            autotune: Some("nb".to_string()),
            ..SweepSpec::default()
        };
        let outcome = spec.run(2);
        let tune = outcome.report.autotune.as_ref().expect("autotune section");
        assert_eq!(tune.groups.len(), 3);
        assert!(tune.groups.iter().all(|g| g.cells == 3));
        let best = tune
            .groups
            .iter()
            .min_by(|a, b| a.mean_makespan.total_cmp(&b.mean_makespan))
            .unwrap();
        assert_eq!(tune.best, best.value);
    }

    #[cfg(feature = "metrics")]
    #[test]
    fn merged_metrics_cover_every_cell() {
        let spec = SweepSpec {
            tile_counts: vec![4],
            tile_sizes: vec![12],
            worker_counts: vec![3],
            seeds: vec![1, 2, 3, 4],
            ..SweepSpec::default()
        };
        let outcome = spec.run(2);
        // 4 DES cells, one replay run each: per-session counters merged
        // across cells must sum exactly (a process-global counter could
        // not be attributed per invocation).
        assert_eq!(outcome.metrics.counter("des.replay.runs"), Some(4));
        let tasks: u64 = outcome.report.cells.iter().map(|c| c.tasks).sum();
        assert_eq!(outcome.metrics.counter("des.replay.tasks"), Some(tasks));
        assert_eq!(
            outcome.metrics.counter("trace.events.recorded"),
            Some(tasks)
        );
    }
}
