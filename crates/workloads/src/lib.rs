//! # supersim-workloads
//!
//! Workload definitions binding the tile linear algebra algorithms (and
//! synthetic DAGs) to the superscalar runtime — in **two execution modes**
//! from a single task-stream definition:
//!
//! * [`ExecMode::Real`] — task bodies execute the actual tile kernels on
//!   shared tiles (with numerical verification afterwards);
//! * [`ExecMode::Simulated`] — task bodies call the simulated-kernel
//!   protocol of `supersim-core` ("the developer simply replaces the calls
//!   to each computational kernel with a call to the simulation library",
//!   paper §V).
//!
//! Both modes submit *identical* access annotations, so the scheduler sees
//! the same dependence graph — the property the paper's methodology rests
//! on.
//!
//! Modules:
//!
//! * [`data`] — tile grids shared across worker threads with stable
//!   [`supersim_dag::DataId`]s;
//! * [`mode`] — the execution-mode switch;
//! * [`cholesky`], [`qr`], [`lu`] — the three tile factorizations as
//!   runtime task streams (Cholesky and QR are the paper's case studies,
//!   LU is the documented extension);
//! * [`synthetic`] — synthetic DAG generators (chains, fork-join, random
//!   layered graphs) for stress tests and the DES comparison;
//! * [`driver`] — the run engines behind the scenario terminals,
//!   returning traces, timings and verification results;
//! * [`cluster`] — distributed variants of Cholesky/LU over a
//!   `supersim_cluster::ClusterSpec` with owner-computes placement and
//!   automatic transfer tasks;
//! * [`scenario`] — the **unified entry point**: a typed [`Scenario`]
//!   builder with `run_real` / `run_sim` / `run_cluster` / `run_faults`
//!   terminals;
//! * [`replay`] — the [`Backend`] switch and the drivers running scenarios
//!   on the pure-DES replay engine (`supersim_des::ReplayEngine`): same
//!   canonical traces, no host thread per simulated worker;
//! * [`faultsim`] — fault-injected execution and the two-phase replay of
//!   permanent failures, reported as a [`FaultOutcome`];
//! * [`sweep`] — the scenario-matrix orchestrator: a [`SweepSpec`]
//!   expands a cartesian product of axes into cells, runs them across
//!   host threads over one shared model database, and merges a
//!   deterministically ordered report with Pareto frontiers and
//!   autotune argmin (DESIGN.md §10);
//! * [`compat`] — deprecated shims for the pre-builder free functions.

pub mod cholesky;
pub mod cluster;
pub mod compat;
pub mod data;
pub mod driver;
pub mod faultsim;
pub mod lu;
pub mod mode;
pub mod qr;
pub mod replay;
pub mod scenario;
pub mod sweep;
pub mod synthetic;

pub use cluster::ClusterRun;
pub use data::SharedTiles;
pub use driver::{Algorithm, RealRun, SimRun};
pub use faultsim::FaultOutcome;
pub use mode::ExecMode;
pub use replay::Backend;
pub use scenario::Scenario;
pub use sweep::{SweepBackend, SweepOutcome, SweepReport, SweepSpec};

#[allow(deprecated)]
pub use compat::{run_cluster, run_real, run_sim, session_with};
