//! Synthetic DAG workloads: chains, fork-join, and random layered graphs.
//!
//! Used by stress tests, the offline-DES comparison, and the ablation
//! benches — workload shapes where the analytic makespan is known or where
//! the DAG shape can be swept independently of linear algebra.

use crate::mode::ExecMode;
use rand::{Rng, SeedableRng};
use supersim_dag::{Access, DagBuilder, DataId, TaskGraph};
use supersim_runtime::{Runtime, TaskDesc};

/// One synthetic task: a label, a duration hint (used as DAG weight and by
/// busy-wait real mode), and its accesses.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthTask {
    /// Kernel-class label.
    pub label: String,
    /// Nominal duration in (virtual) seconds.
    pub duration: f64,
    /// Data accesses.
    pub accesses: Vec<Access>,
}

/// A serial chain of `n` tasks (no parallelism; makespan = sum of
/// durations).
pub fn chain(n: usize, duration: f64) -> Vec<SynthTask> {
    (0..n)
        .map(|_| SynthTask {
            label: "link".to_string(),
            duration,
            accesses: vec![Access::read_write(DataId(0))],
        })
        .collect()
}

/// Fork-join: a source, `width` independent middle tasks, a sink.
pub fn fork_join(width: usize, duration: f64) -> Vec<SynthTask> {
    let mut tasks = Vec::with_capacity(width + 2);
    tasks.push(SynthTask {
        label: "fork".to_string(),
        duration,
        accesses: vec![Access::write(DataId(0))],
    });
    for i in 0..width {
        tasks.push(SynthTask {
            label: "mid".to_string(),
            duration,
            accesses: vec![Access::read(DataId(0)), Access::write(DataId(1 + i as u64))],
        });
    }
    tasks.push(SynthTask {
        label: "join".to_string(),
        duration,
        accesses: (0..width)
            .map(|i| Access::read(DataId(1 + i as u64)))
            .collect(),
    });
    tasks
}

/// Random layered DAG: `layers` layers of `width` tasks; each task reads
/// `fan_in` random outputs of the previous layer and writes its own output.
/// Durations are uniform in `[0.5, 1.5) * base_duration`. Deterministic in
/// `seed`.
pub fn layered(
    layers: usize,
    width: usize,
    fan_in: usize,
    base_duration: f64,
    seed: u64,
) -> Vec<SynthTask> {
    assert!(
        layers > 0 && width > 0,
        "layered DAG needs positive dimensions"
    );
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut tasks = Vec::with_capacity(layers * width);
    let out_id = |layer: usize, slot: usize| DataId((layer * width + slot) as u64);
    for layer in 0..layers {
        for slot in 0..width {
            let mut accesses = vec![Access::write(out_id(layer, slot))];
            if layer > 0 {
                for _ in 0..fan_in.min(width) {
                    let src = rng.random_range(0..width);
                    accesses.push(Access::read(out_id(layer - 1, src)));
                }
            }
            let duration = base_duration * (0.5 + rng.random::<f64>());
            tasks.push(SynthTask {
                label: format!("l{layer}"),
                duration,
                accesses,
            });
        }
    }
    tasks
}

/// Build the explicit [`TaskGraph`] of a synthetic task list (weights from
/// durations) — input to the offline DES and the analysis tools.
pub fn to_graph(tasks: &[SynthTask]) -> TaskGraph {
    let mut b = DagBuilder::new();
    for t in tasks {
        b.submit(&t.label, t.duration, &t.accesses);
    }
    b.finish()
}

/// Submit a synthetic task list to the runtime.
///
/// In [`ExecMode::Real`] each body busy-sleeps for its nominal duration
/// (scaled by `real_time_scale`, so tests can run a "1 second" virtual
/// workload in milliseconds); in simulated mode it runs the sim-kernel
/// protocol (the session must hold a model per label — see
/// [`models_for`]).
pub fn submit(rt: &Runtime, tasks: &[SynthTask], mode: &ExecMode, real_time_scale: f64) -> u64 {
    for task in tasks {
        let desc = match mode {
            ExecMode::Real => {
                let dur = std::time::Duration::from_secs_f64(task.duration * real_time_scale);
                TaskDesc::new(task.label.clone(), task.accesses.clone(), move |_ctx| {
                    spin_sleep(dur);
                })
            }
            ExecMode::Simulated(session) => TaskDesc::new(
                task.label.clone(),
                task.accesses.clone(),
                session.planned_body(task.label.clone()),
            ),
        };
        rt.submit(desc);
    }
    tasks.len() as u64
}

/// Build a model registry giving every distinct label a constant model
/// equal to the *mean* duration of its tasks.
pub fn models_for(tasks: &[SynthTask]) -> supersim_core::ModelRegistry {
    use std::collections::BTreeMap;
    let mut sums: BTreeMap<&str, (f64, usize)> = BTreeMap::new();
    for t in tasks {
        let e = sums.entry(&t.label).or_insert((0.0, 0));
        e.0 += t.duration;
        e.1 += 1;
    }
    let mut reg = supersim_core::ModelRegistry::new();
    for (label, (sum, n)) in sums {
        reg.insert(label, supersim_core::KernelModel::constant(sum / n as f64));
    }
    reg
}

/// Sleep that is accurate for sub-millisecond durations (hybrid
/// sleep+spin); plain `thread::sleep` overshoots badly at that scale.
pub fn spin_sleep(dur: std::time::Duration) {
    let start = std::time::Instant::now();
    if dur > std::time::Duration::from_millis(2) {
        std::thread::sleep(dur - std::time::Duration::from_millis(1));
    }
    while start.elapsed() < dur {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use supersim_core::{SimConfig, SimSession};
    use supersim_dag::validate::is_acyclic;
    use supersim_runtime::RuntimeConfig;

    #[test]
    fn chain_graph_is_serial() {
        let g = to_graph(&chain(5, 1.0));
        assert_eq!(g.len(), 5);
        assert_eq!(g.edge_count(), 4);
        let p = supersim_dag::analysis::profile(&g);
        assert_eq!(p.depth, 5);
        assert_eq!(p.max_width, 1);
    }

    #[test]
    fn fork_join_graph_shape() {
        let g = to_graph(&fork_join(4, 1.0));
        assert_eq!(g.len(), 6);
        let p = supersim_dag::analysis::profile(&g);
        assert_eq!(p.depth, 3);
        assert_eq!(p.max_width, 4);
        assert!(is_acyclic(&g));
    }

    #[test]
    fn layered_graph_deterministic_and_acyclic() {
        let a = layered(4, 6, 2, 1.0, 99);
        let b = layered(4, 6, 2, 1.0, 99);
        assert_eq!(a, b);
        let g = to_graph(&a);
        assert!(is_acyclic(&g));
        assert_eq!(g.len(), 24);
    }

    #[test]
    fn simulated_chain_has_exact_makespan() {
        let tasks = chain(6, 0.5);
        let session = SimSession::new(models_for(&tasks), SimConfig::default());
        let rt = Runtime::new(RuntimeConfig::simple(2));
        session.attach_quiesce(rt.probe());
        submit(&rt, &tasks, &ExecMode::Simulated(session.clone()), 1.0);
        rt.seal();
        rt.wait_all().unwrap();
        assert_eq!(session.virtual_now(), 3.0);
    }

    #[test]
    fn simulated_fork_join_matches_critical_path() {
        // 1 fork + max(mid) + 1 join with enough workers = 3 units.
        let tasks = fork_join(8, 1.0);
        let session = SimSession::new(models_for(&tasks), SimConfig::default());
        let rt = Runtime::new(RuntimeConfig::simple(8));
        session.attach_quiesce(rt.probe());
        submit(&rt, &tasks, &ExecMode::Simulated(session.clone()), 1.0);
        rt.seal();
        rt.wait_all().unwrap();
        assert_eq!(session.virtual_now(), 3.0);
    }

    #[test]
    fn real_mode_busy_sleep_approximates_duration() {
        let tasks = chain(3, 0.01); // 30 ms total at scale 1
        let rt = Runtime::new(RuntimeConfig::simple(1));
        let t0 = std::time::Instant::now();
        submit(&rt, &tasks, &ExecMode::Real, 1.0);
        rt.seal();
        rt.wait_all().unwrap();
        let elapsed = t0.elapsed().as_secs_f64();
        assert!(elapsed >= 0.029, "elapsed {elapsed}");
        assert!(elapsed < 0.5, "elapsed {elapsed}");
    }

    #[test]
    fn models_for_averages_durations() {
        let tasks = vec![
            SynthTask {
                label: "x".into(),
                duration: 1.0,
                accesses: vec![],
            },
            SynthTask {
                label: "x".into(),
                duration: 3.0,
                accesses: vec![],
            },
        ];
        let reg = models_for(&tasks);
        assert_eq!(reg.expect("x").mean(), 2.0);
    }
}
