//! Tile Cholesky as a runtime workload (paper Algorithm 1).

use crate::data::SharedTiles;
use crate::mode::ExecMode;
use supersim_dag::Access;
use supersim_runtime::{Runtime, TaskDesc};
use supersim_tile::blas::{dgemm, dpotf2, dsyrk, dtrsm, Diag, Side, Trans, Uplo};
use supersim_tile::cholesky::{task_stream, CholeskyTask};

/// The access list of one Cholesky task — shared by both execution modes
/// so the scheduler sees the same dependences either way.
pub fn accesses(a: &SharedTiles, task: CholeskyTask) -> Vec<Access> {
    match task {
        CholeskyTask::Potrf { k } => vec![Access::read_write(a.data_id(k, k))],
        CholeskyTask::Trsm { k, i } => {
            vec![
                Access::read(a.data_id(k, k)),
                Access::read_write(a.data_id(i, k)),
            ]
        }
        CholeskyTask::Syrk { k, i } => {
            vec![
                Access::read(a.data_id(i, k)),
                Access::read_write(a.data_id(i, i)),
            ]
        }
        CholeskyTask::Gemm { k, i, j } => vec![
            Access::read(a.data_id(i, k)),
            Access::read(a.data_id(j, k)),
            Access::read_write(a.data_id(i, j)),
        ],
    }
}

/// Static priority: earlier panels first, factorization kernels above
/// updates (a classic critical-path-friendly ordering; only the `Priority`
/// policy consults it).
pub fn priority(nt: usize, task: CholeskyTask) -> i64 {
    let (k, bonus) = match task {
        CholeskyTask::Potrf { k } => (k, 3),
        CholeskyTask::Trsm { k, .. } => (k, 2),
        CholeskyTask::Syrk { k, .. } => (k, 1),
        CholeskyTask::Gemm { k, .. } => (k, 0),
    };
    ((nt - k) as i64) * 4 + bonus
}

/// Execute one Cholesky task on the shared tiles (real mode).
///
/// Input tiles are cloned under brief read locks so concurrent readers of
/// the same panel tile do not hold each other up during the kernel.
pub fn execute_real(a: &SharedTiles, task: CholeskyTask) {
    match task {
        CholeskyTask::Potrf { k } => {
            let mut akk = a.write(k, k);
            dpotf2(&mut akk).expect("matrix not positive definite");
        }
        CholeskyTask::Trsm { k, i } => {
            let akk = a.read(k, k).clone();
            let mut aik = a.write(i, k);
            dtrsm(
                Side::Right,
                Uplo::Lower,
                Trans::Yes,
                Diag::NonUnit,
                1.0,
                &akk,
                &mut aik,
            );
        }
        CholeskyTask::Syrk { k, i } => {
            let aik = a.read(i, k).clone();
            let mut aii = a.write(i, i);
            dsyrk(Uplo::Lower, Trans::No, -1.0, &aik, 1.0, &mut aii);
        }
        CholeskyTask::Gemm { k, i, j } => {
            let aik = a.read(i, k).clone();
            let ajk = a.read(j, k).clone();
            let mut aij = a.write(i, j);
            dgemm(Trans::No, Trans::Yes, -1.0, &aik, &ajk, 1.0, &mut aij);
        }
    }
}

/// Submit the whole tile Cholesky task stream to the runtime. Returns the
/// number of tasks submitted. Call `rt.seal()` afterwards (the drivers do).
pub fn submit(rt: &Runtime, a: &SharedTiles, mode: &ExecMode) -> u64 {
    submit_where(rt, a, mode, &mut |_| true)
}

/// Submit the Cholesky stream filtered by `keep` over the 0-based stream
/// index. The fault-replay driver uses this to re-submit only the tasks a
/// permanent failure left incomplete; skipped tasks contribute no hazards,
/// so the survivors' mutual ordering is exactly the full stream's.
pub fn submit_where(
    rt: &Runtime,
    a: &SharedTiles,
    mode: &ExecMode,
    keep: &mut dyn FnMut(u64) -> bool,
) -> u64 {
    assert_eq!(a.mt(), a.nt(), "Cholesky requires a square tile grid");
    let nt = a.nt();
    let mut count = 0;
    for (idx, task) in task_stream(nt).into_iter().enumerate() {
        if !keep(idx as u64) {
            continue;
        }
        let label = task.label();
        let acc = accesses(a, task);
        let prio = priority(nt, task);
        let desc = match mode {
            ExecMode::Real => {
                let tiles = a.clone();
                TaskDesc::new(label, acc, move |_ctx| execute_real(&tiles, task))
            }
            ExecMode::Simulated(session) => TaskDesc::new(label, acc, session.planned_body(label)),
        };
        rt.submit(desc.with_priority(prio));
        count += 1;
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use supersim_core::{KernelModel, ModelRegistry, SimConfig, SimSession};
    use supersim_runtime::{RuntimeConfig, SchedulerKind};
    use supersim_tile::generate::spd;
    use supersim_tile::verify::cholesky_residual;
    use supersim_tile::TiledMatrix;

    #[test]
    fn real_run_factors_correctly_all_schedulers() {
        for kind in [
            SchedulerKind::Quark,
            SchedulerKind::StarPu,
            SchedulerKind::OmpSs,
        ] {
            let n = 24;
            let a0 = spd(n, 7);
            let shared = SharedTiles::new(TiledMatrix::from_matrix(&a0, 6), 0);
            let rt = supersim_runtime::profiles::runtime_for(kind, 3);
            submit(&rt, &shared, &ExecMode::Real);
            rt.seal();
            rt.wait_all().unwrap();
            let res = cholesky_residual(&a0, &shared.to_tiled());
            assert!(res < 1e-12, "{kind:?}: residual {res}");
        }
    }

    #[test]
    fn sim_run_produces_consistent_trace() {
        let n = 20;
        let a0 = spd(n, 8);
        let shared = SharedTiles::new(TiledMatrix::from_matrix(&a0, 5), 0);
        let mut models = ModelRegistry::new();
        for label in ["dpotrf", "dtrsm", "dsyrk", "dgemm"] {
            models.insert(label, KernelModel::constant(1.0));
        }
        let session = SimSession::new(models, SimConfig::default());
        let rt = Runtime::new(RuntimeConfig::simple(2));
        session.attach_quiesce(rt.probe());
        let count = submit(&rt, &shared, &ExecMode::Simulated(session.clone()));
        rt.seal();
        rt.wait_all().unwrap();
        assert_eq!(count, 20); // nt=4: 4+6+6+4 = 20 tasks
        let trace = session.finish_trace(2);
        assert_eq!(trace.len(), 20);
        assert!(trace.validate(1e-9).is_ok());
        // Unit durations, critical path of tile Cholesky nt=4 on 2 workers:
        // lower bound ceil(20/2) = 10; must be >= critical path (10 by
        // potrf/trsm/syrk chain structure) and <= 20 (serial).
        let span = trace.makespan();
        assert!((10.0..=20.0).contains(&span), "makespan {span}");
    }

    #[test]
    fn real_and_sim_have_same_kernel_population() {
        let n = 18;
        let a0 = spd(n, 9);

        // Real run.
        let shared = SharedTiles::new(TiledMatrix::from_matrix(&a0, 6), 0);
        let recorder = supersim_trace::TraceRecorder::new();
        let rt = Runtime::with_trace(RuntimeConfig::simple(2), Some(recorder.clone()));
        submit(&rt, &shared, &ExecMode::Real);
        rt.seal();
        rt.wait_all().unwrap();
        let real_trace = recorder.finish(2);

        // Simulated run.
        let shared2 = SharedTiles::new(TiledMatrix::from_matrix(&a0, 6), 0);
        let mut models = ModelRegistry::new();
        for label in ["dpotrf", "dtrsm", "dsyrk", "dgemm"] {
            models.insert(label, KernelModel::constant(0.001));
        }
        let session = SimSession::new(models, SimConfig::default());
        let rt2 = Runtime::new(RuntimeConfig::simple(2));
        session.attach_quiesce(rt2.probe());
        submit(&rt2, &shared2, &ExecMode::Simulated(session.clone()));
        rt2.seal();
        rt2.wait_all().unwrap();
        let sim_trace = session.finish_trace(2);

        let cmp = supersim_trace::TraceComparison::compare(&real_trace, &sim_trace);
        assert!(cmp.same_kernel_population, "kernel populations must match");
        assert_eq!(cmp.matched_tasks, real_trace.len());
    }

    #[test]
    fn priorities_monotone_in_panel() {
        assert!(
            priority(4, CholeskyTask::Potrf { k: 0 }) > priority(4, CholeskyTask::Potrf { k: 1 })
        );
        assert!(
            priority(4, CholeskyTask::Potrf { k: 0 })
                > priority(4, CholeskyTask::Gemm { k: 0, i: 2, j: 1 })
        );
    }
}
