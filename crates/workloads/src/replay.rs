//! The DES replay backend's driver layer: build the same task streams the
//! threaded drivers submit — as plain data instead of live submissions —
//! and run them through [`supersim_des::ReplayEngine`].
//!
//! The contract is bit-for-bit fidelity on the supported profiles: for a
//! given `(seed, scenario)`, the canonical trace of a DES run equals the
//! threaded engine's. That holds because every decision is shared, not
//! reimplemented: hazards come from `supersim_runtime::HazardTracker`,
//! dispatch order from the literal policy objects of `make_policy`,
//! durations from [`supersim_core::SimSession::plan_ranked`], and cluster
//! transfers from [`supersim_cluster::Coherence`]. What this module adds
//! is only the enumeration of each algorithm's task stream in submission
//! order, with the same ranks [`SimSession::next_rank`] would hand the
//! threaded `planned_body` closures.

use crate::cluster::{cluster_replay_tasks, exec_cluster, ClusterRun};
use crate::data::SharedTiles;
use crate::driver::{exec_sim, Algorithm, SimRun};
use std::sync::Arc;
use supersim_cluster::{ClusterSpec, Coherence, Interconnect, Placement};
use supersim_core::SimSession;
use supersim_des::{ReplayBody, ReplayEngine, ReplayTask, Unsupported};
use supersim_runtime::{PolicyKind, RuntimeConfig, SchedulerKind};
use supersim_tile::cholesky::task_stream as cholesky_stream;
use supersim_tile::flops;
use supersim_tile::lu::task_stream as lu_stream;
use supersim_tile::qr::task_stream as qr_stream;

/// Which execution engine runs a simulated scenario.
///
/// Both backends produce the same canonical trace on the supported
/// profiles (Quark single-node, Pinned cluster); they differ only in host
/// resources: the threaded engine spends one OS thread per simulated
/// worker, the DES backend replays the schedule on a single thread and
/// scales to thousands of simulated workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// The paper's scheduler-in-the-loop design: the real runtime (with
    /// its real locks, policy and worker threads) drives virtual time.
    #[default]
    Threaded,
    /// The pure-DES replay engine: a single-threaded event loop that
    /// reproduces the threaded schedule without host threads. Rejects
    /// profiles whose dispatch depends on host-thread racing
    /// (work-stealing, locality-aware) with [`Unsupported`].
    Des,
}

impl Backend {
    /// Parse a CLI string.
    pub fn parse(s: &str) -> Option<Backend> {
        match s {
            "threaded" => Some(Backend::Threaded),
            "des" => Some(Backend::Des),
            _ => None,
        }
    }

    /// Display name (CLI and JSON).
    pub fn name(self) -> &'static str {
        match self {
            Backend::Threaded => "threaded",
            Backend::Des => "des",
        }
    }

    /// Whether this backend can run the given scheduler profile. The
    /// threaded engine runs everything; [`Backend::Des`] defers to
    /// [`supersim_des::replayable_policy`], so front-ends can refuse an
    /// unsupported combination cleanly before building a session.
    pub fn supports(self, kind: SchedulerKind) -> Result<(), Unsupported> {
        match self {
            Backend::Threaded => Ok(()),
            Backend::Des => supersim_des::replayable_policy(kind.config(1).policy),
        }
    }
}

/// Enumerate an algorithm's single-node task stream as [`ReplayTask`]s, in
/// the exact order the threaded `submit_where` drivers submit, claiming
/// the same per-label ranks from `session`. `keep` filters by 0-based
/// stream index (fault replay re-submits only the incomplete tail);
/// skipped tasks claim no rank, matching the threaded path where only
/// submitted tasks call `planned_body`.
pub(crate) fn replay_tasks_single(
    alg: Algorithm,
    a: &SharedTiles,
    t: Option<&SharedTiles>,
    session: &SimSession,
    keep: &mut dyn FnMut(u64) -> bool,
) -> Vec<ReplayTask> {
    assert_eq!(a.mt(), a.nt(), "factorizations need a square tile grid");
    let nt = a.nt();
    let mut tasks = Vec::new();
    let mut push = |label: &str, accesses: Vec<supersim_dag::Access>, priority: i64| {
        tasks.push(ReplayTask {
            label: label.to_string(),
            accesses,
            priority,
            pin: None,
            body: ReplayBody::Ranked {
                rank: session.next_rank(label),
            },
        });
    };
    match alg {
        Algorithm::Cholesky => {
            for (idx, task) in cholesky_stream(nt).into_iter().enumerate() {
                if !keep(idx as u64) {
                    continue;
                }
                push(
                    task.label(),
                    crate::cholesky::accesses(a, task),
                    crate::cholesky::priority(nt, task),
                );
            }
        }
        Algorithm::Qr => {
            let t = t.expect("QR needs a T grid");
            for (idx, task) in qr_stream(nt).into_iter().enumerate() {
                if !keep(idx as u64) {
                    continue;
                }
                push(
                    task.label(),
                    crate::qr::accesses(a, t, task),
                    crate::qr::priority(nt, task),
                );
            }
        }
        Algorithm::Lu => {
            for (idx, task) in lu_stream(nt).into_iter().enumerate() {
                if !keep(idx as u64) {
                    continue;
                }
                push(
                    task.label(),
                    crate::lu::accesses(a, task),
                    crate::lu::priority(nt, task),
                );
            }
        }
    }
    tasks
}

/// Single-node simulated run on the DES replay backend. Mirrors
/// [`exec_sim`] exactly: same model checks, same warm-up plan, same
/// session trace — only the engine differs.
pub(crate) fn exec_sim_des(
    alg: Algorithm,
    kind: SchedulerKind,
    workers: usize,
    n: usize,
    nb: usize,
    session: Arc<SimSession>,
) -> Result<SimRun, Unsupported> {
    let a = SharedTiles::layout_only(n, n, nb, 0);
    let t = match alg {
        Algorithm::Qr => Some(SharedTiles::layout_only(n, n, nb, a.id_range().1)),
        _ => None,
    };
    for label in alg.labels() {
        session.models().expect(label);
    }
    let engine = ReplayEngine::new(&kind.config(workers), session.clone())?;
    session.set_warmup_slots(workers);
    let t0 = std::time::Instant::now();
    let tasks = replay_tasks_single(alg, &a, t.as_ref(), &session, &mut |_| true);
    let outcome = engine.run(tasks);
    let wall_seconds = t0.elapsed().as_secs_f64();
    let trace = session.finish_trace(workers);

    Ok(SimRun {
        algorithm: alg,
        n,
        nb,
        workers,
        predicted_seconds: outcome.makespan,
        wall_seconds,
        trace,
        gflops: flops::gflops(alg.flops(n), outcome.makespan),
        stats: outcome.stats,
    })
}

/// Distributed simulated run on the DES replay backend. Mirrors
/// [`exec_cluster`]: the same [`Coherence`] layer plans the same transfer
/// tasks at the same stream positions, so task ids, dependences and
/// NIC-lane occupancy are identical; the `Pinned` dispatch replays through
/// the literal policy object.
pub(crate) fn exec_cluster_des(
    alg: Algorithm,
    spec: ClusterSpec,
    interconnect: Arc<dyn Interconnect>,
    placement: Arc<dyn Placement>,
    n: usize,
    nb: usize,
    session: Arc<SimSession>,
) -> Result<ClusterRun, Unsupported> {
    let a = SharedTiles::layout_only(n, n, nb, 0);
    assert_eq!(a.mt(), a.nt(), "factorizations need a square tile grid");
    for i in 0..a.mt() {
        for j in 0..a.nt() {
            assert!(
                placement.owner(i, j) < spec.nodes,
                "placement {} maps tile ({i},{j}) to node {} but the cluster has {} nodes",
                placement.name(),
                placement.owner(i, j),
                spec.nodes
            );
        }
    }
    for label in alg.labels() {
        session.models().expect(label);
    }

    let config = RuntimeConfig {
        workers: spec.total_workers(),
        policy: PolicyKind::Pinned,
        window: usize::MAX,
        name: "cluster",
    };
    let engine = ReplayEngine::new(&config, session.clone())?;
    session.set_warmup_slots(spec.total_compute_workers());
    let mut coherence = Coherence::new(spec.nodes, a.id_range().1);
    let t0 = std::time::Instant::now();
    let (tasks, compute_tasks) = cluster_replay_tasks(
        alg,
        &a,
        &*placement,
        &spec,
        &*interconnect,
        &session,
        &mut coherence,
        &mut |_| true,
    );
    let outcome = engine.run(tasks);
    let wall_seconds = t0.elapsed().as_secs_f64();
    let trace = session.finish_trace(spec.total_workers());

    let nic_busy_seconds = (0..spec.nodes)
        .map(|node| {
            let (lo, hi) = spec.nic_range(node);
            (lo..hi)
                .flat_map(|w| trace.lane(w))
                .map(|e| e.duration())
                .sum()
        })
        .collect();
    let mut node_owned_bytes = vec![0u64; spec.nodes];
    for i in 0..a.mt() {
        for j in 0..a.nt() {
            node_owned_bytes[placement.owner(i, j)] += a.tile_bytes(i, j);
        }
    }

    Ok(ClusterRun {
        algorithm: alg,
        n,
        nb,
        spec,
        interconnect: interconnect.name(),
        placement: placement.name(),
        compute_tasks,
        transfers: coherence.transfers(),
        transfer_bytes: coherence.transfer_bytes(),
        node_transfers: coherence.node_transfers().to_vec(),
        node_bytes: coherence.node_bytes().to_vec(),
        nic_busy_seconds,
        node_owned_bytes,
        predicted_seconds: outcome.makespan,
        wall_seconds,
        gflops: flops::gflops(alg.flops(n), outcome.makespan),
        trace,
        stats: outcome.stats,
    })
}

/// Backend dispatch for single-node simulated runs. A DES run of an
/// unsupported profile panics with the [`Unsupported`] message.
pub(crate) fn exec_sim_backend(
    backend: Backend,
    alg: Algorithm,
    kind: SchedulerKind,
    workers: usize,
    n: usize,
    nb: usize,
    session: Arc<SimSession>,
) -> SimRun {
    match backend {
        Backend::Threaded => exec_sim(alg, kind, workers, n, nb, session),
        Backend::Des => {
            exec_sim_des(alg, kind, workers, n, nb, session).unwrap_or_else(|e| panic!("{e}"))
        }
    }
}

/// Backend dispatch for distributed simulated runs.
#[allow(clippy::too_many_arguments)]
pub(crate) fn exec_cluster_backend(
    backend: Backend,
    alg: Algorithm,
    spec: ClusterSpec,
    interconnect: Arc<dyn Interconnect>,
    placement: Arc<dyn Placement>,
    n: usize,
    nb: usize,
    session: Arc<SimSession>,
) -> ClusterRun {
    match backend {
        Backend::Threaded => exec_cluster(alg, spec, interconnect, placement, n, nb, session),
        Backend::Des => exec_cluster_des(alg, spec, interconnect, placement, n, nb, session)
            .unwrap_or_else(|e| panic!("{e}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;
    use supersim_core::{KernelModel, ModelRegistry};

    fn models(alg: Algorithm) -> ModelRegistry {
        let mut m = ModelRegistry::new();
        for l in alg.labels() {
            // Non-degenerate durations: a constant model would mask
            // tie-break divergence between the backends.
            let dist = supersim_dist::Dist::log_normal(-4.6, 0.2).unwrap();
            m.insert(*l, KernelModel::new(dist));
        }
        m
    }

    fn base(alg: Algorithm) -> Scenario {
        Scenario::new(alg)
            .n(60)
            .tile_size(12)
            .workers(3)
            .seed(17)
            .models(models(alg))
    }

    #[test]
    fn des_matches_threaded_canonical_trace_all_algorithms() {
        for alg in [Algorithm::Cholesky, Algorithm::Qr, Algorithm::Lu] {
            let threaded = base(alg).run_sim();
            let des = base(alg).backend(Backend::Des).run_sim();
            assert_eq!(
                threaded.trace.canonical(),
                des.trace.canonical(),
                "{alg:?}: DES replay diverged from the threaded schedule"
            );
            assert_eq!(threaded.predicted_seconds, des.predicted_seconds);
        }
    }

    #[test]
    fn des_cluster_matches_threaded_canonical_trace() {
        use supersim_cluster::{ClusterSpec, Hockney, SharedLink, ZeroCost};
        let ics: [Arc<dyn Interconnect>; 3] = [
            Arc::new(ZeroCost),
            Arc::new(Hockney::new(1e-4, 1e9)),
            Arc::new(SharedLink::new(1e-4, 1e9)),
        ];
        for ic in ics {
            let mk = || {
                base(Algorithm::Cholesky)
                    .cluster(ClusterSpec::new(2, 2))
                    .interconnect(ic.clone())
            };
            let threaded = mk().run_cluster();
            let des = mk().backend(Backend::Des).run_cluster();
            assert_eq!(
                threaded.trace.canonical(),
                des.trace.canonical(),
                "{}: DES cluster replay diverged",
                ic.name()
            );
            assert_eq!(threaded.transfers, des.transfers);
            assert_eq!(threaded.predicted_seconds, des.predicted_seconds);
        }
    }

    #[test]
    fn des_matches_threaded_under_faults() {
        use supersim_faults::FaultPlan;
        // Lane-placement-independent events (the repo's determinism
        // contract, see faultsim): a node-scope straggler, rank-keyed
        // transients, and a permanent kill driving the two-phase replay.
        let mk = |backend| {
            base(Algorithm::Cholesky)
                .backend(backend)
                .faults(
                    FaultPlan::new()
                        .straggler_node(0, 0.0, 0.2, 3.0)
                        .transient_for("dgemm", 3, 1, 0.5)
                        .kill_worker(2, 0.15),
                )
                .run_faults()
        };
        let threaded = mk(Backend::Threaded);
        let des = mk(Backend::Des);
        assert_eq!(threaded.trace.canonical(), des.trace.canonical());
        assert_eq!(
            threaded.clean_trace.canonical(),
            des.clean_trace.canonical()
        );
        assert_eq!(threaded.faulted_makespan, des.faulted_makespan);
        assert_eq!(threaded.report.retries, des.report.retries);
        assert_eq!(threaded.report.restarted_tasks, des.report.restarted_tasks);
    }

    #[test]
    fn des_matches_threaded_under_cluster_node_kill() {
        use supersim_cluster::ClusterSpec;
        use supersim_faults::FaultPlan;
        let mk = |backend| {
            base(Algorithm::Cholesky)
                .backend(backend)
                .cluster(ClusterSpec::new(4, 2))
                .faults(FaultPlan::new().kill_node(1, 0.05))
                .run_faults()
        };
        let threaded = mk(Backend::Threaded);
        let des = mk(Backend::Des);
        assert_eq!(threaded.trace.canonical(), des.trace.canonical());
        assert_eq!(threaded.faulted_makespan, des.faulted_makespan);
        assert_eq!(threaded.report.restarted_tasks, des.report.restarted_tasks);
    }

    #[test]
    fn des_runs_on_one_host_thread() {
        // The defining property: a wide simulated machine without wide
        // host parallelism. 256 simulated workers, zero worker threads.
        let run = base(Algorithm::Cholesky)
            .workers(256)
            .backend(Backend::Des)
            .run_sim();
        assert_eq!(run.workers, 256);
        assert_eq!(run.stats.per_worker_tasks.len(), 256);
        assert!(run.trace.validate(1e-9).is_ok());
    }

    #[test]
    fn unsupported_profiles_error_clearly() {
        for kind in [SchedulerKind::StarPu, SchedulerKind::OmpSs] {
            let err = std::panic::catch_unwind(|| {
                base(Algorithm::Cholesky)
                    .scheduler(kind)
                    .backend(Backend::Des)
                    .run_sim()
            })
            .expect_err("stealing/locality profiles must be rejected");
            let msg = err
                .downcast_ref::<String>()
                .cloned()
                .unwrap_or_else(|| err.downcast_ref::<&str>().unwrap_or(&"").to_string());
            assert!(
                msg.contains("replay deterministically"),
                "panic message must name the unsupported policy: {msg}"
            );
        }
    }

    #[test]
    fn backend_parses_and_names() {
        assert_eq!(Backend::parse("des"), Some(Backend::Des));
        assert_eq!(Backend::parse("threaded"), Some(Backend::Threaded));
        assert_eq!(Backend::parse("nope"), None);
        assert_eq!(Backend::default().name(), "threaded");
        assert_eq!(Backend::Des.name(), "des");
    }
}
