//! Fault-injected execution: clean-vs-faulted comparison and the
//! two-phase replay of permanent failures.
//!
//! Straggler, transient and link-degradation events perturb a run *in
//! place* — the compiled [`FaultPlan`] is attached to the session as a
//! [`supersim_core::FaultInjector`] and the single simulation pass yields
//! the faulted schedule. A **permanent failure** cannot be simulated in
//! one pass (lanes vanish mid-run, and host-side aborts would be
//! nondeterministic), so it is replayed in two deterministic phases:
//!
//! * **Phase A** runs the full workload with every non-permanent event
//!   injected, then *cuts* the trace analytically at the failure time
//!   `T`. On a single node (shared memory) the machine quiesces
//!   fail-stop: work completed by `T` survives, every in-flight attempt
//!   — on dead and surviving lanes alike — aborts, is truncated and
//!   marked lost, and re-runs in phase B. On a cluster, recovery rolls
//!   back to the last coordinated checkpoint (or to scratch without a
//!   [`CheckpointPolicy`]): every span after the rollback point is lost.
//!   Either way the cut is a pure function of the trace *times*, never
//!   of lane placement — which host lane a task lands on races run to
//!   run while virtual times are seed-deterministic (see
//!   [`supersim_trace::Trace::canonical`]) — so the replay decision is a
//!   pure function of `(seed, FaultPlan)`.
//! * **Phase B** forks the session (fresh clock, same models and seed
//!   derivation), rebuilds the machine with the dead lanes
//!   decommissioned — and, for a dead node, the placement remapped to
//!   the survivors — and re-submits exactly the tasks the cut left
//!   incomplete. Skipped tasks contribute no hazards, so the survivors'
//!   dependence structure is the full stream's.
//!
//! The phases are stitched onto one timeline: phase-B times shift by the
//! restart offset (`T` plus the recovery policy's restart delay and any
//! checkpoint overhead), phase-B task ids shift past phase A's. Durations re-sample in phase B (a re-executed attempt
//! is a new draw, keyed by the fork's fresh submission ranks); the
//! *decision* of what re-runs is a pure function of `(seed, FaultPlan)`,
//! so identical inputs give identical stitched traces.

use crate::cluster::{cluster_replay_tasks, submit_algorithm_cluster};
use crate::data::SharedTiles;
use crate::driver::{submit_algorithm_where, Algorithm};
use crate::mode::ExecMode;
use crate::replay::{exec_cluster_backend, exec_sim_backend, replay_tasks_single, Backend};
use crate::scenario::Scenario;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use supersim_cluster::{ClusterEngine, ClusterSpec, Coherence, Placement, TRANSFER_LABEL};
use supersim_des::ReplayEngine;
use supersim_faults::{
    critical_lane, mark_lost, stitch, CheckpointPolicy, DegradationReport, FaultAttribution,
    FaultEvent, FaultPlan, FaultScope,
};
use supersim_runtime::{PolicyKind, Runtime, RuntimeConfig};
use supersim_trace::fault::{base_kernel, event_kind, SpanKind};
use supersim_trace::{Trace, TraceEvent};

/// Result of [`Scenario::run_faults`]: both runs and the comparison.
#[derive(Debug, Clone)]
pub struct FaultOutcome {
    /// Trace of the fault-free run.
    pub clean_trace: Trace,
    /// Trace under the full fault plan (failed attempts, backoffs, lost
    /// spans and restarted work all present, marked per
    /// `supersim_trace::fault`).
    pub trace: Trace,
    /// Makespan of the clean run (virtual seconds).
    pub clean_makespan: f64,
    /// Makespan under the fault plan.
    pub faulted_makespan: f64,
    /// The full degradation report (also serializable to JSON).
    pub report: DegradationReport,
}

/// One plan's execution result, before report assembly.
#[derive(Debug, Clone)]
struct RunResult {
    trace: Trace,
    makespan: f64,
    checkpoint_overhead: f64,
    restarted: u64,
}

/// Placement wrapper re-homing a dead node's tiles onto the survivors,
/// cyclically by tile coordinates — the re-placement step of node-failure
/// recovery. Deterministic: a pure function of the inner placement and
/// the dead node.
struct RemapPlacement {
    inner: Arc<dyn Placement>,
    dead: usize,
    nodes: usize,
}

impl Placement for RemapPlacement {
    fn name(&self) -> String {
        format!("{}+remap-n{}", self.inner.name(), self.dead)
    }

    fn owner(&self, i: usize, j: usize) -> usize {
        let o = self.inner.owner(i, j);
        if o != self.dead {
            return o;
        }
        let s = (i + j) % (self.nodes - 1);
        if s >= self.dead {
            s + 1
        } else {
            s
        }
    }
}

/// Retries / aborted / lost totals, derived from the final trace (so the
/// cut of a phased replay is respected exactly). Summation runs in
/// canonical (task id, start) order: event order in the recorded trace is
/// lane-race dependent, and float addition order must not leak into the
/// report.
fn fault_numbers(trace: &Trace) -> (u64, f64, f64) {
    let mut events: Vec<&supersim_trace::TraceEvent> = trace.spans().iter().collect();
    events.sort_by(|a, b| a.task_id.cmp(&b.task_id).then(a.start.total_cmp(&b.start)));
    let (mut retries, mut aborted, mut lost) = (0u64, 0.0f64, 0.0f64);
    for e in events {
        match event_kind(e) {
            SpanKind::Failed => {
                retries += 1;
                aborted += e.end - e.start;
            }
            SpanKind::Lost => lost += e.end - e.start,
            SpanKind::Normal | SpanKind::Backoff => {}
        }
    }
    (retries, aborted, lost)
}

/// Map each compute task id in `trace` to its 0-based submission-stream
/// index: the i-th distinct non-transfer task id in ascending order is
/// the i-th task of the algorithm's stream (the runtime hands out ids in
/// submission order; transfer tasks interleave but are filtered out).
fn stream_indices(trace: &Trace) -> HashMap<u64, u64> {
    let mut ids: Vec<u64> = trace
        .spans()
        .iter()
        .filter(|e| base_kernel(&e.kernel) != TRANSFER_LABEL)
        .map(|e| e.task_id)
        .collect();
    ids.sort_unstable();
    ids.dedup();
    ids.into_iter()
        .enumerate()
        .map(|(i, id)| (id, i as u64))
        .collect()
}

fn describe_event(ev: &FaultEvent) -> String {
    let scope = |s: &FaultScope| match s {
        FaultScope::Worker(w) => format!("worker {w}"),
        FaultScope::Node(n) => format!("node {n}"),
    };
    match ev {
        FaultEvent::Straggler {
            scope: s,
            from,
            until,
            factor,
        } => format!("straggler {} x{factor} [{from}, {until})", scope(s)),
        FaultEvent::PermanentFailure { scope: s, at } => {
            format!("kill {} at {at}", scope(s))
        }
        FaultEvent::Transient {
            label,
            period,
            failures,
            fail_fraction,
        } => format!(
            "transient {} period={period} failures={failures} frac={fail_fraction}",
            label.as_deref().unwrap_or("any-kernel")
        ),
        FaultEvent::LinkDegradation {
            node,
            from,
            until,
            factor,
        } => format!("degrade link node {node} x{factor} [{from}, {until})"),
    }
}

/// Run one plan to completion (dispatching to the phased replay when it
/// contains a permanent failure).
fn run_plan(sc: &Scenario, plan: &FaultPlan, used: &mut bool) -> RunResult {
    match plan.permanent_failure() {
        None => run_simple(sc, plan, used),
        Some((scope, at)) => match sc.cluster.clone() {
            None => replay_single(sc, plan, scope, at, used),
            Some(spec) => replay_cluster(sc, plan, scope, at, spec, used),
        },
    }
}

fn run_simple(sc: &Scenario, plan: &FaultPlan, used: &mut bool) -> RunResult {
    let session = sc.fresh_session(*used);
    *used = true;
    sc.attach_plan(&session, plan, 0.0);
    let (trace, makespan) = match sc.cluster.clone() {
        None => {
            let run = exec_sim_backend(
                sc.backend,
                sc.algorithm,
                sc.scheduler,
                sc.workers,
                sc.matrix_order(),
                sc.tile_size_of(),
                session,
            );
            (run.trace, run.predicted_seconds)
        }
        Some(spec) => {
            let run = exec_cluster_backend(
                sc.backend,
                sc.algorithm,
                spec,
                sc.resolved_interconnect(),
                sc.resolved_placement(),
                sc.matrix_order(),
                sc.tile_size_of(),
                session,
            );
            (run.trace, run.predicted_seconds)
        }
    };
    RunResult {
        trace,
        makespan,
        checkpoint_overhead: 0.0,
        restarted: 0,
    }
}

/// Cut phase A at the failure: events ending by `rollback` are kept as
/// completed; events still running (or rolled back) before `cut` are
/// truncated and marked lost; events starting after `cut` never
/// happened. On a single node `rollback == cut == T` (fail-stop
/// quiesce); on a cluster `rollback` is the last checkpoint before the
/// `cut`. Deliberately a pure function of event *times* — never of lane
/// placement, which is scheduler-race dependent — so identical
/// `(seed, plan)` inputs cut identically.
fn cut_phase_a(trace: &Trace, rollback: f64, cut: f64) -> (Vec<TraceEvent>, HashSet<u64>) {
    let mut kept = Vec::new();
    let mut completed_ids = HashSet::new();
    for e in trace.spans() {
        if e.end <= rollback {
            if matches!(event_kind(e), SpanKind::Normal) {
                completed_ids.insert(e.task_id);
            }
            kept.push(e.clone());
        } else if e.start < cut {
            kept.push(mark_lost(e, Some(cut)));
        }
    }
    (kept, completed_ids)
}

fn replay_single(
    sc: &Scenario,
    plan: &FaultPlan,
    scope: FaultScope,
    at: f64,
    used: &mut bool,
) -> RunResult {
    let dead: HashSet<usize> = sc.lane_map().lanes_of(scope).into_iter().collect();
    assert!(
        dead.len() < sc.workers,
        "a permanent failure must leave at least one surviving worker"
    );

    // Phase A: the full run (with any slowdown/transient events live).
    let session_a = sc.fresh_session(*used);
    *used = true;
    sc.attach_plan(&session_a, plan, 0.0);
    let run_a = exec_sim_backend(
        sc.backend,
        sc.algorithm,
        sc.scheduler,
        sc.workers,
        sc.matrix_order(),
        sc.tile_size_of(),
        session_a.clone(),
    );
    if at >= run_a.trace.t_max() {
        // The failure lands after completion: nothing to replay.
        return RunResult {
            trace: run_a.trace,
            makespan: run_a.predicted_seconds,
            checkpoint_overhead: 0.0,
            restarted: 0,
        };
    }

    // Shared memory, fail-stop quiesce: work completed by the failure
    // survives; every in-flight attempt aborts and re-runs with the
    // survivors in phase B.
    let (kept, completed_ids) = cut_phase_a(&run_a.trace, at, at);
    let stream = stream_indices(&run_a.trace);
    let done: HashSet<u64> = completed_ids
        .iter()
        .filter_map(|id| stream.get(id).copied())
        .collect();
    let offset = at + plan.recovery.restart_delay;
    let id_offset = run_a
        .trace
        .spans()
        .iter()
        .map(|e| e.task_id)
        .max()
        .unwrap_or(0)
        + 1;

    // Phase B: the survivors re-run the incomplete tail on a fresh clock.
    let session_b = session_a.fork();
    sc.attach_plan(&session_b, plan, offset);
    let n = sc.matrix_order();
    let nb = sc.tile_size_of();
    let a = SharedTiles::layout_only(n, n, nb, 0);
    let t = match sc.algorithm {
        Algorithm::Qr => Some(SharedTiles::layout_only(n, n, nb, a.id_range().1)),
        _ => None,
    };
    let (trace_b, restarted) = match sc.backend {
        Backend::Threaded => {
            let rt = Runtime::new(sc.scheduler.config(sc.workers));
            session_b.attach_quiesce(rt.probe());
            // Restart means cold caches: warm-up is charged again, like
            // any fresh run.
            session_b.set_warmup_slots(sc.workers);
            for &w in &dead {
                rt.decommission(w);
            }
            let mode = ExecMode::Simulated(session_b.clone());
            let restarted =
                submit_algorithm_where(sc.algorithm, &rt, &a, t.as_ref(), &mode, &mut |i| {
                    !done.contains(&i)
                });
            rt.seal();
            rt.wait_all().expect("fault-replay phase B failed");
            (session_b.finish_trace(sc.workers), restarted)
        }
        Backend::Des => {
            let mut engine = ReplayEngine::new(&sc.scheduler.config(sc.workers), session_b.clone())
                .unwrap_or_else(|e| panic!("{e}"));
            session_b.set_warmup_slots(sc.workers);
            for &w in &dead {
                engine.decommission(w);
            }
            let tasks = replay_tasks_single(sc.algorithm, &a, t.as_ref(), &session_b, &mut |i| {
                !done.contains(&i)
            });
            let restarted = tasks.len() as u64;
            engine.run(tasks);
            (session_b.finish_trace(sc.workers), restarted)
        }
    };

    let trace = stitch(sc.workers, kept, &trace_b, offset, id_offset);
    RunResult {
        makespan: trace.t_max(),
        trace,
        checkpoint_overhead: 0.0,
        restarted,
    }
}

fn replay_cluster(
    sc: &Scenario,
    plan: &FaultPlan,
    scope: FaultScope,
    at: f64,
    spec: ClusterSpec,
    used: &mut bool,
) -> RunResult {
    match scope {
        FaultScope::Node(_) => assert!(spec.nodes > 1, "killing the only node leaves no survivors"),
        FaultScope::Worker(w) => {
            assert!(
                w < spec.total_compute_workers(),
                "cluster worker kills target compute lanes (lane {w} is a NIC)"
            );
            assert!(
                spec.workers_per_node > 1,
                "killing a node's only compute worker strands its pinned tasks; \
                 kill the node instead"
            );
        }
    }

    // Phase A.
    let session_a = sc.fresh_session(*used);
    *used = true;
    sc.attach_plan(&session_a, plan, 0.0);
    let ic = sc.resolved_interconnect();
    let base_pl = sc.resolved_placement();
    let run_a = exec_cluster_backend(
        sc.backend,
        sc.algorithm,
        spec.clone(),
        ic.clone(),
        base_pl.clone(),
        sc.matrix_order(),
        sc.tile_size_of(),
        session_a.clone(),
    );
    if at >= run_a.trace.t_max() {
        return RunResult {
            trace: run_a.trace,
            makespan: run_a.predicted_seconds,
            checkpoint_overhead: 0.0,
            restarted: 0,
        };
    }

    // Distributed memory: recovery rolls back to the last coordinated
    // checkpoint (scratch without a policy). Snapshots taken before the
    // failure plus the restore are pure overhead on the restart offset.
    let (rollback, checkpoint_overhead) = match plan.recovery.checkpoint {
        Some(CheckpointPolicy {
            interval,
            snapshot_cost,
            restore_cost,
        }) => {
            let k = (at / interval).floor();
            (k * interval, k * snapshot_cost + restore_cost)
        }
        None => (0.0, 0.0),
    };
    let (kept, completed_ids) = cut_phase_a(&run_a.trace, rollback, at);
    let stream = stream_indices(&run_a.trace);
    let done: HashSet<u64> = completed_ids
        .iter()
        .filter_map(|id| stream.get(id).copied())
        .collect();
    let offset = at + plan.recovery.restart_delay + checkpoint_overhead;
    let id_offset = run_a
        .trace
        .spans()
        .iter()
        .map(|e| e.task_id)
        .max()
        .unwrap_or(0)
        + 1;

    // Phase B: a fresh engine (its empty coherence map models the
    // invalidation of every replicated copy), dead lanes decommissioned
    // before submission, and — for a dead node — the placement remapped
    // so its tiles re-home onto the survivors.
    let session_b = session_a.fork();
    sc.attach_plan(&session_b, plan, offset);
    let n = sc.matrix_order();
    let nb = sc.tile_size_of();
    let a = SharedTiles::layout_only(n, n, nb, 0);
    let pl_b: Arc<dyn Placement> = match scope {
        FaultScope::Node(node) => Arc::new(RemapPlacement {
            inner: base_pl,
            dead: node,
            nodes: spec.nodes,
        }),
        FaultScope::Worker(_) => base_pl,
    };
    let (trace_b, restarted) = match sc.backend {
        Backend::Threaded => {
            let mut engine =
                ClusterEngine::new(spec.clone(), ic, session_b.clone(), a.id_range().1);
            match scope {
                FaultScope::Node(node) => engine.decommission_node(node),
                FaultScope::Worker(w) => engine.decommission_lane(w),
            }
            let restarted =
                submit_algorithm_cluster(&mut engine, sc.algorithm, &a, &*pl_b, &mut |i| {
                    !done.contains(&i)
                });
            engine.seal_and_wait().expect("fault-replay phase B failed");
            (engine.finish_trace(), restarted)
        }
        Backend::Des => {
            let config = RuntimeConfig {
                workers: spec.total_workers(),
                policy: PolicyKind::Pinned,
                window: usize::MAX,
                name: "cluster",
            };
            let mut engine =
                ReplayEngine::new(&config, session_b.clone()).unwrap_or_else(|e| panic!("{e}"));
            session_b.set_warmup_slots(spec.total_compute_workers());
            match scope {
                FaultScope::Node(node) => {
                    let (lo, hi) = spec.compute_range(node);
                    for w in lo..hi {
                        engine.decommission(w);
                    }
                    let (lo, hi) = spec.nic_range(node);
                    for w in lo..hi {
                        engine.decommission(w);
                    }
                }
                FaultScope::Worker(w) => engine.decommission(w),
            }
            // A fresh coherence map, like the fresh threaded engine:
            // every replicated copy is invalidated by the restart.
            let mut coherence = Coherence::new(spec.nodes, a.id_range().1);
            let (tasks, restarted) = cluster_replay_tasks(
                sc.algorithm,
                &a,
                &*pl_b,
                &spec,
                &*ic,
                &session_b,
                &mut coherence,
                &mut |i| !done.contains(&i),
            );
            engine.run(tasks);
            (session_b.finish_trace(spec.total_workers()), restarted)
        }
    };

    let trace = stitch(spec.total_workers(), kept, &trace_b, offset, id_offset);
    RunResult {
        makespan: trace.t_max(),
        trace,
        checkpoint_overhead,
        restarted,
    }
}

/// Execute [`Scenario::run_faults`]: the clean run, the faulted run, and
/// (for multi-event plans) per-event attribution runs.
pub(crate) fn run_faults(sc: Scenario) -> FaultOutcome {
    let plan = sc.faults.clone();
    let mut used = false;
    let clean = run_plan(&sc, &FaultPlan::new(), &mut used);
    let faulted = if plan.is_empty() {
        clean.clone()
    } else {
        run_plan(&sc, &plan, &mut used)
    };

    let ratio = |makespan: f64| {
        if clean.makespan > 0.0 {
            makespan / clean.makespan
        } else {
            1.0
        }
    };
    let per_fault = plan
        .events
        .iter()
        .map(|ev| {
            let makespan = if plan.events.len() == 1 {
                faulted.makespan
            } else {
                let sub = FaultPlan {
                    events: vec![ev.clone()],
                    recovery: plan.recovery.clone(),
                };
                run_plan(&sc, &sub, &mut used).makespan
            };
            FaultAttribution {
                fault: describe_event(ev),
                makespan,
                slowdown: ratio(makespan),
            }
        })
        .collect();

    let (retries, aborted, lost) = fault_numbers(&faulted.trace);
    let report = DegradationReport {
        clean_makespan: clean.makespan,
        faulted_makespan: faulted.makespan,
        slowdown: ratio(faulted.makespan),
        critical_lane_clean: critical_lane(&clean.trace),
        critical_lane_faulted: critical_lane(&faulted.trace),
        retries,
        aborted_virtual_seconds: aborted,
        lost_virtual_seconds: lost,
        checkpoint_overhead: faulted.checkpoint_overhead,
        restarted_tasks: faulted.restarted,
        per_fault,
    };
    FaultOutcome {
        clean_trace: clean.trace,
        clean_makespan: clean.makespan,
        faulted_makespan: faulted.makespan,
        trace: faulted.trace,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use supersim_core::{KernelModel, ModelRegistry};
    use supersim_runtime::SchedulerKind;

    fn models(alg: Algorithm, secs: f64) -> ModelRegistry {
        let mut m = ModelRegistry::new();
        for l in alg.labels() {
            m.insert(*l, KernelModel::constant(secs));
        }
        m
    }

    fn base(alg: Algorithm) -> Scenario {
        Scenario::new(alg)
            .n(60)
            .tile_size(12)
            .workers(3)
            .seed(11)
            .scheduler(SchedulerKind::Quark)
            .models(models(alg, 0.01))
    }

    #[test]
    fn empty_plan_outcome_is_clean() {
        let out = base(Algorithm::Cholesky).run_faults();
        assert_eq!(out.clean_trace, out.trace);
        assert_eq!(out.report.slowdown, 1.0);
        assert_eq!(out.report.retries, 0);
        assert_eq!(out.report.restarted_tasks, 0);
        assert!(out.report.per_fault.is_empty());
    }

    #[test]
    fn transient_plan_reports_retries() {
        let out = base(Algorithm::Cholesky)
            .faults(FaultPlan::new().transient(4, 2, 0.5))
            .run_faults();
        assert!(out.report.retries > 0);
        assert!(out.report.aborted_virtual_seconds > 0.0);
        assert!(out.faulted_makespan >= out.clean_makespan);
        assert!(out.trace.validate(1e-9).is_ok());
        // Failed attempts and backoffs appear in the trace but clean
        // kernels still dominate.
        let fails = out
            .trace
            .spans()
            .iter()
            .filter(|e| event_kind(e) == SpanKind::Failed)
            .count() as u64;
        assert_eq!(fails, out.report.retries);
    }

    #[test]
    fn worker_kill_replays_and_loses_work() {
        let clean = base(Algorithm::Cholesky).run_sim();
        let cut = clean.predicted_seconds * 0.4;
        let out = base(Algorithm::Cholesky)
            .faults(FaultPlan::new().kill_worker(2, cut))
            .run_faults();
        assert!(out.faulted_makespan >= out.clean_makespan);
        assert!(out.report.restarted_tasks > 0);
        assert!(out.trace.validate(1e-9).is_ok());
        // No post-cut work on the dead lane.
        for e in out.trace.lane(2) {
            assert!(
                e.end <= cut + 1e-9 || event_kind(e) == SpanKind::Lost,
                "dead lane ran after the cut: {e:?}"
            );
        }
    }

    #[test]
    fn kill_after_completion_changes_nothing() {
        let out = base(Algorithm::Lu)
            .faults(FaultPlan::new().kill_worker(1, 1e9))
            .run_faults();
        // Worker placement races run to run; the canonical projection
        // (task ids, kernels, virtual times) is the determinism contract.
        assert_eq!(out.clean_trace.canonical(), out.trace.canonical());
        assert_eq!(out.report.restarted_tasks, 0);
        assert_eq!(out.report.lost_virtual_seconds, 0.0);
    }

    #[test]
    fn identical_plans_give_identical_outcomes() {
        // Events here are lane-placement independent: the node-0 straggler
        // covers every lane of a single-node run, transients key on
        // submission rank, and the permanent-failure cut is a pure
        // function of virtual times. That makes the whole outcome
        // reproducible in the canonical (lane-free) projection.
        let mk = || {
            base(Algorithm::Cholesky)
                .faults(
                    FaultPlan::new()
                        .straggler_node(0, 0.0, 0.2, 3.0)
                        .transient_for("dgemm", 3, 1, 0.5)
                        .kill_worker(2, 0.15),
                )
                .run_faults()
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.trace.canonical(), b.trace.canonical());
        assert_eq!(a.clean_trace.canonical(), b.clean_trace.canonical());
        assert_eq!(a.clean_makespan, b.clean_makespan);
        assert_eq!(a.faulted_makespan, b.faulted_makespan);
        assert_eq!(a.report.retries, b.report.retries);
        assert_eq!(
            a.report.aborted_virtual_seconds,
            b.report.aborted_virtual_seconds
        );
        assert_eq!(a.report.lost_virtual_seconds, b.report.lost_virtual_seconds);
        assert_eq!(a.report.restarted_tasks, b.report.restarted_tasks);
        assert_eq!(a.report.per_fault, b.report.per_fault);
        // Multi-event plan: attribution ran each event alone.
        assert_eq!(a.report.per_fault.len(), 3);
    }

    #[test]
    fn cluster_node_kill_remaps_and_restarts() {
        let sc = Scenario::new(Algorithm::Cholesky)
            .n(48)
            .tile_size(12)
            .seed(5)
            .models(models(Algorithm::Cholesky, 0.01))
            .cluster(ClusterSpec::new(4, 2));
        let clean = sc.clone().run_cluster();
        let cut = clean.predicted_seconds * 0.5;
        let out = sc.faults(FaultPlan::new().kill_node(1, cut)).run_faults();
        assert!(out.faulted_makespan > out.clean_makespan);
        assert!(out.report.restarted_tasks > 0);
        assert!(out.report.lost_virtual_seconds > 0.0);
        assert!(out.trace.validate(1e-9).is_ok());
        // Without checkpoints the whole prefix is rolled back: every
        // phase-A span is lost, so no kept event survives unmarked
        // before the cut... except none: completed set is empty.
        let spec = ClusterSpec::new(4, 2);
        let (lo, hi) = spec.compute_range(1);
        for e in out.trace.spans() {
            if (lo..hi).contains(&e.worker) {
                assert!(
                    e.end <= cut + 1e-9,
                    "dead node computed after the cut: {e:?}"
                );
            }
        }
    }

    #[test]
    fn cluster_checkpoints_preserve_prefix_and_cost_overhead() {
        let sc = Scenario::new(Algorithm::Cholesky)
            .n(48)
            .tile_size(12)
            .seed(5)
            .models(models(Algorithm::Cholesky, 0.01))
            .cluster(ClusterSpec::new(2, 2));
        let clean = sc.clone().run_cluster();
        let cut = clean.predicted_seconds * 0.6;
        let recovery = supersim_faults::RecoveryPolicy {
            checkpoint: Some(CheckpointPolicy {
                interval: cut / 2.5,
                snapshot_cost: 0.001,
                restore_cost: 0.002,
            }),
            ..Default::default()
        };
        let out = sc
            .clone()
            .faults(FaultPlan::new().kill_node(1, cut).with_recovery(recovery))
            .run_faults();
        // Two snapshots fit before the cut: overhead = 2*0.001 + 0.002.
        assert!((out.report.checkpoint_overhead - 0.004).abs() < 1e-12);
        // The checkpointed prefix survives: fewer tasks restarted than a
        // scratch restart would need.
        let scratch = sc.faults(FaultPlan::new().kill_node(1, cut)).run_faults();
        assert!(out.report.restarted_tasks < scratch.report.restarted_tasks);
        assert!(out.trace.validate(1e-9).is_ok());
    }
}
