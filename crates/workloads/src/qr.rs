//! Tile QR as a runtime workload (paper Algorithm 2 / Fig. 2).

use crate::data::SharedTiles;
use crate::mode::ExecMode;
use supersim_dag::Access;
use supersim_runtime::{Runtime, TaskDesc};
use supersim_tile::qr::{task_stream, QrTask};
use supersim_tile::qr_kernels::{dgeqrt, dormqr, dtsmqr, dtsqrt, ApplyTrans};
use supersim_tile::Matrix;

/// The access list of one QR task — identical in both execution modes.
///
/// These match the paper's Fig. 2 annotations: e.g.
/// `tsmqr(A_mk^r, T_mk^r, A_kn^rw, A_mn^rw)`.
pub fn accesses(a: &SharedTiles, t: &SharedTiles, task: QrTask) -> Vec<Access> {
    match task {
        QrTask::Geqrt { k } => {
            vec![
                Access::read_write(a.data_id(k, k)),
                Access::write(t.data_id(k, k)),
            ]
        }
        QrTask::Ormqr { k, n } => vec![
            Access::read(a.data_id(k, k)),
            Access::read(t.data_id(k, k)),
            Access::read_write(a.data_id(k, n)),
        ],
        QrTask::Tsqrt { k, m } => vec![
            Access::read_write(a.data_id(k, k)),
            Access::read_write(a.data_id(m, k)),
            Access::write(t.data_id(m, k)),
        ],
        QrTask::Tsmqr { k, m, n } => vec![
            Access::read_write(a.data_id(k, n)),
            Access::read_write(a.data_id(m, n)),
            Access::read(a.data_id(m, k)),
            Access::read(t.data_id(m, k)),
        ],
    }
}

/// Static priority: earlier panels first, panel kernels above updates.
pub fn priority(nt: usize, task: QrTask) -> i64 {
    let (k, bonus) = match task {
        QrTask::Geqrt { k } => (k, 3),
        QrTask::Tsqrt { k, .. } => (k, 2),
        QrTask::Ormqr { k, .. } => (k, 1),
        QrTask::Tsmqr { k, .. } => (k, 0),
    };
    ((nt - k) as i64) * 4 + bonus
}

/// Execute one QR task on the shared tiles (real mode).
pub fn execute_real(a: &SharedTiles, t: &SharedTiles, task: QrTask) {
    match task {
        QrTask::Geqrt { k } => {
            let mut akk = a.write(k, k);
            let nb = akk.cols();
            let mut tkk = t.write(k, k);
            *tkk = Matrix::zeros(nb, nb);
            dgeqrt(&mut akk, &mut tkk);
        }
        QrTask::Ormqr { k, n } => {
            let v = a.read(k, k).clone();
            let tk = t.read(k, k).clone();
            let mut akn = a.write(k, n);
            dormqr(ApplyTrans::Trans, &v, &tk, &mut akn);
        }
        QrTask::Tsqrt { k, m } => {
            // Lock order: A tiles by flat index (k,k) < (m,k), then T.
            let mut r = a.write(k, k);
            let mut b = a.write(m, k);
            let nb = r.cols();
            let mut tmk = t.write(m, k);
            *tmk = Matrix::zeros(nb, nb);
            dtsqrt(&mut r, &mut b, &mut tmk);
        }
        QrTask::Tsmqr { k, m, n } => {
            let u = a.read(m, k).clone();
            let tmk = t.read(m, k).clone();
            let mut c1 = a.write(k, n);
            let mut c2 = a.write(m, n);
            dtsmqr(ApplyTrans::Trans, &mut c1, &mut c2, &u, &tmk);
        }
    }
}

/// Submit the tile QR task stream. `t` must be a grid of the same shape as
/// `a` (holding the T factors) with a disjoint id range. Returns the task
/// count; call `rt.seal()` afterwards.
pub fn submit(rt: &Runtime, a: &SharedTiles, t: &SharedTiles, mode: &ExecMode) -> u64 {
    submit_where(rt, a, t, mode, &mut |_| true)
}

/// Submit the QR stream filtered by `keep` over the 0-based stream index
/// (see `cholesky::submit_where`).
pub fn submit_where(
    rt: &Runtime,
    a: &SharedTiles,
    t: &SharedTiles,
    mode: &ExecMode,
    keep: &mut dyn FnMut(u64) -> bool,
) -> u64 {
    assert_eq!(
        a.mt(),
        a.nt(),
        "tile QR workload requires a square tile grid"
    );
    assert_eq!(a.mt(), t.mt(), "T grid shape mismatch");
    assert_eq!(a.nt(), t.nt(), "T grid shape mismatch");
    let (a_lo, a_hi) = a.id_range();
    let (t_lo, t_hi) = t.id_range();
    assert!(a_hi <= t_lo || t_hi <= a_lo, "A and T id ranges overlap");
    let nt = a.nt();
    let mut count = 0;
    for (idx, task) in task_stream(nt).into_iter().enumerate() {
        if !keep(idx as u64) {
            continue;
        }
        let label = task.label();
        let acc = accesses(a, t, task);
        let prio = priority(nt, task);
        let desc = match mode {
            ExecMode::Real => {
                let a2 = a.clone();
                let t2 = t.clone();
                TaskDesc::new(label, acc, move |_ctx| execute_real(&a2, &t2, task))
            }
            ExecMode::Simulated(session) => TaskDesc::new(label, acc, session.planned_body(label)),
        };
        rt.submit(desc.with_priority(prio));
        count += 1;
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use supersim_core::{KernelModel, ModelRegistry, SimConfig, SimSession};
    use supersim_runtime::{RuntimeConfig, SchedulerKind};
    use supersim_tile::generate::random;
    use supersim_tile::verify::{qr_orthogonality, qr_residual};
    use supersim_tile::TiledMatrix;

    fn grids(n: usize, nb: usize, seed: u64) -> (Matrix, SharedTiles, SharedTiles) {
        let a0 = random(n, n, seed);
        let a = SharedTiles::new(TiledMatrix::from_matrix(&a0, nb), 0);
        let t = SharedTiles::new(TiledMatrix::zeros(n, n, nb), a.id_range().1);
        (a0, a, t)
    }

    #[test]
    fn real_run_factors_correctly_all_schedulers() {
        for kind in [
            SchedulerKind::Quark,
            SchedulerKind::StarPu,
            SchedulerKind::OmpSs,
        ] {
            let (a0, a, t) = grids(24, 6, 11);
            let rt = supersim_runtime::profiles::runtime_for(kind, 3);
            submit(&rt, &a, &t, &ExecMode::Real);
            rt.seal();
            rt.wait_all().unwrap();
            let fa = a.to_tiled();
            let ft = t.to_tiled();
            let res = qr_residual(&a0, &fa, &ft);
            assert!(res < 1e-12, "{kind:?}: residual {res}");
            let orth = qr_orthogonality(&fa, &ft);
            assert!(orth < 1e-12, "{kind:?}: orthogonality {orth}");
        }
    }

    #[test]
    fn fig2_task_count_for_3x3() {
        // Fig. 2 lists F0..F13 = 14 tasks for 3x3 tiles.
        let (_a0, a, t) = grids(12, 4, 12);
        let mut models = ModelRegistry::new();
        for l in ["dgeqrt", "dormqr", "dtsqrt", "dtsmqr"] {
            models.insert(l, KernelModel::constant(0.5));
        }
        let session = SimSession::new(models, SimConfig::default());
        let rt = Runtime::new(RuntimeConfig::simple(2));
        session.attach_quiesce(rt.probe());
        let count = submit(&rt, &a, &t, &ExecMode::Simulated(session.clone()));
        rt.seal();
        rt.wait_all().unwrap();
        assert_eq!(count, 14);
        assert_eq!(session.finish_trace(2).len(), 14);
    }

    #[test]
    fn sim_trace_respects_qr_dependences() {
        // With unit durations, geqrt(k=1) cannot start before tsmqr
        // (k=0,m=1,n=1) completes; spot-check via the trace.
        let (_a0, a, t) = grids(12, 4, 13);
        let mut models = ModelRegistry::new();
        for l in ["dgeqrt", "dormqr", "dtsqrt", "dtsmqr"] {
            models.insert(l, KernelModel::constant(1.0));
        }
        let session = SimSession::new(models, SimConfig::default());
        let rt = Runtime::new(RuntimeConfig::simple(3));
        session.attach_quiesce(rt.probe());
        submit(&rt, &a, &t, &ExecMode::Simulated(session.clone()));
        rt.seal();
        rt.wait_all().unwrap();
        let trace = session.finish_trace(3);
        assert!(trace.validate(1e-9).is_ok());
        // Task ids follow Fig. 2: F9 is geqrt(k=1), F4 is tsmqr(0,1,1).
        let f9 = trace.spans().iter().find(|e| e.task_id == 9).unwrap();
        let f4 = trace.spans().iter().find(|e| e.task_id == 4).unwrap();
        assert_eq!(f9.kernel, "dgeqrt");
        assert_eq!(f4.kernel, "dtsmqr");
        assert!(
            f9.start >= f4.end - 1e-9,
            "geqrt(1) started before tsmqr(0,1,1) ended"
        );
    }

    #[test]
    #[should_panic(expected = "id ranges overlap")]
    fn overlapping_id_ranges_rejected() {
        let a0 = random(8, 8, 14);
        let a = SharedTiles::new(TiledMatrix::from_matrix(&a0, 4), 0);
        let t = SharedTiles::new(TiledMatrix::zeros(8, 8, 4), 1); // overlaps!
        let rt = Runtime::new(RuntimeConfig::simple(1));
        submit(&rt, &a, &t, &ExecMode::Real);
    }
}
