//! Shared tile grids: the data substrate task bodies operate on.
//!
//! Each tile is behind an `RwLock` so concurrent readers (e.g. several
//! `dgemm`s reading the same panel tile) proceed in parallel while writers
//! are exclusive. The *scheduler* already guarantees hazard-freedom — the
//! locks only bridge Rust's aliasing rules, they are never contended in a
//! correctly scheduled run (beyond brief reader overlap).

use parking_lot::RwLock;
use std::sync::Arc;
use supersim_dag::DataId;
use supersim_tile::{Matrix, TiledMatrix};

/// A tile grid shared across worker threads, with stable data ids.
#[derive(Clone)]
pub struct SharedTiles {
    tiles: Arc<Vec<RwLock<Matrix>>>,
    mt: usize,
    nt: usize,
    nb: usize,
    rows: usize,
    cols: usize,
    base_id: u64,
}

impl SharedTiles {
    /// Wrap a tiled matrix. `base_id` offsets the [`DataId`] space so
    /// several grids (e.g. the matrix `A` and the T-factor grid) coexist
    /// without collisions.
    pub fn new(t: TiledMatrix, base_id: u64) -> Self {
        let rows = t.rows();
        let cols = t.cols();
        let (tiles, mt, nt, nb) = t.into_tiles();
        assert!(
            (base_id as u128) + (tiles.len() as u128) <= u64::MAX as u128,
            "base_id overflow"
        );
        SharedTiles {
            tiles: Arc::new(tiles.into_iter().map(RwLock::new).collect()),
            mt,
            nt,
            nb,
            rows,
            cols,
            base_id,
        }
    }

    /// A grid with the right *shape* but zero-sized tiles — for simulated
    /// runs, where the data is never touched but the dependence layout
    /// (tile ids) must match a real run exactly. Avoids allocating the
    /// `O(n^2)` matrix for large simulated problems.
    pub fn layout_only(rows: usize, cols: usize, nb: usize, base_id: u64) -> Self {
        assert!(nb > 0, "tile size must be positive");
        let mt = rows.div_ceil(nb);
        let nt = cols.div_ceil(nb);
        let tiles: Vec<RwLock<Matrix>> = (0..mt * nt)
            .map(|_| RwLock::new(Matrix::zeros(0, 0)))
            .collect();
        SharedTiles {
            tiles: Arc::new(tiles),
            mt,
            nt,
            nb,
            rows,
            cols,
            base_id,
        }
    }

    /// Number of tile rows.
    pub fn mt(&self) -> usize {
        self.mt
    }

    /// Number of tile columns.
    pub fn nt(&self) -> usize {
        self.nt
    }

    /// Tile size.
    pub fn nb(&self) -> usize {
        self.nb
    }

    /// Total tiles.
    pub fn len(&self) -> usize {
        self.tiles.len()
    }

    /// Whether the grid is empty.
    pub fn is_empty(&self) -> bool {
        self.tiles.is_empty()
    }

    /// The id space used by this grid: `[base_id, base_id + len)`.
    pub fn id_range(&self) -> (u64, u64) {
        (self.base_id, self.base_id + self.tiles.len() as u64)
    }

    /// Row count of tile `(i, j)` (edge tiles are smaller).
    pub fn tile_rows(&self, i: usize) -> usize {
        assert!(i < self.mt, "tile row {i} out of range");
        (self.rows - i * self.nb).min(self.nb)
    }

    /// Column count of tile `(i, j)` (edge tiles are smaller).
    pub fn tile_cols(&self, j: usize) -> usize {
        assert!(j < self.nt, "tile column {j} out of range");
        (self.cols - j * self.nb).min(self.nb)
    }

    /// Size of tile `(i, j)` in bytes (f64 elements) — what a transfer of
    /// this tile moves across an interconnect.
    pub fn tile_bytes(&self, i: usize, j: usize) -> u64 {
        (self.tile_rows(i) * self.tile_cols(j) * std::mem::size_of::<f64>()) as u64
    }

    /// Dependence-tracking id of tile `(i, j)`.
    pub fn data_id(&self, i: usize, j: usize) -> DataId {
        assert!(i < self.mt && j < self.nt, "tile ({i},{j}) out of range");
        DataId(self.base_id + (i + j * self.mt) as u64)
    }

    /// Read-lock tile `(i, j)`.
    pub fn read(&self, i: usize, j: usize) -> parking_lot::RwLockReadGuard<'_, Matrix> {
        assert!(i < self.mt && j < self.nt, "tile ({i},{j}) out of range");
        self.tiles[i + j * self.mt].read()
    }

    /// Write-lock tile `(i, j)`.
    pub fn write(&self, i: usize, j: usize) -> parking_lot::RwLockWriteGuard<'_, Matrix> {
        assert!(i < self.mt && j < self.nt, "tile ({i},{j}) out of range");
        self.tiles[i + j * self.mt].write()
    }

    /// Reassemble a [`TiledMatrix`] from the current tile contents.
    ///
    /// Clones each tile under a read lock; call after `wait_all`.
    pub fn to_tiled(&self) -> TiledMatrix {
        let tiles: Vec<Matrix> = self.tiles.iter().map(|t| t.read().clone()).collect();
        TiledMatrix::from_tiles(tiles, self.mt, self.nt, self.nb, self.rows, self.cols)
    }

    /// Reassemble the dense matrix.
    pub fn to_matrix(&self) -> Matrix {
        self.to_tiled().to_matrix()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use supersim_tile::generate::random;

    #[test]
    fn round_trip_preserves_contents() {
        let a = random(10, 10, 1);
        let tiled = TiledMatrix::from_matrix(&a, 4);
        let shared = SharedTiles::new(tiled.clone(), 0);
        assert_eq!(shared.to_tiled(), tiled);
        assert_eq!(shared.to_matrix(), a);
    }

    #[test]
    fn data_ids_unique_and_offset() {
        let a = random(8, 8, 2);
        let shared = SharedTiles::new(TiledMatrix::from_matrix(&a, 4), 100);
        let mut ids = std::collections::HashSet::new();
        for i in 0..shared.mt() {
            for j in 0..shared.nt() {
                let id = shared.data_id(i, j);
                assert!(id.0 >= 100);
                assert!(ids.insert(id));
            }
        }
        assert_eq!(shared.id_range(), (100, 104));
    }

    #[test]
    fn concurrent_readers_allowed() {
        let a = random(4, 4, 3);
        let shared = SharedTiles::new(TiledMatrix::from_matrix(&a, 4), 0);
        let r1 = shared.read(0, 0);
        let r2 = shared.read(0, 0);
        assert_eq!(r1[(0, 0)], r2[(0, 0)]);
    }

    #[test]
    fn writes_visible_in_reassembly() {
        let a = random(4, 4, 4);
        let shared = SharedTiles::new(TiledMatrix::from_matrix(&a, 2), 0);
        shared.write(1, 1)[(0, 0)] = 42.0;
        assert_eq!(shared.to_matrix()[(2, 2)], 42.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bounds_checked() {
        let a = random(4, 4, 5);
        let shared = SharedTiles::new(TiledMatrix::from_matrix(&a, 2), 0);
        shared.data_id(5, 0);
    }

    #[test]
    fn layout_only_has_shape_without_data() {
        let s = SharedTiles::layout_only(3960, 3960, 180, 0);
        assert_eq!(s.mt(), 22);
        assert_eq!(s.nt(), 22);
        assert_eq!(s.len(), 484);
        assert_eq!(s.read(0, 0).rows(), 0);
        let _ = s.data_id(21, 21);
    }

    #[test]
    fn clone_shares_storage() {
        let a = random(4, 4, 6);
        let shared = SharedTiles::new(TiledMatrix::from_matrix(&a, 2), 0);
        let clone = shared.clone();
        shared.write(0, 0)[(0, 0)] = 7.0;
        assert_eq!(clone.read(0, 0)[(0, 0)], 7.0);
    }
}
