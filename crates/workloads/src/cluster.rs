//! Distributed workload drivers: the tile factorizations over a
//! [`ClusterSpec`] with owner-computes placement.
//!
//! The task stream is *identical* to the single-node drivers — same
//! kernels, same tile accesses, same priorities. The only additions are
//! per-access owner annotations (from the [`Placement`]) and byte sizes
//! (from the tile dimensions), from which the [`ClusterEngine`] inserts
//! transfer tasks wherever a read crosses the distribution. Under a
//! zero-cost interconnect a distributed run therefore reproduces the
//! single-node schedule of the same total width exactly.

use crate::data::SharedTiles;
use crate::driver::Algorithm;
use std::sync::Arc;
use supersim_cluster::{
    ClusterEngine, ClusterSpec, Coherence, Interconnect, Placement, TRANSFER_LABEL,
};
use supersim_core::SimSession;
use supersim_dag::Access;
use supersim_des::{ReplayBody, ReplayTask};
use supersim_runtime::RuntimeStats;
use supersim_tile::cholesky::{task_stream as cholesky_stream, CholeskyTask};
use supersim_tile::flops;
use supersim_tile::lu::{task_stream as lu_stream, LuTask};
use supersim_trace::Trace;

/// Result of a distributed simulated run.
#[derive(Debug, Clone)]
pub struct ClusterRun {
    /// Algorithm simulated.
    pub algorithm: Algorithm,
    /// Matrix order.
    pub n: usize,
    /// Tile size.
    pub nb: usize,
    /// Cluster shape.
    pub spec: ClusterSpec,
    /// Interconnect model name.
    pub interconnect: &'static str,
    /// Placement name.
    pub placement: String,
    /// Compute tasks submitted.
    pub compute_tasks: u64,
    /// Transfer tasks inserted by the engine.
    pub transfers: u64,
    /// Bytes moved by those transfers.
    pub transfer_bytes: u64,
    /// Inbound transfer count per node.
    pub node_transfers: Vec<u64>,
    /// Inbound transfer bytes per node.
    pub node_bytes: Vec<u64>,
    /// Busy seconds of each node's NIC lanes.
    pub nic_busy_seconds: Vec<f64>,
    /// Bytes of matrix tiles owned by each node (the resident footprint
    /// to check against [`ClusterSpec::mem_bytes_per_node`]).
    pub node_owned_bytes: Vec<u64>,
    /// Predicted execution time (virtual seconds).
    pub predicted_seconds: f64,
    /// Wall-clock seconds the simulation itself took.
    pub wall_seconds: f64,
    /// Predicted GFLOP/s.
    pub gflops: f64,
    /// Virtual-time trace: compute lanes first, NIC lanes after (see
    /// [`ClusterSpec::lane_names`]).
    pub trace: Trace,
    /// Engine execution statistics.
    pub stats: RuntimeStats,
}

fn rd(a: &SharedTiles, pl: &dyn Placement, i: usize, j: usize) -> (Access, usize) {
    (
        Access::read(a.data_id(i, j)).with_bytes(a.tile_bytes(i, j)),
        pl.owner(i, j),
    )
}

fn rw(a: &SharedTiles, pl: &dyn Placement, i: usize, j: usize) -> (Access, usize) {
    (
        Access::read_write(a.data_id(i, j)).with_bytes(a.tile_bytes(i, j)),
        pl.owner(i, j),
    )
}

fn cholesky_acc(a: &SharedTiles, pl: &dyn Placement, task: CholeskyTask) -> Vec<(Access, usize)> {
    match task {
        CholeskyTask::Potrf { k } => vec![rw(a, pl, k, k)],
        CholeskyTask::Trsm { k, i } => vec![rd(a, pl, k, k), rw(a, pl, i, k)],
        CholeskyTask::Syrk { k, i } => vec![rd(a, pl, i, k), rw(a, pl, i, i)],
        CholeskyTask::Gemm { k, i, j } => {
            vec![rd(a, pl, i, k), rd(a, pl, j, k), rw(a, pl, i, j)]
        }
    }
}

fn lu_acc(a: &SharedTiles, pl: &dyn Placement, task: LuTask) -> Vec<(Access, usize)> {
    match task {
        LuTask::Getrf { k } => vec![rw(a, pl, k, k)],
        LuTask::TrsmL { k, j } => vec![rd(a, pl, k, k), rw(a, pl, k, j)],
        LuTask::TrsmU { k, i } => vec![rd(a, pl, k, k), rw(a, pl, i, k)],
        LuTask::Gemm { k, i, j } => {
            vec![rd(a, pl, i, k), rd(a, pl, k, j), rw(a, pl, i, j)]
        }
    }
}

fn submit_cholesky(
    engine: &mut ClusterEngine,
    a: &SharedTiles,
    pl: &dyn Placement,
    keep: &mut dyn FnMut(u64) -> bool,
) -> u64 {
    let nt = a.nt();
    let mut count = 0;
    for (idx, task) in cholesky_stream(nt).into_iter().enumerate() {
        if !keep(idx as u64) {
            continue;
        }
        let acc = cholesky_acc(a, pl, task);
        let node = acc.last().expect("every task writes a tile").1;
        engine.submit_compute(
            node,
            task.label(),
            &acc,
            crate::cholesky::priority(nt, task),
        );
        count += 1;
    }
    count
}

fn submit_lu(
    engine: &mut ClusterEngine,
    a: &SharedTiles,
    pl: &dyn Placement,
    keep: &mut dyn FnMut(u64) -> bool,
) -> u64 {
    let nt = a.nt();
    let mut count = 0;
    for (idx, task) in lu_stream(nt).into_iter().enumerate() {
        if !keep(idx as u64) {
            continue;
        }
        let acc = lu_acc(a, pl, task);
        let node = acc.last().expect("every task writes a tile").1;
        engine.submit_compute(node, task.label(), &acc, crate::lu::priority(nt, task));
        count += 1;
    }
    count
}

/// Enumerate an algorithm's distributed stream as [`ReplayTask`]s for the
/// DES backend, mirroring [`submit_algorithm_cluster`] +
/// [`ClusterEngine::submit_compute`]: the shared [`Coherence`] layer plans
/// each compute task's transfers, which land in the stream *before* their
/// consumer pinned to its node's NIC lanes — identical task ids and
/// dependences to the threaded engine. Returns the tasks and the compute
/// count (transfers excluded).
#[allow(clippy::too_many_arguments)]
pub(crate) fn cluster_replay_tasks(
    alg: Algorithm,
    a: &SharedTiles,
    pl: &dyn Placement,
    spec: &ClusterSpec,
    interconnect: &dyn Interconnect,
    session: &SimSession,
    coherence: &mut Coherence,
    keep: &mut dyn FnMut(u64) -> bool,
) -> (Vec<ReplayTask>, u64) {
    let nt = a.nt();
    let mut tasks = Vec::new();
    let mut count = 0;
    let mut push_compute = |label: &str, acc_owner: Vec<(Access, usize)>, priority: i64| {
        let node = acc_owner.last().expect("every task writes a tile").1;
        assert!(node < spec.nodes, "node {node} out of range");
        let (acc, xfers) = coherence.plan_compute(node, &acc_owner, interconnect);
        for x in xfers {
            tasks.push(ReplayTask {
                label: TRANSFER_LABEL.to_string(),
                accesses: x.accesses,
                priority: 0,
                pin: Some(spec.nic_range(x.node)),
                body: ReplayBody::Fixed {
                    duration: x.duration,
                },
            });
        }
        tasks.push(ReplayTask {
            label: label.to_string(),
            accesses: acc,
            priority,
            pin: Some(spec.compute_range(node)),
            body: ReplayBody::Ranked {
                rank: session.next_rank(label),
            },
        });
    };
    match alg {
        Algorithm::Cholesky => {
            for (idx, task) in cholesky_stream(nt).into_iter().enumerate() {
                if !keep(idx as u64) {
                    continue;
                }
                push_compute(
                    task.label(),
                    cholesky_acc(a, pl, task),
                    crate::cholesky::priority(nt, task),
                );
                count += 1;
            }
        }
        Algorithm::Lu => {
            for (idx, task) in lu_stream(nt).into_iter().enumerate() {
                if !keep(idx as u64) {
                    continue;
                }
                push_compute(
                    task.label(),
                    lu_acc(a, pl, task),
                    crate::lu::priority(nt, task),
                );
                count += 1;
            }
        }
        Algorithm::Qr => panic!("distributed QR is not implemented; use cholesky or lu"),
    }
    (tasks, count)
}

/// Submit an algorithm's distributed task stream filtered by `keep` over
/// the 0-based stream index (the fault-replay driver re-submits only the
/// incomplete tasks). Returns the submitted compute-task count.
pub(crate) fn submit_algorithm_cluster(
    engine: &mut ClusterEngine,
    alg: Algorithm,
    a: &SharedTiles,
    pl: &dyn Placement,
    keep: &mut dyn FnMut(u64) -> bool,
) -> u64 {
    match alg {
        Algorithm::Cholesky => submit_cholesky(engine, a, pl, keep),
        Algorithm::Lu => submit_lu(engine, a, pl, keep),
        Algorithm::Qr => panic!("distributed QR is not implemented; use cholesky or lu"),
    }
}

/// Run a distributed simulated factorization. The owner-computes rule
/// places every task on the node owning its output tile; cross-node reads
/// become transfer tasks on the consumer's NIC lanes, costed by the
/// interconnect model.
///
/// Distributed QR is not implemented (its T-factor grid needs a second
/// placement); Cholesky and LU are.
///
/// This is the engine behind [`crate::Scenario::run_cluster`]; build runs
/// through the scenario builder.
pub(crate) fn exec_cluster(
    alg: Algorithm,
    spec: ClusterSpec,
    interconnect: Arc<dyn Interconnect>,
    placement: Arc<dyn Placement>,
    n: usize,
    nb: usize,
    session: Arc<SimSession>,
) -> ClusterRun {
    let a = SharedTiles::layout_only(n, n, nb, 0);
    assert_eq!(a.mt(), a.nt(), "factorizations need a square tile grid");
    for i in 0..a.mt() {
        for j in 0..a.nt() {
            assert!(
                placement.owner(i, j) < spec.nodes,
                "placement {} maps tile ({i},{j}) to node {} but the cluster has {} nodes",
                placement.name(),
                placement.owner(i, j),
                spec.nodes
            );
        }
    }
    for label in alg.labels() {
        session.models().expect(label);
    }

    let mut engine = ClusterEngine::new(
        spec.clone(),
        interconnect.clone(),
        session.clone(),
        a.id_range().1,
    );
    let t0 = std::time::Instant::now();
    let compute_tasks = submit_algorithm_cluster(&mut engine, alg, &a, &*placement, &mut |_| true);
    engine.seal_and_wait().expect("cluster run failed");
    let wall_seconds = t0.elapsed().as_secs_f64();

    let predicted_seconds = engine.virtual_now();
    let stats = engine.stats();
    let trace = engine.finish_trace();
    let nic_busy_seconds = (0..spec.nodes)
        .map(|node| engine.nic_busy_seconds(&trace, node))
        .collect();
    let mut node_owned_bytes = vec![0u64; spec.nodes];
    for i in 0..a.mt() {
        for j in 0..a.nt() {
            node_owned_bytes[placement.owner(i, j)] += a.tile_bytes(i, j);
        }
    }

    ClusterRun {
        algorithm: alg,
        n,
        nb,
        spec,
        interconnect: interconnect.name(),
        placement: placement.name(),
        compute_tasks,
        transfers: engine.transfers(),
        transfer_bytes: engine.transfer_bytes(),
        node_transfers: engine.node_transfers().to_vec(),
        node_bytes: engine.node_bytes().to_vec(),
        nic_busy_seconds,
        node_owned_bytes,
        predicted_seconds,
        wall_seconds,
        gflops: flops::gflops(alg.flops(n), predicted_seconds),
        trace,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use supersim_cluster::{BlockCyclic, Hockney, ZeroCost};
    use supersim_core::{KernelModel, ModelRegistry, SimConfig};

    fn session(alg: Algorithm, seed: u64) -> Arc<SimSession> {
        let mut m = ModelRegistry::new();
        for l in alg.labels() {
            m.insert(*l, KernelModel::constant(0.01));
        }
        SimSession::new(
            m,
            SimConfig {
                seed,
                ..SimConfig::default()
            },
        )
    }

    #[test]
    fn distributed_cholesky_moves_data_and_validates() {
        let run = exec_cluster(
            Algorithm::Cholesky,
            ClusterSpec::new(4, 2),
            Arc::new(ZeroCost),
            Arc::new(BlockCyclic::square(4)),
            48,
            12,
            session(Algorithm::Cholesky, 3),
        );
        assert!(run.transfers > 0);
        assert!(run.transfer_bytes > 0);
        assert_eq!(run.node_transfers.iter().sum::<u64>(), run.transfers);
        assert_eq!(run.node_bytes.iter().sum::<u64>(), run.transfer_bytes);
        assert!(run.trace.validate(1e-9).is_ok());
        // Tiles are fully partitioned across nodes.
        assert_eq!(
            run.node_owned_bytes.iter().sum::<u64>(),
            (48 * 48 * 8) as u64
        );
        // Compute events + one trace event per transfer.
        assert_eq!(run.trace.len() as u64, run.compute_tasks + run.transfers);
    }

    #[test]
    fn distributed_lu_runs_on_row_placement() {
        let run = exec_cluster(
            Algorithm::Lu,
            ClusterSpec::new(2, 2),
            Arc::new(Hockney::new(1e-5, 1e9)),
            Arc::new(BlockCyclic::row(2)),
            40,
            10,
            session(Algorithm::Lu, 5),
        );
        assert!(run.transfers > 0);
        assert!(run.predicted_seconds > 0.0);
        // NIC lanes did real virtual work under a latency-ful model.
        assert!(run.nic_busy_seconds.iter().sum::<f64>() > 0.0);
        assert!(run.trace.validate(1e-9).is_ok());
    }

    #[test]
    #[should_panic(expected = "distributed QR is not implemented")]
    fn distributed_qr_is_rejected() {
        exec_cluster(
            Algorithm::Qr,
            ClusterSpec::new(2, 1),
            Arc::new(ZeroCost),
            Arc::new(BlockCyclic::row(2)),
            16,
            8,
            session(Algorithm::Qr, 1),
        );
    }
}
