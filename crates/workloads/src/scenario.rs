//! The unified scenario builder: one typed entry point for every kind of
//! run the workload crate offers.
//!
//! A [`Scenario`] describes *what* to run (algorithm, problem size), *on
//! what* (scheduler profile, worker count, optionally a [`ClusterSpec`]
//! with an [`Interconnect`] and [`Placement`]), *from what randomness*
//! (seed or an explicit session), and *under what adversity* (a
//! [`FaultPlan`]). Terminal methods execute it:
//!
//! ```ignore
//! let sim = Scenario::new(Algorithm::Cholesky)
//!     .tiles(8)
//!     .tile_size(64)
//!     .scheduler(SchedulerKind::Quark)
//!     .workers(16)
//!     .seed(42)
//!     .models(registry)
//!     .run_sim();
//! ```
//!
//! * [`Scenario::run_real`] — execute the actual kernels, verify, time;
//! * [`Scenario::run_sim`] — single-node simulated run (honours
//!   straggler/transient faults via the attached injector);
//! * [`Scenario::run_cluster`] — distributed simulated run;
//! * [`Scenario::run_faults`] — clean-vs-faulted comparison returning a
//!   [`crate::FaultOutcome`], including permanent-failure phased replay.
//!
//! The builder replaces the former free functions `run_real`, `run_sim`,
//! `run_cluster` and `session_with`, which survive as deprecated shims in
//! [`crate::compat`].

use crate::cluster::ClusterRun;
use crate::driver::{exec_real, Algorithm, RealRun, SimRun};
use crate::faultsim::{run_faults, FaultOutcome};
use crate::replay::{exec_cluster_backend, exec_sim_backend, Backend};
use std::sync::Arc;
use supersim_cluster::{BlockCyclic, ClusterSpec, Interconnect, Placement, ZeroCost};
use supersim_core::{ModelRegistry, SimConfig, SimSession};
use supersim_faults::{CompiledFaults, FaultPlan, LaneMap};
use supersim_runtime::SchedulerKind;

/// A declarative description of one run. See the [module docs](self).
#[derive(Clone)]
pub struct Scenario {
    pub(crate) algorithm: Algorithm,
    tiles: Option<usize>,
    tile_size: usize,
    n: Option<usize>,
    pub(crate) scheduler: SchedulerKind,
    pub(crate) workers: usize,
    seed: u64,
    models: Option<Arc<ModelRegistry>>,
    config: Option<SimConfig>,
    session: Option<Arc<SimSession>>,
    pub(crate) cluster: Option<ClusterSpec>,
    interconnect: Option<Arc<dyn Interconnect>>,
    placement: Option<Arc<dyn Placement>>,
    pub(crate) faults: FaultPlan,
    pub(crate) backend: Backend,
}

impl std::fmt::Debug for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scenario")
            .field("algorithm", &self.algorithm)
            .field("n", &self.matrix_order())
            .field("nb", &self.tile_size)
            .field("scheduler", &self.scheduler)
            .field("workers", &self.workers)
            .field("seed", &self.seed)
            .field("cluster", &self.cluster)
            .field("faults", &self.faults)
            .field("backend", &self.backend)
            .finish_non_exhaustive()
    }
}

impl Scenario {
    /// A scenario for `algorithm` with defaults: an 8x8 grid of 64-wide
    /// tiles (`n = 512`), the Quark profile, 4 workers, seed 42, no
    /// cluster, no faults.
    pub fn new(algorithm: Algorithm) -> Self {
        Scenario {
            algorithm,
            tiles: None,
            tile_size: 64,
            n: None,
            scheduler: SchedulerKind::Quark,
            workers: 4,
            seed: 42,
            models: None,
            config: None,
            session: None,
            cluster: None,
            interconnect: None,
            placement: None,
            faults: FaultPlan::new(),
            backend: Backend::Threaded,
        }
    }

    /// Set the tile-grid side (`n = tiles * tile_size`). Overridden by an
    /// explicit [`Scenario::n`].
    pub fn tiles(mut self, tiles: usize) -> Self {
        assert!(tiles > 0, "need at least one tile");
        self.tiles = Some(tiles);
        self
    }

    /// Set the tile size `nb`.
    pub fn tile_size(mut self, nb: usize) -> Self {
        assert!(nb > 0, "tile size must be positive");
        self.tile_size = nb;
        self
    }

    /// Set the matrix order `n` directly (need not be a multiple of the
    /// tile size; the trailing tiles are ragged). Takes precedence over
    /// [`Scenario::tiles`].
    pub fn n(mut self, n: usize) -> Self {
        assert!(n > 0, "matrix order must be positive");
        self.n = Some(n);
        self
    }

    /// Select the scheduler profile.
    pub fn scheduler(mut self, kind: SchedulerKind) -> Self {
        self.scheduler = kind;
        self
    }

    /// Set the worker count (threads for real runs, virtual workers for
    /// single-node simulated runs; ignored by cluster runs, which size
    /// themselves from the [`ClusterSpec`]).
    pub fn workers(mut self, workers: usize) -> Self {
        assert!(workers > 0, "need at least one worker");
        self.workers = workers;
        self
    }

    /// Set the seed (matrix generation for real runs; duration sampling
    /// for simulated runs built from [`Scenario::models`]).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Provide kernel duration models for simulated terminals. A session
    /// is built from these plus the seed/config on each simulated run.
    pub fn models(mut self, models: ModelRegistry) -> Self {
        self.models = Some(Arc::new(models));
        self
    }

    /// Provide a *shared* read-only model registry. Sweeps build one
    /// fitted-model database up front and hand every cell the same `Arc`;
    /// sessions built from it reference it without cloning.
    pub fn models_shared(mut self, models: Arc<ModelRegistry>) -> Self {
        self.models = Some(models);
        self
    }

    /// Override the full simulation config (seed, overhead, worker
    /// speeds, warm-up). The builder's `seed` is ignored for session
    /// construction when a config is given.
    pub fn config(mut self, config: SimConfig) -> Self {
        self.config = Some(config);
        self
    }

    /// Use an existing session for simulated terminals instead of
    /// building one from models + seed. Takes precedence over
    /// [`Scenario::models`]/[`Scenario::config`]. Fault terminals that
    /// need several independent runs fork it.
    pub fn session(mut self, session: Arc<SimSession>) -> Self {
        self.session = Some(session);
        self
    }

    /// Make this a distributed scenario over `spec` (terminals:
    /// [`Scenario::run_cluster`] / [`Scenario::run_faults`]).
    pub fn cluster(mut self, spec: ClusterSpec) -> Self {
        self.cluster = Some(spec);
        self
    }

    /// Select the interconnect model (cluster scenarios; default
    /// [`ZeroCost`]).
    pub fn interconnect(mut self, ic: Arc<dyn Interconnect>) -> Self {
        self.interconnect = Some(ic);
        self
    }

    /// Select the data placement (cluster scenarios; default
    /// [`BlockCyclic::square`] over the node count).
    pub fn placement(mut self, pl: Arc<dyn Placement>) -> Self {
        self.placement = Some(pl);
        self
    }

    /// Attach a fault plan. An empty plan (the default) leaves every
    /// simulated terminal bit-for-bit identical to a plan-free scenario.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Select the simulation backend (default [`Backend::Threaded`]). The
    /// DES replay backend produces the same canonical trace on the
    /// supported profiles (Quark single-node, cluster) without spawning
    /// one host thread per simulated worker; real runs always execute on
    /// the threaded engine.
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// The resolved matrix order.
    pub fn matrix_order(&self) -> usize {
        self.n.unwrap_or(self.tiles.unwrap_or(8) * self.tile_size)
    }

    /// The resolved tile size.
    pub fn tile_size_of(&self) -> usize {
        self.tile_size
    }

    /// The resolved cluster interconnect (cluster scenarios only).
    pub(crate) fn resolved_interconnect(&self) -> Arc<dyn Interconnect> {
        self.interconnect
            .clone()
            .unwrap_or_else(|| Arc::new(ZeroCost))
    }

    /// The resolved cluster placement (cluster scenarios only).
    pub(crate) fn resolved_placement(&self) -> Arc<dyn Placement> {
        let spec = self.cluster.as_ref().expect("placement needs a cluster");
        self.placement
            .clone()
            .unwrap_or_else(|| Arc::new(BlockCyclic::square(spec.nodes)))
    }

    /// A fresh session for one simulated run: the explicit session on
    /// first use (forked on later uses, so repeated terminals see
    /// identical virgin state), else models + config/seed.
    pub(crate) fn fresh_session(&self, used_before: bool) -> Arc<SimSession> {
        if let Some(s) = &self.session {
            if used_before {
                s.fork()
            } else {
                s.clone()
            }
        } else {
            let models = self
                .models
                .clone()
                .expect("simulated terminals need .models(...) or .session(...)");
            let config = match &self.config {
                Some(c) => c.clone(),
                None => SimConfig {
                    seed: self.seed,
                    ..SimConfig::default()
                },
            };
            SimSession::with_shared(models, config)
        }
    }

    /// A stable content hash of everything that determines this
    /// scenario's virtual-time outcome: algorithm, resolved sizes,
    /// scheduler, workers, seed, backend, cluster layout, interconnect
    /// and placement, fault plan, config overrides, and the attached
    /// duration-model database. Field-order independent (the builder's
    /// call order never matters) and seed-inclusive, so two scenarios
    /// hash equal only if a deterministic backend produces byte-identical
    /// results for both — the key the serve layer's content-addressed
    /// response cache relies on.
    ///
    /// Panics if an explicit session is attached without `.models(...)`:
    /// session internals (clock, RNG state) are not hashable, so callers
    /// must also provide the registry the session was built from.
    pub fn content_hash(&self) -> u64 {
        assert!(
            self.session.is_none() || self.models.is_some(),
            "content_hash cannot see inside an explicit session; \
             attach the registry it was built from via .models(...)"
        );
        let mut lines: Vec<String> = vec![
            format!("algorithm={}", self.algorithm.name()),
            format!("n={}", self.matrix_order()),
            format!("nb={}", self.tile_size),
            format!("scheduler={}", self.scheduler.name()),
            format!("workers={}", self.workers),
            format!("seed={}", self.seed),
            format!("backend={}", self.backend.name()),
        ];
        if let Some(spec) = &self.cluster {
            lines.push(format!(
                "cluster={}x{}:nic{}:mem{}",
                spec.nodes, spec.workers_per_node, spec.nic_lanes_per_node, spec.mem_bytes_per_node
            ));
            lines.push(format!(
                "interconnect={}",
                self.resolved_interconnect().fingerprint()
            ));
            lines.push(format!("placement={}", self.resolved_placement().name()));
        }
        if !self.faults.is_empty() {
            lines.push(format!(
                "faults={}",
                serde_json::to_string(&self.faults).expect("fault plans serialize")
            ));
        }
        if let Some(c) = &self.config {
            lines.push(format!(
                "config={}:{:?}:{:e}:{:?}:{:?}",
                c.seed, c.mitigation, c.overhead_per_task, c.worker_speeds, c.wakeup_mode
            ));
        }
        if let Some(m) = &self.models {
            lines.push(format!(
                "models={}",
                serde_json::to_string(m.as_ref()).expect("model registries serialize")
            ));
        }
        // Sorting makes the digest independent of how fields are added
        // above — reordering this function can never silently invalidate
        // caches keyed on the hash.
        lines.sort();
        let mut h = 0xcbf29ce484222325u64;
        for line in &lines {
            for b in line.as_bytes() {
                h ^= u64::from(*b);
                h = h.wrapping_mul(0x100000001b3);
            }
            h ^= u64::from(b'\n');
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }

    /// The lane map fault plans compile against: the cluster layout if
    /// one is set, else a single node of `workers` lanes.
    pub(crate) fn lane_map(&self) -> LaneMap {
        match &self.cluster {
            None => LaneMap::single_node(self.workers),
            Some(spec) => {
                let nodes = (0..spec.nodes)
                    .map(|n| supersim_faults::NodeLanes {
                        compute: spec.compute_range(n),
                        nic: spec.nic_range(n),
                    })
                    .collect();
                LaneMap::with_nodes(nodes, spec.total_workers())
            }
        }
    }

    /// Attach the scenario's compiled fault plan to `session` (no-op for
    /// an empty plan, preserving the bit-for-bit clean path). Returns the
    /// injector for stats readout.
    pub(crate) fn attach_plan(
        &self,
        session: &SimSession,
        plan: &FaultPlan,
        shift: f64,
    ) -> Option<Arc<CompiledFaults>> {
        if plan.is_empty() {
            return None;
        }
        let inj = Arc::new(CompiledFaults::compile(plan, &self.lane_map(), shift));
        session.attach_faults(inj.clone());
        Some(inj)
    }

    /// Execute the real kernels and verify the numerical result.
    /// Panics if a cluster or fault plan is attached — both exist only in
    /// simulation.
    pub fn run_real(self) -> RealRun {
        assert!(
            self.cluster.is_none(),
            "run_real is single-node; use run_cluster for distributed scenarios"
        );
        assert!(
            self.faults.is_empty(),
            "faults are simulated only; use run_sim or run_faults"
        );
        assert!(
            self.backend == Backend::Threaded,
            "run_real executes real kernels; the DES backend only replays simulations"
        );
        exec_real(
            self.algorithm,
            self.scheduler,
            self.workers,
            self.matrix_order(),
            self.tile_size,
            self.seed,
        )
    }

    /// Simulate the scenario on a single node. Straggler and transient
    /// events in the fault plan are injected; a plan with a permanent
    /// failure must go through [`Scenario::run_faults`] (it needs the
    /// two-phase replay and returns the richer [`FaultOutcome`]).
    pub fn run_sim(self) -> SimRun {
        assert!(
            self.cluster.is_none(),
            "scenario has a cluster; use run_cluster or run_faults"
        );
        assert!(
            self.faults.permanent_failure().is_none(),
            "permanent failures need the phased replay; use run_faults"
        );
        let session = self.fresh_session(false);
        self.attach_plan(&session, &self.faults.clone(), 0.0);
        exec_sim_backend(
            self.backend,
            self.algorithm,
            self.scheduler,
            self.workers,
            self.matrix_order(),
            self.tile_size,
            session,
        )
    }

    /// Simulate the scenario on the attached cluster. Straggler,
    /// link-degradation and transient events are injected; permanent
    /// failures must go through [`Scenario::run_faults`].
    pub fn run_cluster(self) -> ClusterRun {
        let spec = self
            .cluster
            .clone()
            .expect("run_cluster needs .cluster(ClusterSpec)");
        assert!(
            self.faults.permanent_failure().is_none(),
            "permanent failures need the phased replay; use run_faults"
        );
        let session = self.fresh_session(false);
        self.attach_plan(&session, &self.faults.clone(), 0.0);
        exec_cluster_backend(
            self.backend,
            self.algorithm,
            spec,
            self.resolved_interconnect(),
            self.resolved_placement(),
            self.matrix_order(),
            self.tile_size,
            session,
        )
    }

    /// Run the scenario clean *and* under its fault plan, returning both
    /// traces and a [`DegradationReport`](supersim_faults::DegradationReport). Handles every event
    /// kind, including permanent failures via two-phase replay
    /// (single-node: work-preserving cut; cluster: coordinated
    /// checkpoint/restart per the plan's [`supersim_faults::RecoveryPolicy`]).
    pub fn run_faults(self) -> FaultOutcome {
        run_faults(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::make_session;
    use supersim_core::KernelModel;

    fn models(alg: Algorithm) -> ModelRegistry {
        let mut m = ModelRegistry::new();
        for l in alg.labels() {
            m.insert(*l, KernelModel::constant(0.01));
        }
        m
    }

    #[test]
    fn builder_resolves_sizes() {
        let s = Scenario::new(Algorithm::Cholesky).tiles(8).tile_size(64);
        assert_eq!(s.matrix_order(), 512);
        // Explicit n wins over tiles.
        let s = Scenario::new(Algorithm::Cholesky)
            .tiles(8)
            .tile_size(64)
            .n(160);
        assert_eq!(s.matrix_order(), 160);
        // Defaults: 8 tiles of 64.
        assert_eq!(Scenario::new(Algorithm::Lu).matrix_order(), 512);
    }

    #[test]
    fn scenario_runs_real_and_sim() {
        let real = Scenario::new(Algorithm::Cholesky)
            .n(24)
            .tile_size(8)
            .workers(2)
            .seed(1)
            .run_real();
        assert!(real.residual < 1e-11);

        let sim = Scenario::new(Algorithm::Cholesky)
            .n(32)
            .tile_size(8)
            .workers(2)
            .seed(1)
            .models(models(Algorithm::Cholesky))
            .run_sim();
        assert!(sim.predicted_seconds > 0.0);
        assert!(sim.trace.validate(1e-9).is_ok());
    }

    #[test]
    fn scenario_session_takes_precedence() {
        // An explicit session's seed governs, not the builder's.
        let session = make_session(models(Algorithm::Cholesky), 7);
        let a = Scenario::new(Algorithm::Cholesky)
            .n(40)
            .tile_size(10)
            .workers(3)
            .seed(999)
            .session(session)
            .run_sim();
        let b = Scenario::new(Algorithm::Cholesky)
            .n(40)
            .tile_size(10)
            .workers(3)
            .models(models(Algorithm::Cholesky))
            .seed(7)
            .run_sim();
        // Virtual times are seed-deterministic; worker placement is not —
        // compare the canonical (lane-free) projection.
        assert_eq!(a.trace.canonical(), b.trace.canonical());
    }

    #[test]
    fn empty_plan_is_bit_for_bit_clean() {
        let mk = || {
            Scenario::new(Algorithm::Lu)
                .n(40)
                .tile_size(10)
                .workers(3)
                .seed(5)
                .models(models(Algorithm::Lu))
        };
        let clean = mk().run_sim();
        let faulted = mk().faults(FaultPlan::new()).run_sim();
        assert_eq!(clean.trace.canonical(), faulted.trace.canonical());
        assert_eq!(clean.predicted_seconds, faulted.predicted_seconds);
    }

    #[test]
    fn straggler_plan_slows_run_sim() {
        let mk = || {
            Scenario::new(Algorithm::Cholesky)
                .n(48)
                .tile_size(12)
                .workers(2)
                .seed(9)
                .models(models(Algorithm::Cholesky))
        };
        let clean = mk().run_sim();
        let slow = mk()
            .faults(FaultPlan::new().straggler_worker(0, 0.0, f64::MAX, 2.0))
            .run_sim();
        assert!(
            slow.predicted_seconds > clean.predicted_seconds,
            "straggler must not speed the run up: {} vs {}",
            slow.predicted_seconds,
            clean.predicted_seconds
        );
    }

    #[test]
    #[should_panic(expected = "phased replay")]
    fn permanent_failure_rejected_by_run_sim() {
        let _ = Scenario::new(Algorithm::Cholesky)
            .n(32)
            .tile_size(8)
            .models(models(Algorithm::Cholesky))
            .faults(FaultPlan::new().kill_worker(1, 0.5))
            .run_sim();
    }

    #[test]
    fn content_hash_is_stable_and_order_independent() {
        let a = Scenario::new(Algorithm::Cholesky)
            .n(128)
            .tile_size(32)
            .workers(4)
            .seed(7)
            .models(models(Algorithm::Cholesky))
            .backend(Backend::Des);
        assert_eq!(a.content_hash(), a.clone().content_hash());
        // Builder call order must not matter.
        let b = Scenario::new(Algorithm::Cholesky)
            .backend(Backend::Des)
            .models(models(Algorithm::Cholesky))
            .seed(7)
            .workers(4)
            .tile_size(32)
            .n(128);
        assert_eq!(a.content_hash(), b.content_hash());
        // Equivalent size spellings resolve to the same hash.
        let c = Scenario::new(Algorithm::Cholesky)
            .tiles(4)
            .tile_size(32)
            .workers(4)
            .seed(7)
            .models(models(Algorithm::Cholesky))
            .backend(Backend::Des);
        assert_eq!(a.content_hash(), c.content_hash());
    }

    #[test]
    fn content_hash_separates_differing_scenarios() {
        let base = || {
            Scenario::new(Algorithm::Cholesky)
                .n(128)
                .tile_size(32)
                .workers(4)
                .seed(7)
                .models(models(Algorithm::Cholesky))
        };
        let h = base().content_hash();
        assert_ne!(h, base().seed(8).content_hash(), "seed-inclusive");
        assert_ne!(
            h,
            Scenario::new(Algorithm::Lu)
                .n(128)
                .tile_size(32)
                .workers(4)
                .seed(7)
                .models(models(Algorithm::Lu))
                .content_hash()
        );
        assert_ne!(h, base().n(160).content_hash());
        assert_ne!(h, base().workers(5).content_hash());
        assert_ne!(h, base().backend(Backend::Des).content_hash());
        assert_ne!(
            h,
            base()
                .faults(FaultPlan::new().straggler_worker(0, 0.0, 1.0, 2.0))
                .content_hash()
        );
        assert_ne!(
            h,
            base().cluster(ClusterSpec::new(4, 2)).content_hash(),
            "cluster layout is part of the identity"
        );
        // A differently parameterized interconnect changes the hash even
        // though the model name is the same.
        let hockney = |lat| {
            base()
                .cluster(ClusterSpec::new(4, 2))
                .interconnect(Arc::new(supersim_cluster::Hockney::new(lat, 1e9)))
                .content_hash()
        };
        assert_ne!(hockney(1e-6), hockney(2e-6));
    }

    #[test]
    #[should_panic(expected = "content_hash cannot see inside")]
    fn content_hash_rejects_opaque_sessions() {
        let session = make_session(models(Algorithm::Cholesky), 7);
        let _ = Scenario::new(Algorithm::Cholesky)
            .n(64)
            .tile_size(16)
            .session(session)
            .content_hash();
    }

    #[test]
    fn cluster_terminal_uses_defaults() {
        let run = Scenario::new(Algorithm::Cholesky)
            .n(48)
            .tile_size(12)
            .seed(3)
            .models(models(Algorithm::Cholesky))
            .cluster(ClusterSpec::new(4, 2))
            .run_cluster();
        assert_eq!(run.interconnect, "zero");
        assert_eq!(run.placement, "block-cyclic-2x2");
        assert!(run.transfers > 0);
    }
}
