//! Tile LU (no pivoting) as a runtime workload — the extension beyond the
//! paper's two case studies (see `supersim_tile::lu` for the stability
//! caveat: inputs should be diagonally dominant).

use crate::data::SharedTiles;
use crate::mode::ExecMode;
use supersim_dag::Access;
use supersim_runtime::{Runtime, TaskDesc};
use supersim_tile::blas::{dgemm, dtrsm, Diag, Side, Trans, Uplo};
use supersim_tile::lu::{dgetrf_nopiv, task_stream, LuTask};

/// The access list of one LU task.
pub fn accesses(a: &SharedTiles, task: LuTask) -> Vec<Access> {
    match task {
        LuTask::Getrf { k } => vec![Access::read_write(a.data_id(k, k))],
        LuTask::TrsmL { k, j } => {
            vec![
                Access::read(a.data_id(k, k)),
                Access::read_write(a.data_id(k, j)),
            ]
        }
        LuTask::TrsmU { k, i } => {
            vec![
                Access::read(a.data_id(k, k)),
                Access::read_write(a.data_id(i, k)),
            ]
        }
        LuTask::Gemm { k, i, j } => vec![
            Access::read(a.data_id(i, k)),
            Access::read(a.data_id(k, j)),
            Access::read_write(a.data_id(i, j)),
        ],
    }
}

/// Static priority: earlier panels first, factorization above updates.
pub fn priority(nt: usize, task: LuTask) -> i64 {
    let (k, bonus) = match task {
        LuTask::Getrf { k } => (k, 3),
        LuTask::TrsmL { k, .. } => (k, 2),
        LuTask::TrsmU { k, .. } => (k, 2),
        LuTask::Gemm { k, .. } => (k, 0),
    };
    ((nt - k) as i64) * 4 + bonus
}

/// Execute one LU task on the shared tiles (real mode).
pub fn execute_real(a: &SharedTiles, task: LuTask, nb: usize) {
    match task {
        LuTask::Getrf { k } => {
            let mut akk = a.write(k, k);
            dgetrf_nopiv(&mut akk, k * nb).expect("zero pivot (LU without pivoting)");
        }
        LuTask::TrsmL { k, j } => {
            let akk = a.read(k, k).clone();
            let mut akj = a.write(k, j);
            dtrsm(
                Side::Left,
                Uplo::Lower,
                Trans::No,
                Diag::Unit,
                1.0,
                &akk,
                &mut akj,
            );
        }
        LuTask::TrsmU { k, i } => {
            let akk = a.read(k, k).clone();
            let mut aik = a.write(i, k);
            dtrsm(
                Side::Right,
                Uplo::Upper,
                Trans::No,
                Diag::NonUnit,
                1.0,
                &akk,
                &mut aik,
            );
        }
        LuTask::Gemm { k, i, j } => {
            let aik = a.read(i, k).clone();
            let akj = a.read(k, j).clone();
            let mut aij = a.write(i, j);
            dgemm(Trans::No, Trans::No, -1.0, &aik, &akj, 1.0, &mut aij);
        }
    }
}

/// Submit the tile LU task stream. Returns the task count; call
/// `rt.seal()` afterwards.
pub fn submit(rt: &Runtime, a: &SharedTiles, mode: &ExecMode) -> u64 {
    submit_where(rt, a, mode, &mut |_| true)
}

/// Submit the LU stream filtered by `keep` over the 0-based stream index
/// (see `cholesky::submit_where`).
pub fn submit_where(
    rt: &Runtime,
    a: &SharedTiles,
    mode: &ExecMode,
    keep: &mut dyn FnMut(u64) -> bool,
) -> u64 {
    assert_eq!(a.mt(), a.nt(), "LU requires a square tile grid");
    let nt = a.nt();
    let nb = a.nb();
    let mut count = 0;
    for (idx, task) in task_stream(nt).into_iter().enumerate() {
        if !keep(idx as u64) {
            continue;
        }
        let label = task.label();
        let acc = accesses(a, task);
        let prio = priority(nt, task);
        let desc = match mode {
            ExecMode::Real => {
                let tiles = a.clone();
                TaskDesc::new(label, acc, move |_ctx| execute_real(&tiles, task, nb))
            }
            ExecMode::Simulated(session) => TaskDesc::new(label, acc, session.planned_body(label)),
        };
        rt.submit(desc.with_priority(prio));
        count += 1;
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use supersim_core::{KernelModel, ModelRegistry, SimConfig, SimSession};
    use supersim_runtime::{RuntimeConfig, SchedulerKind};
    use supersim_tile::generate::diag_dominant;
    use supersim_tile::verify::lu_residual;
    use supersim_tile::TiledMatrix;

    #[test]
    fn real_run_factors_correctly() {
        for kind in [SchedulerKind::Quark, SchedulerKind::StarPu] {
            let n = 24;
            let a0 = diag_dominant(n, 21);
            let shared = SharedTiles::new(TiledMatrix::from_matrix(&a0, 6), 0);
            let rt = supersim_runtime::profiles::runtime_for(kind, 3);
            submit(&rt, &shared, &ExecMode::Real);
            rt.seal();
            rt.wait_all().unwrap();
            let res = lu_residual(&a0, &shared.to_tiled());
            assert!(res < 1e-12, "{kind:?}: residual {res}");
        }
    }

    #[test]
    fn sim_run_counts_tasks() {
        let n = 16;
        let a0 = diag_dominant(n, 22);
        let shared = SharedTiles::new(TiledMatrix::from_matrix(&a0, 4), 0);
        let mut models = ModelRegistry::new();
        for l in ["dgetrf", "dtrsm_l", "dtrsm_u", "dgemm"] {
            models.insert(l, KernelModel::constant(0.25));
        }
        let session = SimSession::new(models, SimConfig::default());
        let rt = Runtime::new(RuntimeConfig::simple(2));
        session.attach_quiesce(rt.probe());
        let count = submit(&rt, &shared, &ExecMode::Simulated(session.clone()));
        rt.seal();
        rt.wait_all().unwrap();
        // nt=4: 4 getrf + 2*6 trsm + 14 gemm (9+4+1) = 30.
        assert_eq!(count, 30);
        let trace = session.finish_trace(2);
        assert_eq!(trace.len(), 30);
        assert!(trace.validate(1e-9).is_ok());
    }

    #[test]
    fn zero_pivot_surfaces_as_task_error() {
        let n = 8;
        let a0 = supersim_tile::Matrix::zeros(n, n);
        let shared = SharedTiles::new(TiledMatrix::from_matrix(&a0, 4), 0);
        let rt = Runtime::new(RuntimeConfig::simple(2));
        submit(&rt, &shared, &ExecMode::Real);
        rt.seal();
        let errs = rt.wait_all().unwrap_err();
        assert!(errs.iter().any(|e| e.contains("zero pivot")), "{errs:?}");
    }
}
