//! The execution-mode switch: real kernels vs the simulated-kernel protocol.

use std::sync::Arc;
use supersim_core::SimSession;

/// How task bodies execute.
#[derive(Clone)]
pub enum ExecMode {
    /// Execute the actual tile kernels (a "real" run, producing numerical
    /// results and wall-clock timings).
    Real,
    /// Replace every kernel with the simulated-kernel protocol of the given
    /// session (a simulated run, producing a virtual-time trace).
    Simulated(Arc<SimSession>),
}

impl ExecMode {
    /// Whether this is a simulated run.
    pub fn is_simulated(&self) -> bool {
        matches!(self, ExecMode::Simulated(_))
    }

    /// The session, if simulated.
    pub fn session(&self) -> Option<&Arc<SimSession>> {
        match self {
            ExecMode::Real => None,
            ExecMode::Simulated(s) => Some(s),
        }
    }
}

impl std::fmt::Debug for ExecMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecMode::Real => write!(f, "Real"),
            ExecMode::Simulated(_) => write!(f, "Simulated"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use supersim_core::{ModelRegistry, SimConfig};

    #[test]
    fn mode_predicates() {
        assert!(!ExecMode::Real.is_simulated());
        assert!(ExecMode::Real.session().is_none());
        let s = SimSession::new(ModelRegistry::new(), SimConfig::default());
        let m = ExecMode::Simulated(s);
        assert!(m.is_simulated());
        assert!(m.session().is_some());
        assert_eq!(format!("{m:?}"), "Simulated");
    }
}
