//! Deprecated free-function shims for the pre-[`Scenario`] driver API.
//!
//! These keep old call sites compiling (with a deprecation warning) while
//! everything in-tree goes through the builder. Each shim is a thin
//! delegation to the same engine the builder terminals use, so behaviour
//! — including trace bit-patterns — is identical.
//!
//! [`Scenario`]: crate::Scenario

use crate::cluster::ClusterRun;
use crate::driver::{Algorithm, RealRun, SimRun};
use std::sync::Arc;
use supersim_cluster::{ClusterSpec, Interconnect, Placement};
use supersim_core::{ModelRegistry, SimSession};
use supersim_runtime::SchedulerKind;

/// Run an algorithm for real under the given scheduler.
#[deprecated(since = "0.2.0", note = "use Scenario::new(alg)...run_real() instead")]
pub fn run_real(
    alg: Algorithm,
    kind: SchedulerKind,
    workers: usize,
    n: usize,
    nb: usize,
    seed: u64,
) -> RealRun {
    crate::driver::exec_real(alg, kind, workers, n, nb, seed)
}

/// Run a simulated execution of the algorithm.
#[deprecated(since = "0.2.0", note = "use Scenario::new(alg)...run_sim() instead")]
pub fn run_sim(
    alg: Algorithm,
    kind: SchedulerKind,
    workers: usize,
    n: usize,
    nb: usize,
    session: Arc<SimSession>,
) -> SimRun {
    crate::driver::exec_sim(alg, kind, workers, n, nb, session)
}

/// Run a distributed simulated factorization.
#[deprecated(
    since = "0.2.0",
    note = "use Scenario::new(alg).cluster(spec)...run_cluster() instead"
)]
pub fn run_cluster(
    alg: Algorithm,
    spec: ClusterSpec,
    interconnect: Arc<dyn Interconnect>,
    placement: Arc<dyn Placement>,
    n: usize,
    nb: usize,
    session: Arc<SimSession>,
) -> ClusterRun {
    crate::cluster::exec_cluster(alg, spec, interconnect, placement, n, nb, session)
}

/// A fresh session with the given models and default config.
#[deprecated(
    since = "0.2.0",
    note = "use Scenario::new(alg).models(m).seed(s) (or SimSession::new) instead"
)]
pub fn session_with(models: ModelRegistry, seed: u64) -> Arc<SimSession> {
    crate::driver::make_session(models, seed)
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use supersim_core::KernelModel;

    #[test]
    fn shims_match_scenario_terminals() {
        let mut m = ModelRegistry::new();
        for l in Algorithm::Cholesky.labels() {
            m.insert(*l, KernelModel::constant(0.01));
        }
        let old = run_sim(
            Algorithm::Cholesky,
            SchedulerKind::Quark,
            3,
            40,
            10,
            session_with(m.clone(), 7),
        );
        let new = crate::Scenario::new(Algorithm::Cholesky)
            .scheduler(SchedulerKind::Quark)
            .workers(3)
            .n(40)
            .tile_size(10)
            .models(m)
            .seed(7)
            .run_sim();
        // Same engine, same virtual times; worker placement races, so
        // compare the canonical (lane-free) projection.
        assert_eq!(old.trace.canonical(), new.trace.canonical());
    }
}
