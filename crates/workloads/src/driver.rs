//! One-call drivers: run an algorithm for real (with verification) or
//! simulated (with a virtual-time trace), under any scheduler profile.
//!
//! These are the building blocks of the paper's evaluation: Figs. 8–10 run
//! each algorithm both ways over a size sweep and compare GFLOP/s.

use crate::data::SharedTiles;
use crate::mode::ExecMode;
use crate::{cholesky, lu, qr};
use std::sync::Arc;
use supersim_core::{SimConfig, SimSession};
use supersim_runtime::{Runtime, RuntimeStats, SchedulerKind};
use supersim_tile::{flops, generate, verify, TiledMatrix};
use supersim_trace::{Trace, TraceRecorder};

/// Which tile algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// Tile Cholesky (paper Algorithm 1).
    Cholesky,
    /// Tile QR (paper Algorithm 2).
    Qr,
    /// Tile LU without pivoting (extension).
    Lu,
}

impl Algorithm {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Cholesky => "cholesky",
            Algorithm::Qr => "qr",
            Algorithm::Lu => "lu",
        }
    }

    /// Kernel-class labels this algorithm uses.
    pub fn labels(self) -> &'static [&'static str] {
        match self {
            Algorithm::Cholesky => &["dpotrf", "dtrsm", "dsyrk", "dgemm"],
            Algorithm::Qr => &["dgeqrt", "dormqr", "dtsqrt", "dtsmqr"],
            Algorithm::Lu => &["dgetrf", "dtrsm_l", "dtrsm_u", "dgemm"],
        }
    }

    /// Standard flop count for an `n x n` problem.
    pub fn flops(self, n: usize) -> f64 {
        match self {
            Algorithm::Cholesky => flops::cholesky(n),
            Algorithm::Qr => flops::qr(n, n),
            Algorithm::Lu => flops::lu(n),
        }
    }
}

/// Result of a real (computing) run.
#[derive(Debug, Clone)]
pub struct RealRun {
    /// Algorithm executed.
    pub algorithm: Algorithm,
    /// Matrix order.
    pub n: usize,
    /// Tile size.
    pub nb: usize,
    /// Worker threads used.
    pub workers: usize,
    /// Wall-clock seconds for the factorization (submission to wait_all).
    pub seconds: f64,
    /// Wall-clock trace of the execution.
    pub trace: Trace,
    /// Scaled numerical residual of the factorization.
    pub residual: f64,
    /// Achieved GFLOP/s (standard flop count / seconds).
    pub gflops: f64,
    /// Engine execution statistics (per-worker task counts, lock and
    /// idle/busy transition counters).
    pub stats: RuntimeStats,
}

/// Result of a simulated run.
#[derive(Debug, Clone)]
pub struct SimRun {
    /// Algorithm simulated.
    pub algorithm: Algorithm,
    /// Matrix order.
    pub n: usize,
    /// Tile size.
    pub nb: usize,
    /// Virtual worker threads.
    pub workers: usize,
    /// Predicted execution time (virtual seconds).
    pub predicted_seconds: f64,
    /// Wall-clock seconds the simulation itself took.
    pub wall_seconds: f64,
    /// Virtual-time trace.
    pub trace: Trace,
    /// Predicted GFLOP/s.
    pub gflops: f64,
    /// Engine execution statistics of the simulation run (the real
    /// scheduler kept in the loop, per the paper's design).
    pub stats: RuntimeStats,
}

fn submit_algorithm(
    alg: Algorithm,
    rt: &Runtime,
    a: &SharedTiles,
    t: Option<&SharedTiles>,
    mode: &ExecMode,
) {
    submit_algorithm_where(alg, rt, a, t, mode, &mut |_| true);
}

/// Submit an algorithm's task stream filtered by `keep` over the 0-based
/// stream index: the fault-replay driver re-submits only the tasks a
/// permanent failure left incomplete. Returns the submitted count.
pub(crate) fn submit_algorithm_where(
    alg: Algorithm,
    rt: &Runtime,
    a: &SharedTiles,
    t: Option<&SharedTiles>,
    mode: &ExecMode,
    keep: &mut dyn FnMut(u64) -> bool,
) -> u64 {
    match alg {
        Algorithm::Cholesky => cholesky::submit_where(rt, a, mode, keep),
        Algorithm::Qr => qr::submit_where(rt, a, t.expect("QR needs a T grid"), mode, keep),
        Algorithm::Lu => lu::submit_where(rt, a, mode, keep),
    }
}

/// Run an algorithm for real under the given scheduler, verifying the
/// numerical result. The input matrix is generated from `seed` (SPD for
/// Cholesky, diagonally dominant for LU, uniform for QR).
///
/// This is the engine behind [`crate::Scenario::run_real`]; build runs
/// through the scenario builder.
pub(crate) fn exec_real(
    alg: Algorithm,
    kind: SchedulerKind,
    workers: usize,
    n: usize,
    nb: usize,
    seed: u64,
) -> RealRun {
    let a0 = match alg {
        Algorithm::Cholesky => generate::spd_fast(n, seed),
        Algorithm::Qr => generate::random(n, n, seed),
        Algorithm::Lu => generate::diag_dominant(n, seed),
    };
    let a = SharedTiles::new(TiledMatrix::from_matrix(&a0, nb), 0);
    let t = match alg {
        Algorithm::Qr => Some(SharedTiles::new(
            TiledMatrix::zeros(n, n, nb),
            a.id_range().1,
        )),
        _ => None,
    };

    let recorder = TraceRecorder::new();
    let rt = Runtime::with_trace(kind.config(workers), Some(recorder.clone()));
    let t0 = std::time::Instant::now();
    submit_algorithm(alg, &rt, &a, t.as_ref(), &ExecMode::Real);
    rt.seal();
    rt.wait_all().expect("real run failed");
    let seconds = t0.elapsed().as_secs_f64();
    let stats = rt.stats();
    let trace = recorder.finish(workers);

    let residual = match alg {
        Algorithm::Cholesky => verify::cholesky_residual(&a0, &a.to_tiled()),
        Algorithm::Qr => verify::qr_residual(&a0, &a.to_tiled(), &t.as_ref().unwrap().to_tiled()),
        Algorithm::Lu => verify::lu_residual(&a0, &a.to_tiled()),
    };

    RealRun {
        algorithm: alg,
        n,
        nb,
        workers,
        seconds,
        trace,
        residual,
        gflops: flops::gflops(alg.flops(n), seconds),
        stats,
    }
}

/// Run a simulated execution of the algorithm under the given scheduler,
/// predicting its runtime from the session's kernel models. No numerical
/// work happens; memory is `O(tiles)`, not `O(n^2)`.
///
/// This is the engine behind [`crate::Scenario::run_sim`]. Any fault
/// injector must already be attached to `session` — the scenario builder
/// does that before calling in.
pub(crate) fn exec_sim(
    alg: Algorithm,
    kind: SchedulerKind,
    workers: usize,
    n: usize,
    nb: usize,
    session: Arc<SimSession>,
) -> SimRun {
    let a = SharedTiles::layout_only(n, n, nb, 0);
    let t = match alg {
        Algorithm::Qr => Some(SharedTiles::layout_only(n, n, nb, a.id_range().1)),
        _ => None,
    };

    // Fail fast with a clear message if a kernel class has no model
    // (e.g. calibrated from a run too small to contain that class).
    for label in alg.labels() {
        session.models().expect(label);
    }
    let rt = Runtime::new(kind.config(workers));
    session.attach_quiesce(rt.probe());
    // Plan-based warm-up: one warm slot per worker, assigned by submission
    // rank rather than worker arrival order, so warm-up placement is
    // deterministic even with `warmup_factor != 1` (see
    // `SimSession::run_kernel_ranked`).
    session.set_warmup_slots(workers);
    let mode = ExecMode::Simulated(session.clone());
    let t0 = std::time::Instant::now();
    submit_algorithm(alg, &rt, &a, t.as_ref(), &mode);
    rt.seal();
    rt.wait_all().expect("simulated run failed");
    let wall_seconds = t0.elapsed().as_secs_f64();
    let stats = rt.stats();
    let predicted_seconds = session.virtual_now();
    let trace = session.finish_trace(workers);

    SimRun {
        algorithm: alg,
        n,
        nb,
        workers,
        predicted_seconds,
        wall_seconds,
        trace,
        gflops: flops::gflops(alg.flops(n), predicted_seconds),
        stats,
    }
}

/// A fresh session with the given models and a default config carrying
/// `seed` (the engine behind the deprecated `session_with` shim; the
/// scenario builder constructs its sessions through this too).
pub(crate) fn make_session(models: supersim_core::ModelRegistry, seed: u64) -> Arc<SimSession> {
    SimSession::new(
        models,
        SimConfig {
            seed,
            ..SimConfig::default()
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use supersim_core::{KernelModel, ModelRegistry};

    fn constant_models(alg: Algorithm, secs: f64) -> ModelRegistry {
        let mut m = ModelRegistry::new();
        for l in alg.labels() {
            m.insert(*l, KernelModel::constant(secs));
        }
        m
    }

    #[test]
    fn real_runs_verify_for_all_algorithms() {
        for alg in [Algorithm::Cholesky, Algorithm::Qr, Algorithm::Lu] {
            let run = exec_real(alg, SchedulerKind::Quark, 2, 24, 8, 1);
            assert!(run.residual < 1e-11, "{alg:?} residual {}", run.residual);
            assert!(run.seconds > 0.0);
            assert!(run.gflops > 0.0);
            assert!(!run.trace.is_empty());
            assert!(run.trace.validate(1e-9).is_ok());
        }
    }

    #[test]
    fn sim_runs_produce_consistent_predictions() {
        for alg in [Algorithm::Cholesky, Algorithm::Qr, Algorithm::Lu] {
            let session = make_session(constant_models(alg, 0.01), 3);
            let run = exec_sim(alg, SchedulerKind::Quark, 4, 32, 8, session);
            assert!(run.predicted_seconds > 0.0, "{alg:?}");
            assert!(run.trace.validate(1e-9).is_ok());
            // All kernels 10ms; NT=4; predicted time must be between the
            // critical path and the serial time.
            let tasks = run.trace.len() as f64;
            assert!(run.predicted_seconds <= tasks * 0.01 + 1e-9);
            assert!(run.predicted_seconds >= 0.01 * 4.0); // >= depth lower bound
        }
    }

    #[test]
    fn sim_large_problem_is_cheap() {
        // N=3960, nb=180 (the paper's Fig. 6/7 size): runs in O(tasks),
        // no O(n^2) allocation.
        let session = make_session(constant_models(Algorithm::Cholesky, 0.001), 4);
        let run = exec_sim(
            Algorithm::Cholesky,
            SchedulerKind::Quark,
            8,
            3960,
            180,
            session,
        );
        assert_eq!(run.n, 3960);
        // NT = 22: tasks = 22 + 2*231 + 1540 = 2024.
        assert_eq!(run.trace.len(), 2024);
    }

    #[test]
    fn algorithm_metadata() {
        assert_eq!(Algorithm::Cholesky.name(), "cholesky");
        assert_eq!(Algorithm::Qr.labels().len(), 4);
        assert!(Algorithm::Qr.flops(100) > Algorithm::Cholesky.flops(100));
    }
}
