//! Overhead of the simulation core: Task Execution Queue operations and
//! the full simulated-kernel protocol per task. This is the per-task cost
//! of the paper's approach (its "simulation speed").

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::sync::Arc;
use supersim_core::{KernelModel, ModelRegistry, SimConfig, SimSession, TaskExecutionQueue};
use supersim_dag::{Access, DataId};
use supersim_runtime::{Runtime, RuntimeConfig, TaskDesc};

fn bench_teq_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("teq");
    group.throughput(Throughput::Elements(1));
    group.bench_function("insert_retire_serial", |b| {
        let q = TaskExecutionQueue::new();
        b.iter(|| {
            let (t, _) = q.insert(1.0);
            q.wait_front(t);
            q.retire(t);
        });
    });
    group.finish();
}

fn bench_sim_protocol(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_protocol");
    group.sample_size(10);
    {
        let &tasks = &1000usize;
        group.throughput(Throughput::Elements(tasks as u64));
        group.bench_function(format!("chain_{tasks}_tasks"), |b| {
            b.iter(|| {
                let mut models = ModelRegistry::new();
                models.insert("k", KernelModel::constant(0.001));
                let session: Arc<SimSession> = SimSession::new(models, SimConfig::default());
                let rt = Runtime::new(RuntimeConfig::simple(2));
                session.attach_quiesce(rt.probe());
                for _ in 0..tasks {
                    let s = session.clone();
                    rt.submit(TaskDesc::new(
                        "k",
                        vec![Access::read_write(DataId(0))],
                        move |ctx| s.run_kernel(ctx, "k"),
                    ));
                }
                rt.seal();
                rt.wait_all().unwrap();
                session.virtual_now()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_teq_ops, bench_sim_protocol);
criterion_main!(benches);
