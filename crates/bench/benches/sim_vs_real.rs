//! The paper's "Accelerated Simulation Time" contribution (SS III): wall
//! time of a simulated run vs the real execution it predicts. The sim
//! should be substantially faster ("a two-fold speedup is not uncommon" on
//! the paper's testbed; far larger here because the host serializes real
//! kernels).

use criterion::{criterion_group, criterion_main, Criterion};
use supersim_calibrate::{calibrate, FitOptions};
use supersim_core::{SimConfig, SimSession};
use supersim_runtime::SchedulerKind;
use supersim_workloads::driver::{run_real, run_sim, Algorithm};

fn bench_sim_vs_real(c: &mut Criterion) {
    let (n, nb, workers) = (240usize, 60usize, 2usize);
    // Calibrate once outside the measurement.
    let real = run_real(Algorithm::Cholesky, SchedulerKind::Quark, workers, n, nb, 1);
    let registry = calibrate(&real.trace, FitOptions::default()).registry;

    let mut group = c.benchmark_group("sim_vs_real_cholesky_240");
    group.sample_size(10);
    group.bench_function("real_execution", |b| {
        b.iter(|| run_real(Algorithm::Cholesky, SchedulerKind::Quark, workers, n, nb, 2).seconds);
    });
    group.bench_function("simulated_execution", |b| {
        b.iter(|| {
            let session = SimSession::new(registry.clone(), SimConfig::default());
            run_sim(
                Algorithm::Cholesky,
                SchedulerKind::Quark,
                workers,
                n,
                nb,
                session,
            )
            .predicted_seconds
        });
    });
    group.finish();
}

criterion_group!(benches, bench_sim_vs_real);
criterion_main!(benches);
