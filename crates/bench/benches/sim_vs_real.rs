//! The paper's "Accelerated Simulation Time" contribution (SS III): wall
//! time of a simulated run vs the real execution it predicts. The sim
//! should be substantially faster ("a two-fold speedup is not uncommon" on
//! the paper's testbed; far larger here because the host serializes real
//! kernels).

use criterion::{criterion_group, criterion_main, Criterion};
use supersim_calibrate::{calibrate, FitOptions};
use supersim_core::SimConfig;
use supersim_workloads::{Algorithm, Scenario};

fn bench_sim_vs_real(c: &mut Criterion) {
    let (n, nb, workers) = (240usize, 60usize, 2usize);
    let scenario = Scenario::new(Algorithm::Cholesky)
        .workers(workers)
        .n(n)
        .tile_size(nb);
    // Calibrate once outside the measurement.
    let real = scenario.clone().seed(1).run_real();
    let registry = calibrate(&real.trace, FitOptions::default()).registry;

    let mut group = c.benchmark_group("sim_vs_real_cholesky_240");
    group.sample_size(10);
    group.bench_function("real_execution", |b| {
        b.iter(|| scenario.clone().seed(2).run_real().seconds);
    });
    group.bench_function("simulated_execution", |b| {
        b.iter(|| {
            scenario
                .clone()
                .models(registry.clone())
                .config(SimConfig::default())
                .run_sim()
                .predicted_seconds
        });
    });
    group.finish();
}

criterion_group!(benches, bench_sim_vs_real);
criterion_main!(benches);
