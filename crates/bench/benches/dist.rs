//! Sampling and fitting throughput of the kernel-duration distributions.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::SeedableRng;
use supersim_dist::{fit, Dist, Distribution};

fn bench_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("dist_sampling");
    group.throughput(Throughput::Elements(1));
    let dists = [
        ("normal", Dist::normal(1.0, 0.1).unwrap()),
        ("gamma", Dist::gamma(4.0, 0.25).unwrap()),
        ("lognormal", Dist::log_normal(0.0, 0.3).unwrap()),
        ("exponential", Dist::exponential(1.0).unwrap()),
    ];
    for (name, d) in dists {
        group.bench_function(name, |b| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(1);
            b.iter(|| d.sample(&mut rng));
        });
    }
    group.finish();
}

fn bench_fitting(c: &mut Criterion) {
    let mut group = c.benchmark_group("dist_fitting");
    group.sample_size(20);
    let truth = Dist::log_normal(-5.0, 0.3).unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let data: Vec<f64> = (0..2000).map(|_| truth.sample(&mut rng)).collect();
    group.throughput(Throughput::Elements(data.len() as u64));
    group.bench_function("select_model_2000", |b| {
        b.iter(|| fit::select_model(&data).unwrap().best().dist.family());
    });
    group.finish();
}

criterion_group!(benches, bench_sampling, bench_fitting);
criterion_main!(benches);
