//! Hot-path contention benchmarks: TEQ drain throughput under broadcast
//! vs targeted wakeups across waiter counts, and engine task throughput.
//!
//! The targeted-wakeup claim of this codebase is that retiring a task
//! schedules exactly one successor thread instead of stampeding every
//! parked waiter; the gap between the two modes below is that claim
//! measured. `src/bin/perf_baseline.rs` runs the same scenarios and writes
//! machine-readable numbers to `BENCH_simcore.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use supersim_bench::contention::{engine_burst_seconds, teq_drain_seconds};
use supersim_core::WakeupMode;

/// Tasks each waiter thread retires per drain.
const PER_WAITER: usize = 50;

fn bench_teq_contention(c: &mut Criterion) {
    let mut group = c.benchmark_group("teq_contention");
    group.sample_size(10);
    for &waiters in &[1usize, 8, 48, 64, 128, 256] {
        group.throughput(Throughput::Elements((waiters * PER_WAITER) as u64));
        for (name, mode) in [
            ("broadcast", WakeupMode::Broadcast),
            ("targeted", WakeupMode::Targeted),
        ] {
            group.bench_with_input(BenchmarkId::new(name, waiters), &waiters, |b, &w| {
                b.iter(|| teq_drain_seconds(mode, w, PER_WAITER));
            });
        }
    }
    group.finish();
}

fn bench_engine_burst(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_burst");
    group.sample_size(10);
    let tasks = 5_000usize;
    group.throughput(Throughput::Elements(tasks as u64));
    for &workers in &[1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("independent", workers),
            &workers,
            |b, &w| {
                b.iter(|| engine_burst_seconds(w, tasks));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_teq_contention, bench_engine_burst);
criterion_main!(benches);
