//! Cost of the observability layer itself.
//!
//! Two kinds of measurement:
//!
//! * raw instrument throughput — counter increments, sampled stamps, and
//!   histogram records, the primitives the hot path leans on;
//! * the instrumented TEQ drain at the acceptance point (64 waiters,
//!   targeted wakeups) — run this bench once on a default build and once
//!   with `--no-default-features` to see the end-to-end delta that
//!   `perf_baseline --overhead-bin` records against the 2% budget.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use supersim_bench::contention::teq_drain_seconds;
use supersim_core::WakeupMode;

/// Tasks each waiter thread retires per drain (matches `contention.rs`).
const PER_WAITER: usize = 50;

fn bench_instrumented_drain(c: &mut Criterion) {
    let mut group = c.benchmark_group("metrics_overhead");
    group.sample_size(10);
    let waiters = 64usize;
    group.throughput(Throughput::Elements((waiters * PER_WAITER) as u64));
    let label = if cfg!(feature = "metrics") {
        "teq_drain_64_metrics_on"
    } else {
        "teq_drain_64_metrics_off"
    };
    group.bench_function(label, |b| {
        b.iter(|| teq_drain_seconds(WakeupMode::Targeted, waiters, PER_WAITER));
    });
    group.finish();
}

#[cfg(feature = "metrics")]
fn bench_instruments(c: &mut Criterion) {
    use supersim_metrics::{global, LocalHistogram};

    let mut group = c.benchmark_group("metrics_instruments");
    group.throughput(Throughput::Elements(1));

    let counter = global().counter("bench.counter");
    group.bench_function("counter_inc", |b| b.iter(|| counter.inc()));

    let hist = global().histogram("bench.hist");
    group.bench_function("histogram_record", |b| {
        let mut ns = 1u64;
        b.iter(|| {
            hist.record(ns);
            ns = ns.wrapping_mul(6364136223846793005).wrapping_add(1) >> 32;
        })
    });

    group.bench_function("local_histogram_record", |b| {
        let mut h = LocalHistogram::new();
        let mut ns = 1u64;
        b.iter(|| {
            h.record(ns);
            ns = ns.wrapping_mul(6364136223846793005).wrapping_add(1) >> 32;
        })
    });

    group.bench_function("sampled_stamp", |b| {
        b.iter(supersim_core::obs::stamp);
    });

    group.finish();
}

#[cfg(not(feature = "metrics"))]
fn bench_instruments(_c: &mut Criterion) {}

criterion_group!(benches, bench_instrumented_drain, bench_instruments);
criterion_main!(benches);
