//! Hazard-analysis throughput: building the dependence DAG from the serial
//! task streams of the tile algorithms (what the scheduler does at
//! submission time).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use supersim_dag::DagBuilder;
use supersim_workloads::{cholesky, qr, SharedTiles};

fn bench_dag_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("dag_build");
    for &nt in &[10usize, 20] {
        let a = SharedTiles::layout_only(nt * 10, nt * 10, 10, 0);
        let t = SharedTiles::layout_only(nt * 10, nt * 10, 10, a.id_range().1);

        let chol_tasks = supersim_tile::cholesky::task_stream(nt);
        group.throughput(Throughput::Elements(chol_tasks.len() as u64));
        group.bench_with_input(BenchmarkId::new("cholesky", nt), &nt, |b, _| {
            b.iter(|| {
                let mut builder = DagBuilder::new();
                for task in &chol_tasks {
                    builder.submit(task.label(), 1.0, &cholesky::accesses(&a, *task));
                }
                builder.finish().len()
            });
        });

        let qr_tasks = supersim_tile::qr::task_stream(nt);
        group.throughput(Throughput::Elements(qr_tasks.len() as u64));
        group.bench_with_input(BenchmarkId::new("qr", nt), &nt, |b, _| {
            b.iter(|| {
                let mut builder = DagBuilder::new();
                for task in &qr_tasks {
                    builder.submit(task.label(), 1.0, &qr::accesses(&a, &t, *task));
                }
                builder.finish().len()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dag_build);
criterion_main!(benches);
