//! Simulator throughput: the offline DES baseline vs the scheduler-in-the-
//! loop simulation, on the same synthetic DAG. The offline DES is faster
//! (no real threads) but cannot reflect a real scheduler's behavior — the
//! accuracy side of this trade-off is quantified by `figures ablation`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use supersim_core::{SimConfig, SimSession};
use supersim_des::DesPolicy;
use supersim_runtime::{Runtime, RuntimeConfig};
use supersim_workloads::synthetic::{layered, models_for, submit, to_graph};
use supersim_workloads::ExecMode;

fn bench_des_vs_inloop(c: &mut Criterion) {
    let tasks = layered(20, 16, 3, 0.01, 42);
    let graph = to_graph(&tasks);
    let workers = 4;

    let mut group = c.benchmark_group("des_vs_inloop_layered_320");
    group.sample_size(10);
    group.throughput(Throughput::Elements(tasks.len() as u64));
    group.bench_function("offline_des", |b| {
        b.iter(|| {
            supersim_des::simulate(&graph, workers, DesPolicy::Fifo, |t| graph.node(t).weight)
                .makespan
        });
    });
    group.bench_function("inloop_sim", |b| {
        b.iter(|| {
            let session = SimSession::new(models_for(&tasks), SimConfig::default());
            let rt = Runtime::new(RuntimeConfig::simple(workers));
            session.attach_quiesce(rt.probe());
            submit(&rt, &tasks, &ExecMode::Simulated(session.clone()), 1.0);
            rt.seal();
            rt.wait_all().unwrap();
            session.virtual_now()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_des_vs_inloop);
criterion_main!(benches);
