//! Throughput of the tile linear-algebra kernels (the building blocks the
//! simulation models): GFLOP/s of dgemm / dpotf2 / dgeqrt / dtsmqr.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use supersim_tile::blas::{dgemm, dpotf2, Trans};
use supersim_tile::generate::{random, spd};
use supersim_tile::qr_kernels::{dgeqrt, dtsmqr, dtsqrt, ApplyTrans};
use supersim_tile::{flops, Matrix};

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("tile_kernels");
    group.sample_size(10);
    for &nb in &[64usize, 128] {
        group.throughput(Throughput::Elements(flops::gemm(nb, nb, nb) as u64));
        group.bench_with_input(BenchmarkId::new("dgemm", nb), &nb, |bench, &nb| {
            let a = random(nb, nb, 1);
            let b = random(nb, nb, 2);
            let mut cm = random(nb, nb, 3);
            bench.iter(|| {
                dgemm(Trans::No, Trans::Yes, -1.0, &a, &b, 1.0, &mut cm);
            });
        });

        group.throughput(Throughput::Elements(flops::potrf_tile(nb) as u64));
        group.bench_with_input(BenchmarkId::new("dpotf2", nb), &nb, |bench, &nb| {
            let a0 = spd(nb, 4);
            bench.iter(|| {
                let mut a = a0.clone();
                dpotf2(&mut a).unwrap();
            });
        });

        group.throughput(Throughput::Elements(flops::geqrt_tile(nb) as u64));
        group.bench_with_input(BenchmarkId::new("dgeqrt", nb), &nb, |bench, &nb| {
            let a0 = random(nb, nb, 5);
            bench.iter(|| {
                let mut a = a0.clone();
                let mut t = Matrix::zeros(nb, nb);
                dgeqrt(&mut a, &mut t);
            });
        });

        group.throughput(Throughput::Elements(flops::tsmqr_tile(nb) as u64));
        group.bench_with_input(BenchmarkId::new("dtsmqr", nb), &nb, |bench, &nb| {
            // Prepare a tsqrt factorization once.
            let mut r = Matrix::from_fn(nb, nb, |i, j| {
                if i == j {
                    2.0
                } else if i < j {
                    0.3
                } else {
                    0.0
                }
            });
            let mut u = random(nb, nb, 6);
            let mut t = Matrix::zeros(nb, nb);
            dtsqrt(&mut r, &mut u, &mut t);
            let c1_0 = random(nb, nb, 7);
            let c2_0 = random(nb, nb, 8);
            bench.iter(|| {
                let mut c1 = c1_0.clone();
                let mut c2 = c2_0.clone();
                dtsmqr(ApplyTrans::Trans, &mut c1, &mut c2, &u, &t);
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
