//! Regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! figures [all|fig1|fig2|fig3|fig4|fig5|fig6_7|fig8|fig9|fig10|speedup|ablation]
//!         [--out DIR] [--quick] [--paper]
//! ```
//!
//! Outputs land in `--out` (default `target/figures`): DOT/SVG/CSV/TXT
//! files named after the paper figure they reproduce, plus a summary on
//! stdout. `--quick` shrinks problem sizes for smoke runs; `--paper` uses
//! the paper's full sizes (N = 3960 etc.) where feasible.

use std::fs;
use std::path::{Path, PathBuf};
use supersim_bench::sweep::{real_vs_sim, CalibrationSource};
use supersim_calibrate::{calibrate, collect, report, CollectOptions, FitOptions};
use supersim_core::{KernelModel, ModelRegistry, RaceMitigation, SimConfig, SimSession};
use supersim_dag::{dot, DagBuilder};
use supersim_dist::fit::select_model;
use supersim_dist::histogram::Histogram;
use supersim_dist::kde::Kde;
use supersim_dist::Distribution;
use supersim_runtime::{Runtime, RuntimeConfig, SchedulerKind, TaskDesc};
use supersim_trace::svg::{render, SvgOptions};
use supersim_trace::{ascii, TraceComparison};
use supersim_workloads::{qr as qr_workload, Algorithm, Scenario, SharedTiles};

#[derive(Debug, Clone)]
struct Opts {
    out: PathBuf,
    quick: bool,
    paper: bool,
}

impl Opts {
    /// Sweep sizes for Figs. 8-10.
    fn sweep_sizes(&self) -> Vec<usize> {
        if self.quick {
            vec![120, 240]
        } else if self.paper {
            vec![400, 800, 1200, 1600, 2000, 2400]
        } else {
            vec![200, 400, 600, 800, 1000]
        }
    }

    fn sweep_nb(&self) -> usize {
        if self.quick {
            40
        } else {
            100 // paper uses 200; 100 keeps single-host runs tractable
        }
    }

    /// Workers for real-vs-sim validation runs.
    ///
    /// 1 on purpose: the host in this reproduction has a single core, so a
    /// real run with W > 1 workers time-shares that core and cannot match
    /// a simulation of a true W-core machine. With W = 1 the simulator's
    /// prediction is validated faithfully (the paper validated on a
    /// 48-core host with 48 workers — same principle: virtual worker count
    /// = physically concurrent worker count). Multi-worker *prediction* is
    /// exercised by the virtual-platform artifacts below.
    fn sweep_workers(&self) -> usize {
        1
    }

    /// Size for the Fig. 6/7 trace pair: (n, nb, workers).
    fn trace_cfg(&self) -> (usize, usize, usize) {
        if self.quick {
            (360, 90, 1)
        } else if self.paper {
            (3960, 180, 1)
        } else {
            (1440, 180, 1)
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cmd = "all".to_string();
    let mut opts = Opts {
        out: PathBuf::from("target/figures"),
        quick: false,
        paper: false,
    };
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => {
                opts.out = PathBuf::from(it.next().expect("--out needs a directory"));
            }
            "--quick" => opts.quick = true,
            "--paper" => opts.paper = true,
            other if !other.starts_with('-') => cmd = other.to_string(),
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    fs::create_dir_all(&opts.out).expect("cannot create output directory");

    match cmd.as_str() {
        "fig1" => fig1(&opts),
        "fig2" => fig2(&opts),
        "fig3" => fig3_4(&opts, Algorithm::Qr, "dtsmqr", "fig3"),
        "fig4" => fig3_4(&opts, Algorithm::Cholesky, "dgemm", "fig4"),
        "fig5" => fig5(&opts),
        "fig6_7" => fig6_7(&opts),
        "fig8" => sweep_fig(&opts, SchedulerKind::OmpSs, "fig8"),
        "fig9" => sweep_fig(&opts, SchedulerKind::StarPu, "fig9"),
        "fig10" => sweep_fig(&opts, SchedulerKind::Quark, "fig10"),
        "speedup" => speedup(&opts),
        "ablation" => ablation(&opts),
        "window" => window_study(&opts),
        "policies" => policy_study(&opts),
        "race_sensitivity" => race_sensitivity(&opts),
        "all" => {
            fig1(&opts);
            fig2(&opts);
            fig3_4(&opts, Algorithm::Qr, "dtsmqr", "fig3");
            fig3_4(&opts, Algorithm::Cholesky, "dgemm", "fig4");
            fig5(&opts);
            fig6_7(&opts);
            sweep_fig(&opts, SchedulerKind::OmpSs, "fig8");
            sweep_fig(&opts, SchedulerKind::StarPu, "fig9");
            sweep_fig(&opts, SchedulerKind::Quark, "fig10");
            speedup(&opts);
            ablation(&opts);
            window_study(&opts);
            policy_study(&opts);
            race_sensitivity(&opts);
        }
        other => {
            eprintln!("unknown command {other}");
            std::process::exit(2);
        }
    }
}

fn write(out: &Path, name: &str, content: &str) {
    let path = out.join(name);
    fs::write(&path, content).expect("write output");
    println!("  wrote {}", path.display());
}

/// Fig. 1: the DAG of a 4x4-tile QR factorization, as DOT.
fn fig1(opts: &Opts) {
    println!("== Fig. 1: QR DAG (4x4 tiles) ==");
    let nt = 4;
    let a = SharedTiles::layout_only(nt * 10, nt * 10, 10, 0);
    let t = SharedTiles::layout_only(nt * 10, nt * 10, 10, a.id_range().1);
    let mut builder = DagBuilder::new();
    for task in supersim_tile::qr::task_stream(nt) {
        builder.submit(task.label(), 1.0, &qr_workload::accesses(&a, &t, task));
    }
    let g = builder.finish();
    let profile = supersim_dag::analysis::profile(&g);
    println!(
        "  tasks={} edges={} dependences={} depth={} max_width={}",
        profile.tasks, profile.edges, profile.dependences, profile.depth, profile.max_width
    );
    write(&opts.out, "fig1_qr_dag.dot", &dot::to_dot_default(&g));
    write(
        &opts.out,
        "fig1_qr_dag_stats.txt",
        &format!("{profile:#?}\n"),
    );
}

/// Fig. 2: the serial task stream of a 3x3-tile QR (F0..F13).
fn fig2(opts: &Opts) {
    println!("== Fig. 2: QR task stream (3x3 tiles) ==");
    let nt = 3;
    let a = SharedTiles::layout_only(nt * 10, nt * 10, 10, 0);
    let t = SharedTiles::layout_only(nt * 10, nt * 10, 10, a.id_range().1);
    let mut listing = String::new();
    for (idx, task) in supersim_tile::qr::task_stream(nt).iter().enumerate() {
        let acc = qr_workload::accesses(&a, &t, *task);
        let args: Vec<String> = acc
            .iter()
            .map(|x| {
                let mode = match x.mode {
                    supersim_dag::AccessMode::Read => "r",
                    supersim_dag::AccessMode::Write => "w",
                    supersim_dag::AccessMode::ReadWrite => "rw",
                };
                format!("d{}^{}", x.data.0, mode)
            })
            .collect();
        listing.push_str(&format!(
            "F{idx:<3} {:<8} ({})\n",
            task.label(),
            args.join(", ")
        ));
    }
    print!("{listing}");
    write(&opts.out, "fig2_qr_task_stream.txt", &listing);
}

/// Figs. 3 & 4: kernel timing histogram + fitted normal/gamma/lognormal.
fn fig3_4(opts: &Opts, alg: Algorithm, kernel: &str, name: &str) {
    println!(
        "== {name}: {kernel} timing distribution ({}) ==",
        alg.name()
    );
    let (n, nb) = if opts.quick { (240, 40) } else { (1200, 120) };
    let real = Scenario::new(alg)
        .workers(opts.sweep_workers())
        .n(n)
        .tile_size(nb)
        .seed(99)
        .run_real();
    println!(
        "  real run: n={n} nb={nb} seconds={:.3} residual={:.2e}",
        real.seconds, real.residual
    );
    let samples = collect(&real.trace, CollectOptions::default());
    let s = &samples[kernel];
    let data = &s.durations;
    println!(
        "  {} samples of {kernel} (warm-ups excluded: {})",
        data.len(),
        s.warmup_durations.len()
    );

    let selection = select_model(data).expect("fit failed");
    let mut table = String::from("family,aic,bic,ks,log_likelihood,mean,std\n");
    for c in selection.candidates() {
        table.push_str(&format!(
            "{},{:.2},{:.2},{:.5},{:.2},{:.6e},{:.6e}\n",
            c.dist.family(),
            c.aic,
            c.bic,
            c.ks_statistic,
            c.log_likelihood,
            c.dist.mean(),
            c.dist.std_dev(),
        ));
        println!(
            "  {:<12} AIC={:<12.2} KS={:.4} mean={:.3}ms",
            c.dist.family(),
            c.aic,
            c.ks_statistic,
            c.dist.mean() * 1e3
        );
    }
    write(&opts.out, &format!("{name}_{kernel}_fits.csv"), &table);

    // Density plot data: histogram + fitted pdfs + KDE on a common grid.
    let hist = Histogram::auto(data).expect("histogram");
    let kde = Kde::silverman(data).expect("kde");
    let mut plot = String::from("x,histogram_density,kde");
    for c in selection.candidates() {
        plot.push_str(&format!(",{}", c.dist.family()));
    }
    plot.push('\n');
    let centers = hist.centers();
    let densities = hist.densities();
    for (i, &x) in centers.iter().enumerate() {
        plot.push_str(&format!(
            "{x:.6e},{:.4},{:.4}",
            densities[i],
            kde.density(x)
        ));
        for c in selection.candidates() {
            plot.push_str(&format!(",{:.4}", c.dist.pdf(x)));
        }
        plot.push('\n');
    }
    write(&opts.out, &format!("{name}_{kernel}_density.csv"), &plot);
}

/// Fig. 5: the scheduling race condition, shown by running the same
/// 3-task scenario under each mitigation.
fn fig5(opts: &Opts) {
    println!("== Fig. 5: scheduling race condition ==");
    let mut out = String::new();
    for (mit, label) in [
        (RaceMitigation::Quiesce, "quiesce"),
        (RaceMitigation::sleep_yield_default(), "sleep_yield"),
        (RaceMitigation::None, "none"),
    ] {
        let mut models = ModelRegistry::new();
        models.insert("A", KernelModel::constant(1.0));
        models.insert("B", KernelModel::constant(2.0));
        models.insert("C", KernelModel::constant(0.5));
        let session = SimSession::new(
            models,
            SimConfig {
                seed: 1,
                mitigation: mit,
                ..SimConfig::default()
            },
        );
        let rt = Runtime::new(RuntimeConfig::simple(2));
        session.attach_quiesce(rt.probe());
        use supersim_dag::{Access, DataId};
        let s = session.clone();
        rt.submit(TaskDesc::new(
            "A",
            vec![Access::write(DataId(0))],
            move |c| s.run_kernel(c, "A"),
        ));
        let s = session.clone();
        rt.submit(TaskDesc::new(
            "B",
            vec![Access::write(DataId(1))],
            move |c| s.run_kernel(c, "B"),
        ));
        let s = session.clone();
        rt.submit(TaskDesc::new(
            "C",
            vec![Access::read(DataId(0))],
            move |c| s.run_kernel(c, "C"),
        ));
        rt.seal();
        rt.wait_all().unwrap();
        let trace = session.finish_trace(2);
        let c_start = trace
            .spans()
            .iter()
            .find(|e| e.kernel == "C")
            .unwrap()
            .start;
        let verdict = if (c_start - 1.0).abs() < 1e-9 {
            "correct"
        } else {
            "RACED"
        };
        out.push_str(&format!(
            "mitigation={label:<12} C.start={c_start:.2} makespan={:.2}  [{verdict}]\n",
            trace.makespan()
        ));
        out.push_str(&ascii::render(&trace, 60));
        out.push('\n');
    }
    print!("{out}");
    write(&opts.out, "fig5_race_condition.txt", &out);
}

/// Figs. 6 & 7: a real QR trace and the simulated trace of the same
/// configuration, rendered at the same time scale.
fn fig6_7(opts: &Opts) {
    let (n, nb, workers) = opts.trace_cfg();
    println!("== Figs. 6/7: QR trace, real vs simulated (n={n}, nb={nb}, {workers} workers) ==");
    let real = Scenario::new(Algorithm::Qr)
        .workers(workers)
        .n(n)
        .tile_size(nb)
        .seed(7)
        .run_real();
    println!(
        "  real: seconds={:.3} gflops={:.2} residual={:.2e}",
        real.seconds, real.gflops, real.residual
    );
    let cal = calibrate(&real.trace, FitOptions::default());
    print!("{}", report::render(&cal));
    write(&opts.out, "fig6_7_calibration.txt", &report::render(&cal));

    let sim = Scenario::new(Algorithm::Qr)
        .workers(workers)
        .n(n)
        .tile_size(nb)
        .models(cal.registry.clone())
        .config(SimConfig {
            seed: 11,
            ..SimConfig::default()
        })
        .run_sim();
    println!(
        "  sim:  predicted={:.3}s (wall {:.3}s) gflops={:.2}",
        sim.predicted_seconds, sim.wall_seconds, sim.gflops
    );

    let cmp = TraceComparison::compare(&real.trace, &sim.trace);
    println!("  {}", cmp.summary());
    write(
        &opts.out,
        "fig6_7_comparison.txt",
        &format!("{}\n", cmp.summary()),
    );

    // Same time axis for both, as in the paper.
    let span = real.trace.t_max().max(sim.trace.t_max());
    let svg_opts = |title: String| SvgOptions {
        time_span: Some(span),
        title,
        ..SvgOptions::default()
    };
    write(
        &opts.out,
        "fig6_real_trace.svg",
        &render(
            &real.trace,
            &svg_opts(format!("Fig. 6: real QR trace (n={n}, nb={nb})")),
        ),
    );
    write(
        &opts.out,
        "fig7_sim_trace.svg",
        &render(
            &sim.trace,
            &svg_opts(format!("Fig. 7: simulated QR trace (n={n}, nb={nb})")),
        ),
    );

    // Bonus: the paper's full-size platform simulated (48 virtual workers)
    // to demonstrate host-independent virtual platforms.
    if !opts.quick {
        let mut models = ModelRegistry::new();
        for label in Algorithm::Qr.labels() {
            let m = cal.reports.get(*label).map(|r| r.mean).unwrap_or(0.001);
            models.insert(*label, KernelModel::constant(m));
        }
        let big = Scenario::new(Algorithm::Qr)
            .workers(48)
            .n(3960)
            .tile_size(180)
            .models(models)
            .config(SimConfig::default())
            .run_sim();
        println!(
            "  48-virtual-worker paper config (n=3960, nb=180): predicted={:.3}s, {} tasks, sim wall={:.3}s",
            big.predicted_seconds,
            big.trace.len(),
            big.wall_seconds
        );
        write(
            &opts.out,
            "fig7_paper_platform_sim.svg",
            &render(
                &big.trace,
                &SvgOptions {
                    title: "Simulated QR n=3960 nb=180 on 48 virtual workers".to_string(),
                    ..SvgOptions::default()
                },
            ),
        );
    }
}

/// Figs. 8-10: real vs simulated GFLOP/s sweeps for one scheduler.
fn sweep_fig(opts: &Opts, kind: SchedulerKind, name: &str) {
    println!(
        "== {name}: {} real vs simulated performance ==",
        kind.name()
    );
    let sizes = opts.sweep_sizes();
    let nb = opts.sweep_nb();
    let workers = opts.sweep_workers();
    // Tile size must not exceed the smallest problem.
    let sizes: Vec<usize> = sizes.into_iter().filter(|&n| n >= nb).collect();
    for alg in [Algorithm::Qr, Algorithm::Cholesky] {
        let series = real_vs_sim(
            alg,
            kind,
            workers,
            &sizes,
            nb,
            5,
            CalibrationSource::PerSize,
        );
        println!(
            "  {:<9} max|err|={:.1}% mean|err|={:.1}%",
            alg.name(),
            series.max_abs_error_pct(),
            series.mean_abs_error_pct()
        );
        for p in &series.points {
            println!(
                "    n={:<5} real={:.3}s ({:.2} GF/s)  sim={:.3}s ({:.2} GF/s)  err={:+.1}%",
                p.n, p.real_seconds, p.real_gflops, p.sim_seconds, p.sim_gflops, p.error_pct
            );
        }
        write(
            &opts.out,
            &format!("{name}_{}_{}.csv", kind.name(), alg.name()),
            &series.to_csv(),
        );
    }
}

/// The §III "Accelerated Simulation Time" claim: simulation wall time vs
/// real execution wall time.
fn speedup(opts: &Opts) {
    println!("== speedup: simulation wall time vs real wall time ==");
    let (sizes, nb) = if opts.quick {
        (vec![120usize, 240], 40)
    } else {
        (vec![400usize, 800, 1200], 100)
    };
    let workers = opts.sweep_workers();
    let mut out = String::from("algorithm,n,real_seconds,sim_wall_seconds,speedup\n");
    for alg in [Algorithm::Cholesky, Algorithm::Qr] {
        for &n in &sizes {
            let real = Scenario::new(alg)
                .workers(workers)
                .n(n)
                .tile_size(nb)
                .seed(3)
                .run_real();
            let cal = calibrate(&real.trace, FitOptions::default());
            let sim = Scenario::new(alg)
                .workers(workers)
                .n(n)
                .tile_size(nb)
                .models(cal.registry)
                .config(SimConfig::default())
                .run_sim();
            let speedup = real.seconds / sim.wall_seconds.max(1e-9);
            println!(
                "  {:<9} n={:<5} real={:.3}s sim_wall={:.3}s speedup={:.1}x",
                alg.name(),
                n,
                real.seconds,
                sim.wall_seconds,
                speedup
            );
            out.push_str(&format!(
                "{},{},{:.6},{:.6},{:.2}\n",
                alg.name(),
                n,
                real.seconds,
                sim.wall_seconds,
                speedup
            ));
        }
    }
    write(&opts.out, "speedup.csv", &out);
}

/// Study: how much sleep does the portable (sleep/yield) race mitigation
/// need? Runs the Fig. 5 scenario repeatedly per setting and reports the
/// observed race rate — quantifying the paper's "judicious use of the
/// sleep() function" (§V-E) against the exact quiescence query.
fn race_sensitivity(opts: &Opts) {
    println!("== race sensitivity: sleep/yield duration vs race rate ==");
    let reps = if opts.quick { 10 } else { 40 };
    let mut out = String::from(
        "mitigation,sleep_us,yields,races,reps,race_rate_pct
",
    );
    let settings = [
        (RaceMitigation::None, "none"),
        (
            RaceMitigation::SleepYield {
                yields: 4,
                sleep_us: 0,
            },
            "yield_only",
        ),
        (
            RaceMitigation::SleepYield {
                yields: 4,
                sleep_us: 10,
            },
            "sleep_10us",
        ),
        (
            RaceMitigation::SleepYield {
                yields: 4,
                sleep_us: 100,
            },
            "sleep_100us",
        ),
        (
            RaceMitigation::SleepYield {
                yields: 4,
                sleep_us: 1000,
            },
            "sleep_1ms",
        ),
        (RaceMitigation::Quiesce, "quiesce"),
    ];
    for (mit, name) in settings {
        let mut races = 0u32;
        for _ in 0..reps {
            let mut models = ModelRegistry::new();
            models.insert("A", KernelModel::constant(1.0));
            models.insert("B", KernelModel::constant(2.0));
            models.insert("C", KernelModel::constant(0.5));
            let session = SimSession::new(
                models,
                SimConfig {
                    seed: 1,
                    mitigation: mit,
                    ..SimConfig::default()
                },
            );
            let rt = Runtime::new(RuntimeConfig::simple(2));
            session.attach_quiesce(rt.probe());
            use supersim_dag::{Access, DataId};
            let s = session.clone();
            rt.submit(TaskDesc::new(
                "A",
                vec![Access::write(DataId(0))],
                move |c| s.run_kernel(c, "A"),
            ));
            let s = session.clone();
            rt.submit(TaskDesc::new(
                "B",
                vec![Access::write(DataId(1))],
                move |c| s.run_kernel(c, "B"),
            ));
            let s = session.clone();
            rt.submit(TaskDesc::new(
                "C",
                vec![Access::read(DataId(0))],
                move |c| s.run_kernel(c, "C"),
            ));
            rt.seal();
            rt.wait_all().unwrap();
            let trace = session.finish_trace(2);
            let c_start = trace
                .spans()
                .iter()
                .find(|e| e.kernel == "C")
                .unwrap()
                .start;
            if (c_start - 1.0).abs() > 1e-9 {
                races += 1;
            }
        }
        let (sleep_us, yields) = match mit {
            RaceMitigation::SleepYield { yields, sleep_us } => (sleep_us, yields),
            _ => (0, 0),
        };
        let rate = races as f64 / reps as f64 * 100.0;
        println!("  {name:<12} races {races}/{reps} ({rate:.0}%)");
        out.push_str(&format!(
            "{name},{sleep_us},{yields},{races},{reps},{rate:.1}
"
        ));
    }
    write(&opts.out, "race_sensitivity.csv", &out);
}

/// Study: the QUARK task-window knob. A small window throttles
/// submission-ahead and serializes the pipeline; a large one exposes the
/// full DAG. Pure simulation (no real runs needed) — exactly the kind of
/// sweep the paper's autotuning use case (§VI-B) performs.
fn window_study(opts: &Opts) {
    println!("== window study: Cholesky makespan vs task window (simulated) ==");
    let (n, nb, workers) = if opts.quick {
        (240, 40, 4)
    } else {
        (2000, 100, 8)
    };
    let mut models = ModelRegistry::new();
    for l in Algorithm::Cholesky.labels() {
        models.insert(*l, KernelModel::constant(0.002));
    }
    let mut out = String::from(
        "window,predicted_seconds,utilization_pct
",
    );
    for window in [1usize, 2, 4, 8, 16, 64, 256, 5000] {
        let cfg = supersim_runtime::RuntimeConfig {
            workers,
            policy: supersim_runtime::PolicyKind::CentralFifo,
            window,
            name: "window-study",
        };
        let session = SimSession::new(models.clone(), SimConfig::default());
        let rt = Runtime::new(cfg);
        session.attach_quiesce(rt.probe());
        let a = SharedTiles::layout_only(n, n, nb, 0);
        supersim_workloads::cholesky::submit(
            &rt,
            &a,
            &supersim_workloads::ExecMode::Simulated(session.clone()),
        );
        rt.seal();
        rt.wait_all().unwrap();
        let trace = session.finish_trace(workers);
        let util = supersim_trace::TraceStats::of(&trace).utilization * 100.0;
        println!(
            "  window={window:<5} predicted={:.4}s utilization={util:.1}%",
            session.virtual_now()
        );
        out.push_str(&format!(
            "{window},{:.6},{util:.2}
",
            session.virtual_now()
        ));
    }
    write(&opts.out, "window_study.csv", &out);
}

/// Study: ready-queue policy comparison on the QR DAG, in pure simulation
/// from one set of kernel models.
fn policy_study(opts: &Opts) {
    println!("== policy study: QR makespan per ready-queue policy (simulated) ==");
    let (n, nb, workers) = if opts.quick {
        (240, 40, 4)
    } else {
        (2000, 100, 8)
    };
    let mut models = ModelRegistry::new();
    models.insert("dgeqrt", KernelModel::constant(0.002));
    models.insert("dormqr", KernelModel::constant(0.003));
    models.insert("dtsqrt", KernelModel::constant(0.002));
    models.insert("dtsmqr", KernelModel::constant(0.004));
    let mut out = String::from(
        "policy,predicted_seconds,utilization_pct
",
    );
    use supersim_runtime::PolicyKind;
    for (policy, name) in [
        (PolicyKind::CentralFifo, "central_fifo"),
        (PolicyKind::CentralLifo, "central_lifo"),
        (PolicyKind::Priority, "priority"),
        (PolicyKind::WorkStealing, "work_stealing"),
        (PolicyKind::LocalityAware, "locality"),
    ] {
        let cfg = supersim_runtime::RuntimeConfig {
            workers,
            policy,
            window: usize::MAX,
            name: "policy-study",
        };
        let session = SimSession::new(models.clone(), SimConfig::default());
        let rt = Runtime::new(cfg);
        session.attach_quiesce(rt.probe());
        let a = SharedTiles::layout_only(n, n, nb, 0);
        let t = SharedTiles::layout_only(n, n, nb, a.id_range().1);
        supersim_workloads::qr::submit(
            &rt,
            &a,
            &t,
            &supersim_workloads::ExecMode::Simulated(session.clone()),
        );
        rt.seal();
        rt.wait_all().unwrap();
        let trace = session.finish_trace(workers);
        let util = supersim_trace::TraceStats::of(&trace).utilization * 100.0;
        println!(
            "  {name:<14} predicted={:.4}s utilization={util:.1}%",
            session.virtual_now()
        );
        out.push_str(&format!(
            "{name},{:.6},{util:.2}
",
            session.virtual_now()
        ));
    }
    write(&opts.out, "policy_study.csv", &out);
}

/// Ablation: scheduler-in-the-loop simulation vs offline DES list
/// scheduling — how much does keeping the real scheduler in the loop
/// matter? Accuracy is judged against a real single-worker run (the only
/// configuration this host can execute faithfully); the divergence between
/// the two simulators at higher worker counts is reported separately by
/// the `des_vs_inloop` bench.
fn ablation(opts: &Opts) {
    println!("== ablation: in-the-loop simulation vs offline DES ==");
    let (n, nb, workers) = if opts.quick {
        (240, 40, 1)
    } else {
        (800, 100, 1)
    };
    let mut out = String::from(
        "algorithm,real_seconds,inloop_seconds,inloop_err_pct,des_fifo_seconds,des_fifo_err_pct,des_blevel_seconds,des_blevel_err_pct\n",
    );
    for alg in [Algorithm::Cholesky, Algorithm::Qr] {
        let real = Scenario::new(alg)
            .workers(workers)
            .n(n)
            .tile_size(nb)
            .seed(13)
            .run_real();
        let cal = calibrate(&real.trace, FitOptions::default());

        // In-the-loop simulation.
        let sim = Scenario::new(alg)
            .workers(workers)
            .n(n)
            .tile_size(nb)
            .models(cal.registry.clone())
            .config(SimConfig::default())
            .run_sim();

        // Offline DES over the explicit DAG with mean durations.
        let a = SharedTiles::layout_only(n, n, nb, 0);
        let t = SharedTiles::layout_only(n, n, nb, a.id_range().1);
        let mut builder = DagBuilder::new();
        match alg {
            Algorithm::Cholesky => {
                for task in supersim_tile::cholesky::task_stream(a.nt()) {
                    let w = cal.registry.expect(task.label()).mean();
                    builder.submit(
                        task.label(),
                        w,
                        &supersim_workloads::cholesky::accesses(&a, task),
                    );
                }
            }
            Algorithm::Qr => {
                for task in supersim_tile::qr::task_stream(a.nt()) {
                    let w = cal.registry.expect(task.label()).mean();
                    builder.submit(task.label(), w, &qr_workload::accesses(&a, &t, task));
                }
            }
            Algorithm::Lu => unreachable!(),
        }
        let g = builder.finish();
        let des_fifo = supersim_des::simulate(&g, workers, supersim_des::DesPolicy::Fifo, |t| {
            g.node(t).weight
        });
        let des_blvl =
            supersim_des::simulate(&g, workers, supersim_des::DesPolicy::BottomLevel, |t| {
                g.node(t).weight
            });

        let err = |x: f64| (x - real.seconds) / real.seconds * 100.0;
        println!(
            "  {:<9} real={:.3}s | in-loop={:.3}s ({:+.1}%) | DES fifo={:.3}s ({:+.1}%) | DES blevel={:.3}s ({:+.1}%)",
            alg.name(),
            real.seconds,
            sim.predicted_seconds,
            err(sim.predicted_seconds),
            des_fifo.makespan,
            err(des_fifo.makespan),
            des_blvl.makespan,
            err(des_blvl.makespan),
        );
        out.push_str(&format!(
            "{},{:.6},{:.6},{:.2},{:.6},{:.2},{:.6},{:.2}\n",
            alg.name(),
            real.seconds,
            sim.predicted_seconds,
            err(sim.predicted_seconds),
            des_fifo.makespan,
            err(des_fifo.makespan),
            des_blvl.makespan,
            err(des_blvl.makespan),
        ));
    }
    write(&opts.out, "ablation_des_vs_inloop.csv", &out);
}
