//! Emit a machine-readable performance baseline for the simulation hot
//! path to `BENCH_simcore.json` (in the current directory, or the path
//! given as the first argument).
//!
//! Scenarios mirror `benches/contention.rs`: TEQ drain throughput under
//! broadcast vs targeted wakeups at several waiter counts, plus engine
//! burst throughput. The 64-waiter TEQ point carries the acceptance
//! criterion for the targeted-wakeup redesign: >= 2x over the broadcast
//! baseline.

use serde::Serialize;
use supersim_bench::contention::{engine_throughput, teq_throughput};
use supersim_core::WakeupMode;

/// Tasks each waiter thread retires per drain (matches the bench).
const PER_WAITER: usize = 50;
/// Timed repetitions per point; the best (max throughput) is reported to
/// suppress scheduler noise, as is standard for contention microbenchmarks.
const REPS: usize = 5;

#[derive(Serialize)]
struct TeqPoint {
    waiters: usize,
    tasks: usize,
    broadcast_tasks_per_sec: f64,
    targeted_tasks_per_sec: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct EnginePoint {
    workers: usize,
    tasks: usize,
    tasks_per_sec: f64,
}

#[derive(Serialize)]
struct Acceptance {
    waiters: usize,
    speedup: f64,
    required: f64,
    pass: bool,
}

#[derive(Serialize)]
struct Baseline {
    benchmark: String,
    per_waiter_tasks: usize,
    reps: usize,
    teq: Vec<TeqPoint>,
    engine: Vec<EnginePoint>,
    acceptance: Acceptance,
}

fn best<F: FnMut() -> f64>(mut f: F) -> f64 {
    (0..REPS).map(|_| f()).fold(0.0f64, f64::max)
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_simcore.json".to_string());

    let mut teq = Vec::new();
    for &waiters in &[1usize, 8, 48, 64, 128, 256] {
        eprintln!("teq contention: {waiters} waiters x {PER_WAITER} tasks ...");
        let broadcast = best(|| teq_throughput(WakeupMode::Broadcast, waiters, PER_WAITER));
        let targeted = best(|| teq_throughput(WakeupMode::Targeted, waiters, PER_WAITER));
        teq.push(TeqPoint {
            waiters,
            tasks: waiters * PER_WAITER,
            broadcast_tasks_per_sec: broadcast,
            targeted_tasks_per_sec: targeted,
            speedup: targeted / broadcast,
        });
    }

    let mut engine = Vec::new();
    for &workers in &[1usize, 2, 4, 8] {
        eprintln!("engine burst: {workers} workers ...");
        let tasks = 5_000;
        engine.push(EnginePoint {
            workers,
            tasks,
            tasks_per_sec: best(|| engine_throughput(workers, tasks)),
        });
    }

    let gate = teq
        .iter()
        .find(|p| p.waiters == 64)
        .expect("64-waiter point present");
    let acceptance = Acceptance {
        waiters: 64,
        speedup: gate.speedup,
        required: 2.0,
        pass: gate.speedup >= 2.0,
    };

    let baseline = Baseline {
        benchmark: "simcore contention hot path".to_string(),
        per_waiter_tasks: PER_WAITER,
        reps: REPS,
        teq,
        engine,
        acceptance,
    };

    let json = serde_json::to_string_pretty(&baseline).expect("serialize baseline");
    std::fs::write(&out, json.as_bytes()).expect("write baseline file");
    println!(
        "wrote {out}: targeted/broadcast speedup at 64 waiters = {:.2}x ({})",
        baseline.acceptance.speedup,
        if baseline.acceptance.pass {
            "PASS"
        } else {
            "FAIL"
        }
    );
}
