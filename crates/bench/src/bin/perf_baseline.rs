//! Emit a machine-readable performance baseline for the simulation hot
//! path to `BENCH_simcore.json` (in the current directory, or the path
//! given as the first positional argument).
//!
//! Scenarios mirror `benches/contention.rs`: TEQ drain throughput under
//! broadcast vs targeted wakeups at several waiter counts, plus engine
//! burst throughput. The 64-waiter TEQ point carries the acceptance
//! criterion for the targeted-wakeup redesign: >= 2x over the broadcast
//! baseline.
//!
//! Flags (for the CI perf gate):
//!
//! * `--gate FILE` — compare the fresh targeted-wakeup 64-waiter median
//!   drain throughput against the committed baseline in `FILE`; exit
//!   non-zero if it regressed by more than 30%. The DES-backend 4x8
//!   cluster drain datapoint, the 256-cell sweep-orchestrator
//!   throughput (cells/s on a fixed DES matrix), and the resident
//!   service's cached /run round-trip rate are gated the same way
//!   (30% floor) when the committed baseline carries them.
//! * `--overhead-bin PATH` — `PATH` is this same binary built with
//!   `--no-default-features` (metrics compiled out). Alternates rounds of
//!   in-process measurement with spawns of `PATH --probe-targeted-64`, so
//!   the on/off samples interleave in time and host drift cancels —
//!   measuring the two builds minutes apart was observed to mis-report
//!   the overhead by tens of percent either way. Embeds an `overhead`
//!   section; the 2% budget verdict is recorded and printed, not a hard
//!   failure (the regression gate is the enforced one; overhead trends
//!   are judged from the uploaded artifacts).
//! * `--probe-targeted-64` — print one median gate-point measurement and
//!   exit; used by `--overhead-bin` as the other half of the pair.

use serde::Serialize;
use supersim_bench::contention::{engine_throughput, teq_throughput};
use supersim_core::WakeupMode;

/// Tasks each waiter thread retires per drain (matches the bench).
const PER_WAITER: usize = 50;
/// Timed repetitions per point; the best (max throughput) is reported to
/// suppress scheduler noise, as is standard for contention microbenchmarks.
const REPS: usize = 5;
/// Repetitions for the gate/overhead measurement. The drain is bimodal
/// under scheduler luck (a fortunate interleaving turns most waits into
/// immediate front hits and inflates throughput ~30x), so the gates
/// compare **medians**, which sit stably in the all-parked mode; a best-of
/// comparison would be pure noise.
const GATE_REPS: usize = 31;

#[derive(Serialize)]
struct TeqPoint {
    waiters: usize,
    tasks: usize,
    broadcast_tasks_per_sec: f64,
    targeted_tasks_per_sec: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct EnginePoint {
    workers: usize,
    tasks: usize,
    tasks_per_sec: f64,
}

/// Wall-clock drain throughput of a distributed (multi-node) simulated
/// workload: scheduler + pinned NIC lanes + transfer tasks, virtual
/// kernels. Tracks the cluster subsystem's end-to-end overhead, on either
/// the threaded engine (one host thread per simulated lane) or the
/// pure-DES replay backend (single host thread).
#[derive(Serialize)]
struct ClusterPoint {
    nodes: usize,
    workers_per_node: usize,
    interconnect: String,
    backend: String,
    compute_tasks: u64,
    transfers: u64,
    tasks_per_sec: f64,
}

/// Wall-clock throughput of the sweep orchestrator on a fixed 256-cell
/// DES matrix (cells completed per second, merged report included).
/// Tracks the end-to-end batch path: matrix expansion, per-cell session
/// construction over the shared model database, DES replay, merge + sort,
/// Pareto extraction.
#[derive(Serialize)]
struct SweepPoint {
    cells: usize,
    jobs: usize,
    cells_per_sec: f64,
}

/// Round-trip throughput of the resident service answering a cached
/// deterministic /run request over real loopback TCP (fresh connection
/// per request, as the CLI client works). Tracks the serve hot path:
/// accept, parse, content-hash lookup, memoized response write.
#[derive(Serialize)]
struct ServePoint {
    requests: usize,
    cached_requests_per_sec: f64,
}

#[derive(Serialize)]
struct Acceptance {
    waiters: usize,
    speedup: f64,
    required: f64,
    pass: bool,
}

/// DES-vs-threaded cluster drain speedup at the replay backend's
/// acceptance point (4 nodes x 8 workers): the DES engine must drain the
/// same distributed workload at least 10x faster in wall-clock terms.
#[derive(Serialize)]
struct DesAcceptance {
    nodes: usize,
    workers_per_node: usize,
    threaded_tasks_per_sec: f64,
    des_tasks_per_sec: f64,
    speedup: f64,
    required: f64,
    pass: bool,
}

/// Metrics-on vs metrics-off cost of the instrumentation on the 64-waiter
/// targeted drain (median throughputs), per the observability acceptance
/// criterion. Negative `overhead_percent` means the instrumented build
/// measured faster — i.e. the true overhead is below measurement noise.
#[derive(Serialize)]
struct Overhead {
    targeted_64_on_tasks_per_sec: f64,
    targeted_64_off_tasks_per_sec: f64,
    overhead_percent: f64,
    required_percent: f64,
    pass: bool,
}

/// Peak-RSS scaling of the trace pipeline from 10^4 to 10^6 tasks on the
/// DES replay backend, measured in spawned child processes (VmHWM is
/// process-wide, so both modes need a fresh process). Streaming mode must
/// stay flat — ratio at most 2.0, the bounded-memory acceptance criterion
/// — while buffered mode is recorded to document the linear growth being
/// avoided.
#[derive(Serialize)]
struct TraceStreamRss {
    streaming_rss_kb_10k: u64,
    streaming_rss_kb_1m: u64,
    streaming_ratio: f64,
    buffered_rss_kb_10k: u64,
    buffered_rss_kb_1m: u64,
    buffered_ratio: f64,
    required_ratio: f64,
    pass: bool,
}

#[derive(Serialize)]
struct Baseline {
    benchmark: String,
    metrics_enabled: bool,
    per_waiter_tasks: usize,
    reps: usize,
    gate_reps: usize,
    /// Median targeted-wakeup drain throughput at 64 waiters — the number
    /// the CI perf gate and the metrics-overhead gate compare.
    targeted_64_median_tasks_per_sec: f64,
    /// DES-backend cluster drain throughput at 4x8 — the second number the
    /// CI perf gate compares (30% regression floor).
    des_cluster_4x8_tasks_per_sec: f64,
    /// Sweep-orchestrator throughput on the fixed 256-cell DES matrix —
    /// the third gated number (30% regression floor).
    sweep_256_cells_per_sec: f64,
    /// Cached /run round-trip rate of the resident service — the fourth
    /// gated number (30% regression floor).
    serve_cached_rps: f64,
    teq: Vec<TeqPoint>,
    engine: Vec<EnginePoint>,
    cluster: Vec<ClusterPoint>,
    sweep: SweepPoint,
    serve: ServePoint,
    trace_stream_rss: TraceStreamRss,
    acceptance: Acceptance,
    des_acceptance: DesAcceptance,
    overhead: Option<Overhead>,
}

fn best<F: FnMut() -> f64>(mut f: F) -> f64 {
    (0..REPS).map(|_| f()).fold(0.0f64, f64::max)
}

fn median<F: FnMut() -> f64>(reps: usize, mut f: F) -> f64 {
    let mut xs: Vec<f64> = (0..reps).map(|_| f()).collect();
    xs.sort_by(|a, b| a.total_cmp(b));
    xs[xs.len() / 2]
}

/// The median targeted 64-waiter throughput recorded in a previously
/// written baseline JSON.
fn targeted_64_of(path: &str) -> f64 {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
    let v: serde_json::Value =
        serde_json::from_str(&text).unwrap_or_else(|e| panic!("bad JSON in {path}: {e}"));
    v["targeted_64_median_tasks_per_sec"]
        .as_f64()
        .expect("targeted_64_median_tasks_per_sec number in baseline")
}

/// The DES-backend 4x8 cluster drain throughput recorded in a previously
/// written baseline JSON; `None` if that baseline predates the replay
/// backend (the gate then skips the comparison instead of failing).
fn des_cluster_4x8_of(path: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
    let v: serde_json::Value =
        serde_json::from_str(&text).unwrap_or_else(|e| panic!("bad JSON in {path}: {e}"));
    v["des_cluster_4x8_tasks_per_sec"].as_f64()
}

/// The sweep throughput recorded in a previously written baseline JSON;
/// `None` if that baseline predates the sweep orchestrator (the gate then
/// skips the comparison instead of failing).
fn sweep_256_of(path: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
    let v: serde_json::Value =
        serde_json::from_str(&text).unwrap_or_else(|e| panic!("bad JSON in {path}: {e}"));
    v["sweep_256_cells_per_sec"].as_f64()
}

/// The cached-request service throughput recorded in a previously written
/// baseline JSON; `None` if that baseline predates the serve daemon (the
/// gate then skips the comparison instead of failing).
fn serve_cached_rps_of(path: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
    let v: serde_json::Value =
        serde_json::from_str(&text).unwrap_or_else(|e| panic!("bad JSON in {path}: {e}"));
    v["serve_cached_rps"].as_f64()
}

/// Best-of-REPS throughput of the sweep orchestrator on a fixed 256-cell
/// DES matrix: 2 tile counts x 2 worker counts x {single-node, 2-node
/// cluster} x {clean, straggler} x 16 seeds, quark/pinned profiles, DES
/// replay everywhere, one shared synthetic model database.
fn sweep_point() -> SweepPoint {
    use supersim_workloads::sweep::{FaultPlanSpec, SweepBackend, SweepSpec};

    let spec = SweepSpec {
        tile_counts: vec![4, 6],
        tile_sizes: vec![32],
        worker_counts: vec![2, 4],
        node_counts: vec![0, 2],
        plans: vec![
            FaultPlanSpec::clean(),
            FaultPlanSpec::preset("straggler").expect("straggler preset"),
        ],
        seeds: (1..=16).collect(),
        backend: SweepBackend::Des,
        ..SweepSpec::default()
    };
    let probe = spec.run(0);
    let cells = probe.report.cells_total as usize;
    assert_eq!(cells, 256, "the gated sweep matrix is fixed at 256 cells");
    let mut rate = probe.cells_per_sec();
    for _ in 1..REPS {
        rate = rate.max(spec.run(0).cells_per_sec());
    }
    SweepPoint {
        cells,
        jobs: probe.jobs,
        cells_per_sec: rate,
    }
}

/// Best-of-REPS cached-request throughput of the resident service: boot
/// an in-process daemon on an ephemeral loopback port, prime the response
/// cache with one cold deterministic DES run, then time batches of
/// sequential round trips that all hit the cache.
fn serve_point() -> ServePoint {
    use std::time::{Duration, Instant};
    use supersim_serve::{client_request, ServeConfig, Server};

    const BATCH: usize = 200;
    let handle = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue: 64,
        default_timeout_ms: 0,
        retry_after_secs: 1,
    })
    .expect("bind ephemeral port")
    .spawn();
    let rate = {
        let body = "{\"tiles\":8,\"seed\":7,\"backend\":\"des\"}";
        let post = || {
            client_request(handle.addr, "POST", "/run", body, Duration::from_secs(60))
                .expect("serve answers")
        };
        let cold = post();
        assert_eq!(cold.status, 200, "{}", cold.body);
        assert_eq!(cold.header("x-cache"), Some("miss"));
        let warm = post();
        assert_eq!(warm.header("x-cache"), Some("hit"), "cache primed");
        best(|| {
            let t0 = Instant::now();
            for _ in 0..BATCH {
                assert_eq!(post().status, 200);
            }
            BATCH as f64 / t0.elapsed().as_secs_f64().max(1e-12)
        })
    };
    handle.shutdown();
    ServePoint {
        requests: BATCH,
        cached_requests_per_sec: rate,
    }
}

/// Peak resident set size (VmHWM) of this process, in KiB.
fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|status| {
            status
                .lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(0)
}

/// The `--probe-stream-rss` payload: replay a synthetic fixed-duration
/// task stream on the DES backend — streaming mode drains spans to a null
/// sink at 0.05s virtual epochs, buffered mode accumulates them all — and
/// report this process's peak RSS. Mirrors `supersim stream-bench`, which
/// is the user-facing twin of this probe.
fn stream_rss_probe(tasks: u64, streaming: bool) -> u64 {
    use supersim_core::{ModelRegistry, SimConfig, SimSession};
    use supersim_dag::{Access, DataId};
    use supersim_des::{ReplayBody, ReplayEngine, ReplayTask};
    use supersim_runtime::RuntimeConfig;
    use supersim_trace::sink::NullSink;

    let session = SimSession::new(ModelRegistry::new(), SimConfig::default());
    if streaming {
        session
            .trace_recorder()
            .attach_sink(Box::new(NullSink), 0.05);
    }
    let mut cfg = RuntimeConfig::simple(64);
    cfg.window = 1_024;
    let engine = ReplayEngine::new(&cfg, session.clone()).expect("simple profile replays");
    const CELLS: u64 = 4096;
    let out = engine.run((0..tasks).map(|i| ReplayTask {
        label: format!("k{}", i % 7),
        accesses: vec![
            Access::write(DataId(i % CELLS)),
            Access::read(DataId((i + CELLS - 256) % CELLS)),
        ],
        priority: 0,
        pin: None,
        body: ReplayBody::Fixed {
            duration: 1e-4 * ((i % 9) + 1) as f64,
        },
    }));
    assert_eq!(out.completed, tasks, "probe stream fully retired");
    let trace = session.finish_trace(64);
    assert_eq!(
        trace.len() as u64 + session.trace_recorder().drained(),
        tasks,
        "every span accounted for"
    );
    peak_rss_kb()
}

/// One median gate-point measurement (the `--probe-targeted-64` payload).
fn gate_point_median() -> f64 {
    median(GATE_REPS, || {
        teq_throughput(WakeupMode::Targeted, 64, PER_WAITER)
    })
}

/// Best-of-REPS wall-clock throughput (tasks drained per second, compute +
/// transfer) of a distributed tile Cholesky on constant kernel models.
fn cluster_point(
    nodes: usize,
    workers: usize,
    model: &str,
    backend: supersim_workloads::Backend,
) -> ClusterPoint {
    use std::sync::Arc;
    use supersim_cluster::{BlockCyclic, Hockney, Interconnect, ZeroCost};
    use supersim_core::{KernelModel, ModelRegistry, SimConfig};
    use supersim_workloads::{Algorithm, Scenario};

    let interconnect: Arc<dyn Interconnect> = match model {
        "zero" => Arc::new(ZeroCost),
        "hockney" => Arc::new(Hockney::new(1e-5, 1e10)),
        other => panic!("unknown interconnect {other}"),
    };
    let run_once = || {
        let mut models = ModelRegistry::new();
        for l in Algorithm::Cholesky.labels() {
            models.insert(*l, KernelModel::constant(1e-6));
        }
        Scenario::new(Algorithm::Cholesky)
            .n(480)
            .tile_size(48)
            .models(models)
            .config(SimConfig {
                seed: 42,
                ..SimConfig::default()
            })
            .cluster(supersim_cluster::ClusterSpec::new(nodes, workers))
            .interconnect(interconnect.clone())
            .placement(Arc::new(BlockCyclic::square(nodes)))
            .backend(backend)
            .run_cluster()
    };
    let probe = run_once();
    let tasks_per_sec = best(|| {
        let run = run_once();
        (run.compute_tasks + run.transfers) as f64 / run.wall_seconds.max(1e-12)
    });
    ClusterPoint {
        nodes,
        workers_per_node: workers,
        interconnect: model.to_string(),
        backend: backend.name().to_string(),
        compute_tasks: probe.compute_tasks,
        transfers: probe.transfers,
        tasks_per_sec,
    }
}

fn main() {
    let mut out = "BENCH_simcore.json".to_string();
    let mut gate_path: Option<String> = None;
    let mut overhead_bin_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--probe-targeted-64" => {
                println!("{}", gate_point_median());
                return;
            }
            "--probe-stream-rss" => {
                let tasks: u64 = args
                    .next()
                    .expect("--probe-stream-rss needs a task count")
                    .parse()
                    .expect("task count");
                let streaming = match args.next().as_deref() {
                    Some("streaming") => true,
                    Some("buffered") => false,
                    other => panic!("--probe-stream-rss needs streaming|buffered, got {other:?}"),
                };
                println!("{}", stream_rss_probe(tasks, streaming));
                return;
            }
            "--gate" => gate_path = Some(args.next().expect("--gate needs a file")),
            "--overhead-bin" => {
                overhead_bin_path = Some(args.next().expect("--overhead-bin needs a path"))
            }
            other if !other.starts_with("--") => out = other.to_string(),
            other => panic!("unknown flag {other}"),
        }
    }

    let mut teq = Vec::new();
    for &waiters in &[1usize, 8, 48, 64, 128, 256] {
        eprintln!("teq contention: {waiters} waiters x {PER_WAITER} tasks ...");
        let broadcast = best(|| teq_throughput(WakeupMode::Broadcast, waiters, PER_WAITER));
        let targeted = best(|| teq_throughput(WakeupMode::Targeted, waiters, PER_WAITER));
        teq.push(TeqPoint {
            waiters,
            tasks: waiters * PER_WAITER,
            broadcast_tasks_per_sec: broadcast,
            targeted_tasks_per_sec: targeted,
            speedup: targeted / broadcast,
        });
    }

    let mut engine = Vec::new();
    for &workers in &[1usize, 2, 4, 8] {
        eprintln!("engine burst: {workers} workers ...");
        let tasks = 5_000;
        engine.push(EnginePoint {
            workers,
            tasks,
            tasks_per_sec: best(|| engine_throughput(workers, tasks)),
        });
    }

    let mut cluster = Vec::new();
    for &(nodes, workers, model) in &[(2usize, 4usize, "zero"), (4, 4, "hockney")] {
        eprintln!("cluster drain: {nodes} nodes x {workers} workers, {model} ...");
        cluster.push(cluster_point(
            nodes,
            workers,
            model,
            supersim_workloads::Backend::Threaded,
        ));
    }
    // The replay-backend acceptance point: the same 4x8 distributed
    // workload on the threaded engine (32 compute + NIC host threads) vs
    // the single-threaded DES engine.
    eprintln!("cluster drain: 4 nodes x 8 workers, hockney, threaded vs des ...");
    let thr_4x8 = cluster_point(4, 8, "hockney", supersim_workloads::Backend::Threaded);
    let des_4x8 = cluster_point(4, 8, "hockney", supersim_workloads::Backend::Des);
    let des_speedup = des_4x8.tasks_per_sec / thr_4x8.tasks_per_sec;
    let des_acceptance = DesAcceptance {
        nodes: 4,
        workers_per_node: 8,
        threaded_tasks_per_sec: thr_4x8.tasks_per_sec,
        des_tasks_per_sec: des_4x8.tasks_per_sec,
        speedup: des_speedup,
        required: 10.0,
        pass: des_speedup >= 10.0,
    };
    let des_cluster_4x8 = des_4x8.tasks_per_sec;
    cluster.push(thr_4x8);
    cluster.push(des_4x8);

    eprintln!("sweep throughput: fixed 256-cell DES matrix ...");
    let sweep = sweep_point();
    let sweep_256 = sweep.cells_per_sec;

    eprintln!("serve throughput: cached /run round trips ...");
    let serve = serve_point();
    let serve_rps = serve.cached_requests_per_sec;

    eprintln!("trace-stream rss: DES replay 10^4 vs 10^6 tasks, streaming vs buffered ...");
    let exe = std::env::current_exe().expect("current exe");
    let probe_rss = |tasks: u64, mode: &str| -> u64 {
        let out = std::process::Command::new(&exe)
            .arg("--probe-stream-rss")
            .arg(tasks.to_string())
            .arg(mode)
            .output()
            .expect("spawn rss probe");
        assert!(
            out.status.success(),
            "rss probe failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout)
            .trim()
            .parse()
            .expect("probe prints one peak-rss number")
    };
    let s10k = probe_rss(10_000, "streaming");
    let s1m = probe_rss(1_000_000, "streaming");
    let b10k = probe_rss(10_000, "buffered");
    let b1m = probe_rss(1_000_000, "buffered");
    let streaming_ratio = s1m as f64 / s10k.max(1) as f64;
    let trace_stream_rss = TraceStreamRss {
        streaming_rss_kb_10k: s10k,
        streaming_rss_kb_1m: s1m,
        streaming_ratio,
        buffered_rss_kb_10k: b10k,
        buffered_rss_kb_1m: b1m,
        buffered_ratio: b1m as f64 / b10k.max(1) as f64,
        required_ratio: 2.0,
        pass: streaming_ratio <= 2.0,
    };

    let gate = teq
        .iter()
        .find(|p| p.waiters == 64)
        .expect("64-waiter point present");
    let acceptance = Acceptance {
        waiters: 64,
        speedup: gate.speedup,
        required: 2.0,
        pass: gate.speedup >= 2.0,
    };

    eprintln!("gate point: targeted @ 64 waiters, median of {GATE_REPS} ...");
    let mut on_medians = vec![gate_point_median()];
    let overhead = overhead_bin_path.map(|bin| {
        // Interleave rounds so host drift hits both builds alike.
        const ROUNDS: usize = 5;
        let mut off_medians = Vec::with_capacity(ROUNDS);
        for round in 0..ROUNDS {
            eprintln!("overhead round {}/{ROUNDS} (off then on) ...", round + 1);
            let out = std::process::Command::new(&bin)
                .arg("--probe-targeted-64")
                .output()
                .unwrap_or_else(|e| panic!("cannot run probe {bin}: {e}"));
            assert!(
                out.status.success(),
                "probe {bin} failed: {}",
                String::from_utf8_lossy(&out.stderr)
            );
            let off: f64 = String::from_utf8_lossy(&out.stdout)
                .trim()
                .parse()
                .expect("probe prints one number");
            off_medians.push(off);
            on_medians.push(gate_point_median());
        }
        let mid = |xs: &mut Vec<f64>| {
            xs.sort_by(|a, b| a.total_cmp(b));
            xs[xs.len() / 2]
        };
        let on = mid(&mut on_medians);
        let off = mid(&mut off_medians);
        let overhead_percent = (off - on) / off * 100.0;
        Overhead {
            targeted_64_on_tasks_per_sec: on,
            targeted_64_off_tasks_per_sec: off,
            overhead_percent,
            required_percent: 2.0,
            pass: overhead_percent <= 2.0,
        }
    });
    let fresh_targeted_64 = match &overhead {
        Some(o) => o.targeted_64_on_tasks_per_sec,
        None => on_medians[0],
    };

    let baseline = Baseline {
        benchmark: "simcore contention hot path".to_string(),
        metrics_enabled: cfg!(feature = "metrics"),
        per_waiter_tasks: PER_WAITER,
        reps: REPS,
        gate_reps: GATE_REPS,
        targeted_64_median_tasks_per_sec: fresh_targeted_64,
        des_cluster_4x8_tasks_per_sec: des_cluster_4x8,
        sweep_256_cells_per_sec: sweep_256,
        serve_cached_rps: serve_rps,
        teq,
        engine,
        cluster,
        sweep,
        serve,
        trace_stream_rss,
        acceptance,
        des_acceptance,
        overhead,
    };

    let json = serde_json::to_string_pretty(&baseline).expect("serialize baseline");
    std::fs::write(&out, json.as_bytes()).expect("write baseline file");
    println!(
        "wrote {out}: targeted/broadcast speedup at 64 waiters = {:.2}x ({})",
        baseline.acceptance.speedup,
        if baseline.acceptance.pass {
            "PASS"
        } else {
            "FAIL"
        }
    );
    println!(
        "des/threaded cluster drain speedup at 4x8 = {:.2}x (des {:.0}/s vs threaded {:.0}/s, required {:.0}x) {}",
        baseline.des_acceptance.speedup,
        baseline.des_acceptance.des_tasks_per_sec,
        baseline.des_acceptance.threaded_tasks_per_sec,
        baseline.des_acceptance.required,
        if baseline.des_acceptance.pass {
            "PASS"
        } else {
            "FAIL"
        }
    );

    println!(
        "trace-stream rss 10^6/10^4: streaming {:.2}x ({} -> {} KiB, ceiling {:.1}x), buffered {:.2}x ({} -> {} KiB) {}",
        baseline.trace_stream_rss.streaming_ratio,
        baseline.trace_stream_rss.streaming_rss_kb_10k,
        baseline.trace_stream_rss.streaming_rss_kb_1m,
        baseline.trace_stream_rss.required_ratio,
        baseline.trace_stream_rss.buffered_ratio,
        baseline.trace_stream_rss.buffered_rss_kb_10k,
        baseline.trace_stream_rss.buffered_rss_kb_1m,
        if baseline.trace_stream_rss.pass {
            "PASS"
        } else {
            "FAIL"
        }
    );

    let mut failed = false;
    if let Some(o) = &baseline.overhead {
        println!(
            "metrics overhead at 64 waiters: {:.2}% (on {:.0}/s vs off {:.0}/s, budget {:.1}%) {}",
            o.overhead_percent,
            o.targeted_64_on_tasks_per_sec,
            o.targeted_64_off_tasks_per_sec,
            o.required_percent,
            if o.pass {
                "PASS"
            } else {
                "OVER (informational)"
            }
        );
    }
    if let Some(path) = gate_path {
        let committed = targeted_64_of(&path);
        let ratio = fresh_targeted_64 / committed;
        let pass = ratio >= 0.7;
        println!(
            "perf gate vs {path}: fresh targeted@64 = {:.0}/s, committed = {:.0}/s, ratio {:.2} (floor 0.70) {}",
            fresh_targeted_64,
            committed,
            ratio,
            if pass { "PASS" } else { "FAIL" }
        );
        failed |= !pass;
        match des_cluster_4x8_of(&path) {
            Some(committed_des) => {
                let ratio = des_cluster_4x8 / committed_des;
                let pass = ratio >= 0.7;
                println!(
                    "perf gate vs {path}: fresh des-cluster@4x8 = {:.0}/s, committed = {:.0}/s, ratio {:.2} (floor 0.70) {}",
                    des_cluster_4x8,
                    committed_des,
                    ratio,
                    if pass { "PASS" } else { "FAIL" }
                );
                failed |= !pass;
            }
            None => println!(
                "perf gate vs {path}: no des_cluster_4x8_tasks_per_sec in committed baseline, skipping DES gate"
            ),
        }
        match sweep_256_of(&path) {
            Some(committed_sweep) => {
                let ratio = sweep_256 / committed_sweep;
                let pass = ratio >= 0.7;
                println!(
                    "perf gate vs {path}: fresh sweep@256 = {:.0} cells/s, committed = {:.0} cells/s, ratio {:.2} (floor 0.70) {}",
                    sweep_256,
                    committed_sweep,
                    ratio,
                    if pass { "PASS" } else { "FAIL" }
                );
                failed |= !pass;
            }
            None => println!(
                "perf gate vs {path}: no sweep_256_cells_per_sec in committed baseline, skipping sweep gate"
            ),
        }
        // The trace_stream_rss gate is absolute (the bounded-memory
        // contract, not a regression ratio): streaming peak RSS at 10^6
        // tasks must stay within 2x of the 10^4-task run.
        {
            let pass = baseline.trace_stream_rss.pass;
            println!(
                "perf gate: trace_stream_rss streaming ratio {:.2} (ceiling {:.1}) {}",
                baseline.trace_stream_rss.streaming_ratio,
                baseline.trace_stream_rss.required_ratio,
                if pass { "PASS" } else { "FAIL" }
            );
            failed |= !pass;
        }
        match serve_cached_rps_of(&path) {
            Some(committed_serve) => {
                let ratio = serve_rps / committed_serve;
                let pass = ratio >= 0.7;
                println!(
                    "perf gate vs {path}: fresh serve cached rps = {:.0}/s, committed = {:.0}/s, ratio {:.2} (floor 0.70) {}",
                    serve_rps,
                    committed_serve,
                    ratio,
                    if pass { "PASS" } else { "FAIL" }
                );
                failed |= !pass;
            }
            None => println!(
                "perf gate vs {path}: no serve_cached_rps in committed baseline, skipping serve gate"
            ),
        }
    }
    if failed {
        std::process::exit(1);
    }
}
